//! End-to-end tests of the `xorpuf` command-line tool: enrollment persists
//! a database, the genuine chip authenticates, an impostor is denied, and
//! keys derive deterministically — all through the real binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn xorpuf(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_xorpuf"))
        .args(args)
        .output()
        .expect("failed to launch the xorpuf binary")
}

fn temp_db(name: &str) -> (PathBuf, String) {
    let path = std::env::temp_dir().join(format!("xorpuf-test-{name}-{}.xpuf", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let s = path.to_str().expect("utf-8 temp path").to_string();
    (path, s)
}

#[test]
fn enroll_inspect_authenticate_roundtrip() {
    let (path, db) = temp_db("roundtrip");

    let out = xorpuf(&["enroll", "--db", &db, "--chip-seed", "7", "--n", "2"]);
    assert!(
        out.status.success(),
        "enroll failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(path.exists(), "database file was not created");

    let out = xorpuf(&["inspect", "--db", &db]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("1 enrolled chip"), "{stdout}");
    assert!(stdout.contains("2-input XOR"), "{stdout}");

    let out = xorpuf(&["authenticate", "--db", &db, "--chip-seed", "7"]);
    assert!(
        out.status.success(),
        "genuine chip denied: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("APPROVED"));

    let _ = std::fs::remove_file(&path);
}

#[test]
fn impostor_and_wrong_seed_are_denied() {
    let (path, db) = temp_db("impostor");
    assert!(
        xorpuf(&["enroll", "--db", &db, "--chip-seed", "7", "--n", "2"])
            .status
            .success()
    );

    // Random-bit impostor.
    let out = xorpuf(&[
        "authenticate",
        "--db",
        &db,
        "--chip-seed",
        "7",
        "--impostor",
    ]);
    assert!(!out.status.success(), "impostor approved");
    assert!(String::from_utf8_lossy(&out.stdout).contains("DENIED"));

    // A different die (different chip seed) under the same identity.
    let out = xorpuf(&["authenticate", "--db", &db, "--chip-seed", "8"]);
    assert!(!out.status.success(), "foreign die approved");

    let _ = std::fs::remove_file(&path);
}

#[test]
fn select_prints_requested_count() {
    let (path, db) = temp_db("select");
    assert!(
        xorpuf(&["enroll", "--db", &db, "--chip-seed", "3", "--n", "2"])
            .status
            .success()
    );
    let out = xorpuf(&["select", "--db", &db, "--count", "5"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Header plus five rows.
    assert_eq!(stdout.lines().count(), 6, "{stdout}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn keygen_is_deterministic_per_seed() {
    let (path, db) = temp_db("keygen");
    assert!(
        xorpuf(&["enroll", "--db", &db, "--chip-seed", "5", "--n", "2"])
            .status
            .success()
    );
    let a = xorpuf(&[
        "keygen",
        "--db",
        &db,
        "--chip-seed",
        "5",
        "--bits",
        "64",
        "--seed",
        "11",
    ]);
    let b = xorpuf(&[
        "keygen",
        "--db",
        &db,
        "--chip-seed",
        "5",
        "--bits",
        "64",
        "--seed",
        "11",
    ]);
    assert!(a.status.success() && b.status.success());
    assert_eq!(
        a.stdout, b.stdout,
        "keygen should be deterministic for a fixed seed"
    );
    assert!(String::from_utf8_lossy(&a.stdout).contains("64-bit key:"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn malformed_invocations_fail_cleanly() {
    let out = xorpuf(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = xorpuf(&["inspect"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--db"));

    let out = xorpuf(&["authenticate", "--db", "/nonexistent/nope.xpuf"]);
    assert!(!out.status.success());
}

#[test]
fn unknown_flags_are_rejected_per_command() {
    // Flags only valid for other commands are rejected too: --impostor
    // belongs to authenticate, not inspect.
    for args in [
        &["inspect", "--db", "x.xpuf", "--impostor"][..],
        &["authenticate", "--db", "x.xpuf", "--frobnicate", "1"][..],
        &["enroll", "--db", "x.xpuf", "--bits", "64"][..],
    ] {
        let out = xorpuf(args);
        assert!(!out.status.success(), "accepted {args:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("unknown flag"), "{args:?}: {stderr}");
        assert!(stderr.contains("usage:"), "{args:?}: {stderr}");
    }
}

#[test]
fn authenticate_with_telemetry_prints_report() {
    let (path, db) = temp_db("telemetry");
    assert!(
        xorpuf(&["enroll", "--db", &db, "--chip-seed", "7", "--n", "2"])
            .status
            .success()
    );

    let out = xorpuf(&[
        "authenticate",
        "--db",
        &db,
        "--chip-seed",
        "7",
        "--telemetry",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("APPROVED"), "{stdout}");
    // The report lists the protocol counters and the chip-eval latency
    // histogram fed by the responder's one-shot evaluations.
    for needle in [
        "protocol.auth.attempts",
        "protocol.auth.accepts",
        "protocol.select.yield",
    ] {
        assert!(stdout.contains(needle), "missing {needle} in:\n{stdout}");
    }
    let eval_row = stdout
        .lines()
        .find(|l| l.starts_with("core.eval "))
        .unwrap_or_else(|| panic!("no core.eval row in:\n{stdout}"));
    assert!(eval_row.contains("histogram"), "{eval_row}");
    assert!(eval_row.contains("p95="), "{eval_row}");

    // Without the flag, stdout stays clean of metrics.
    let out = xorpuf(&["authenticate", "--db", &db, "--chip-seed", "7"]);
    assert!(out.status.success());
    assert!(!String::from_utf8_lossy(&out.stdout).contains("protocol.auth"));

    let _ = std::fs::remove_file(&path);
}

#[test]
fn telemetry_jsonl_sink_appends_records() {
    let (path, db) = temp_db("telemetry-jsonl");
    let sink = std::env::temp_dir().join(format!("xorpuf-test-tel-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&sink);
    let sink_arg = format!("--telemetry={}", sink.to_str().expect("utf-8 temp path"));
    assert!(
        xorpuf(&["enroll", "--db", &db, "--chip-seed", "7", "--n", "2"])
            .status
            .success()
    );

    let out = xorpuf(&["authenticate", "--db", &db, "--chip-seed", "7", &sink_arg]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // With a sink path the report goes to the file, not stdout.
    assert!(!String::from_utf8_lossy(&out.stdout).contains("protocol.auth.attempts"));
    let first = std::fs::read_to_string(&sink).expect("sink written");
    assert!(
        first.contains("\"name\":\"protocol.auth.attempts\",\"kind\":\"counter\",\"value\":1"),
        "{first}"
    );
    assert!(
        first.contains("\"name\":\"core.eval\",\"kind\":\"histogram\""),
        "{first}"
    );

    // A second run appends instead of truncating.
    assert!(
        xorpuf(&["authenticate", "--db", &db, "--chip-seed", "7", &sink_arg])
            .status
            .success()
    );
    let second = std::fs::read_to_string(&sink).expect("sink written");
    assert_eq!(
        second.lines().count(),
        2 * first.lines().count(),
        "append, not truncate"
    );

    let _ = std::fs::remove_file(&sink);
    let _ = std::fs::remove_file(&path);
}
