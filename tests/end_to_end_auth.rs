//! End-to-end protocol pipeline: fabricate → enroll → blow fuses →
//! register → authenticate, across identities, impostors and V/T corners.

use rand::rngs::StdRng;
use rand::SeedableRng;
use xorpuf::core::Condition;
use xorpuf::protocol::auth::{AuthPolicy, ChipResponder, RandomResponder};
use xorpuf::protocol::enrollment::{enroll, EnrollmentConfig};
use xorpuf::protocol::server::Server;
use xorpuf::protocol::ProtocolError;
use xorpuf::silicon::{ChipConfig, ChipLot, SiliconError};

fn small_all_conditions(n: usize) -> EnrollmentConfig {
    EnrollmentConfig {
        validation_conditions: Condition::paper_grid(),
        ..EnrollmentConfig::small(n)
    }
}

#[test]
fn full_pipeline_genuine_chip_authenticates() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut lot = ChipLot::fabricate(2, &ChipConfig::small(), 10);
    let mut server = Server::new();
    for chip in lot.chips() {
        let record = enroll(chip, &EnrollmentConfig::small(2), &mut rng).unwrap();
        server.register(record);
    }
    for chip in lot.chips_mut() {
        chip.blow_fuses();
    }
    for chip in lot.chips() {
        let mut client = ChipResponder::new(chip, 2, Condition::NOMINAL, 77);
        let outcome = server
            .authenticate(
                chip.id(),
                &mut client,
                24,
                AuthPolicy::ZeroHammingDistance,
                &mut rng,
            )
            .unwrap();
        assert!(outcome.approved, "chip {} denied: {outcome}", chip.id());
        assert_eq!(outcome.mismatches, 0);
    }
}

#[test]
fn swapped_chip_is_denied() {
    let mut rng = StdRng::seed_from_u64(2);
    let lot = ChipLot::fabricate(2, &ChipConfig::small(), 20);
    let mut server = Server::new();
    for chip in lot.chips() {
        server.register(enroll(chip, &EnrollmentConfig::small(2), &mut rng).unwrap());
    }
    // Present chip 1 under chip 0's identity.
    let mut impostor = ChipResponder::new(&lot.chips()[1], 2, Condition::NOMINAL, 3);
    let outcome = server
        .authenticate(
            0,
            &mut impostor,
            24,
            AuthPolicy::ZeroHammingDistance,
            &mut rng,
        )
        .unwrap();
    assert!(!outcome.approved, "foreign die accepted: {outcome}");
    // Distinct dies disagree on roughly half the responses.
    let frac = outcome.hamming_fraction();
    assert!(
        frac > 0.2 && frac < 0.8,
        "implausible inter-chip mismatch fraction {frac}"
    );
}

#[test]
fn random_impostor_is_denied() {
    let mut rng = StdRng::seed_from_u64(3);
    let lot = ChipLot::fabricate(1, &ChipConfig::small(), 30);
    let mut server = Server::new();
    server.register(enroll(&lot.chips()[0], &EnrollmentConfig::small(2), &mut rng).unwrap());
    let mut impostor = RandomResponder::new(4);
    let outcome = server
        .authenticate(
            0,
            &mut impostor,
            24,
            AuthPolicy::ZeroHammingDistance,
            &mut rng,
        )
        .unwrap();
    assert!(!outcome.approved);
}

#[test]
fn corner_authentication_with_all_condition_betas() {
    let mut rng = StdRng::seed_from_u64(4);
    let lot = ChipLot::fabricate(1, &ChipConfig::small(), 40);
    let chip = &lot.chips()[0];
    let record = enroll(chip, &small_all_conditions(2), &mut rng).unwrap();
    let mut server = Server::new();
    server.register(record);
    for cond in Condition::paper_grid() {
        let mut client = ChipResponder::new(chip, 2, cond, 5);
        let outcome = server
            .authenticate(
                0,
                &mut client,
                16,
                AuthPolicy::ZeroHammingDistance,
                &mut rng,
            )
            .unwrap();
        assert!(outcome.approved, "genuine chip denied at {cond}: {outcome}");
    }
}

#[test]
fn enrollment_after_deployment_is_impossible() {
    let mut rng = StdRng::seed_from_u64(5);
    let mut lot = ChipLot::fabricate(1, &ChipConfig::small(), 50);
    lot.chips_mut()[0].blow_fuses();
    let err = enroll(&lot.chips()[0], &EnrollmentConfig::small(2), &mut rng).unwrap_err();
    assert_eq!(err, ProtocolError::Silicon(SiliconError::FusesBlown));
}

#[test]
fn unknown_identity_is_an_error_not_a_denial() {
    let mut rng = StdRng::seed_from_u64(6);
    let lot = ChipLot::fabricate(1, &ChipConfig::small(), 60);
    let mut server = Server::new();
    server.register(enroll(&lot.chips()[0], &EnrollmentConfig::small(2), &mut rng).unwrap());
    let mut client = ChipResponder::new(&lot.chips()[0], 2, Condition::NOMINAL, 7);
    let err = server
        .authenticate(
            42,
            &mut client,
            8,
            AuthPolicy::ZeroHammingDistance,
            &mut rng,
        )
        .unwrap_err();
    assert!(matches!(err, ProtocolError::UnknownChip { chip_id: 42 }));
}

#[test]
fn relaxed_policy_tolerates_bounded_mismatches() {
    let mut rng = StdRng::seed_from_u64(7);
    let lot = ChipLot::fabricate(1, &ChipConfig::small(), 70);
    let chip = &lot.chips()[0];
    let mut server = Server::new();
    server.register(enroll(chip, &EnrollmentConfig::small(2), &mut rng).unwrap());

    // A client that flips exactly the first response.
    struct OneFlip<'a>(ChipResponder<'a>);
    impl xorpuf::protocol::Responder for OneFlip<'_> {
        fn respond(&mut self, challenges: &[xorpuf::core::Challenge]) -> Vec<bool> {
            let mut bits = self.0.respond(challenges);
            bits[0] = !bits[0];
            bits
        }
    }
    let mut flipper = OneFlip(ChipResponder::new(chip, 2, Condition::NOMINAL, 8));
    let strict = server
        .authenticate(
            0,
            &mut flipper,
            16,
            AuthPolicy::ZeroHammingDistance,
            &mut rng,
        )
        .unwrap();
    assert!(!strict.approved, "zero-HD accepted a flipped bit");
    let mut flipper = OneFlip(ChipResponder::new(chip, 2, Condition::NOMINAL, 8));
    let relaxed = server
        .authenticate(
            0,
            &mut flipper,
            16,
            AuthPolicy::MaxHammingFraction(0.1),
            &mut rng,
        )
        .unwrap();
    assert!(relaxed.approved, "relaxed policy rejected 1/16 mismatch");
}
