//! Statistical calibration checks: the simulated silicon reproduces the
//! paper's headline statistics at reduced scale.

use rand::rngs::StdRng;
use rand::SeedableRng;
use xorpuf::analysis::stability::{fit_exponential_base, StabilityPoint};
use xorpuf::analysis::uniqueness::{uniformity, uniqueness};
use xorpuf::core::challenge::random_challenges;
use xorpuf::core::noise::PAPER_STABLE_FRACTION;
use xorpuf::core::Condition;
use xorpuf::silicon::testbench::xor_stable_mask;
use xorpuf::silicon::{Chip, ChipConfig, ChipLot};

/// A paper-geometry chip (32 stages, 100k-eval noise) for calibration runs.
fn paper_chip(seed: u64) -> (Chip, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let chip = Chip::fabricate(0, &ChipConfig::paper_default(), &mut rng);
    (chip, rng)
}

#[test]
fn single_puf_stable_fraction_matches_fig2() {
    // The noise σ is calibrated against the *population* delta distribution
    // Δ ~ N(0, 1) (marginalised over process variation), but any individual
    // arbiter's delta std is its weight norm — chi-distributed with ≈ 12 %
    // die-to-die spread, which moves a single PUF's stable fraction by far
    // more than the tolerance below (the seed-1 bank spans norms 0.77–1.22).
    // Fig. 2 likewise aggregates measurements across PUF instances, so this
    // test averages the whole 12-arbiter bank rather than one instance.
    let (chip, mut rng) = paper_chip(1);
    let per_puf = 2_000;
    let mut stable0 = 0usize;
    let mut stable1 = 0usize;
    for puf in 0..chip.bank_size() {
        let challenges = random_challenges(chip.stages(), per_puf, &mut rng);
        for c in &challenges {
            let s = chip
                .measure_individual_soft(puf, c, Condition::NOMINAL, 100_000, &mut rng)
                .unwrap();
            if s.is_stable_zero() {
                stable0 += 1;
            } else if s.is_stable_one() {
                stable1 += 1;
            }
        }
    }
    let total = (chip.bank_size() * per_puf) as f64;
    let stable = (stable0 + stable1) as f64 / total;
    assert!(
        (stable - PAPER_STABLE_FRACTION).abs() < 0.03,
        "stable fraction {stable} vs calibration target {PAPER_STABLE_FRACTION}"
    );
    // Both polarities carry substantial mass (paper: 39.7 % / 40.1 %); an
    // individual die's arbiter-bias weight skews the split a little.
    assert!(stable0 as f64 / total > 0.2, "stable-0 mass too low");
    assert!(stable1 as f64 / total > 0.2, "stable-1 mass too low");
}

#[test]
fn xor_stability_decays_exponentially_like_fig3() {
    let (chip, mut rng) = paper_chip(2);
    let challenges = random_challenges(chip.stages(), 6_000, &mut rng);
    let mut points = Vec::new();
    for n in [1usize, 2, 4, 6, 8, 10] {
        let mask =
            xor_stable_mask(&chip, n, &challenges, Condition::NOMINAL, 100_000, &mut rng).unwrap();
        let frac = mask.iter().filter(|&&b| b).count() as f64 / mask.len() as f64;
        points.push(StabilityPoint { n, fraction: frac });
    }
    let base = fit_exponential_base(&points);
    assert!(
        (base - 0.8).abs() < 0.04,
        "decay base {base} should be near the paper's 0.800"
    );
    // n = 10 lands near the paper's 10.9 %.
    let at10 = points.last().unwrap().fraction;
    assert!(
        (at10 - 0.109).abs() < 0.05,
        "stable fraction at n=10: {at10}"
    );
}

#[test]
fn lot_uniqueness_and_uniformity_are_silicon_like() {
    let lot = ChipLot::fabricate(6, &ChipConfig::paper_default(), 33);
    let mut rng = StdRng::seed_from_u64(34);
    let challenges = random_challenges(lot.chips()[0].stages(), 1_500, &mut rng);
    let responses: Vec<Vec<bool>> = lot
        .iter()
        .map(|chip| {
            challenges
                .iter()
                .map(|c| chip.xor_reference_bit(4, c, Condition::NOMINAL).unwrap())
                .collect()
        })
        .collect();
    let uq = uniqueness(&responses);
    assert!((uq - 0.5).abs() < 0.05, "uniqueness {uq}");
    for r in &responses {
        let uf = uniformity(r);
        assert!((uf - 0.5).abs() < 0.1, "uniformity {uf}");
    }
}

#[test]
fn noise_increases_away_from_nominal() {
    let (chip, _) = paper_chip(3);
    let nominal = chip.noise_at(Condition::NOMINAL).sigma();
    for cond in Condition::paper_grid() {
        let sigma = chip.noise_at(cond).sigma();
        // Lower supply and higher temperature each push σ up; only corners
        // where neither effect is favourable are guaranteed ≥ nominal.
        if cond.vdd <= 0.9 && cond.temp_c >= 25.0 {
            assert!(
                sigma >= nominal * 0.999,
                "σ at {cond} = {sigma} should not be below nominal {nominal}"
            );
        }
    }
    assert!(chip.noise_at(Condition::new(0.8, 60.0)).sigma() > nominal * 1.2);
}

#[test]
fn corner_flips_happen_but_are_rare() {
    let (chip, mut rng) = paper_chip(4);
    let corner = Condition::new(0.8, 60.0);
    let challenges = random_challenges(chip.stages(), 5_000, &mut rng);
    let mut flips = 0;
    for c in &challenges {
        let a = chip.ground_truth_soft(0, c, Condition::NOMINAL).unwrap() >= 0.5;
        let b = chip.ground_truth_soft(0, c, corner).unwrap() >= 0.5;
        if a != b {
            flips += 1;
        }
    }
    let rate = flips as f64 / challenges.len() as f64;
    assert!(rate > 0.005, "corner flip rate implausibly low: {rate}");
    assert!(rate < 0.15, "corner flip rate implausibly high: {rate}");
}

#[test]
fn counter_scale_invariance_of_stability() {
    // A challenge that is stable with 100k evaluations is (almost always)
    // stable with 1k evaluations, but not vice versa: stability is
    // monotone in the evaluation count in expectation.
    let (chip, mut rng) = paper_chip(5);
    let challenges = random_challenges(chip.stages(), 5_000, &mut rng);
    let mut stable_1k = 0usize;
    let mut stable_100k = 0usize;
    for c in &challenges {
        if chip
            .measure_individual_soft(0, c, Condition::NOMINAL, 1_000, &mut rng)
            .unwrap()
            .is_stable()
        {
            stable_1k += 1;
        }
        if chip
            .measure_individual_soft(0, c, Condition::NOMINAL, 100_000, &mut rng)
            .unwrap()
            .is_stable()
        {
            stable_100k += 1;
        }
    }
    assert!(
        stable_1k > stable_100k,
        "more evaluations should expose more instability: {stable_1k} vs {stable_100k}"
    );
}
