//! Cross-crate bit-identity gates for the bit-sliced evaluation engine:
//! every SIMD lane's packed responses must equal the batched reference
//! (`response_batch`) and the scalar per-challenge path, bit for bit,
//! under randomly drawn weights and ragged (non-multiple-of-64) batch
//! sizes. These run from the workspace root so they exercise the public
//! `xorpuf::core` surface exactly as downstream crates see it.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use xorpuf::core::bitslice::{self, Lane, PackedBits};
use xorpuf::core::{ArbiterPuf, Challenge, FeatureMatrix, XorPuf};

/// A seeded PUF + challenge pool: `rows` deliberately ranges over ragged
/// tails (never a multiple of 64 unless the case picks one).
fn seeded_batch(seed: u64, n: usize, stages: usize, rows: usize) -> (XorPuf, FeatureMatrix) {
    let mut rng = StdRng::seed_from_u64(seed);
    let xor = XorPuf::random(n, stages, &mut rng);
    let cs: Vec<Challenge> = (0..rows)
        .map(|_| Challenge::random(stages, &mut rng))
        .collect();
    let fm = FeatureMatrix::from_challenges(&cs).expect("feature matrix");
    (xor, fm)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Packed XOR responses equal the batched boolean reference on every
    /// available lane, including the ragged final block.
    #[test]
    fn packed_xor_matches_response_batch(
        seed in any::<u64>(),
        n in 1usize..=10,
        stages in 1usize..=96,
        rows in 1usize..=3 * bitslice::WORD_ROWS + 17,
    ) {
        let (xor, fm) = seeded_batch(seed, n, stages, rows);
        let reference = PackedBits::from_bools(&xor.response_batch(&fm));
        for &lane in bitslice::available_lanes() {
            let packed = bitslice::xor_response_packed_with(&xor, &fm, lane);
            prop_assert_eq!(&packed, &reference, "lane {:?}", lane);
        }
        prop_assert_eq!(&xor.response_batch_packed(&fm), &reference);
    }

    /// Single-arbiter packed responses and bit-sliced deltas are
    /// bit-identical to the scalar path on every lane.
    #[test]
    fn packed_arbiter_and_deltas_match_scalar(
        seed in any::<u64>(),
        stages in 1usize..=64,
        rows in 1usize..=2 * bitslice::WORD_ROWS + 9,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let puf = ArbiterPuf::random(stages, &mut rng);
        let cs: Vec<Challenge> = (0..rows)
            .map(|_| Challenge::random(stages, &mut rng))
            .collect();
        let fm = FeatureMatrix::from_challenges(&cs).expect("feature matrix");
        let mut deltas = vec![0.0f64; rows];
        for &lane in bitslice::available_lanes() {
            let packed = bitslice::arbiter_response_packed_with(&puf, &fm, lane);
            bitslice::deltas_into_with(&fm, puf.weights(), lane, &mut deltas);
            for (i, c) in cs.iter().enumerate() {
                prop_assert_eq!(packed.get(i), puf.response(c), "lane {:?} row {}", lane, i);
                prop_assert_eq!(
                    deltas[i].to_bits(),
                    puf.delay_difference(c).to_bits(),
                    "lane {:?} delta row {}",
                    lane,
                    i
                );
            }
        }
    }

    /// The fleet entry point returns exactly the per-PUF packed
    /// responses, for mixed widths, on every lane.
    #[test]
    fn fleet_packed_matches_per_puf(
        seed in any::<u64>(),
        stages in 1usize..=48,
        rows in 1usize..=2 * bitslice::WORD_ROWS + 31,
        chips in 1usize..=5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let fleet: Vec<XorPuf> = (0..chips)
            .map(|i| XorPuf::random(1 + (i % 3) * 2, stages, &mut rng))
            .collect();
        let refs: Vec<&XorPuf> = fleet.iter().collect();
        let cs: Vec<Challenge> = (0..rows)
            .map(|_| Challenge::random(stages, &mut rng))
            .collect();
        let fm = FeatureMatrix::from_challenges(&cs).expect("feature matrix");
        for &lane in bitslice::available_lanes() {
            let many = bitslice::xor_response_packed_many_with(&refs, &fm, lane);
            prop_assert_eq!(many.len(), fleet.len());
            for (p, xor) in fleet.iter().enumerate() {
                let single = bitslice::xor_response_packed_with(xor, &fm, lane);
                prop_assert_eq!(&many[p], &single, "lane {:?} puf {}", lane, p);
            }
        }
    }
}

/// A fixed-seed smoke case pinning the widest lane to the portable lane
/// directly (proptest shrinks can mask a lane-specific break if the
/// reference itself ran on the same lane).
#[test]
fn widest_lane_equals_portable_lane_exactly() {
    let (xor, fm) = seeded_batch(0xB17_511CE, 10, 64, 5 * bitslice::WORD_ROWS + 63);
    let portable = bitslice::xor_response_packed_with(&xor, &fm, Lane::Portable);
    let widest = bitslice::xor_response_packed_with(&xor, &fm, bitslice::active_lane());
    assert_eq!(portable, widest);
    assert_eq!(portable.len(), fm.len());
}
