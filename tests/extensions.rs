//! Integration tests of the extension subsystems: persistence, salvage,
//! key generation, lockdown, bifurcation and feed-forward PUFs, each
//! exercised across crate boundaries.

use rand::rngs::StdRng;
use rand::SeedableRng;
use xorpuf::core::challenge::random_challenges;
use xorpuf::core::{Condition, FeedForwardPuf};
use xorpuf::protocol::auth::{AuthPolicy, ChipResponder, Responder};
use xorpuf::protocol::bifurcation::{
    attacker_view, device_respond, server_verify, BifurcationConfig,
};
use xorpuf::protocol::enrollment::{enroll, EnrollmentConfig};
use xorpuf::protocol::keygen::{enroll_key, reconstruct_key, KeyGenConfig};
use xorpuf::protocol::salvage::{recommended_tolerance, salvage_select, SalvageConfig};
use xorpuf::protocol::server::Server;
use xorpuf::protocol::storage::{decode_server, encode_server};
use xorpuf::silicon::{Chip, ChipConfig};

#[test]
fn persisted_server_still_authenticates() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut chip = Chip::fabricate(0, &ChipConfig::small(), &mut rng);
    let record = enroll(&chip, &EnrollmentConfig::small(2), &mut rng).unwrap();
    chip.blow_fuses();

    let mut server = Server::new();
    server.register(record);
    let bytes = encode_server(&server);
    drop(server); // the only live copy is now the bytes

    let restored = decode_server(&bytes).unwrap();
    let mut client = ChipResponder::new(&chip, 2, Condition::NOMINAL, 2);
    let outcome = restored
        .authenticate(
            0,
            &mut client,
            24,
            AuthPolicy::ZeroHammingDistance,
            &mut rng,
        )
        .unwrap();
    assert!(outcome.approved, "restored server denied the genuine chip");
}

#[test]
fn salvage_authentication_with_relaxed_policy() {
    // Full salvage flow: select by XOR soft response on the deployed chip,
    // authenticate with the recommended relaxed tolerance.
    let mut rng = StdRng::seed_from_u64(2);
    let mut chip = Chip::fabricate(0, &ChipConfig::small(), &mut rng);
    chip.blow_fuses();
    let n = 3;
    let pool = random_challenges(chip.stages(), 1_500, &mut rng);
    let report = salvage_select(
        &chip,
        n,
        &pool,
        Condition::NOMINAL,
        &SalvageConfig::tight(),
        &mut rng,
    )
    .unwrap();
    assert!(report.selected.len() >= 64, "not enough salvaged CRPs");

    let rounds = 64;
    let tolerance = recommended_tolerance(&report, rounds, 5.0).max(2.5 / rounds as f64);
    let mut client = ChipResponder::new(&chip, n, Condition::NOMINAL, 3);
    let challenges: Vec<_> = report.selected[..rounds]
        .iter()
        .map(|s| s.challenge)
        .collect();
    let responses = client.respond(&challenges);
    let mismatches = report.selected[..rounds]
        .iter()
        .zip(&responses)
        .filter(|(s, &r)| s.expected != r)
        .count();
    let policy = AuthPolicy::MaxHammingFraction(tolerance);
    assert!(
        policy.accepts(rounds, mismatches),
        "genuine chip failed salvage authentication: {mismatches}/{rounds} vs tolerance {tolerance}"
    );
}

#[test]
fn key_round_trip_through_full_stack() {
    let mut rng = StdRng::seed_from_u64(3);
    let mut chip = Chip::fabricate(0, &ChipConfig::small(), &mut rng);
    let record = enroll(&chip, &EnrollmentConfig::small(2), &mut rng).unwrap();
    let mut server = Server::new();
    server.register(record);
    let config = KeyGenConfig::new(64, 3);
    let selected = server
        .select_challenges(0, config.response_bits(), 5_000_000, &mut rng)
        .unwrap();
    let (key, helper) = enroll_key(&selected, config, &mut rng).unwrap();
    chip.blow_fuses();

    let mut client = ChipResponder::new(&chip, 2, Condition::NOMINAL, 4);
    let responses = client.respond(&helper.challenges);
    assert_eq!(reconstruct_key(&responses, &helper).unwrap(), key);
}

#[test]
fn bifurcation_discriminates_and_leaks_noisy_labels() {
    let mut rng = StdRng::seed_from_u64(4);
    let chip = Chip::fabricate(0, &ChipConfig::small(), &mut rng);
    let record = enroll(&chip, &EnrollmentConfig::small(2), &mut rng).unwrap();
    let config = BifurcationConfig::new(2);
    let challenges = random_challenges(chip.stages(), 2_000, &mut rng);
    let returned =
        device_respond(&chip, 2, &challenges, Condition::NOMINAL, config, &mut rng).unwrap();
    let genuine_score = server_verify(&record, &challenges, &returned, config);
    use rand::Rng;
    let fake: Vec<bool> = (0..1_000).map(|_| rng.gen()).collect();
    let fake_score = server_verify(&record, &challenges, &fake, config);
    assert!(genuine_score > fake_score + 0.03);

    // The leaked view's labels are substantially noisy.
    let view = attacker_view(&challenges, &returned, config, &mut rng);
    let mut wrong = 0usize;
    for (c, label) in view.iter() {
        let truth = chip.xor_reference_bit(2, c, Condition::NOMINAL).unwrap();
        if truth != label {
            wrong += 1;
        }
    }
    let rate = wrong as f64 / view.len() as f64;
    assert!(
        rate > 0.15,
        "bifurcation leaked clean labels: error rate {rate}"
    );
}

#[test]
fn feedforward_resists_the_linear_attack_that_breaks_arbiter() {
    use xorpuf::ml::logreg::{LogisticConfig, LogisticRegression};
    let mut rng = StdRng::seed_from_u64(5);
    let linear_puf = xorpuf::core::ArbiterPuf::random(16, &mut rng);
    let ff_puf = FeedForwardPuf::random(16, 3, 12, &mut rng).unwrap();
    let train = random_challenges(16, 4_000, &mut rng);
    let test = random_challenges(16, 1_500, &mut rng);

    let attack = |responses_train: Vec<bool>, responses_test: Vec<bool>| {
        let (model, _) = LogisticRegression::fit_challenges(
            &train,
            &responses_train,
            &LogisticConfig::default(),
        );
        model.accuracy(&test, &responses_test)
    };
    let linear_acc = attack(
        train.iter().map(|c| linear_puf.response(c)).collect(),
        test.iter().map(|c| linear_puf.response(c)).collect(),
    );
    let ff_acc = attack(
        train.iter().map(|c| ff_puf.response(c)).collect(),
        test.iter().map(|c| ff_puf.response(c)).collect(),
    );
    assert!(linear_acc > 0.95, "linear PUF should fall: {linear_acc}");
    assert!(
        ff_acc < linear_acc - 0.05,
        "feed-forward should resist the linear attack: {ff_acc} vs {linear_acc}"
    );
}

#[test]
fn aged_chip_fails_nominal_enrollment_margins_eventually() {
    let mut rng = StdRng::seed_from_u64(6);
    let mut chip = Chip::fabricate(0, &ChipConfig::small(), &mut rng);
    let record = enroll(&chip, &EnrollmentConfig::small(2), &mut rng).unwrap();
    let mut server = Server::new();
    server.register(record);

    // Fresh chip authenticates.
    let outcome = {
        let mut client = ChipResponder::new(&chip, 2, Condition::NOMINAL, 7);
        server
            .authenticate(
                0,
                &mut client,
                32,
                AuthPolicy::ZeroHammingDistance,
                &mut rng,
            )
            .unwrap()
    };
    assert!(outcome.approved);

    // An absurdly aged chip accumulates mismatches against the same record.
    chip.set_age(1e7); // ~1,100 years of drift — guaranteed failure regime
    let mut client = ChipResponder::new(&chip, 2, Condition::NOMINAL, 8);
    let outcome = server
        .authenticate(
            0,
            &mut client,
            64,
            AuthPolicy::ZeroHammingDistance,
            &mut rng,
        )
        .unwrap();
    assert!(
        outcome.mismatches > 0,
        "extreme aging produced no mismatches at all"
    );
}
