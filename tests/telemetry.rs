//! Integration tests of the telemetry substrate through the `xorpuf`
//! re-export: metrics aggregate across threads, a disabled registry records
//! nothing, and the JSONL export round-trips by hand parsing — no JSON
//! library involved, matching the crate's zero-dependency constraint.

use xorpuf::telemetry::{Registry, Span};

/// Hand-extracts the value of `"key":` from a one-line JSON object, up to
/// the next `,` or `}` — sufficient for the flat numeric fields the
/// exporter emits.
fn json_field<'a>(line: &'a str, key: &str) -> &'a str {
    let tag = format!("\"{key}\":");
    let start = line
        .find(&tag)
        .unwrap_or_else(|| panic!("no {key} in {line}"))
        + tag.len();
    let rest = &line[start..];
    if rest.starts_with('[') {
        let end = rest.find(']').expect("unterminated array");
        return &rest[..=end];
    }
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    &rest[..end]
}

#[test]
fn metrics_aggregate_across_threads() {
    let registry = Registry::new(true);
    let counter = registry.counter("test.threads.events");
    let hist = registry.histogram("test.threads.latency");
    let gauge = registry.gauge("test.threads.gauge");
    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(|| {
                for i in 1..=1_000u64 {
                    counter.inc();
                    hist.record(i);
                    gauge.add(1.0);
                }
            });
        }
    });
    assert_eq!(counter.get(), 8_000);
    let snap = hist.snapshot();
    assert_eq!(snap.count, 8_000);
    assert_eq!(snap.min, 1);
    assert_eq!(snap.max, 1_000);
    assert_eq!(snap.sum, 8 * (1_000 * 1_001) / 2);
    assert!((gauge.get() - 8_000.0).abs() < 1e-9, "CAS add lost updates");
}

#[test]
fn spans_record_into_their_histogram_across_threads() {
    let registry = Registry::new(true);
    let hist = registry.histogram("test.threads.span");
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                for _ in 0..50 {
                    let span = Span::enter(hist);
                    std::hint::black_box(2u64.wrapping_mul(3));
                    drop(span);
                }
            });
        }
    });
    let snap = hist.snapshot();
    assert_eq!(snap.count, 200);
    assert!(snap.min > 0, "span elapsed time should be at least 1ns");
}

#[test]
fn disabled_registry_records_nothing() {
    let registry = Registry::new(false);
    let counter = registry.counter("test.off.count");
    let gauge = registry.gauge("test.off.gauge");
    let hist = registry.histogram("test.off.hist");
    let trace = registry.trace("test.off.trace");
    counter.inc();
    counter.add(41);
    gauge.set(2.5);
    gauge.add(1.0);
    hist.record(1_234);
    trace.push(0.5);
    {
        let span = Span::enter(hist);
        assert!(
            !span.is_armed(),
            "span should not arm on a disabled registry"
        );
    }
    assert_eq!(counter.get(), 0);
    assert_eq!(gauge.get(), 0.0);
    assert_eq!(hist.snapshot().count, 0);
    assert_eq!(trace.snapshot().total, 0);

    // Flipping the switch re-arms the very same handles.
    registry.set_enabled(true);
    counter.inc();
    hist.record(7);
    assert_eq!(counter.get(), 1);
    assert_eq!(hist.snapshot().count, 1);
}

#[test]
fn jsonl_round_trips_by_hand_parsing() {
    let registry = Registry::new(true);
    registry.counter("test.jsonl.count").add(42);
    registry.gauge("test.jsonl.yield").set(0.125);
    let hist = registry.histogram("test.jsonl.lat");
    for v in [100, 200, 400] {
        hist.record(v);
    }
    let trace = registry.trace("test.jsonl.loss");
    trace.push(1.5);
    trace.push(0.5);

    let jsonl = registry.render_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), 4, "one object per metric:\n{jsonl}");
    for line in &lines {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "not an object: {line}"
        );
    }
    let find = |name: &str| {
        *lines
            .iter()
            .find(|l| l.contains(&format!("\"name\":\"{name}\"")))
            .unwrap_or_else(|| panic!("no {name} line in:\n{jsonl}"))
    };

    let counter_line = find("test.jsonl.count");
    assert_eq!(json_field(counter_line, "kind"), "\"counter\"");
    assert_eq!(
        json_field(counter_line, "value").parse::<u64>().unwrap(),
        42
    );

    let gauge_line = find("test.jsonl.yield");
    assert_eq!(json_field(gauge_line, "kind"), "\"gauge\"");
    let yield_value: f64 = json_field(gauge_line, "value").parse().unwrap();
    assert!((yield_value - 0.125).abs() < 1e-12);

    let hist_line = find("test.jsonl.lat");
    assert_eq!(json_field(hist_line, "kind"), "\"histogram\"");
    assert_eq!(json_field(hist_line, "count").parse::<u64>().unwrap(), 3);
    assert_eq!(json_field(hist_line, "sum_ns").parse::<u64>().unwrap(), 700);
    assert_eq!(json_field(hist_line, "min_ns").parse::<u64>().unwrap(), 100);
    assert_eq!(json_field(hist_line, "max_ns").parse::<u64>().unwrap(), 400);
    let p50: u64 = json_field(hist_line, "p50_ns").parse().unwrap();
    assert!(
        (100..=400).contains(&p50),
        "p50 {p50} outside recorded range"
    );

    let trace_line = find("test.jsonl.loss");
    assert_eq!(json_field(trace_line, "kind"), "\"trace\"");
    assert_eq!(json_field(trace_line, "total").parse::<u64>().unwrap(), 2);
    let values = json_field(trace_line, "values");
    assert_eq!(values, "[1.5,0.5]");
}

#[test]
fn global_registry_macros_and_runtime_switch() {
    // The only test touching process-global state, so no cross-test races.
    let was = xorpuf::telemetry::enabled();
    xorpuf::telemetry::set_enabled(true);
    xorpuf::telemetry::counter!("test.global.events").add(5);
    {
        let _span = xorpuf::telemetry::span!("test.global.span");
    }
    let table = xorpuf::telemetry::registry().render_table();
    assert!(table.contains("test.global.events"), "{table}");
    assert!(table.contains("test.global.span"), "{table}");
    assert_eq!(xorpuf::telemetry::counter!("test.global.events").get(), 5);
    xorpuf::telemetry::set_enabled(was);
}
