//! The proposed model-assisted selection against the baselines it replaces.

use rand::rngs::StdRng;
use rand::SeedableRng;
use xorpuf::core::Condition;
use xorpuf::protocol::baselines::{classic_enroll, flip_labels, select_by_measurement};
use xorpuf::protocol::enrollment::{enroll, EnrollmentConfig};
use xorpuf::protocol::server::Server;
use xorpuf::silicon::testbench::collect_xor_crps;
use xorpuf::silicon::{Chip, ChipConfig};

fn chip_and_rng(seed: u64) -> (Chip, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let chip = Chip::fabricate(0, &ChipConfig::small(), &mut rng);
    (chip, rng)
}

#[test]
fn both_selection_schemes_agree_with_reference_bits() {
    let (chip, mut rng) = chip_and_rng(1);
    let n = 2;
    let evals = 20_000;

    let (measured_picks, _) =
        select_by_measurement(&chip, n, 30, &[Condition::NOMINAL], evals, 50_000, &mut rng)
            .unwrap();

    let record = enroll(&chip, &EnrollmentConfig::small(n), &mut rng).unwrap();
    let mut server = Server::new();
    server.register(record);
    let model_picks = server.select_challenges(0, 30, 500_000, &mut rng).unwrap();

    for p in measured_picks.iter().chain(&model_picks) {
        let want = chip
            .xor_reference_bit(n, &p.challenge, Condition::NOMINAL)
            .unwrap();
        assert_eq!(p.expected, want, "selected CRP disagrees with reference");
    }
}

#[test]
fn measurement_cost_grows_with_xor_width() {
    let (chip, mut rng) = chip_and_rng(2);
    let evals = 20_000;
    let (_, cost_n1) = select_by_measurement(
        &chip,
        1,
        20,
        &[Condition::NOMINAL],
        evals,
        100_000,
        &mut rng,
    )
    .unwrap();
    let (_, cost_n4) = select_by_measurement(
        &chip,
        4,
        20,
        &[Condition::NOMINAL],
        evals,
        100_000,
        &mut rng,
    )
    .unwrap();
    assert!(
        cost_n4.measurements_per_selected() > cost_n1.measurements_per_selected() * 1.5,
        "wide XOR should cost much more per selected CRP: {} vs {}",
        cost_n4.measurements_per_selected(),
        cost_n1.measurements_per_selected()
    );
}

#[test]
fn model_selection_needs_no_new_measurements() {
    // After enrollment the server can mint arbitrarily many challenges with
    // zero chip access — demonstrated by selecting from a server holding
    // only the enrollment record, chip long deployed.
    let (mut chip, mut rng) = chip_and_rng(3);
    let record = enroll(&chip, &EnrollmentConfig::small(2), &mut rng).unwrap();
    chip.blow_fuses(); // chip is gone from the lab
    let mut server = Server::new();
    server.register(record);
    let picks_a = server.select_challenges(0, 50, 500_000, &mut rng).unwrap();
    let picks_b = server.select_challenges(0, 50, 500_000, &mut rng).unwrap();
    assert_eq!(picks_a.len(), 50);
    assert_eq!(picks_b.len(), 50);
}

#[test]
fn classic_enrollment_contains_unstable_crps() {
    // Without screening, some stored CRPs sit on the noise boundary; a
    // genuine chip then mismatches occasionally, which is why classic
    // protocols need relaxed Hamming policies.
    let (chip, mut rng) = chip_and_rng(4);
    let n = 3;
    let picks = classic_enroll(&chip, n, 400, Condition::NOMINAL, 2_000, &mut rng).unwrap();
    let mut mismatches = 0;
    for p in &picks {
        // One-shot response, as in authentication.
        let bit = chip
            .eval_xor_once(n, &p.challenge, Condition::NOMINAL, &mut rng)
            .unwrap();
        if bit != p.expected {
            mismatches += 1;
        }
    }
    assert!(
        mismatches > 0,
        "classic enrollment should produce some unstable CRPs over 400 draws"
    );
    // ... but far fewer than half (the majority bit is still informative).
    assert!(mismatches < 120, "too many mismatches: {mismatches}");
}

#[test]
fn label_flipping_degrades_attack_training_data() {
    use xorpuf::ml::logreg::{LogisticConfig, LogisticRegression};
    let (chip, mut rng) = chip_and_rng(5);
    let pool: Vec<_> = (0..4_000)
        .map(|_| xorpuf::core::Challenge::random(chip.stages(), &mut rng))
        .collect();
    let crps = collect_xor_crps(&chip, 1, &pool, Condition::NOMINAL, &mut rng).unwrap();
    let (train, test) = crps.split_at_fraction(0.8);

    let (clean_model, _) = LogisticRegression::fit_challenges(
        train.challenges(),
        train.responses(),
        &LogisticConfig::default(),
    );
    let noisy = flip_labels(&train, 0.4, &mut rng);
    let (noisy_model, _) = LogisticRegression::fit_challenges(
        noisy.challenges(),
        noisy.responses(),
        &LogisticConfig::default(),
    );
    let clean_acc = clean_model.accuracy(test.challenges(), test.responses());
    let noisy_acc = noisy_model.accuracy(test.challenges(), test.responses());
    assert!(
        noisy_acc < clean_acc,
        "40% label noise should hurt the attacker: {noisy_acc} vs {clean_acc}"
    );
}
