//! Modeling-attack behaviour across crates: single PUFs fall to logistic
//! regression, attack accuracy grows with CRP budget and shrinks with XOR
//! width, and unstable CRPs poison training (the paper's §2.3
//! observations), all at test scale.

use rand::rngs::StdRng;
use rand::SeedableRng;
use xorpuf::core::challenge::random_challenges;
use xorpuf::core::Condition;
use xorpuf::ml::features::{design_matrix, encode_bits};
use xorpuf::ml::logreg::{LogisticConfig, LogisticRegression};
use xorpuf::ml::{Mlp, MlpConfig};
use xorpuf::silicon::testbench::{collect_stable_xor_crps, collect_xor_crps};
use xorpuf::silicon::{Chip, ChipConfig};

fn test_chip(seed: u64) -> (Chip, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    // 16 stages keeps training cheap in debug builds.
    let chip = Chip::fabricate(0, &ChipConfig::small(), &mut rng);
    (chip, rng)
}

fn tiny_mlp_config() -> MlpConfig {
    MlpConfig {
        hidden: vec![16, 8],
        alpha: 1e-4,
        max_iterations: 150,
        tolerance: 1e-6,
        workers: 0,
    }
}

fn mlp_attack_accuracy(chip: &Chip, n: usize, train_budget: usize, rng: &mut StdRng) -> f64 {
    let pool = random_challenges(chip.stages(), train_budget + 2_000, rng);
    let (train_pool, test_pool) = pool.split_at(train_budget);
    let evals = 1_000;
    let train =
        collect_stable_xor_crps(chip, n, train_pool, Condition::NOMINAL, evals, rng).unwrap();
    let test = collect_stable_xor_crps(chip, n, test_pool, Condition::NOMINAL, evals, rng).unwrap();
    let config = tiny_mlp_config();
    let x = design_matrix(train.challenges());
    let y = encode_bits(train.responses());
    let mut mlp = Mlp::new(x.cols(), &config, rng);
    mlp.train(&x, &y, &config);
    let predictions = mlp.predict(&design_matrix(test.challenges()));
    xorpuf::ml::accuracy(&predictions, test.responses())
}

#[test]
fn logistic_regression_breaks_single_puf() {
    let (chip, mut rng) = test_chip(1);
    let pool = random_challenges(chip.stages(), 3_000, &mut rng);
    let crps = collect_xor_crps(&chip, 1, &pool, Condition::NOMINAL, &mut rng).unwrap();
    let (train, test) = crps.split_at_fraction(0.8);
    let (model, _) = LogisticRegression::fit_challenges(
        train.challenges(),
        train.responses(),
        &LogisticConfig::default(),
    );
    let acc = model.accuracy(test.challenges(), test.responses());
    assert!(acc > 0.9, "single-PUF logistic attack accuracy only {acc}");
}

#[test]
fn mlp_attack_accuracy_grows_with_training_budget() {
    let (chip, mut rng) = test_chip(2);
    let small = mlp_attack_accuracy(&chip, 2, 600, &mut rng);
    let large = mlp_attack_accuracy(&chip, 2, 8_000, &mut rng);
    assert!(
        large > small + 0.05 || large > 0.95,
        "no benefit from more CRPs: {small} → {large}"
    );
    assert!(
        large > 0.85,
        "2-XOR attack should succeed with 8k CRPs: {large}"
    );
}

#[test]
fn wider_xor_resists_the_same_budget() {
    let (chip, mut rng) = test_chip(3);
    let narrow = mlp_attack_accuracy(&chip, 1, 4_000, &mut rng);
    let wide = mlp_attack_accuracy(&chip, 4, 4_000, &mut rng);
    assert!(narrow > 0.9, "1-XOR should be easy: {narrow}");
    assert!(
        wide < narrow - 0.1,
        "4-XOR should resist the budget that breaks 1-XOR: {wide} vs {narrow}"
    );
}

#[test]
fn unstable_crps_poison_training() {
    // The paper trains on stable CRPs only because "unstable XOR PUF CRPs
    // have the tendency to mislead the model training". Compare models
    // trained on stable-only vs one-shot (noisy) CRPs of the same size,
    // evaluated on the same stable test set.
    let (chip, mut rng) = test_chip(4);
    let n = 2;
    let evals = 1_000;
    let pool = random_challenges(chip.stages(), 14_000, &mut rng);
    let (train_pool, test_pool) = pool.split_at(12_000);

    let stable_train =
        collect_stable_xor_crps(&chip, n, train_pool, Condition::NOMINAL, evals, &mut rng).unwrap();
    let size = stable_train.len().min(5_000);
    let stable_train = stable_train.truncated(size);
    let noisy_train =
        collect_xor_crps(&chip, n, &train_pool[..size], Condition::NOMINAL, &mut rng).unwrap();
    let test =
        collect_stable_xor_crps(&chip, n, test_pool, Condition::NOMINAL, evals, &mut rng).unwrap();

    let config = tiny_mlp_config();
    let mut accs = Vec::new();
    for train in [&stable_train, &noisy_train] {
        let x = design_matrix(train.challenges());
        let y = encode_bits(train.responses());
        let mut mlp = Mlp::new(x.cols(), &config, &mut rng);
        mlp.train(&x, &y, &config);
        let predictions = mlp.predict(&design_matrix(test.challenges()));
        accs.push(xorpuf::ml::accuracy(&predictions, test.responses()));
    }
    assert!(
        accs[0] >= accs[1] - 0.02,
        "stable-only training should not be worse: stable {} vs noisy {}",
        accs[0],
        accs[1]
    );
}

#[test]
fn trained_clone_transfers_to_fresh_challenges() {
    // The attack model must generalise, not memorise: evaluate on
    // challenges disjoint from training by construction.
    let (chip, mut rng) = test_chip(5);
    let acc = mlp_attack_accuracy(&chip, 1, 4_000, &mut rng);
    assert!(acc > 0.9, "clone failed to generalise: {acc}");
}
