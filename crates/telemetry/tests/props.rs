//! Property tests for the telemetry substrate: histogram quantile accuracy
//! against a sorted reference, and trace ring-buffer behaviour under
//! arbitrary span/instant workloads that overflow the ring.

use proptest::prelude::*;
use puf_telemetry::{Histogram, TraceEventKind, Tracer};

/// The histogram bins 4 sub-buckets per power of two, so any reported
/// quantile must sit within 12.5 % (one sub-bucket) of the true order
/// statistic, clamped to the observed range.
fn check_quantile(sorted: &[u64], snap: &puf_telemetry::HistogramSnapshot, q: f64) {
    let n = sorted.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    let exact = sorted[rank - 1];
    let got = snap.quantile(q);
    // Bucket resolution: the reported midpoint is within the bucket that
    // holds the exact order statistic, so it deviates by at most 12.5 %
    // of the value (plus 1 for the integer buckets below 4).
    let tolerance = (exact as f64) * 0.125 + 1.0;
    assert!(
        (got as f64 - exact as f64).abs() <= tolerance,
        "q={q}: got {got}, exact {exact} (n={n})"
    );
    assert!(
        got >= snap.min && got <= snap.max,
        "clamped to observed range"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// p50/p95/p99 stay within one sub-bucket of the sorted-reference
    /// order statistic for arbitrary value distributions spanning the
    /// whole bucket table (1 ns … minutes).
    #[test]
    fn histogram_percentiles_match_sorted_reference(
        samples in proptest::collection::vec(1u64..120_000_000_000, 1..400),
    ) {
        let h = Histogram::standalone();
        for &v in &samples {
            h.record(v);
        }
        let mut values = samples;
        values.sort_unstable();
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.min, values[0]);
        prop_assert_eq!(snap.max, *values.last().unwrap());
        for q in [0.50, 0.95, 0.99] {
            check_quantile(&values, &snap, q);
        }
    }

    /// The trace ring never exceeds its capacity, never loses anything
    /// below capacity, evicts exactly the oldest events once full, and
    /// keeps begin/end pushes balanced across wraps (every armed guard
    /// closes its span even after its Begin was evicted).
    #[test]
    fn trace_ring_overflow_evicts_oldest_and_stays_balanced(
        capacity in 4usize..64,
        ops in proptest::collection::vec(0u8..3, 1..300),
    ) {
        let t = Tracer::new_private();
        t.set_lane_capacity(capacity);
        t.set_enabled(true);

        // Replay the op stream: 0 = instant, 1 = open span, 2 = close the
        // most recent open span. Every span left open closes at the end
        // (guards drop in LIFO order).
        let mut open = Vec::new();
        let mut pushed = 0u64;
        let mut begins = 0u64;
        let mut ends = 0u64;
        for &op in &ops {
            match op {
                0 => {
                    t.instant("test.props.mark");
                    pushed += 1;
                }
                1 => {
                    open.push(t.span("test.props.span"));
                    pushed += 1;
                    begins += 1;
                }
                _ => {
                    if open.pop().is_some() {
                        pushed += 1;
                        ends += 1;
                    }
                }
            }
        }
        let open_count = open.len() as u64;
        drop(open);
        pushed += open_count;
        ends += open_count;
        prop_assert_eq!(begins, ends, "every Begin push has an End push");

        let events = t.snapshot_events();
        // Bounded: never more than capacity retained, nothing lost below it.
        prop_assert!(events.len() <= capacity);
        prop_assert_eq!(events.len() as u64, pushed.min(capacity as u64));
        prop_assert_eq!(t.evicted(), pushed.saturating_sub(capacity as u64),
            "eviction count is exactly the overflow");
        // Oldest-first eviction: the retained ticks are the final window
        // of the push sequence, in order.
        let ticks: Vec<u64> = events.iter().map(|e| e.tick).collect();
        let expect: Vec<u64> = (pushed.saturating_sub(capacity as u64)..pushed).collect();
        prop_assert_eq!(ticks, expect);
        // After a wrap the retained stream may open with orphaned Ends,
        // but scanning with a stack never goes negative *after* skipping
        // the truncated prefix, and unmatched Ends never exceed what
        // eviction can explain.
        let mut depth = 0i64;
        let mut orphans = 0i64;
        for e in &events {
            match e.kind {
                TraceEventKind::Begin => depth += 1,
                TraceEventKind::End => {
                    if depth == 0 {
                        orphans += 1;
                    } else {
                        depth -= 1;
                    }
                }
                TraceEventKind::Instant => {}
            }
        }
        prop_assert!(
            orphans <= t.evicted() as i64,
            "orphaned Ends ({orphans}) need evicted Begins ({})", t.evicted()
        );
        // And the folded exporter digests any such stream without panicking.
        let _ = puf_telemetry::trace_export::folded_stacks(
            &events,
            puf_telemetry::TraceClock::Tick,
        );
    }

    /// Tick-mode exports are byte-identical when the same op stream is
    /// replayed after a reset — the deterministic-trace gate.
    #[test]
    fn tick_mode_exports_are_replay_stable(
        ops in proptest::collection::vec(0u8..3, 1..100),
    ) {
        let t = Tracer::new_private();
        t.set_enabled(true);
        let run = |t: &Tracer| {
            let mut open = Vec::new();
            for &op in &ops {
                match op {
                    0 => t.instant("test.props.mark"),
                    1 => open.push(t.span("test.props.span")),
                    _ => drop(open.pop()),
                }
            }
            drop(open);
            let events = t.snapshot_events();
            (
                puf_telemetry::trace_export::chrome_trace_json(
                    &events,
                    puf_telemetry::TraceClock::Tick,
                ),
                puf_telemetry::trace_export::folded_stacks(
                    &events,
                    puf_telemetry::TraceClock::Tick,
                ),
            )
        };
        let first = run(&t);
        t.reset();
        let second = run(&t);
        prop_assert_eq!(first, second);
    }
}
