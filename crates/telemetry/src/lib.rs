//! # puf-telemetry
//!
//! Zero-dependency observability substrate for the XOR PUF CRP pipeline:
//! the paper's headline quantity is *throughput* (10¹² challenge-response
//! measurements, 100,000 repeats per soft response), and this crate is how
//! the workspace observes how fast every stage actually runs.
//!
//! ## Pieces
//!
//! - [`Counter`] / [`Gauge`] — lock-free atomic scalars.
//! - [`Histogram`] — log-bucketed latency histogram (4 sub-buckets per
//!   power of two, ≤ 12.5 % relative quantile error) with p50/p95/p99.
//! - [`Span`] — RAII timer recording into a histogram on drop.
//! - [`Trace`] — bounded per-step value series (optimizer loss curves).
//! - [`Registry`] — hierarchical dotted names (`core.eval`,
//!   `ml.train.lbfgs`, `protocol.auth.attempts`) mapping to leaked
//!   `&'static` metric handles; one process-global instance plus
//!   instantiable private registries for tests.
//! - [`export`] — a human-readable table and JSON-lines for `results/`.
//! - [`progress::Progress`] — throughput/ETA reporter for long sweeps.
//! - [`Tracer`] — structured trace events (span begin/end + instants) in
//!   bounded per-thread ring buffers, with logical-tick or wall-clock
//!   timestamps; [`trace_export`] renders a drained trace as Chrome
//!   trace-event JSON or folded-stack flamegraph text.
//!
//! ## Cost model
//!
//! Every record operation first consults its registry's enable switch (one
//! relaxed atomic load and a branch — low single-digit nanoseconds); the
//! `off` cargo feature compiles even that out. The switch defaults to
//! **off** and is turned on by `PUF_TELEMETRY=1` in the environment, the
//! `xorpuf --telemetry` flag, or [`set_enabled`]. Instrumented hot paths
//! therefore cost nothing observable in production unless asked to measure.
//!
//! ```
//! puf_telemetry::set_enabled(true);
//! puf_telemetry::counter!("protocol.auth.attempts").inc();
//! {
//!     let _span = puf_telemetry::span!("core.eval");
//!     // ... timed work ...
//! }
//! let report = puf_telemetry::registry().render_table();
//! assert!(report.contains("protocol.auth.attempts"));
//! puf_telemetry::set_enabled(false);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod export;
pub mod histogram;
pub mod metric;
pub mod progress;
pub mod registry;
pub mod span;
pub mod trace_export;
pub mod tracer;

pub use histogram::{Histogram, HistogramSnapshot};
pub use metric::{Counter, Gauge, Trace, TraceSnapshot};
pub use progress::Progress;
pub use registry::{MetricSnapshot, Registry, ValueSnapshot};
pub use span::Span;
pub use tracer::{tracer, TraceClock, TraceEvent, TraceEventKind, TraceSpan, Tracer};

use std::sync::atomic::AtomicBool;
use std::sync::OnceLock;

/// The switch handed to metrics created outside any registry.
static ALWAYS_ON: AtomicBool = AtomicBool::new(true);

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-global registry. Created on first use; initially enabled iff
/// the `PUF_TELEMETRY` environment variable is set to something other than
/// `0`, `false` or the empty string.
pub fn registry() -> &'static Registry {
    GLOBAL.get_or_init(|| Registry::new(env_truthy("PUF_TELEMETRY")))
}

/// Whether `var` is set to a truthy value (anything but ``/`0`/`false`/`off`).
pub(crate) fn env_truthy(var: &str) -> bool {
    match std::env::var(var) {
        Ok(v) => !matches!(v.as_str(), "" | "0" | "false" | "off"),
        Err(_) => false,
    }
}

/// Turns the global registry's recording on or off at runtime.
pub fn set_enabled(on: bool) {
    registry().set_enabled(on);
}

/// Whether the global registry is currently recording.
pub fn enabled() -> bool {
    registry().enabled()
}

/// A cached [`Counter`] handle in the global registry.
///
/// Expands to one `OnceLock` lookup per call site; after the first call the
/// cost is a pointer load plus the enable check inside the operation.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<&'static $crate::Counter> = ::std::sync::OnceLock::new();
        *CELL.get_or_init(|| $crate::registry().counter($name))
    }};
}

/// A cached [`Gauge`] handle in the global registry (see [`counter!`]).
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<&'static $crate::Gauge> = ::std::sync::OnceLock::new();
        *CELL.get_or_init(|| $crate::registry().gauge($name))
    }};
}

/// A cached [`Histogram`] handle in the global registry (see [`counter!`]).
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *CELL.get_or_init(|| $crate::registry().histogram($name))
    }};
}

/// A cached [`Trace`] handle in the global registry (see [`counter!`]).
#[macro_export]
macro_rules! trace {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<&'static $crate::Trace> = ::std::sync::OnceLock::new();
        *CELL.get_or_init(|| $crate::registry().trace($name))
    }};
}

/// An RAII [`Span`] recording into the named global histogram when dropped.
///
/// ```
/// let _span = puf_telemetry::span!("protocol.enroll.duration");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::enter($crate::histogram!($name))
    };
}

/// An RAII trace span on the global [`Tracer`]: records a `Begin` event
/// now and the matching `End` when the guard drops. One relaxed atomic
/// load when tracing is disabled.
///
/// ```
/// let _t = puf_telemetry::trace_span!("core.eval.demo");
/// ```
#[macro_export]
macro_rules! trace_span {
    ($name:expr) => {
        $crate::tracer().span($name)
    };
}

/// Records an instant trace event on the global [`Tracer`] (a no-op when
/// tracing is disabled).
///
/// ```
/// puf_telemetry::trace_instant!("protocol.session.retry");
/// ```
#[macro_export]
macro_rules! trace_instant {
    ($name:expr) => {
        $crate::tracer().instant($name)
    };
}

#[cfg(test)]
pub(crate) mod test_support {
    //! The global registry and its enable switch are process-wide, so tests
    //! that touch them serialize on this lock.
    use std::sync::{Mutex, MutexGuard, PoisonError};

    static LOCK: Mutex<()> = Mutex::new(());

    pub fn global_lock() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macros_register_in_global_registry() {
        let _guard = test_support::global_lock();
        let was = enabled();
        set_enabled(true);
        counter!("test.lib.macro_counter").add(3);
        gauge!("test.lib.macro_gauge").set(1.5);
        histogram!("test.lib.macro_hist").record(100);
        trace!("test.lib.macro_trace").push(0.25);
        drop(span!("test.lib.macro_span"));
        let table = registry().render_table();
        for name in [
            "test.lib.macro_counter",
            "test.lib.macro_gauge",
            "test.lib.macro_hist",
            "test.lib.macro_trace",
            "test.lib.macro_span",
        ] {
            assert!(table.contains(name), "missing {name} in:\n{table}");
        }
        assert_eq!(counter!("test.lib.macro_counter").get(), 3);
        set_enabled(was);
    }

    #[test]
    fn macro_handles_are_cached_per_name() {
        let _guard = test_support::global_lock();
        let a = counter!("test.lib.cached") as *const Counter;
        let b = registry().counter("test.lib.cached") as *const Counter;
        assert_eq!(a, b);
    }
}
