//! Exporters: a human-readable table for terminals and JSON lines for
//! `results/` archival. Both are hand-rolled — this crate has no
//! dependencies, serde included.

use crate::registry::{MetricSnapshot, ValueSnapshot};
use std::fmt::Write as _;

/// Formats a nanosecond quantity with a human unit (`1.234µs`, `56.700ms`).
///
/// The unit is chosen *after* 3-decimal rounding: `999_999_999` ns renders
/// as `1.000s`, never the nonsensical `1000.000ms` a naive `< 1e9` cut
/// would produce.
pub fn humanize_ns(ns: u64) -> String {
    let v = ns as f64;
    if ns < 1_000 {
        format!("{ns}ns")
    } else if v < 999.9995e3 {
        format!("{:.3}µs", v / 1e3)
    } else if v < 999.9995e6 {
        format!("{:.3}ms", v / 1e6)
    } else {
        format!("{:.3}s", v / 1e9)
    }
}

/// Renders snapshots as an aligned text table:
///
/// ```text
/// name                        kind       value
/// core.eval                   histogram  n=1200 mean=1.2µs p50=1.1µs p95=2.0µs p99=3.1µs max=9.9µs
/// protocol.auth.attempts      counter    42
/// ```
pub fn render_table(snapshots: &[MetricSnapshot]) -> String {
    let mut rows: Vec<(String, &'static str, String)> = Vec::with_capacity(snapshots.len());
    for snap in snapshots {
        let (kind, value) = match &snap.value {
            ValueSnapshot::Counter(v) => ("counter", v.to_string()),
            ValueSnapshot::Gauge(v) => ("gauge", format!("{v:.6}")),
            ValueSnapshot::Histogram(h) => (
                "histogram",
                if h.count == 0 {
                    "n=0".to_owned()
                } else {
                    format!(
                        "n={} mean={} p50={} p95={} p99={} max={}",
                        h.count,
                        humanize_ns(h.mean() as u64),
                        humanize_ns(h.p50()),
                        humanize_ns(h.p95()),
                        humanize_ns(h.p99()),
                        humanize_ns(h.max),
                    )
                },
            ),
            ValueSnapshot::Trace(t) => (
                "trace",
                match t.last() {
                    None => "n=0".to_owned(),
                    Some(last) => format!("n={} last={last:.6} stride={}", t.total, t.stride),
                },
            ),
        };
        rows.push((snap.name.clone(), kind, value));
    }
    let name_width = rows
        .iter()
        .map(|(n, _, _)| n.len())
        .chain(["name".len()])
        .max()
        .unwrap_or(4);
    let mut out = String::new();
    let _ = writeln!(out, "{:<name_width$}  {:<9}  value", "name", "kind");
    for (name, kind, value) in rows {
        let _ = writeln!(out, "{name:<name_width$}  {kind:<9}  {value}");
    }
    out
}

/// Escapes a string for a JSON string literal (quotes not included).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON value (`null` for non-finite values, which
/// JSON cannot represent).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Renders snapshots as JSON lines: one self-contained object per metric,
/// suitable for appending to a `results/*.jsonl` file.
///
/// Shapes:
///
/// ```text
/// {"name":"...","kind":"counter","value":42}
/// {"name":"...","kind":"gauge","value":1.5}
/// {"name":"...","kind":"histogram","count":9,"sum_ns":…,"min_ns":…,"max_ns":…,"mean_ns":…,"p50_ns":…,"p95_ns":…,"p99_ns":…}
/// {"name":"...","kind":"trace","total":20,"stride":1,"values":[…]}
/// ```
pub fn render_jsonl(snapshots: &[MetricSnapshot]) -> String {
    let mut out = String::new();
    for snap in snapshots {
        let name = json_escape(&snap.name);
        match &snap.value {
            ValueSnapshot::Counter(v) => {
                let _ = writeln!(
                    out,
                    "{{\"name\":\"{name}\",\"kind\":\"counter\",\"value\":{v}}}"
                );
            }
            ValueSnapshot::Gauge(v) => {
                let _ = writeln!(
                    out,
                    "{{\"name\":\"{name}\",\"kind\":\"gauge\",\"value\":{}}}",
                    json_f64(*v)
                );
            }
            ValueSnapshot::Histogram(h) => {
                let _ = writeln!(
                    out,
                    "{{\"name\":\"{name}\",\"kind\":\"histogram\",\"count\":{},\"sum_ns\":{},\"min_ns\":{},\"max_ns\":{},\"mean_ns\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{}}}",
                    h.count,
                    h.sum,
                    h.min,
                    h.max,
                    json_f64(h.mean()),
                    h.p50(),
                    h.p95(),
                    h.p99(),
                );
            }
            ValueSnapshot::Trace(t) => {
                let values: Vec<String> = t.values.iter().map(|&v| json_f64(v)).collect();
                let _ = writeln!(
                    out,
                    "{{\"name\":\"{name}\",\"kind\":\"trace\",\"total\":{},\"stride\":{},\"values\":[{}]}}",
                    t.total,
                    t.stride,
                    values.join(",")
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new(true);
        r.counter("core.eval.count").add(12);
        r.gauge("bench.par.workers").set(8.0);
        r.histogram("core.eval").record(1_500);
        r.trace("ml.train.loss").push(0.75);
        r
    }

    #[test]
    fn humanize_ns_units() {
        assert_eq!(humanize_ns(999), "999ns");
        assert_eq!(humanize_ns(1_500), "1.500µs");
        assert_eq!(humanize_ns(2_500_000), "2.500ms");
        assert_eq!(humanize_ns(3_000_000_000), "3.000s");
    }

    #[test]
    fn humanize_ns_exact_boundaries() {
        assert_eq!(humanize_ns(0), "0ns");
        assert_eq!(humanize_ns(1), "1ns");
        assert_eq!(humanize_ns(1_000), "1.000µs");
        assert_eq!(humanize_ns(1_000_000), "1.000ms");
        assert_eq!(humanize_ns(1_000_000_000), "1.000s");
    }

    #[test]
    fn humanize_ns_promotes_units_on_rounding() {
        // One below the second boundary: the 3-decimal rounding must carry
        // into the next unit, never render "1000.000ms" (the pre-fix
        // behaviour). 999_999 ns is exactly representable as 999.999µs, so
        // the µs boundary has no carry for integer inputs.
        assert_eq!(humanize_ns(999_999), "999.999µs");
        assert_eq!(humanize_ns(999_999_999), "1.000s");
        // The largest values that still round *down* within their unit.
        assert_eq!(humanize_ns(999_999_499), "999.999ms");
        assert_eq!(humanize_ns(999_999_500), "1.000s");
        assert_eq!(humanize_ns(999_999_449_999), "999.999s");
        // And values comfortably inside each unit are untouched.
        assert_eq!(humanize_ns(999_499), "999.499µs");
    }

    #[test]
    fn humanize_ns_u64_max_is_finite_seconds() {
        let s = humanize_ns(u64::MAX);
        assert!(s.ends_with('s') && !s.ends_with("ms") && !s.ends_with("µs"));
        assert!(
            s.starts_with("18446744073."),
            "u64::MAX ns ≈ 584 years: {s}"
        );
    }

    #[test]
    fn empty_histogram_row_renders_n0() {
        let r = Registry::new(true);
        let _ = r.histogram("empty.hist");
        let table = r.render_table();
        let row = table
            .lines()
            .find(|l| l.starts_with("empty.hist"))
            .expect("row");
        assert!(row.contains("n=0"), "row: {row}");
        assert!(!row.contains("mean="), "no stats on an empty histogram");
        let jsonl = r.render_jsonl();
        assert!(
            jsonl.contains("\"count\":0,\"sum_ns\":0,\"min_ns\":0,\"max_ns\":0"),
            "empty histogram exports zeroed stats: {jsonl}"
        );
    }

    #[test]
    fn table_lists_every_metric_aligned() {
        let table = sample_registry().render_table();
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 5, "header + 4 metrics:\n{table}");
        assert!(lines[0].starts_with("name"));
        assert!(table.contains("core.eval.count"));
        assert!(table.contains("bench.par.workers"));
        assert!(table.contains("n=1 "), "histogram row in:\n{table}");
        assert!(table.contains("last=0.75"));
    }

    #[test]
    fn jsonl_has_one_valid_object_per_line() {
        let jsonl = sample_registry().render_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 4);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "line: {line}");
            assert!(line.contains("\"name\":\""));
        }
        assert!(jsonl.contains("\"kind\":\"counter\",\"value\":12"));
        assert!(jsonl.contains("\"kind\":\"histogram\",\"count\":1"));
        assert!(jsonl.contains("\"values\":[0.75]"));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn non_finite_gauge_exports_null() {
        let r = Registry::new(true);
        r.gauge("g.nan").set(f64::NAN);
        assert!(r.render_jsonl().contains("\"value\":null"));
    }
}
