//! Progress and throughput reporting for long sweeps (the fig02–fig12
//! experiment binaries and the parallel fan-out helper).
//!
//! A [`Progress`] counts completed work items. When the `PUF_PROGRESS`
//! environment variable is truthy it renders a throttled single-line status
//! to stderr (`\r`-rewritten, so it never pollutes piped stdout results);
//! either way, [`Progress::finish`] publishes the final throughput and item
//! count to the global registry as `<label>.rate` / `<label>.items`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Minimum delay between stderr redraws.
const REDRAW_EVERY: Duration = Duration::from_millis(200);

/// A concurrent work-item progress reporter.
///
/// ```
/// let p = puf_telemetry::Progress::start("bench.demo", 10);
/// for _ in 0..10 {
///     p.inc(1);
/// }
/// let (items, rate) = p.finish();
/// assert_eq!(items, 10);
/// assert!(rate >= 0.0);
/// ```
#[derive(Debug)]
pub struct Progress {
    label: String,
    total: u64,
    done: AtomicU64,
    started: Instant,
    last_redraw: Mutex<Instant>,
    live: bool,
}

impl Progress {
    /// Starts tracking `total` work items under `label` (a dotted metric
    /// prefix like `bench.fig02.shards`). Live stderr rendering is enabled
    /// iff `PUF_PROGRESS` is truthy.
    pub fn start(label: &str, total: u64) -> Self {
        let now = Instant::now();
        Self {
            label: label.to_owned(),
            total,
            done: AtomicU64::new(0),
            started: now,
            last_redraw: Mutex::new(now),
            live: crate::env_truthy("PUF_PROGRESS"),
        }
    }

    /// Records `n` completed items, redrawing the status line at most every
    /// 200 ms.
    pub fn inc(&self, n: u64) {
        let done = self.done.fetch_add(n, Ordering::Relaxed) + n;
        if !self.live {
            return;
        }
        let Ok(mut last) = self.last_redraw.try_lock() else {
            return; // another thread is redrawing
        };
        if last.elapsed() < REDRAW_EVERY && done < self.total {
            return;
        }
        *last = Instant::now();
        self.render(done, false);
    }

    /// Completed items so far.
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }

    /// Seconds elapsed since [`Progress::start`].
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    fn render(&self, done: u64, final_line: bool) {
        let elapsed = self.elapsed_secs();
        let rate = if elapsed > 0.0 {
            done as f64 / elapsed
        } else {
            0.0
        };
        let eta = if rate > 0.0 && done < self.total {
            format!(" eta {:.0}s", (self.total - done) as f64 / rate)
        } else {
            String::new()
        };
        let pct = if self.total > 0 {
            format!(" ({:.1}%)", 100.0 * done as f64 / self.total as f64)
        } else {
            String::new()
        };
        let end = if final_line { "\n" } else { "" };
        eprint!(
            "\r{} {done}/{}{pct} {rate:.1} items/s{eta}{end}",
            self.label, self.total
        );
    }

    /// Finishes the sweep: prints a final status line (when live) and
    /// publishes `<label>.items` (counter) and `<label>.rate` (gauge,
    /// items/s) to the global registry. Returns `(items_done, rate)`.
    pub fn finish(self) -> (u64, f64) {
        let done = self.done();
        let elapsed = self.elapsed_secs();
        let rate = if elapsed > 0.0 {
            done as f64 / elapsed
        } else {
            0.0
        };
        if self.live {
            self.render(done, true);
        }
        let registry = crate::registry();
        registry.counter(&format!("{}.items", self.label)).add(done);
        registry.gauge(&format!("{}.rate", self.label)).set(rate);
        (done, rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_rate_are_consistent() {
        let p = Progress::start("test.progress.basic", 4);
        p.inc(1);
        p.inc(3);
        assert_eq!(p.done(), 4);
        let (items, rate) = p.finish();
        assert_eq!(items, 4);
        assert!(rate > 0.0);
    }

    #[test]
    fn finish_publishes_to_global_registry() {
        let _guard = crate::test_support::global_lock();
        let was = crate::enabled();
        crate::set_enabled(true);
        let p = Progress::start("test.progress.publish", 2);
        p.inc(2);
        p.finish();
        let table = crate::registry().render_table();
        assert!(
            table.contains("test.progress.publish.items"),
            "in:\n{table}"
        );
        assert!(table.contains("test.progress.publish.rate"), "in:\n{table}");
        crate::set_enabled(was);
    }

    #[test]
    fn concurrent_incs_are_not_lost() {
        let p = std::sync::Arc::new(Progress::start("test.progress.mt", 4_000));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let p = p.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1_000 {
                    p.inc(1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(p.done(), 4_000);
    }
}
