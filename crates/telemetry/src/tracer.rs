//! Structured trace events: hierarchical span begin/end and instant
//! markers, recorded into bounded, preallocated per-thread ring buffers.
//!
//! Where [`crate::Span`] aggregates durations into a histogram (cheap,
//! lossy), a trace keeps the *individual* events in order, so a 40×
//! p99-vs-p50 latency gap or a mis-scheduled parallel lane can be
//! attributed to the exact phase that caused it. The exporters in
//! [`crate::trace_export`] turn a drained event list into Chrome
//! trace-event JSON (`chrome://tracing` / Perfetto) and folded-stack
//! flamegraph text.
//!
//! ## Event model
//!
//! Every event carries:
//!
//! - `name` — a `&'static str` in the same dotted-lowercase registry style
//!   as metric names (lint rule L5 checks call sites),
//! - `kind` — [`TraceEventKind::Begin`] / [`End`](TraceEventKind::End)
//!   bracket a span; [`Instant`](TraceEventKind::Instant) marks a point,
//! - `lane` — the recording thread's lane id (lanes are allocated in
//!   first-event order and never reused),
//! - `depth` — the span-nesting depth inside the lane at record time, so
//!   parent links can be reconstructed without storing pointers,
//! - `tick` — a process-wide monotone logical counter. Instrumented code
//!   in the result crates records *only* ticks, keeping it clean of
//!   wall-clock reads (lint rule L3),
//! - `wall_ns` — nanoseconds since the tracer's epoch, sampled inside this
//!   crate and only when the tracer is in [`TraceClock::Wall`] mode
//!   (bench/CLI layers opt in); `0` in [`TraceClock::Tick`] mode.
//!
//! ## Cost model
//!
//! A disabled tracer costs one relaxed atomic load per `span`/`instant`
//! call (and one `bool` check when the disarmed guard drops) — the same
//! contract as [`crate::Span`]. An enabled tracer appends to the calling
//! thread's preallocated ring under an uncontended per-lane mutex; when a
//! ring is full the oldest event is evicted (no reallocation, ever).
//!
//! ## Determinism
//!
//! In [`TraceClock::Tick`] mode a single-threaded run records a
//! byte-identical event stream on every execution: ticks restart at zero
//! after [`Tracer::reset`], no clock is read, and lane ids depend only on
//! first-event order. This is what lets the proptest gates compare whole
//! exports as strings.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Default per-lane ring capacity (events). ~40 bytes per event, so the
/// default lane costs ~2.5 MiB once its thread records a first event.
pub const DEFAULT_LANE_CAPACITY: usize = 65_536;

/// What a [`TraceEvent`] marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A span opened.
    Begin,
    /// A span closed.
    End,
    /// A point event with no duration.
    Instant,
}

/// Which timestamps events carry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceClock {
    /// Logical ticks only (`wall_ns` stays 0): deterministic, byte-identical
    /// exports across runs. The default.
    Tick,
    /// Ticks plus nanoseconds since the tracer's epoch, sampled inside the
    /// telemetry crate. For real latency attribution from bench/CLI layers.
    Wall,
}

/// One recorded event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceEvent {
    /// Dotted-lowercase event name (static: names are a fixed registry).
    pub name: &'static str,
    /// Begin / End / Instant.
    pub kind: TraceEventKind,
    /// Recording thread's lane id.
    pub lane: u32,
    /// Span-nesting depth within the lane when the event was recorded.
    pub depth: u16,
    /// Process-wide monotone logical tick.
    pub tick: u64,
    /// Nanoseconds since the tracer epoch (0 in [`TraceClock::Tick`] mode).
    pub wall_ns: u64,
}

/// Fixed-capacity event ring plus the lane's live nesting depth.
#[derive(Debug)]
struct LaneInner {
    /// Preallocated storage; never grows past capacity.
    buf: Vec<TraceEvent>,
    /// Index of the oldest retained event once the ring has wrapped.
    start: usize,
    /// Current span-nesting depth.
    depth: u16,
    /// Events evicted to make room (total pushes = retained + evicted).
    evicted: u64,
}

/// One thread's recording lane. Shared between the owning thread (pushes)
/// and drains/resets from any thread, hence the mutex — uncontended on the
/// hot path because only the owner pushes.
#[derive(Debug)]
struct Lane {
    id: u32,
    capacity: usize,
    inner: Mutex<LaneInner>,
}

impl Lane {
    fn new(id: u32, capacity: usize) -> Self {
        Lane {
            id,
            capacity: capacity.max(4),
            inner: Mutex::new(LaneInner {
                buf: Vec::with_capacity(capacity.max(4)),
                start: 0,
                depth: 0,
                evicted: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, LaneInner> {
        // A panic while holding the lane lock can only come from user code
        // unwinding through a guard drop; the ring itself stays coherent.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn push(&self, kind: TraceEventKind, name: &'static str, tick: u64, wall_ns: u64) {
        let mut inner = self.lock();
        let depth = match kind {
            TraceEventKind::Begin => {
                let d = inner.depth;
                inner.depth = inner.depth.saturating_add(1);
                d
            }
            TraceEventKind::End => {
                inner.depth = inner.depth.saturating_sub(1);
                inner.depth
            }
            TraceEventKind::Instant => inner.depth,
        };
        let event = TraceEvent {
            name,
            kind,
            lane: self.id,
            depth,
            tick,
            wall_ns,
        };
        if inner.buf.len() < self.capacity {
            inner.buf.push(event);
        } else {
            // Overwrite the oldest retained event in place: bounded memory,
            // zero reallocation after the ring first fills.
            let start = inner.start;
            inner.buf[start] = event;
            inner.start = (start + 1) % self.capacity;
            inner.evicted += 1;
        }
    }

    /// Retained events, oldest first.
    fn drain_ordered(&self) -> (Vec<TraceEvent>, u64) {
        let inner = self.lock();
        let mut out = Vec::with_capacity(inner.buf.len());
        out.extend_from_slice(&inner.buf[inner.start..]);
        out.extend_from_slice(&inner.buf[..inner.start]);
        (out, inner.evicted)
    }

    fn reset(&self) {
        let mut inner = self.lock();
        inner.buf.clear();
        inner.start = 0;
        inner.depth = 0;
        inner.evicted = 0;
    }
}

/// The trace-event collector: per-thread lanes, a shared tick counter and
/// the enable/clock switches.
///
/// One process-global instance lives behind [`crate::tracer`]; tests can
/// create private instances to avoid cross-test interference.
///
/// ```
/// let t = puf_telemetry::Tracer::new_private();
/// t.set_enabled(true);
/// {
///     let _outer = t.span("test.doc.outer");
///     let _inner = t.span("test.doc.inner");
///     t.instant("test.doc.mark");
/// }
/// let events = t.snapshot_events();
/// assert_eq!(events.len(), 5); // 2 begins, 1 instant, 2 ends
/// assert_eq!(events[1].depth, 1);
/// ```
#[derive(Debug)]
pub struct Tracer {
    /// Unique id keying this tracer's slot in each thread's lane cache.
    key: u64,
    enabled: AtomicBool,
    /// `true` ⇒ [`TraceClock::Wall`].
    wall_clock: AtomicBool,
    tick: AtomicU64,
    next_lane: AtomicU32,
    lane_capacity: AtomicUsize,
    lanes: Mutex<Vec<Arc<Lane>>>,
    epoch: Instant,
}

/// Monotone source of tracer keys (distinguishes private test tracers from
/// the global one inside the thread-local lane cache).
static NEXT_TRACER_KEY: AtomicU64 = AtomicU64::new(1);

static GLOBAL_TRACER: OnceLock<Tracer> = OnceLock::new();

/// The process-global tracer. Initially enabled iff `PUF_TRACE` is set to a
/// truthy value, in [`TraceClock::Tick`] mode.
pub fn tracer() -> &'static Tracer {
    GLOBAL_TRACER.get_or_init(|| {
        let t = Tracer::new_private();
        t.set_enabled(crate::env_truthy("PUF_TRACE"));
        t
    })
}

thread_local! {
    /// This thread's lane per tracer key. A plain Vec: processes hold one
    /// or two tracers (global + maybe a test instance), so a linear scan
    /// beats any map.
    static LANES: std::cell::RefCell<Vec<(u64, Arc<Lane>)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

impl Tracer {
    /// A fresh, disabled tracer in [`TraceClock::Tick`] mode with the
    /// default lane capacity. ("Private" as opposed to [`tracer`], the
    /// process-global instance.)
    pub fn new_private() -> Self {
        Tracer {
            key: NEXT_TRACER_KEY.fetch_add(1, Ordering::Relaxed),
            enabled: AtomicBool::new(false),
            wall_clock: AtomicBool::new(false),
            tick: AtomicU64::new(0),
            next_lane: AtomicU32::new(0),
            lane_capacity: AtomicUsize::new(DEFAULT_LANE_CAPACITY),
            lanes: Mutex::new(Vec::new()),
            epoch: Instant::now(),
        }
    }

    /// Turns recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether events are currently recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        if cfg!(feature = "off") {
            false
        } else {
            self.enabled.load(Ordering::Relaxed)
        }
    }

    /// Selects tick-only (deterministic) or wall-clock timestamps.
    pub fn set_clock(&self, clock: TraceClock) {
        self.wall_clock
            .store(clock == TraceClock::Wall, Ordering::Relaxed);
    }

    /// The current clock mode.
    pub fn clock(&self) -> TraceClock {
        if self.wall_clock.load(Ordering::Relaxed) {
            TraceClock::Wall
        } else {
            TraceClock::Tick
        }
    }

    /// Sets the ring capacity for lanes created *after* this call (already
    /// preallocated lanes keep their size).
    pub fn set_lane_capacity(&self, events: usize) {
        self.lane_capacity.store(events.max(4), Ordering::Relaxed);
    }

    fn lane(&self) -> Arc<Lane> {
        LANES.with(|cell| {
            let mut lanes = cell.borrow_mut();
            if let Some((_, lane)) = lanes.iter().find(|(key, _)| *key == self.key) {
                return Arc::clone(lane);
            }
            let lane = Arc::new(Lane::new(
                self.next_lane.fetch_add(1, Ordering::Relaxed),
                self.lane_capacity.load(Ordering::Relaxed),
            ));
            self.lanes
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(Arc::clone(&lane));
            lanes.push((self.key, Arc::clone(&lane)));
            lane
        })
    }

    #[inline]
    fn stamp(&self) -> (u64, u64) {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let wall_ns = if self.wall_clock.load(Ordering::Relaxed) {
            u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
        } else {
            0
        };
        (tick, wall_ns)
    }

    /// Records an instant event (a no-op when disabled).
    #[inline]
    pub fn instant(&self, name: &'static str) {
        if !self.enabled() {
            return;
        }
        let (tick, wall_ns) = self.stamp();
        self.lane()
            .push(TraceEventKind::Instant, name, tick, wall_ns);
    }

    /// Opens a span: records `Begin` now and `End` when the returned guard
    /// drops. Disabled tracers hand back a disarmed guard for the cost of
    /// one atomic load.
    #[inline]
    pub fn span(&self, name: &'static str) -> TraceSpan<'_> {
        if !self.enabled() {
            return TraceSpan { tracer: None, name };
        }
        let (tick, wall_ns) = self.stamp();
        self.lane().push(TraceEventKind::Begin, name, tick, wall_ns);
        TraceSpan {
            tracer: Some(self),
            name,
        }
    }

    /// All retained events across every lane, ordered by tick.
    pub fn snapshot_events(&self) -> Vec<TraceEvent> {
        let lanes = self.lanes.lock().unwrap_or_else(PoisonError::into_inner);
        let mut events = Vec::new();
        for lane in lanes.iter() {
            let (mut drained, _) = lane.drain_ordered();
            events.append(&mut drained);
        }
        events.sort_by_key(|e| (e.tick, e.lane));
        events
    }

    /// Total events evicted from full rings since the last reset — nonzero
    /// means the retained stream has a truncated prefix in some lanes.
    pub fn evicted(&self) -> u64 {
        let lanes = self.lanes.lock().unwrap_or_else(PoisonError::into_inner);
        lanes.iter().map(|lane| lane.drain_ordered().1).sum()
    }

    /// Clears every lane and restarts the tick counter at zero. Lane ids
    /// and preallocated rings survive, so a reset + identical workload
    /// reproduces an identical event stream in tick mode.
    pub fn reset(&self) {
        let lanes = self.lanes.lock().unwrap_or_else(PoisonError::into_inner);
        for lane in lanes.iter() {
            lane.reset();
        }
        self.tick.store(0, Ordering::Relaxed);
    }
}

/// RAII guard for a trace span: records `End` on drop (armed guards only).
#[derive(Debug)]
#[must_use = "a trace span records its End on drop; binding it to _ drops it immediately"]
pub struct TraceSpan<'a> {
    /// `None` when the tracer was disabled at entry.
    tracer: Option<&'a Tracer>,
    name: &'static str,
}

impl TraceSpan<'_> {
    /// Whether the span is recording (tracer was enabled at entry).
    pub fn is_armed(&self) -> bool {
        self.tracer.is_some()
    }
}

impl Drop for TraceSpan<'_> {
    #[inline]
    fn drop(&mut self) {
        // An armed span always closes, even if the tracer was disabled
        // mid-span: per-lane begin/end pushes stay balanced.
        if let Some(tracer) = self.tracer {
            let (tick, wall_ns) = tracer.stamp();
            tracer
                .lane()
                .push(TraceEventKind::End, self.name, tick, wall_ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new_private();
        t.instant("test.tracer.off");
        let span = t.span("test.tracer.off_span");
        assert!(!span.is_armed());
        drop(span);
        assert!(t.snapshot_events().is_empty());
    }

    #[test]
    fn events_carry_ticks_depth_and_kind() {
        let t = Tracer::new_private();
        t.set_enabled(true);
        {
            let _a = t.span("test.tracer.outer");
            t.instant("test.tracer.mark");
            let _b = t.span("test.tracer.inner");
        }
        let events = t.snapshot_events();
        let kinds: Vec<TraceEventKind> = events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            [
                TraceEventKind::Begin,
                TraceEventKind::Instant,
                TraceEventKind::Begin,
                TraceEventKind::End,
                TraceEventKind::End,
            ]
        );
        assert_eq!(
            events.iter().map(|e| e.tick).collect::<Vec<_>>(),
            [0, 1, 2, 3, 4],
            "ticks are consecutive from zero"
        );
        assert_eq!(events[0].depth, 0);
        assert_eq!(events[1].depth, 1);
        assert_eq!(events[2].depth, 1);
        assert_eq!(events[3].depth, 1, "End carries the depth of its Begin");
        assert_eq!(events[4].depth, 0);
        // Inner drops before outer: LIFO nesting.
        assert_eq!(events[3].name, "test.tracer.inner");
        assert_eq!(events[4].name, "test.tracer.outer");
        assert!(
            events.iter().all(|e| e.wall_ns == 0),
            "tick mode never reads the clock"
        );
    }

    #[test]
    fn wall_mode_stamps_nanoseconds() {
        let t = Tracer::new_private();
        t.set_enabled(true);
        t.set_clock(TraceClock::Wall);
        {
            let _s = t.span("test.tracer.walled");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let events = t.snapshot_events();
        assert_eq!(events.len(), 2);
        assert!(events[1].wall_ns > events[0].wall_ns);
        assert!(events[1].wall_ns - events[0].wall_ns >= 1_000_000);
    }

    #[test]
    fn ring_wraps_without_reallocating() {
        let t = Tracer::new_private();
        t.set_lane_capacity(8);
        t.set_enabled(true);
        for _ in 0..20 {
            t.instant("test.tracer.flood");
        }
        let events = t.snapshot_events();
        assert_eq!(events.len(), 8, "ring holds exactly its capacity");
        assert_eq!(t.evicted(), 12);
        // Oldest events went first: the retained ticks are the last 8.
        assert_eq!(
            events.iter().map(|e| e.tick).collect::<Vec<_>>(),
            (12..20).collect::<Vec<_>>()
        );
    }

    #[test]
    fn threads_get_distinct_lanes() {
        let t = Tracer::new_private();
        t.set_enabled(true);
        t.instant("test.tracer.main");
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    let _s = t.span("test.tracer.worker");
                });
            }
        });
        let events = t.snapshot_events();
        let mut lanes: Vec<u32> = events.iter().map(|e| e.lane).collect();
        lanes.sort_unstable();
        lanes.dedup();
        assert_eq!(lanes.len(), 4, "main + 3 workers");
        assert_eq!(events.len(), 1 + 3 * 2);
    }

    #[test]
    fn reset_restarts_ticks_for_identical_replay() {
        let t = Tracer::new_private();
        t.set_enabled(true);
        let run = |t: &Tracer| {
            let _a = t.span("test.tracer.replay");
            t.instant("test.tracer.point");
        };
        run(&t);
        let first = t.snapshot_events();
        t.reset();
        run(&t);
        let second = t.snapshot_events();
        assert_eq!(first, second, "tick mode replays are event-identical");
    }

    #[test]
    fn private_tracers_do_not_share_lanes() {
        let a = Tracer::new_private();
        let b = Tracer::new_private();
        a.set_enabled(true);
        b.set_enabled(true);
        a.instant("test.tracer.a");
        b.instant("test.tracer.b");
        assert_eq!(a.snapshot_events().len(), 1);
        assert_eq!(b.snapshot_events().len(), 1);
        assert_eq!(a.snapshot_events()[0].name, "test.tracer.a");
    }
}
