//! The metric registry: hierarchical dotted names mapping to leaked
//! `&'static` metric handles.
//!
//! A [`Registry`] owns one enable switch shared by every metric it creates;
//! flipping the switch turns all recording on or off at once. Handles are
//! `Box::leak`ed so hot paths can cache a `&'static` reference and skip the
//! name lookup entirely (see the `counter!`/`span!` macros in the crate
//! root). A registry therefore leaks a small, bounded amount of memory per
//! distinct metric name — by design: metric sets are static over a process
//! lifetime.

use crate::export;
use crate::metric::{Counter, Gauge, Trace, TraceSnapshot};
use crate::{Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

#[derive(Clone, Copy, Debug)]
enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
    Trace(&'static Trace),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
            Metric::Trace(_) => "trace",
        }
    }
}

/// A point-in-time copy of one metric's value.
#[derive(Clone, Debug, PartialEq)]
pub enum ValueSnapshot {
    /// A counter's value.
    Counter(u64),
    /// A gauge's value.
    Gauge(f64),
    /// A histogram's full state.
    Histogram(HistogramSnapshot),
    /// A trace's retained series.
    Trace(TraceSnapshot),
}

/// A named metric snapshot, as produced by [`Registry::snapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct MetricSnapshot {
    /// The metric's dotted name (`protocol.auth.attempts`).
    pub name: String,
    /// Its value at snapshot time.
    pub value: ValueSnapshot,
}

/// A collection of named metrics sharing one enable switch.
///
/// The process-global instance is [`crate::registry`]; tests create private
/// instances to avoid cross-test interference.
#[derive(Debug)]
pub struct Registry {
    switch: &'static AtomicBool,
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// Creates a registry, initially enabled or not.
    pub fn new(enabled: bool) -> Self {
        Self {
            switch: Box::leak(Box::new(AtomicBool::new(enabled))),
            metrics: Mutex::new(BTreeMap::new()),
        }
    }

    /// Turns recording on or off for every metric in this registry.
    pub fn set_enabled(&self, on: bool) {
        self.switch.store(on, Ordering::Relaxed);
    }

    /// Whether this registry is currently recording.
    pub fn enabled(&self) -> bool {
        self.switch.load(Ordering::Relaxed)
    }

    fn check_name(name: &str) {
        assert!(!name.is_empty(), "metric name must not be empty");
        assert!(
            name.bytes()
                .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-')),
            "metric name {name:?} must be dotted ASCII [a-zA-Z0-9._-]"
        );
    }

    fn get_or_insert(
        &self,
        name: &str,
        make: impl FnOnce(&'static AtomicBool) -> Metric,
    ) -> Metric {
        Self::check_name(name);
        let mut metrics = self.metrics.lock().expect("registry lock poisoned");
        *metrics
            .entry(name.to_owned())
            .or_insert_with(|| make(self.switch))
    }

    /// The counter named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is invalid or already registered as another kind.
    pub fn counter(&self, name: &str) -> &'static Counter {
        match self.get_or_insert(name, |s| {
            Metric::Counter(Box::leak(Box::new(Counter::new(s))))
        }) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// The gauge named `name`, created on first use (see [`Registry::counter`]).
    pub fn gauge(&self, name: &str) -> &'static Gauge {
        match self.get_or_insert(name, |s| Metric::Gauge(Box::leak(Box::new(Gauge::new(s))))) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// The histogram named `name`, created on first use (see [`Registry::counter`]).
    pub fn histogram(&self, name: &str) -> &'static Histogram {
        match self.get_or_insert(name, |s| {
            Metric::Histogram(Box::leak(Box::new(Histogram::new(s))))
        }) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
        }
    }

    /// The trace named `name`, created on first use (see [`Registry::counter`]).
    pub fn trace(&self, name: &str) -> &'static Trace {
        match self.get_or_insert(name, |s| Metric::Trace(Box::leak(Box::new(Trace::new(s))))) {
            Metric::Trace(t) => t,
            other => panic!("metric {name:?} is a {}, not a trace", other.kind()),
        }
    }

    /// Snapshots every metric, sorted by name.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let metrics = self.metrics.lock().expect("registry lock poisoned");
        metrics
            .iter()
            .map(|(name, metric)| MetricSnapshot {
                name: name.clone(),
                value: match metric {
                    Metric::Counter(c) => ValueSnapshot::Counter(c.get()),
                    Metric::Gauge(g) => ValueSnapshot::Gauge(g.get()),
                    Metric::Histogram(h) => ValueSnapshot::Histogram(h.snapshot()),
                    Metric::Trace(t) => ValueSnapshot::Trace(t.snapshot()),
                },
            })
            .collect()
    }

    /// Zeroes every metric (names and handles stay registered).
    pub fn reset(&self) {
        let metrics = self.metrics.lock().expect("registry lock poisoned");
        for metric in metrics.values() {
            match metric {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::Histogram(h) => h.reset(),
                Metric::Trace(t) => t.reset(),
            }
        }
    }

    /// Renders every metric as a human-readable table.
    pub fn render_table(&self) -> String {
        export::render_table(&self.snapshot())
    }

    /// Renders every metric as JSON lines (one object per metric).
    pub fn render_jsonl(&self) -> String {
        export::render_jsonl(&self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_returns_same_handle() {
        let r = Registry::new(true);
        let a = r.counter("a.b") as *const Counter;
        let b = r.counter("a.b") as *const Counter;
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let r = Registry::new(true);
        r.counter("x.y");
        r.gauge("x.y");
    }

    #[test]
    #[should_panic(expected = "dotted ASCII")]
    fn invalid_name_panics() {
        Registry::new(true).counter("has space");
    }

    #[test]
    fn switch_is_shared_by_all_metrics() {
        let r = Registry::new(false);
        let c = r.counter("s.c");
        let h = r.histogram("s.h");
        c.inc();
        h.record(5);
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        r.set_enabled(true);
        c.inc();
        h.record(5);
        assert_eq!(c.get(), 1);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = Registry::new(true);
        r.gauge("z.last").set(2.0);
        r.counter("a.first").add(7);
        r.trace("m.mid").push(0.5);
        let snaps = r.snapshot();
        let names: Vec<&str> = snaps.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["a.first", "m.mid", "z.last"]);
        assert_eq!(snaps[0].value, ValueSnapshot::Counter(7));
    }

    #[test]
    fn reset_zeroes_but_keeps_names() {
        let r = Registry::new(true);
        r.counter("r.c").add(3);
        r.histogram("r.h").record(9);
        r.reset();
        assert_eq!(r.counter("r.c").get(), 0);
        assert_eq!(r.histogram("r.h").count(), 0);
        assert_eq!(r.snapshot().len(), 2);
    }
}
