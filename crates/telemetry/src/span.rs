//! RAII span timers: measure a scope's wall-clock duration into a
//! [`Histogram`].

use crate::Histogram;
use std::time::Instant;

/// A scope timer that records its elapsed nanoseconds into a histogram when
/// dropped.
///
/// When the histogram's registry is disabled at entry the span never reads
/// the clock, so a disabled span costs one atomic load at construction and
/// one at drop.
///
/// ```
/// let h = puf_telemetry::Histogram::standalone();
/// {
///     let _span = puf_telemetry::Span::enter(&h);
///     // ... timed work ...
/// }
/// assert_eq!(h.snapshot().count, 1);
/// ```
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to _ drops it immediately"]
pub struct Span<'a> {
    hist: &'a Histogram,
    start: Option<Instant>,
}

impl<'a> Span<'a> {
    /// Starts timing into `hist` (a no-op if recording is disabled).
    #[inline]
    pub fn enter(hist: &'a Histogram) -> Self {
        let start = if hist.is_live() {
            Some(Instant::now())
        } else {
            None
        };
        Self { hist, start }
    }

    /// Whether the span is actually timing (registry was enabled at entry).
    pub fn is_armed(&self) -> bool {
        self.start.is_some()
    }

    /// Stops the span early and returns the elapsed nanoseconds it recorded
    /// (`None` if it was disarmed).
    pub fn finish(mut self) -> Option<u64> {
        let ns = self.record_now();
        self.start = None;
        ns
    }

    fn record_now(&mut self) -> Option<u64> {
        let start = self.start?;
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.hist.record(ns);
        Some(ns)
    }
}

impl Drop for Span<'_> {
    #[inline]
    fn drop(&mut self) {
        if self.start.is_some() {
            let _ = self.record_now();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_once_on_drop() {
        let h = Histogram::standalone();
        {
            let span = Span::enter(&h);
            assert!(span.is_armed());
        }
        assert_eq!(h.snapshot().count, 1);
    }

    #[test]
    fn finish_records_and_disarms_drop() {
        let h = Histogram::standalone();
        let span = Span::enter(&h);
        let ns = span.finish();
        assert!(ns.is_some());
        assert_eq!(h.snapshot().count, 1, "finish must not double-record");
    }

    #[test]
    fn disabled_histogram_disarms_span() {
        use std::sync::atomic::AtomicBool;
        static OFF: AtomicBool = AtomicBool::new(false);
        let h = Histogram::new(&OFF);
        let span = Span::enter(&h);
        assert!(!span.is_armed());
        assert_eq!(span.finish(), None);
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn span_measures_elapsed_time() {
        let h = Histogram::standalone();
        {
            let _span = Span::enter(&h);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert!(h.snapshot().min >= 2_000_000, "slept 2 ms");
    }
}
