//! Trace-event exporters: Chrome trace-event JSON (`chrome://tracing`,
//! Perfetto) and folded-stack flamegraph text — both hand-rolled, keeping
//! the crate dependency-free.
//!
//! Both exporters are pure functions of an event slice, so a
//! [`TraceClock::Tick`] trace exports byte-identically across runs (the
//! deterministic gate the proptests pin down).

use crate::tracer::{TraceClock, TraceEvent, TraceEventKind};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The timestamp an event exports under `clock`: microseconds (the Chrome
/// trace unit) in wall mode, the raw logical tick in tick mode.
fn chrome_ts(event: &TraceEvent, clock: TraceClock) -> String {
    match clock {
        TraceClock::Tick => format!("{}", event.tick),
        // ns → µs with the full nanosecond preserved in the fraction.
        TraceClock::Wall => format!("{}.{:03}", event.wall_ns / 1_000, event.wall_ns % 1_000),
    }
}

/// Renders events as a Chrome trace-event JSON object (the `traceEvents`
/// array format). Lanes map to `tid`s, ticks ride along in `args` so the
/// logical order stays visible even in wall mode.
///
/// ```
/// let t = puf_telemetry::Tracer::new_private();
/// t.set_enabled(true);
/// drop(t.span("test.doc.span"));
/// let json = puf_telemetry::trace_export::chrome_trace_json(
///     &t.snapshot_events(),
///     puf_telemetry::TraceClock::Tick,
/// );
/// assert!(json.contains("\"traceEvents\""));
/// assert!(json.contains("\"ph\":\"B\""));
/// ```
pub fn chrome_trace_json(events: &[TraceEvent], clock: TraceClock) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"traceEvents\":[");
    for (i, event) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ph = match event.kind {
            TraceEventKind::Begin => "B",
            TraceEventKind::End => "E",
            TraceEventKind::Instant => "i",
        };
        let _ = write!(
            out,
            "\n{{\"name\":\"{}\",\"cat\":\"puf\",\"ph\":\"{ph}\",\"ts\":{},\"pid\":0,\"tid\":{}",
            event.name,
            chrome_ts(event, clock),
            event.lane,
        );
        if event.kind == TraceEventKind::Instant {
            // Thread-scoped instant marker.
            out.push_str(",\"s\":\"t\"");
        }
        let _ = write!(
            out,
            ",\"args\":{{\"tick\":{},\"depth\":{}}}}}",
            event.tick, event.depth
        );
    }
    let clock_name = match clock {
        TraceClock::Tick => "tick",
        TraceClock::Wall => "wall",
    };
    let _ = write!(
        out,
        "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"clock\":\"{clock_name}\",\"events\":{}}}}}\n",
        events.len()
    );
    out
}

/// The duration weight of an event under `clock`: wall nanoseconds or
/// logical ticks.
fn weight(event: &TraceEvent, clock: TraceClock) -> u64 {
    match clock {
        TraceClock::Tick => event.tick,
        TraceClock::Wall => event.wall_ns,
    }
}

/// Renders events as folded-stack flamegraph text: one
/// `name;nested;deeper <weight>` line per distinct stack, sorted, where
/// the weight is the stack's *exclusive* time (wall ns in wall mode,
/// logical ticks otherwise). Feed to any flamegraph renderer.
///
/// Robust to ring eviction: an `End` with no matching open span (its
/// `Begin` was evicted) is dropped, and spans still open when the slice
/// ends are closed at the final observed weight.
pub fn folded_stacks(events: &[TraceEvent], clock: TraceClock) -> String {
    // Per-lane reconstruction: lanes interleave tick-sorted events, so
    // split first, then walk each lane's stream with an explicit stack.
    let mut lanes: BTreeMap<u32, Vec<&TraceEvent>> = BTreeMap::new();
    for event in events {
        lanes.entry(event.lane).or_default().push(event);
    }
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for lane_events in lanes.values() {
        // (name, start weight, accumulated child duration)
        let mut stack: Vec<(&'static str, u64, u64)> = Vec::new();
        let mut last = 0u64;
        let close_top = |stack: &mut Vec<(&'static str, u64, u64)>,
                         at: u64,
                         folded: &mut BTreeMap<String, u64>| {
            let Some((name, start, child)) = stack.pop() else {
                return;
            };
            let duration = at.saturating_sub(start);
            let exclusive = duration.saturating_sub(child);
            let mut key = String::new();
            for (frame, _, _) in stack.iter() {
                key.push_str(frame);
                key.push(';');
            }
            key.push_str(name);
            *folded.entry(key).or_insert(0) += exclusive;
            if let Some(parent) = stack.last_mut() {
                parent.2 += duration;
            }
        };
        for event in lane_events {
            let w = weight(event, clock);
            last = last.max(w);
            match event.kind {
                TraceEventKind::Begin => stack.push((event.name, w, 0)),
                TraceEventKind::End => {
                    // Tolerate a truncated prefix: an End whose Begin was
                    // evicted has nothing on the stack (or a different
                    // name, if eviction cut mid-nest) — drop it rather
                    // than mis-attribute.
                    if stack.last().is_some_and(|(name, _, _)| *name == event.name) {
                        close_top(&mut stack, w, &mut folded);
                    }
                }
                TraceEventKind::Instant => {}
            }
        }
        while !stack.is_empty() {
            close_top(&mut stack, last, &mut folded);
        }
    }
    let mut out = String::new();
    for (key, exclusive) in &folded {
        let _ = writeln!(out, "{key} {exclusive}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;

    fn sample_tracer() -> Tracer {
        let t = Tracer::new_private();
        t.set_enabled(true);
        {
            let _outer = t.span("test.export.outer");
            {
                let _inner = t.span("test.export.inner");
                t.instant("test.export.mark");
            }
            let _second = t.span("test.export.inner");
        }
        t
    }

    #[test]
    fn chrome_json_has_balanced_phases_and_ticks() {
        let t = sample_tracer();
        let json = chrome_trace_json(&t.snapshot_events(), TraceClock::Tick);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with('}'));
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 3);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 3);
        assert_eq!(json.matches("\"ph\":\"i\"").count(), 1);
        assert!(json.contains("\"clock\":\"tick\""));
        assert!(json.contains("\"ts\":0,"), "tick timestamps are integers");
    }

    #[test]
    fn chrome_json_wall_mode_uses_microseconds() {
        let t = Tracer::new_private();
        t.set_enabled(true);
        t.set_clock(crate::TraceClock::Wall);
        drop(t.span("test.export.walled"));
        let json = chrome_trace_json(&t.snapshot_events(), TraceClock::Wall);
        assert!(json.contains("\"clock\":\"wall\""));
        // µs with a 3-digit ns fraction, e.g. "ts":12.345
        let ts = json.split("\"ts\":").nth(1).unwrap();
        let value = &ts[..ts.find(',').unwrap()];
        assert!(
            value.contains('.') && value.split('.').nth(1).unwrap().len() == 3,
            "wall ts {value:?} should be µs with a 3-digit fraction"
        );
    }

    #[test]
    fn folded_stacks_attribute_exclusive_weight() {
        let t = sample_tracer();
        let folded = folded_stacks(&t.snapshot_events(), TraceClock::Tick);
        let lines: Vec<&str> = folded.lines().collect();
        // Ticks: outer B=0, inner B=1, mark=2, inner E=3, inner2 B=4,
        // inner2 E=5, outer E=6. inner: 3-1=2 excl; second inner: 1;
        // outer: 6-0=6 minus children (2+1... child durations 2 and 1) = 3.
        assert_eq!(
            lines,
            [
                "test.export.outer 3",
                "test.export.outer;test.export.inner 3",
            ],
            "same-path spans aggregate:\n{folded}"
        );
    }

    #[test]
    fn folded_stacks_tolerate_truncated_prefix() {
        let t = Tracer::new_private();
        t.set_lane_capacity(4);
        t.set_enabled(true);
        for _ in 0..6 {
            drop(t.span("test.export.wrapped"));
        }
        // The retained window may open with an orphaned End.
        let folded = folded_stacks(&t.snapshot_events(), TraceClock::Tick);
        for line in folded.lines() {
            assert!(line.starts_with("test.export.wrapped "), "line: {line}");
        }
    }

    #[test]
    fn unclosed_spans_are_closed_at_the_end() {
        let t = Tracer::new_private();
        t.set_enabled(true);
        let guard = t.span("test.export.open");
        t.instant("test.export.tail");
        let folded = folded_stacks(&t.snapshot_events(), TraceClock::Tick);
        assert_eq!(folded, "test.export.open 1\n");
        drop(guard);
    }

    #[test]
    fn exports_are_byte_identical_across_tick_replays() {
        let run = || {
            let t = Tracer::new_private();
            t.set_enabled(true);
            {
                let _a = t.span("test.export.replay");
                for _ in 0..10 {
                    t.instant("test.export.step");
                }
            }
            let events = t.snapshot_events();
            (
                chrome_trace_json(&events, TraceClock::Tick),
                folded_stacks(&events, TraceClock::Tick),
            )
        };
        assert_eq!(run(), run());
    }
}
