//! Lock-free log-bucketed latency histogram.
//!
//! Values (nanoseconds) are binned into 4 sub-buckets per power of two,
//! giving ≤ 12.5 % relative error on reported quantiles across the full
//! `u64` range with a fixed 252-slot table — no allocation, no locking,
//! `fetch_add` on record.

use crate::metric::live;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// Number of buckets: values `0..=3` get exact buckets, then 4 sub-buckets
/// for each of the 62 remaining powers of two.
pub const BUCKETS: usize = 4 + 62 * 4;

/// Bucket index for a value: exact below 4, otherwise
/// `(exp − 1)·4 + sub` where `exp = ⌊log₂ v⌋` and `sub` is the top two
/// mantissa bits.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < 4 {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros() as usize;
        let sub = ((v >> (exp - 2)) & 3) as usize;
        (exp - 1) * 4 + sub
    }
}

/// Inclusive lower bound of a bucket (inverse of [`bucket_index`]).
fn bucket_lower_bound(idx: usize) -> u64 {
    if idx < 4 {
        idx as u64
    } else {
        let exp = idx / 4 + 1;
        let sub = (idx % 4) as u64;
        (4 + sub) << (exp - 2)
    }
}

/// Exclusive upper bound of a bucket.
fn bucket_upper_bound(idx: usize) -> u64 {
    if idx + 1 >= BUCKETS {
        u64::MAX
    } else {
        bucket_lower_bound(idx + 1)
    }
}

/// A concurrent latency histogram with log-spaced buckets.
///
/// ```
/// let h = puf_telemetry::Histogram::standalone();
/// for v in [100u64, 200, 400, 800] {
///     h.record(v);
/// }
/// let snap = h.snapshot();
/// assert_eq!(snap.count, 4);
/// assert!(snap.quantile(0.5) >= 100 && snap.quantile(0.5) <= 800);
/// ```
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    switch: &'static AtomicBool,
}

impl Histogram {
    pub(crate) fn new(switch: &'static AtomicBool) -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            switch,
        }
    }

    /// A histogram that is always recording, independent of any registry.
    pub fn standalone() -> Self {
        Self::new(&crate::ALWAYS_ON)
    }

    /// Records one value (by convention, nanoseconds).
    #[inline]
    pub fn record(&self, v: u64) {
        if !live(self.switch) {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating above `u64::MAX` ns).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Whether this histogram's registry is currently recording — used by
    /// [`crate::Span`] to skip reading the clock entirely when disabled.
    #[inline]
    pub(crate) fn is_live(&self) -> bool {
        live(self.switch)
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copies out the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }

    pub(crate) fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values (wraps only after ~584 years of summed ns).
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Per-bucket counts, indexed as in the live histogram.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Arithmetic mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0..=1.0`), accurate to the bucket resolution
    /// (≤ 12.5 % relative error) and clamped to the observed `[min, max]`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let lo = bucket_lower_bound(idx);
                let hi = bucket_upper_bound(idx);
                let mid = lo + (hi - lo) / 2;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_bounds_are_consistent() {
        for idx in 0..BUCKETS {
            let lo = bucket_lower_bound(idx);
            assert_eq!(bucket_index(lo), idx, "lower bound of {idx}");
            let hi = bucket_upper_bound(idx);
            if hi != u64::MAX {
                assert_eq!(bucket_index(hi - 1), idx, "last value of {idx}");
                assert_eq!(bucket_index(hi), idx + 1);
            }
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_track_known_distribution() {
        let h = Histogram::standalone();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        assert_eq!(snap.min, 1);
        assert_eq!(snap.max, 1000);
        assert!((snap.mean() - 500.5).abs() < 1e-9);
        for (q, exact) in [(0.5, 500.0), (0.95, 950.0), (0.99, 990.0)] {
            let got = snap.quantile(q) as f64;
            assert!(
                (got - exact).abs() / exact <= 0.125 + 1e-9,
                "q={q}: got {got}, exact {exact}"
            );
        }
    }

    #[test]
    fn quantile_is_clamped_to_observed_range() {
        let h = Histogram::standalone();
        h.record(5);
        let snap = h.snapshot();
        assert_eq!(snap.quantile(0.0), 5);
        assert_eq!(snap.quantile(1.0), 5);
        assert_eq!(snap.p50(), 5);
    }

    #[test]
    fn empty_histogram_is_benign() {
        let h = Histogram::standalone();
        let snap = h.snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.quantile(0.5), 0);
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn disabled_switch_blocks_recording() {
        static OFF: AtomicBool = AtomicBool::new(false);
        let h = Histogram::new(&OFF);
        h.record(100);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn record_duration_uses_nanoseconds() {
        let h = Histogram::standalone();
        h.record_duration(Duration::from_micros(2));
        let snap = h.snapshot();
        assert_eq!(snap.min, 2_000);
    }

    #[test]
    fn reset_clears_everything() {
        let h = Histogram::standalone();
        h.record(7);
        h.reset();
        let snap = h.snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.sum, 0);
        assert_eq!(snap.max, 0);
    }
}
