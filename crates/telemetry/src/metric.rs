//! Scalar metrics: atomic counters and gauges, plus a bounded value trace.
//!
//! Every metric holds a reference to its registry's enable switch; a record
//! operation on a disabled registry is one relaxed atomic load and a branch.
//! With the `off` cargo feature even that is compiled out.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Whether recording is currently live for a metric holding `switch`.
///
/// This is the single point the `off` feature hooks into: with it enabled
/// the function is a constant `false` and the optimizer deletes every record
/// path outright.
#[inline(always)]
pub(crate) fn live(switch: &AtomicBool) -> bool {
    if cfg!(feature = "off") {
        false
    } else {
        switch.load(Ordering::Relaxed)
    }
}

/// A monotonically increasing event counter.
///
/// ```
/// let c = puf_telemetry::Counter::standalone();
/// c.inc();
/// c.add(2);
/// assert_eq!(c.get(), 3);
/// ```
#[derive(Debug)]
pub struct Counter {
    value: AtomicU64,
    switch: &'static AtomicBool,
}

impl Counter {
    pub(crate) fn new(switch: &'static AtomicBool) -> Self {
        Self {
            value: AtomicU64::new(0),
            switch,
        }
    }

    /// A counter that is always recording, independent of any registry.
    pub fn standalone() -> Self {
        Self::new(&crate::ALWAYS_ON)
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if live(self.switch) {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-value-wins floating-point gauge (worker counts, yields, rates).
///
/// The value is stored as `f64` bits in an `AtomicU64`; reads and writes are
/// lock-free.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
    switch: &'static AtomicBool,
}

impl Gauge {
    pub(crate) fn new(switch: &'static AtomicBool) -> Self {
        Self {
            bits: AtomicU64::new(0.0f64.to_bits()),
            switch,
        }
    }

    /// A gauge that is always recording, independent of any registry.
    pub fn standalone() -> Self {
        Self::new(&crate::ALWAYS_ON)
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        if live(self.switch) {
            self.bits.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Adds `v` to the gauge (compare-and-swap loop; rarely contended).
    pub fn add(&self, v: f64) {
        if !live(self.switch) {
            return;
        }
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    pub(crate) fn reset(&self) {
        self.bits.store(0.0f64.to_bits(), Ordering::Relaxed);
    }
}

/// Maximum number of retained points in a [`Trace`]; older points are
/// thinned (stride doubling) rather than dropped, so a trace always covers
/// the whole series.
pub const TRACE_CAPACITY: usize = 4096;

#[derive(Debug)]
struct TraceInner {
    values: Vec<f64>,
    /// Every `stride`-th pushed value is retained.
    stride: u64,
    /// Total number of pushes, retained or not.
    total: u64,
}

/// A bounded per-step value series — optimizer loss curves, per-epoch error.
///
/// Stores at most [`TRACE_CAPACITY`] points. When full, every other retained
/// point is discarded and the sampling stride doubles, so the memory is
/// bounded while the series still spans the entire run.
#[derive(Debug)]
pub struct Trace {
    inner: Mutex<TraceInner>,
    switch: &'static AtomicBool,
}

/// A point-in-time copy of a [`Trace`].
#[derive(Clone, Debug, PartialEq)]
pub struct TraceSnapshot {
    /// Retained values, oldest first; point `i` was push number
    /// `i * stride`.
    pub values: Vec<f64>,
    /// Pushes per retained point.
    pub stride: u64,
    /// Total number of pushes.
    pub total: u64,
}

impl TraceSnapshot {
    /// The most recently retained value.
    pub fn last(&self) -> Option<f64> {
        self.values.last().copied()
    }
}

impl Trace {
    pub(crate) fn new(switch: &'static AtomicBool) -> Self {
        Self {
            inner: Mutex::new(TraceInner {
                values: Vec::new(),
                stride: 1,
                total: 0,
            }),
            switch,
        }
    }

    /// A trace that is always recording, independent of any registry.
    pub fn standalone() -> Self {
        Self::new(&crate::ALWAYS_ON)
    }

    /// Appends one point to the series.
    pub fn push(&self, v: f64) {
        if !live(self.switch) {
            return;
        }
        let mut inner = self.inner.lock().expect("trace lock poisoned");
        if inner.total.is_multiple_of(inner.stride) {
            inner.values.push(v);
            if inner.values.len() >= TRACE_CAPACITY {
                let mut keep = 0;
                // Keep points 0, 2, 4, … — their push indices remain
                // multiples of the doubled stride.
                for i in (0..inner.values.len()).step_by(2) {
                    inner.values[keep] = inner.values[i];
                    keep += 1;
                }
                inner.values.truncate(keep);
                inner.stride *= 2;
            }
        }
        inner.total += 1;
    }

    /// Copies out the current series.
    pub fn snapshot(&self) -> TraceSnapshot {
        let inner = self.inner.lock().expect("trace lock poisoned");
        TraceSnapshot {
            values: inner.values.clone(),
            stride: inner.stride,
            total: inner.total,
        }
    }

    pub(crate) fn reset(&self) {
        let mut inner = self.inner.lock().expect("trace lock poisoned");
        inner.values.clear();
        inner.stride = 1;
        inner.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_add_and_reset() {
        let c = Counter::standalone();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_set_add_get() {
        let g = Gauge::standalone();
        assert_eq!(g.get(), 0.0);
        g.set(1.5);
        g.add(0.25);
        assert!((g.get() - 1.75).abs() < 1e-12);
        g.reset();
        assert_eq!(g.get(), 0.0);
    }

    #[test]
    fn disabled_switch_blocks_recording() {
        static OFF: AtomicBool = AtomicBool::new(false);
        let c = Counter::new(&OFF);
        c.inc();
        assert_eq!(c.get(), 0);
        let g = Gauge::new(&OFF);
        g.set(9.0);
        assert_eq!(g.get(), 0.0);
        let t = Trace::new(&OFF);
        t.push(1.0);
        assert_eq!(t.snapshot().total, 0);
    }

    #[test]
    fn trace_thins_with_stride_doubling() {
        let t = Trace::standalone();
        let n = (TRACE_CAPACITY * 4) as u64;
        for i in 0..n {
            t.push(i as f64);
        }
        let snap = t.snapshot();
        assert_eq!(snap.total, n);
        assert!(snap.values.len() <= TRACE_CAPACITY);
        assert!(snap.stride >= 4);
        // Retained point i corresponds to push i * stride.
        for (i, &v) in snap.values.iter().enumerate() {
            assert_eq!(v, (i as u64 * snap.stride) as f64);
        }
        // The series still spans (almost) the whole run.
        assert!(snap.last().unwrap() >= (n - snap.stride) as f64 - 1.0);
    }

    #[test]
    fn trace_short_series_is_lossless() {
        let t = Trace::standalone();
        for i in 0..10 {
            t.push(i as f64 * 0.5);
        }
        let snap = t.snapshot();
        assert_eq!(snap.stride, 1);
        assert_eq!(
            snap.values,
            (0..10).map(|i| i as f64 * 0.5).collect::<Vec<_>>()
        );
    }
}
