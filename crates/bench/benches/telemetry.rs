//! Overhead microbenchmarks for the telemetry substrate, and the check that
//! instrumented hot paths are free when telemetry is disabled.
//!
//! The `disabled/*` numbers are the cost instrumented code pays in a normal
//! (untelemetered) run: one relaxed atomic load plus a branch per record
//! call, low single-digit nanoseconds. `eval/*` measures the same chip
//! evaluation that `core.eval` instruments, with telemetry off and on —
//! the "off" number is the one the <2 % overhead acceptance bound applies
//! to, compared against an uninstrumented baseline in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use puf_core::{Challenge, Condition};
use puf_silicon::{Chip, ChipConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_counter_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_counter");
    puf_telemetry::set_enabled(false);
    group.bench_function("disabled_inc", |b| {
        b.iter(|| puf_telemetry::counter!("bench.telemetry.counter").inc())
    });
    puf_telemetry::set_enabled(true);
    group.bench_function("enabled_inc", |b| {
        b.iter(|| puf_telemetry::counter!("bench.telemetry.counter").inc())
    });
    puf_telemetry::set_enabled(false);
    group.finish();
}

fn bench_span_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_span");
    puf_telemetry::set_enabled(false);
    group.bench_function("disabled_enter_drop", |b| {
        b.iter(|| drop(black_box(puf_telemetry::span!("bench.telemetry.span"))))
    });
    puf_telemetry::set_enabled(true);
    group.bench_function("enabled_enter_drop", |b| {
        b.iter(|| drop(black_box(puf_telemetry::span!("bench.telemetry.span"))))
    });
    puf_telemetry::set_enabled(false);
    group.finish();
}

fn bench_instrumented_eval(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let chip = Chip::fabricate(0, &ChipConfig::paper_default(), &mut rng);
    let ch = Challenge::random(32, &mut rng);
    let mut group = c.benchmark_group("eval");
    puf_telemetry::set_enabled(false);
    group.bench_function("one_shot_xor_n10_telemetry_off", |b| {
        let mut rng = StdRng::seed_from_u64(12);
        b.iter(|| {
            black_box(
                chip.eval_xor_once(10, &ch, Condition::NOMINAL, &mut rng)
                    .unwrap(),
            )
        })
    });
    puf_telemetry::set_enabled(true);
    group.bench_function("one_shot_xor_n10_telemetry_on", |b| {
        let mut rng = StdRng::seed_from_u64(12);
        b.iter(|| {
            black_box(
                chip.eval_xor_once(10, &ch, Condition::NOMINAL, &mut rng)
                    .unwrap(),
            )
        })
    });
    puf_telemetry::set_enabled(false);
    group.finish();
}

criterion_group!(
    benches,
    bench_counter_overhead,
    bench_span_overhead,
    bench_instrumented_eval
);
criterion_main!(benches);
