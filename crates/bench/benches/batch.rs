//! Scalar vs batched XOR soft-response generation at (sampled) paper scale.
//!
//! The paper's measurement campaign evaluates 1,000,000 challenges across a
//! 3×3 V/T grid — 9 million soft responses per XOR PUF. This bench replays a
//! deterministic sample of that workload both ways:
//!
//! * `scalar`: per-challenge `XorPuf::soft_response`, recomputing the feature
//!   vector for every (challenge, corner) pair — the pre-batch code path.
//! * `batched`: one [`FeatureMatrix`] built up front and reused across all
//!   nine corners via `XorPuf::soft_response_batch` — the feature transform
//!   is amortised 9× and the dot products run through the unrolled kernel.
//!
//! Run: `cargo bench -p puf-bench --bench batch`

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use puf_core::batch::FeatureMatrix;
use puf_core::{Challenge, Condition, Environment, XorPuf};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// Challenges sampled from the paper's 1M pool; each one is evaluated at all
/// 9 grid corners, so one bench iteration covers `SAMPLE * 9` soft CRPs.
const SAMPLE: usize = 16_384;
const XOR_N: usize = 10;
const STAGES: usize = 32;
const BASE_SIGMA: f64 = 0.05;

fn corner_sigmas(env: &Environment) -> Vec<f64> {
    Condition::paper_grid()
        .iter()
        .map(|&cond| BASE_SIGMA * env.noise_scale(cond))
        .collect()
}

fn bench_soft_response_grid(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0xBA7C);
    let xor = XorPuf::random(XOR_N, STAGES, &mut rng);
    let challenges: Vec<Challenge> = (0..SAMPLE)
        .map(|_| Challenge::random(STAGES, &mut rng))
        .collect();
    let env = Environment::paper_default();
    let sigmas = corner_sigmas(&env);

    let mut group = c.benchmark_group("xor_soft_grid_n10");
    group.throughput(Throughput::Elements((SAMPLE * sigmas.len()) as u64));
    group.sample_size(10);

    group.bench_function("scalar", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for &sigma in &sigmas {
                for ch in &challenges {
                    acc += xor.soft_response(ch, sigma);
                }
            }
            black_box(acc)
        })
    });

    group.bench_function("batched", |b| {
        // Matrix build is inside the timed loop: it is paid once and
        // amortised over all nine corners, exactly as the harnesses do.
        b.iter(|| {
            let features = FeatureMatrix::from_challenges(&challenges).unwrap();
            let mut acc = 0.0f64;
            for &sigma in &sigmas {
                acc += xor
                    .soft_response_batch(&features, sigma)
                    .iter()
                    .sum::<f64>();
            }
            black_box(acc)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_soft_response_grid);
criterion_main!(benches);
