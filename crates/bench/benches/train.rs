//! Modeling-attack training benchmarks: the paper reports an average
//! training speed of 0.395 ms per CRP for the 35-25-25 MLP with L-BFGS and
//! notes it is "only a weak function of n" (§2.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use puf_core::challenge::random_challenges;
use puf_core::Condition;
use puf_ml::features::{design_matrix, encode_bits};
use puf_ml::logreg::{LogisticConfig, LogisticRegression};
use puf_ml::{Matrix, Mlp, MlpConfig, Objective};
use puf_silicon::testbench::collect_stable_xor_crps;
use puf_silicon::{Chip, ChipConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn attack_dataset(n: usize, size: usize, seed: u64) -> (Matrix, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let chip = Chip::fabricate(0, &ChipConfig::paper_default(), &mut rng);
    // Oversample: only ~0.8^n of challenges yield stable CRPs.
    let oversample = (size as f64 / 0.8f64.powi(n as i32) * 1.3) as usize;
    let pool = random_challenges(chip.stages(), oversample, &mut rng);
    let crps = collect_stable_xor_crps(&chip, n, &pool, Condition::NOMINAL, 100_000, &mut rng)
        .unwrap()
        .truncated(size);
    assert_eq!(crps.len(), size, "not enough stable CRPs collected");
    (
        design_matrix(crps.challenges()),
        encode_bits(crps.responses()),
    )
}

fn bench_mlp_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("attack/mlp_train");
    group.sample_size(10);
    // Small budget keeps each criterion sample in the hundreds of ms; the
    // paper's per-CRP figure divides out.
    let size = 2_000;
    for n in [4usize, 8] {
        let (x, y) = attack_dataset(n, size, 100 + n as u64);
        let config = MlpConfig {
            max_iterations: 60,
            ..MlpConfig::paper_default()
        };
        group.throughput(Throughput::Elements(size as u64));
        group.bench_with_input(BenchmarkId::new("n", n), &n, |b, _| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                let mut mlp = Mlp::new(x.cols(), &config, &mut rng);
                black_box(mlp.train(&x, &y, &config))
            })
        });
    }
    group.finish();
}

/// One full-batch loss+gradient evaluation of the paper's 35-25-25 MLP on a
/// 10-XOR dataset — the unit of work L-BFGS repeats hundreds of times per
/// attack. `fused` is the blocked-GEMM workspace path (single worker, so the
/// comparison is a pure kernel speedup); `naive` is the retained pre-blocking
/// reference implementation.
fn bench_mlp_training_step(c: &mut Criterion) {
    let size = 4_000;
    let (x, y) = attack_dataset(10, size, 300);
    let config = MlpConfig::paper_default();
    let mut rng = StdRng::seed_from_u64(10);
    let mlp = Mlp::new(x.cols(), &config, &mut rng);
    let params = mlp.params().to_vec();
    let mut grad = vec![0.0; params.len()];
    let mut group = c.benchmark_group("attack/mlp_step");
    group.throughput(Throughput::Elements(size as u64));
    group.bench_function("xor10_fused_1t", |b| {
        let objective = mlp.objective(&x, &y, config.alpha, 1);
        b.iter(|| black_box(objective.value_grad(&params, &mut grad)))
    });
    group.bench_function("xor10_naive_1t", |b| {
        b.iter(|| {
            black_box(mlp.loss_value_grad_reference(&params, &x, &y, config.alpha, &mut grad))
        })
    });
    group.finish();
}

fn bench_mlp_inference(c: &mut Criterion) {
    let (x, y) = attack_dataset(4, 2_000, 200);
    let config = MlpConfig {
        max_iterations: 40,
        ..MlpConfig::paper_default()
    };
    let mut rng = StdRng::seed_from_u64(8);
    let mut mlp = Mlp::new(x.cols(), &config, &mut rng);
    mlp.train(&x, &y, &config);
    let mut group = c.benchmark_group("attack/mlp_predict");
    group.throughput(Throughput::Elements(x.rows() as u64));
    group.bench_function("batch_2000", |b| b.iter(|| black_box(mlp.predict(&x))));
    group.finish();
}

fn bench_logistic_training(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    let chip = Chip::fabricate(0, &ChipConfig::paper_default(), &mut rng);
    let challenges = random_challenges(chip.stages(), 2_000, &mut rng);
    let labels: Vec<bool> = challenges
        .iter()
        .map(|ch| {
            chip.eval_xor_once(1, ch, Condition::NOMINAL, &mut rng)
                .unwrap()
        })
        .collect();
    let mut group = c.benchmark_group("attack/logreg_train");
    group.sample_size(10);
    group.throughput(Throughput::Elements(challenges.len() as u64));
    group.bench_function("single_puf_2000", |b| {
        b.iter(|| {
            black_box(LogisticRegression::fit_challenges(
                &challenges,
                &labels,
                &LogisticConfig::default(),
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_mlp_training,
    bench_mlp_training_step,
    bench_mlp_inference,
    bench_logistic_training
);
criterion_main!(benches);
