//! Authentication-phase benchmarks: server-side stable-challenge selection
//! throughput and full authentication rounds. The selection loop is pure
//! prediction (no chip access), which is the efficiency claim of §3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use puf_core::Condition;
use puf_protocol::auth::{AuthPolicy, ChipResponder};
use puf_protocol::enrollment::{enroll, EnrollmentConfig};
use puf_protocol::server::Server;
use puf_silicon::{Chip, ChipConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn enrolled_server(n: usize, seed: u64) -> (Chip, Server) {
    let mut rng = StdRng::seed_from_u64(seed);
    let chip = Chip::fabricate(0, &ChipConfig::paper_default(), &mut rng);
    let config = EnrollmentConfig {
        training_size: 2_000,
        validation_size: 1_000,
        evals: 20_000,
        ..EnrollmentConfig::paper_default(n)
    };
    let record = enroll(&chip, &config, &mut rng).expect("enrollment failed");
    let mut server = Server::new();
    server.register(record);
    (chip, server)
}

fn bench_challenge_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("auth/select_challenges");
    group.sample_size(20);
    for n in [4usize, 10] {
        let (_, server) = enrolled_server(n, 1);
        group.throughput(Throughput::Elements(32));
        group.bench_with_input(BenchmarkId::new("n", n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| {
                black_box(
                    server
                        .select_challenges(0, 32, 50_000_000, &mut rng)
                        .expect("selection failed"),
                )
            })
        });
    }
    group.finish();
}

fn bench_authentication_round(c: &mut Criterion) {
    let n = 4;
    let (chip, server) = enrolled_server(n, 3);
    let mut group = c.benchmark_group("auth/round");
    group.sample_size(20);
    group.bench_function("n4_32_challenges", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| {
            let mut client = ChipResponder::new(&chip, n, Condition::NOMINAL, 5);
            black_box(
                server
                    .authenticate(
                        0,
                        &mut client,
                        32,
                        AuthPolicy::ZeroHammingDistance,
                        &mut rng,
                    )
                    .expect("authentication failed"),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_challenge_selection,
    bench_authentication_round
);
criterion_main!(benches);
