//! Microbenchmarks of the simulation substrate: challenge transforms, PUF
//! evaluation and counter measurements. These bound how fast the "1
//! trillion CRP" campaign replays on a workstation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use puf_core::batch::FeatureMatrix;
use puf_core::{Challenge, Condition, XorPuf};
use puf_silicon::{Chip, ChipConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_feature_transform(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let challenge = Challenge::random(32, &mut rng);
    c.bench_function("challenge/feature_transform_32", |b| {
        b.iter(|| black_box(challenge.features()))
    });
}

fn bench_arbiter_eval(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let puf = puf_core::ArbiterPuf::random(32, &mut rng);
    let challenges: Vec<Challenge> = (0..1024).map(|_| Challenge::random(32, &mut rng)).collect();
    let mut group = c.benchmark_group("arbiter");
    group.throughput(Throughput::Elements(challenges.len() as u64));
    group.bench_function("delay_difference_batch_1024", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for ch in &challenges {
                acc += puf.delay_difference(ch);
            }
            black_box(acc)
        })
    });
    // Same work through the batch engine: one prebuilt feature matrix, the
    // unrolled kernel over contiguous rows.
    let features = FeatureMatrix::from_challenges(&challenges).unwrap();
    let mut deltas = vec![0.0f64; challenges.len()];
    group.bench_function("delta_batch_1024", |b| {
        b.iter(|| {
            puf.delta_batch_into(&features, &mut deltas);
            black_box(deltas.iter().sum::<f64>())
        })
    });
    group.finish();
}

fn bench_xor_eval(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut group = c.benchmark_group("xor_response");
    for n in [4usize, 10] {
        let xor = XorPuf::random(n, 32, &mut rng);
        let challenge = Challenge::random(32, &mut rng);
        group.bench_function(format!("n{n}"), |b| {
            b.iter(|| black_box(xor.response(&challenge)))
        });
    }
    group.finish();
}

/// Scalar per-challenge loop vs the batch engine for noiseless XOR response
/// generation — the acceptance gate for the batch path is bit-exactness plus
/// ≥ 4× single-thread throughput on this comparison.
fn bench_xor_batch(c: &mut Criterion) {
    const CHALLENGES: usize = 8_192;
    let mut rng = StdRng::seed_from_u64(8);
    let xor = XorPuf::random(10, 32, &mut rng);
    let challenges: Vec<Challenge> = (0..CHALLENGES)
        .map(|_| Challenge::random(32, &mut rng))
        .collect();
    let features = FeatureMatrix::from_challenges(&challenges).unwrap();

    let mut group = c.benchmark_group("xor_batch_n10");
    group.throughput(Throughput::Elements(CHALLENGES as u64));
    group.bench_function("scalar_loop", |b| {
        b.iter(|| {
            let mut ones = 0usize;
            for ch in &challenges {
                ones += xor.response(ch) as usize;
            }
            black_box(ones)
        })
    });
    group.bench_function("response_batch", |b| {
        b.iter(|| {
            let bits = xor.response_batch(&features);
            black_box(bits.iter().filter(|&&b| b).count())
        })
    });
    group.bench_function("response_batch_with_matrix_build", |b| {
        b.iter(|| {
            let fm = FeatureMatrix::from_challenges(&challenges).unwrap();
            let bits = xor.response_batch(&fm);
            black_box(bits.iter().filter(|&&b| b).count())
        })
    });
    group.finish();
}

fn bench_counter_measurement(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let chip = Chip::fabricate(0, &ChipConfig::paper_default(), &mut rng);
    let mut group = c.benchmark_group("counter");
    // The binomial fast path makes a 100k-evaluation soft response as cheap
    // as a handful of RNG draws — this is the trillion-CRP enabler.
    group.bench_function("soft_response_100k_evals_fast_path", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter_batched(
            || Challenge::random(32, &mut rng),
            |ch| {
                let mut local = StdRng::seed_from_u64(6);
                black_box(
                    chip.measure_individual_soft(0, &ch, Condition::NOMINAL, 100_000, &mut local)
                        .unwrap(),
                )
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("one_shot_xor_n10", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        let ch = Challenge::random(32, &mut rng);
        b.iter(|| {
            black_box(
                chip.eval_xor_once(10, &ch, Condition::NOMINAL, &mut rng)
                    .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_feature_transform,
    bench_arbiter_eval,
    bench_xor_eval,
    bench_xor_batch,
    bench_counter_measurement
);
criterion_main!(benches);
