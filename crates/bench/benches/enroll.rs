//! Enrollment-phase benchmarks: the paper reports 4.3 ms for the linear
//! delay-parameter fit on 5,000 CRPs (§5.1, desktop i7-3770).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use puf_core::challenge::random_challenges;
use puf_core::Condition;
use puf_ml::LinearRegression;
use puf_protocol::threshold::{fit_betas, Thresholds};
use puf_silicon::{Chip, ChipConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// Measured soft responses for a training set, precomputed outside the
/// timed region.
fn training_data(size: usize, seed: u64) -> (Vec<puf_core::Challenge>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let chip = Chip::fabricate(0, &ChipConfig::paper_default(), &mut rng);
    let challenges = random_challenges(chip.stages(), size, &mut rng);
    let soft = challenges
        .iter()
        .map(|c| {
            chip.measure_individual_soft(0, c, Condition::NOMINAL, 100_000, &mut rng)
                .unwrap()
                .value()
        })
        .collect();
    (challenges, soft)
}

fn bench_linear_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("enrollment/linear_fit");
    for size in [500usize, 2_000, 5_000, 10_000] {
        let (challenges, soft) = training_data(size, 1);
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                black_box(LinearRegression::fit_challenges(&challenges, &soft, 1e-6).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_threshold_extraction(c: &mut Criterion) {
    let (challenges, soft) = training_data(5_000, 2);
    let model = LinearRegression::fit_challenges(&challenges, &soft, 1e-6).unwrap();
    let pairs: Vec<(f64, f64)> = challenges
        .iter()
        .zip(&soft)
        .map(|(ch, &s)| (model.predict(ch), s))
        .collect();
    c.bench_function("enrollment/threshold_extraction_5000", |b| {
        b.iter(|| black_box(Thresholds::from_training(&pairs)))
    });
}

fn bench_beta_fit(c: &mut Criterion) {
    let (challenges, soft) = training_data(5_000, 3);
    let model = LinearRegression::fit_challenges(&challenges, &soft, 1e-6).unwrap();
    let pairs: Vec<(f64, f64)> = challenges
        .iter()
        .zip(&soft)
        .map(|(ch, &s)| (model.predict(ch), s))
        .collect();
    let thresholds = Thresholds::from_training(&pairs).unwrap();
    let triples: Vec<(f64, bool, bool)> = challenges
        .iter()
        .zip(&soft)
        .map(|(ch, &s)| (model.predict(ch), s == 0.0, s == 1.0))
        .collect();
    c.bench_function("enrollment/beta_fit_5000", |b| {
        b.iter(|| black_box(fit_betas(thresholds, &triples)))
    });
}

criterion_group!(
    benches,
    bench_linear_fit,
    bench_threshold_extraction,
    bench_beta_fit
);
criterion_main!(benches);
