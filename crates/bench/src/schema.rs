//! Shared schema header for the machine-readable benchmark outputs
//! (`results/BENCH_*.json`, `results/CHAOS.json`).
//!
//! Every JSON emitter stamps the same `"schema"` object as its first key,
//! so `cargo xtask bench-diff` can (a) skip metadata when flattening
//! metrics and (b) warn when a comparison crosses environments — a delta
//! measured against a baseline from a different thread count or
//! `target-cpu` is a provenance note, not a regression.

use std::process::Command;

/// Version of the benchmark-output schema. Bump when the header shape or
/// the meaning of shared keys changes.
pub const SCHEMA_VERSION: u32 = 1;

/// The environment fingerprint stamped into benchmark JSON outputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaHeader {
    /// The schema version, [`SCHEMA_VERSION`] at capture time.
    pub version: u32,
    /// Short git commit of the working tree (`unknown` outside a repo).
    pub git_commit: String,
    /// Hardware threads available to the process.
    pub threads: usize,
    /// The `-C target-cpu=…` value from `RUSTFLAGS` (`default` when unset).
    pub target_cpu: String,
}

impl SchemaHeader {
    /// Captures the current environment: git commit via `git rev-parse`,
    /// thread count via `std::thread::available_parallelism`, target CPU
    /// parsed out of `RUSTFLAGS`. Never fails — unknown values degrade to
    /// placeholder strings so output emission cannot be blocked.
    pub fn capture() -> Self {
        Self {
            version: SCHEMA_VERSION,
            git_commit: git_short_commit().unwrap_or_else(|| "unknown".to_string()),
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            target_cpu: rustflags_target_cpu(&std::env::var("RUSTFLAGS").unwrap_or_default()),
        }
    }

    /// The header as an indented JSON fragment — the complete
    /// `"schema": {…}` member (no trailing comma, no surrounding braces),
    /// with `indent` spaces before each line:
    ///
    /// ```text
    ///   "schema": {
    ///     "version": 1,
    ///     "git_commit": "0e227c9",
    ///     "threads": 8,
    ///     "target_cpu": "native"
    ///   }
    /// ```
    pub fn to_json_member(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        format!(
            "{pad}\"schema\": {{\n{pad}  \"version\": {},\n{pad}  \"git_commit\": \"{}\",\n{pad}  \"threads\": {},\n{pad}  \"target_cpu\": \"{}\"\n{pad}}}",
            self.version,
            escape(&self.git_commit),
            self.threads,
            escape(&self.target_cpu),
        )
    }
}

/// Minimal JSON string escape for the header fields (commit hashes and cpu
/// names are alphanumeric in practice; this guards the degenerate cases).
fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => vec![' '],
            c => vec![c],
        })
        .collect()
}

/// The short commit hash of HEAD, if the working directory is a git repo
/// and `git` is on PATH.
fn git_short_commit() -> Option<String> {
    let out = Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let hash = String::from_utf8(out.stdout).ok()?.trim().to_string();
    if hash.is_empty() {
        None
    } else {
        Some(hash)
    }
}

/// Extracts the `target-cpu` value from a `RUSTFLAGS` string, accepting
/// both `-Ctarget-cpu=x` and `-C target-cpu=x` spellings.
fn rustflags_target_cpu(rustflags: &str) -> String {
    let mut tokens = rustflags.split_whitespace().peekable();
    while let Some(tok) = tokens.next() {
        let candidate = if tok == "-C" {
            tokens.peek().copied().unwrap_or_default()
        } else if let Some(rest) = tok.strip_prefix("-C") {
            rest
        } else {
            continue;
        };
        if let Some(cpu) = candidate.strip_prefix("target-cpu=") {
            if !cpu.is_empty() {
                return cpu.to_string();
            }
        }
    }
    "default".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_never_panics_and_fills_every_field() {
        let h = SchemaHeader::capture();
        assert_eq!(h.version, SCHEMA_VERSION);
        assert!(!h.git_commit.is_empty());
        assert!(h.threads >= 1);
        assert!(!h.target_cpu.is_empty());
    }

    #[test]
    fn json_member_shape_is_stable() {
        let h = SchemaHeader {
            version: 1,
            git_commit: "abc1234".to_string(),
            threads: 8,
            target_cpu: "native".to_string(),
        };
        assert_eq!(
            h.to_json_member(2),
            "  \"schema\": {\n    \"version\": 1,\n    \"git_commit\": \"abc1234\",\n    \"threads\": 8,\n    \"target_cpu\": \"native\"\n  }"
        );
    }

    #[test]
    fn rustflags_parsing_handles_both_spellings() {
        assert_eq!(rustflags_target_cpu("-Ctarget-cpu=native"), "native");
        assert_eq!(rustflags_target_cpu("-C target-cpu=znver3"), "znver3");
        assert_eq!(
            rustflags_target_cpu("-Copt-level=3 -C target-cpu=haswell -Dwarnings"),
            "haswell"
        );
        assert_eq!(rustflags_target_cpu(""), "default");
        assert_eq!(rustflags_target_cpu("-Copt-level=3"), "default");
        assert_eq!(rustflags_target_cpu("-Ctarget-cpu="), "default");
    }

    #[test]
    fn escape_guards_quotes_and_controls() {
        assert_eq!(escape("abc123"), "abc123");
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c d");
    }
}
