//! Hand-rolled, loom-style exhaustive interleaving model of the
//! [`crate::par`] chunk-claim protocol.
//!
//! The `unsafe` fan-out in `par.rs` stands on three claims:
//!
//! 1. ranges claimed from the shared atomic cursor are pairwise disjoint,
//! 2. on the success path every output slot in `[0, n)` is written exactly
//!    once before the buffer is reinterpreted as `Vec<U>`,
//! 3. under a panic in the caller's closure, the [`InitRanges`]-style
//!    ledger records *exactly* the initialized slots — the set the
//!    `OutputGuard` must drop (anything less leaks, anything more is a
//!    drop of uninitialized memory).
//!
//! Rather than trusting the SAFETY comments, this module re-expresses the
//! worker loop as an explicit state machine whose atomic steps —
//! `fetch_add` claims, per-slot writes, panic at a chosen slot, ledger
//! pushes — are interleaved *in every possible order* by a depth-first
//! scheduler with state memoization. For the small configurations explored
//! this is a proof by enumeration of claims 1–3; `scripts/sanitize.sh`
//! complements it with Miri/TSan runs of the real implementation, and
//! deeper configurations run under `--cfg puf_model_check`
//! (`RUSTFLAGS="--cfg puf_model_check" cargo test -p puf-bench`).
//!
//! The module is ordinary safe code over a *model* of the buffer (a vector
//! of write counts), so it compiles under the crate's `deny(unsafe_code)`.

use std::collections::BTreeSet;

/// One model configuration: `n` items, fixed `chunk`, `workers` threads,
/// and optionally a global item index at which the closure panics.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Item count (output buffer length).
    pub n: usize,
    /// Chunk size claimed per `fetch_add`.
    pub chunk: usize,
    /// Worker thread count.
    pub workers: usize,
    /// `Some(i)`: the closure panics when asked to compute item `i`.
    pub panic_at: Option<usize>,
}

/// What one worker does next. Mirrors the loop in `par_map_with_workers`:
/// claim → write slots of the claimed chunk one at a time (recording the
/// chunk in the ledger when it completes or when a panic unwinds it) →
/// claim again, until the cursor passes `n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Worker {
    /// About to `fetch_add` the cursor.
    Claiming,
    /// Writing `next` within claimed `[start, end)`.
    Writing {
        start: usize,
        end: usize,
        next: usize,
    },
    /// Unwound out of the closure (chunk prefix already in the ledger).
    Panicked,
    /// Observed `start >= n` and exited the loop.
    Done,
}

/// A global model state between atomic steps.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct State {
    cursor: usize,
    workers: Vec<Worker>,
    /// Per-slot write count; a value > 1 is an aliasing bug.
    writes: Vec<u8>,
    /// Ledger of ranges recorded as fully initialized (sorted set — push
    /// order does not matter to the drop guard).
    ledger: BTreeSet<(usize, usize)>,
}

/// Outcome statistics of one exhaustive exploration.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Explored {
    /// Distinct states visited.
    pub states: usize,
    /// Distinct terminal states reached.
    pub terminals: usize,
}

/// Exhaustively explores every interleaving of `cfg`, checking the
/// protocol invariants at every step and every terminal state.
///
/// # Panics
///
/// Panics with a diagnostic if any interleaving violates an invariant —
/// overlapping claims, a double write, a missed slot, or a ledger that
/// disagrees with the initialized set.
pub fn check(cfg: Config) -> Explored {
    assert!(cfg.chunk >= 1, "chunk must be at least 1");
    assert!(cfg.workers >= 1, "need at least one worker");
    let initial = State {
        cursor: 0,
        workers: vec![Worker::Claiming; cfg.workers],
        writes: vec![0; cfg.n],
        ledger: BTreeSet::new(),
    };
    let mut visited: BTreeSet<State> = BTreeSet::new();
    let mut stats = Explored::default();
    let mut stack = vec![initial];
    while let Some(state) = stack.pop() {
        if !visited.insert(state.clone()) {
            continue;
        }
        stats.states += 1;
        let runnable: Vec<usize> = state
            .workers
            .iter()
            .enumerate()
            .filter(|(_, w)| matches!(w, Worker::Claiming | Worker::Writing { .. }))
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            stats.terminals += 1;
            check_terminal(&cfg, &state);
            continue;
        }
        for wid in runnable {
            stack.push(step(&cfg, &state, wid));
        }
    }
    stats
}

/// Advances worker `wid` by one atomic step, checking step invariants.
fn step(cfg: &Config, state: &State, wid: usize) -> State {
    let mut next = state.clone();
    match state.workers[wid] {
        Worker::Claiming => {
            // fetch_add(chunk): the returned start is the pre-increment
            // cursor; the increment is atomic, so no two workers can
            // observe the same start.
            let start = next.cursor;
            next.cursor += cfg.chunk;
            next.workers[wid] = if start >= cfg.n {
                Worker::Done
            } else {
                Worker::Writing {
                    start,
                    end: (start + cfg.chunk).min(cfg.n),
                    next: start,
                }
            };
        }
        Worker::Writing {
            start,
            end,
            next: slot,
        } => {
            if cfg.panic_at == Some(slot) {
                // The closure unwinds before the slot is written; the
                // chunk guard records the prefix written so far.
                if slot > start {
                    next.ledger.insert((start, slot));
                }
                next.workers[wid] = Worker::Panicked;
            } else {
                assert!(
                    slot < cfg.n,
                    "write past the buffer: slot {slot} with n={}",
                    cfg.n
                );
                next.writes[slot] += 1;
                assert!(
                    next.writes[slot] == 1,
                    "slot {slot} written twice — claimed ranges alias \
                     (cursor={}, worker={wid})",
                    state.cursor
                );
                let written = slot + 1;
                next.workers[wid] = if written == end {
                    next.ledger.insert((start, end));
                    Worker::Claiming
                } else {
                    Worker::Writing {
                        start,
                        end,
                        next: written,
                    }
                };
            }
        }
        Worker::Panicked | Worker::Done => unreachable!("terminal workers are not runnable"),
    }
    next
}

/// Terminal-state invariants: see claims 1–3 in the module docs.
fn check_terminal(cfg: &Config, state: &State) {
    // Ledger ranges are pairwise disjoint (BTreeSet order makes the scan
    // linear) and every recorded slot was written.
    let mut prev_end = 0usize;
    for &(start, end) in &state.ledger {
        assert!(start < end, "empty range in ledger");
        assert!(
            start >= prev_end,
            "ledger ranges overlap: ({start}, {end}) after end {prev_end}"
        );
        prev_end = end;
        for slot in start..end {
            assert!(
                state.writes[slot] == 1,
                "ledger claims slot {slot} initialized but it was never written"
            );
        }
    }
    let ledger_slots: usize = state.ledger.iter().map(|&(s, e)| e - s).sum();
    let written_slots = state.writes.iter().filter(|&&w| w > 0).count();
    assert_eq!(
        ledger_slots, written_slots,
        "ledger does not account for every initialized slot — the drop \
         guard would leak (writes={:?}, ledger={:?})",
        state.writes, state.ledger
    );
    if cfg.panic_at.is_none() {
        // Success path: full coverage, every slot exactly once.
        assert!(
            state.writes.iter().all(|&w| w == 1),
            "missed or repeated slot on the success path: {:?}",
            state.writes
        );
        assert_eq!(ledger_slots, cfg.n, "ledger must cover [0, n) on success");
    } else {
        let any_panicked = state.workers.contains(&Worker::Panicked);
        assert!(
            any_panicked,
            "panic_at={:?} was claimed by nobody despite termination",
            cfg.panic_at
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_paths_exhaustively_verified() {
        // Small but adversarial shapes: chunk == 1 (max interleaving),
        // chunk not dividing n (tail chunk), chunk > n (single claim wins),
        // more workers than chunks.
        for cfg in [
            Config {
                n: 4,
                chunk: 1,
                workers: 2,
                panic_at: None,
            },
            Config {
                n: 5,
                chunk: 2,
                workers: 2,
                panic_at: None,
            },
            Config {
                n: 3,
                chunk: 4,
                workers: 2,
                panic_at: None,
            },
            Config {
                n: 6,
                chunk: 2,
                workers: 3,
                panic_at: None,
            },
        ] {
            let stats = check(cfg);
            assert!(stats.states > 1, "model must actually branch: {cfg:?}");
            assert!(stats.terminals >= 1);
        }
    }

    #[test]
    fn every_panic_site_keeps_the_ledger_exact() {
        // A panic at each possible item index, under contention.
        let base = Config {
            n: 5,
            chunk: 2,
            workers: 2,
            panic_at: None,
        };
        for at in 0..base.n {
            check(Config {
                panic_at: Some(at),
                ..base
            });
        }
    }

    #[test]
    fn panic_with_three_workers_and_tail_chunk() {
        for at in [0, 2, 4] {
            check(Config {
                n: 5,
                chunk: 2,
                workers: 3,
                panic_at: Some(at),
            });
        }
    }

    /// Deeper configurations for the dedicated model-check run:
    /// `RUSTFLAGS="--cfg puf_model_check" cargo test -p puf-bench par_model`.
    #[cfg(puf_model_check)]
    #[test]
    fn deep_configurations_under_cfg_flag() {
        for cfg in [
            Config {
                n: 8,
                chunk: 1,
                workers: 3,
                panic_at: None,
            },
            Config {
                n: 10,
                chunk: 3,
                workers: 3,
                panic_at: None,
            },
            Config {
                n: 9,
                chunk: 2,
                workers: 4,
                panic_at: Some(5),
            },
        ] {
            let stats = check(cfg);
            assert!(
                stats.states > 100,
                "deep config should branch widely: {cfg:?}"
            );
        }
    }
}
