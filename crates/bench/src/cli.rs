//! Shared flag parsing for the bench binaries.
//!
//! Every bench bin (`chaos`, `trillion`, `server`, `soak`) takes the same
//! hand-rolled flag family — `--smoke`, `--seed N`, `--out PATH`,
//! `--trace[=PATH]`, plus `--no-gate` for gated benches and
//! `--fresh` / `--checkpoint PATH` for resumable ones. The parse loop used
//! to be duplicated per bin and drifted (different expected-flag lists,
//! different error spellings); this module is the single copy.
//!
//! A bin declares which optional flag families it accepts via
//! [`BenchCliSpec`] and gets back a parsed [`BenchCli`]. Unknown flags —
//! including flags from a family the bin did not opt into — panic with the
//! bin's exact accepted-flag list, preserving the old behaviour (bench
//! bins are allowed to panic; they are not library code).

/// Parsed bench-bin flags.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchCli {
    /// `--smoke`: run the seconds-scale bounded variant.
    pub smoke: bool,
    /// `--no-gate`: record results even when a performance gate fails.
    /// Always `false` for bins that did not opt into the gate family.
    pub no_gate: bool,
    /// `--fresh`: ignore an existing checkpoint and start over.
    /// Always `false` for bins without checkpoints.
    pub fresh: bool,
    /// `--seed N` (defaulting to the spec's default seed).
    pub seed: u64,
    /// `--out PATH`, if given.
    pub out: Option<String>,
    /// `--checkpoint PATH`, if given. Always `None` for bins without
    /// checkpoints.
    pub checkpoint: Option<String>,
    /// `--trace[=PATH]`: bare `--trace` resolves to the spec's default
    /// trace path.
    pub trace: Option<String>,
}

/// Which flag families a bench bin accepts, and its defaults.
#[derive(Clone, Debug)]
pub struct BenchCliSpec {
    default_seed: u64,
    trace_default: &'static str,
    gate: bool,
    checkpoint: bool,
}

impl BenchCliSpec {
    /// A spec accepting the base family (`--smoke` / `--seed N` /
    /// `--out PATH` / `--trace[=PATH]`), with seed defaulting to 2017
    /// (the paper year, as everywhere else in this repo) and bare
    /// `--trace` writing to `trace_default`.
    pub fn new(trace_default: &'static str) -> Self {
        Self {
            default_seed: 2017,
            trace_default,
            gate: false,
            checkpoint: false,
        }
    }

    /// Also accept `--no-gate`.
    #[must_use]
    pub fn with_gate(mut self) -> Self {
        self.gate = true;
        self
    }

    /// Also accept `--fresh` and `--checkpoint PATH`.
    #[must_use]
    pub fn with_checkpoint(mut self) -> Self {
        self.checkpoint = true;
        self
    }

    /// Override the default seed.
    #[must_use]
    pub fn default_seed(mut self, seed: u64) -> Self {
        self.default_seed = seed;
        self
    }

    /// Parses the process arguments.
    ///
    /// # Panics
    ///
    /// On any unknown flag or missing flag value, with the full list of
    /// flags this bin accepts.
    pub fn parse(&self) -> BenchCli {
        self.parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit argument iterator (the testable entry point).
    ///
    /// # Panics
    ///
    /// As for [`Self::parse`].
    pub fn parse_from<I>(&self, args: I) -> BenchCli
    where
        I: IntoIterator<Item = String>,
    {
        let mut cli = BenchCli {
            smoke: false,
            no_gate: false,
            fresh: false,
            seed: self.default_seed,
            out: None,
            checkpoint: None,
            trace: None,
        };
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--smoke" => cli.smoke = true,
                "--no-gate" if self.gate => cli.no_gate = true,
                "--fresh" if self.checkpoint => cli.fresh = true,
                "--seed" => {
                    cli.seed = args
                        .next()
                        .and_then(|v| v.trim().parse().ok())
                        .unwrap_or_else(|| panic!("--seed takes an integer"));
                }
                "--out" => {
                    cli.out = Some(args.next().unwrap_or_else(|| panic!("--out takes a path")));
                }
                "--checkpoint" if self.checkpoint => {
                    cli.checkpoint = Some(
                        args.next()
                            .unwrap_or_else(|| panic!("--checkpoint takes a path")),
                    );
                }
                "--trace" => cli.trace = Some(self.trace_default.to_string()),
                other if other.starts_with("--trace=") => {
                    cli.trace = Some(other["--trace=".len()..].to_string());
                }
                other => panic!("unknown argument {other} (expected {})", self.expected()),
            }
        }
        cli
    }

    fn expected(&self) -> String {
        let mut expected = String::from("--smoke");
        if self.gate {
            expected.push_str(" / --no-gate");
        }
        if self.checkpoint {
            expected.push_str(" / --fresh");
        }
        expected.push_str(" / --seed N / --out PATH");
        if self.checkpoint {
            expected.push_str(" / --checkpoint PATH");
        }
        expected.push_str(" / --trace[=PATH]");
        expected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults() {
        let cli = BenchCliSpec::new("target/t.json").parse_from(strs(&[]));
        assert_eq!(cli.seed, 2017);
        assert!(!cli.smoke && !cli.no_gate && !cli.fresh);
        assert_eq!(cli.out, None);
        assert_eq!(cli.checkpoint, None);
        assert_eq!(cli.trace, None);
    }

    #[test]
    fn full_flag_family_parses() {
        let cli = BenchCliSpec::new("target/t.json")
            .with_gate()
            .with_checkpoint()
            .parse_from(strs(&[
                "--smoke",
                "--no-gate",
                "--fresh",
                "--seed",
                "7",
                "--out",
                "o.json",
                "--checkpoint",
                "c.txt",
                "--trace",
            ]));
        assert!(cli.smoke && cli.no_gate && cli.fresh);
        assert_eq!(cli.seed, 7);
        assert_eq!(cli.out.as_deref(), Some("o.json"));
        assert_eq!(cli.checkpoint.as_deref(), Some("c.txt"));
        assert_eq!(cli.trace.as_deref(), Some("target/t.json"));
    }

    #[test]
    fn trace_path_override() {
        let cli = BenchCliSpec::new("target/t.json").parse_from(strs(&["--trace=x.json"]));
        assert_eq!(cli.trace.as_deref(), Some("x.json"));
    }

    #[test]
    #[should_panic(expected = "unknown argument --bogus")]
    fn unknown_flag_panics_with_expected_list() {
        BenchCliSpec::new("t").parse_from(strs(&["--bogus"]));
    }

    #[test]
    #[should_panic(expected = "unknown argument --no-gate")]
    fn gate_flag_rejected_unless_opted_in() {
        BenchCliSpec::new("t").parse_from(strs(&["--no-gate"]));
    }

    #[test]
    #[should_panic(expected = "--seed takes an integer")]
    fn seed_requires_an_integer() {
        BenchCliSpec::new("t").parse_from(strs(&["--seed", "abc"]));
    }
}
