//! Fleet-scale authentication drivers for the batched [`AuthService`].
//!
//! This module synthesizes a deterministic fleet of enrolled chips (no
//! silicon measurement loop — enrollment models are drawn directly, so a
//! million chips enroll in seconds), shards it with [`shard_of`], and
//! drives millions of authentication sessions two ways:
//!
//! - [`run_batched`] — through per-shard [`AuthService`] event loops,
//!   executed on [`crate::par::par_map_with_workers`]. Shards share only
//!   the read-only [`ChallengeUniverse`], so the merged verdict stream is
//!   bit-identical for any worker count.
//! - [`run_sequential`] — the same sessions, in the same per-chip order,
//!   through a classic [`SessionManager`] with a [`PoolSource`] — one
//!   scalar model evaluation per challenge draw, no batching anywhere.
//!
//! Every per-session input (rng, fault plan, impostor choice) derives
//! from `(config.seed, session uid)` through [`service_lane`], so the two
//! paths — and any shard/worker schedule — see byte-identical streams.
//! `tests/service_equivalence.rs` pins that the verdicts agree; the
//! `server` bench bin uses the same drivers to measure the speedup.
//!
//! [`SessionManager`]: puf_protocol::SessionManager

use puf_core::bitslice::{xor_response_packed_many, PackedBits};
use puf_core::XorPuf;
use puf_protocol::enrollment::{EnrolledChip, EnrolledPuf};
use puf_protocol::{
    service_lane, shard_of, AuthService, Betas, ChallengeUniverse, ChannelFaultPlan, FaultPlan,
    FaultyChannel, FaultyResponder, PoolSource, ProtocolError, RandomResponder, Responder, Server,
    ServiceConfig, ServiceStats, SessionManager, SessionPolicy, SessionReport, StoredChip,
    Thresholds,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Lane salt for per-chip enrollment model draws.
const CHIP_LANE_SALT: u64 = 0xC41B_0001;
/// Lane salt for per-session rng streams.
const SESSION_LANE_SALT: u64 = 0x5E55_0002;
/// Lane salt for per-session fault plans.
const FAULT_LANE_SALT: u64 = 0xFA17_0003;
/// Lane salt for the impostor coin.
const IMPOSTOR_LANE_SALT: u64 = 0x1117_0004;

/// One fleet scenario: fleet shape, load shape, chaos rates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FleetConfig {
    /// Master seed; everything derives from it via [`service_lane`].
    pub seed: u64,
    /// Challenge bit width.
    pub stages: usize,
    /// XOR width `n` of every synthetic chip.
    pub members: usize,
    /// Symmetric stability threshold `t`: member predictions in `[-t, t]`
    /// classify unstable.
    pub threshold: f64,
    /// Chips enrolled in the store.
    pub enrolled_chips: u32,
    /// Chips that actually receive sessions (ids `0..active_chips`).
    pub active_chips: u32,
    /// Sessions submitted per active chip (serialized by the per-chip
    /// FIFO).
    pub sessions_per_chip: u32,
    /// Ticks between consecutive sessions of one chip (`not_before`
    /// stagger).
    pub session_gap_ticks: u64,
    /// Size of the shared challenge universe.
    pub universe: usize,
    /// Shard count.
    pub shards: usize,
    /// Session policy (shared by batched and sequential paths).
    pub policy: SessionPolicy,
    /// Flush when this many verification rows are pending…
    pub flush_rows: usize,
    /// …or when the oldest pending row is this many ticks old.
    pub flush_ticks: u64,
    /// Per-bit response flip rate on genuine devices (fault layer).
    pub response_flip_rate: f64,
    /// Transport chaos plan.
    pub channel: ChannelFaultPlan,
    /// Fraction of sessions driven by a random impostor.
    pub impostor_fraction: f64,
}

impl FleetConfig {
    /// The smoke scenario: 100k enrolled chips, ~16k sessions.
    pub fn smoke(seed: u64) -> Self {
        Self {
            seed,
            stages: 64,
            members: 2,
            threshold: 1.2,
            enrolled_chips: 100_000,
            active_chips: 4_000,
            sessions_per_chip: 4,
            session_gap_ticks: 24,
            universe: 1024,
            shards: 8,
            policy: SessionPolicy::resilient(48),
            flush_rows: 2_048,
            flush_ticks: 4,
            response_flip_rate: 0.01,
            channel: ChannelFaultPlan {
                drop_rate: 0.02,
                straggle_rate: 0.01,
                duplicate_rate: 0.01,
                reorder_rate: 0.01,
                corrupt_rate: 0.005,
            },
            impostor_fraction: 0.02,
        }
    }

    /// The full scenario: ~1M enrolled chips, ~1M sessions.
    pub fn full(seed: u64) -> Self {
        Self {
            enrolled_chips: 1_000_000,
            active_chips: 50_000,
            sessions_per_chip: 20,
            flush_rows: 8_192,
            ..Self::smoke(seed)
        }
    }

    /// A tiny scenario for property tests: a handful of chips, small
    /// universe, aggressive chaos.
    pub fn tiny(seed: u64) -> Self {
        Self {
            seed,
            stages: 16,
            members: 2,
            threshold: 0.6,
            enrolled_chips: 12,
            active_chips: 8,
            sessions_per_chip: 3,
            session_gap_ticks: 6,
            universe: 192,
            shards: 3,
            policy: SessionPolicy::resilient(8),
            flush_rows: 16,
            flush_ticks: 3,
            response_flip_rate: 0.03,
            channel: ChannelFaultPlan {
                drop_rate: 0.08,
                straggle_rate: 0.04,
                duplicate_rate: 0.04,
                reorder_rate: 0.04,
                corrupt_rate: 0.03,
            },
            impostor_fraction: 0.2,
        }
    }

    /// Total sessions the scenario submits.
    pub fn total_sessions(&self) -> u64 {
        u64::from(self.active_chips) * u64::from(self.sessions_per_chip)
    }

    /// The global session uid of chip `chip_id`'s `k`-th session.
    pub fn session_uid(&self, chip_id: u32, k: u32) -> u64 {
        u64::from(chip_id) * u64::from(self.sessions_per_chip) + u64::from(k)
    }
}

/// The per-member enrollment model draws for one synthetic chip — both
/// the stored record and the device rebuild from this one stream.
fn chip_thetas(config: &FleetConfig, chip_id: u32) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(service_lane(
        config.seed ^ CHIP_LANE_SALT,
        u64::from(chip_id),
    ));
    (0..config.members)
        .map(|_| {
            (0..=config.stages)
                .map(|_| rng.gen_range(-1.0..1.0))
                .collect()
        })
        .collect()
}

/// The full enrollment record of a synthetic chip (model + symmetric
/// thresholds + identity βs).
pub fn enrolled_record(config: &FleetConfig, chip_id: u32) -> EnrolledChip {
    let pufs = chip_thetas(config, chip_id)
        .into_iter()
        .map(|theta| EnrolledPuf {
            model: puf_ml::LinearRegression::from_theta(theta),
            thresholds: Thresholds::new(-config.threshold, config.threshold),
            betas: Betas::IDENTITY,
        })
        .collect();
    EnrolledChip {
        chip_id,
        stages: config.stages,
        pufs,
    }
}

/// The compact stored form of a synthetic chip.
pub fn stored_record(config: &FleetConfig, chip_id: u32) -> StoredChip {
    StoredChip::from_enrolled(&enrolled_record(config, chip_id))
        .expect("synthetic enrollment records are well-formed")
}

/// The genuine device twin of a synthetic chip: the raw (unshifted)
/// enrollment model itself. With symmetric thresholds its response equals
/// the expected bit on every predicted-stable challenge, so clean genuine
/// sessions accept; the fault layer supplies the noise.
pub fn device_model(config: &FleetConfig, chip_id: u32) -> XorPuf {
    let members = chip_thetas(config, chip_id)
        .into_iter()
        .map(|theta| {
            puf_core::ArbiterPuf::from_weights(theta).expect("synthetic weights are finite")
        })
        .collect();
    XorPuf::from_members(members).expect("fleet chips have at least one member")
}

/// A chip's device side, built once per active chip: the raw model plus
/// its precomputed response plane over the universe. The plane is
/// bit-identical to scalar evaluation (the bit-sliced kernels compute the
/// exact same FMA-free products), so answering from it changes nothing
/// except cost — and both the batched and the sequential drivers use the
/// same twin, keeping the speedup comparison about *server-side* work.
#[derive(Clone, Debug)]
pub struct DeviceTwin {
    universe: Arc<ChallengeUniverse>,
    model: Arc<XorPuf>,
    plane: Arc<PackedBits>,
}

/// Builds device twins for `chip_ids` in one fleet dispatch through the
/// bit-sliced engine (one plane per chip, all models in a single call —
/// per-chip dispatch overhead would otherwise dominate small fleets).
pub fn build_twins(
    config: &FleetConfig,
    universe: &Arc<ChallengeUniverse>,
    chip_ids: &[u32],
) -> BTreeMap<u32, DeviceTwin> {
    let models: Vec<Arc<XorPuf>> = chip_ids
        .iter()
        .map(|&id| Arc::new(device_model(config, id)))
        .collect();
    let refs: Vec<&XorPuf> = models.iter().map(|m| m.as_ref()).collect();
    let planes = xor_response_packed_many(&refs, universe.features());
    chip_ids
        .iter()
        .zip(models)
        .zip(planes)
        .map(|((&id, model), plane)| {
            (
                id,
                DeviceTwin {
                    universe: Arc::clone(universe),
                    model,
                    plane: Arc::new(plane),
                },
            )
        })
        .collect()
}

/// Builds the device twin of one synthetic chip.
pub fn device_twin(
    config: &FleetConfig,
    universe: &Arc<ChallengeUniverse>,
    chip_id: u32,
) -> DeviceTwin {
    build_twins(config, universe, &[chip_id])
        .remove(&chip_id)
        .expect("twin built for the requested chip")
}

/// A device-side responder answering from a [`DeviceTwin`].
#[derive(Clone, Debug)]
pub struct DeviceResponder {
    twin: DeviceTwin,
}

impl Responder for DeviceResponder {
    fn respond(&mut self, challenges: &[puf_core::Challenge]) -> Vec<bool> {
        challenges
            .iter()
            .map(|c| match self.twin.universe.index_of(c.bits()) {
                Some(i) => self.twin.plane.get(i as usize),
                None => self.twin.model.response(c),
            })
            .collect()
    }
}

/// The client of one fleet session: a genuine (fault-wrapped) device or a
/// random impostor.
#[derive(Debug)]
pub enum FleetClient {
    /// The chip's own model behind the response-flip fault lane.
    Genuine(FaultyResponder<DeviceResponder>),
    /// A coin-flipping impostor.
    Impostor(RandomResponder),
}

impl Responder for FleetClient {
    fn respond(&mut self, challenges: &[puf_core::Challenge]) -> Vec<bool> {
        match self {
            FleetClient::Genuine(r) => r.respond(challenges),
            FleetClient::Impostor(r) => r.respond(challenges),
        }
    }

    fn try_respond(
        &mut self,
        challenges: &[puf_core::Challenge],
    ) -> Result<Vec<bool>, ProtocolError> {
        match self {
            FleetClient::Genuine(r) => r.try_respond(challenges),
            FleetClient::Impostor(r) => r.try_respond(challenges),
        }
    }
}

/// The fault plan of one session (flip + channel lanes, seeded by uid).
fn session_plan(config: &FleetConfig, uid: u64) -> FaultPlan {
    FaultPlan::none(service_lane(config.seed ^ FAULT_LANE_SALT, uid))
        .with_response_flips(config.response_flip_rate)
        .with_channel(config.channel)
}

/// Whether session `uid` is driven by an impostor.
pub fn is_impostor(config: &FleetConfig, uid: u64) -> bool {
    let coin = service_lane(config.seed ^ IMPOSTOR_LANE_SALT, uid);
    (coin as f64 / u64::MAX as f64) < config.impostor_fraction
}

/// Builds the client side of session `uid`, reusing the chip's shared
/// device twin.
pub fn session_client(config: &FleetConfig, twin: &DeviceTwin, uid: u64) -> FleetClient {
    if is_impostor(config, uid) {
        FleetClient::Impostor(RandomResponder::new(service_lane(
            config.seed ^ IMPOSTOR_LANE_SALT,
            uid.wrapping_add(1),
        )))
    } else {
        FleetClient::Genuine(FaultyResponder::new(
            DeviceResponder { twin: twin.clone() },
            &session_plan(config, uid),
        ))
    }
}

/// The transport channel of session `uid`.
pub fn session_channel(config: &FleetConfig, uid: u64) -> FaultyChannel {
    session_plan(config, uid).channel_faults()
}

/// The server-side rng of session `uid` (challenge draws).
pub fn session_rng(config: &FleetConfig, uid: u64) -> StdRng {
    StdRng::seed_from_u64(service_lane(config.seed ^ SESSION_LANE_SALT, uid))
}

/// Generates the shared challenge universe for a scenario.
pub fn build_universe(config: &FleetConfig) -> Arc<ChallengeUniverse> {
    let mut rng = StdRng::seed_from_u64(service_lane(config.seed, 0));
    Arc::new(
        ChallengeUniverse::generate(config.stages, config.universe, &mut rng)
            .expect("fleet universe generation"),
    )
}

/// The merged result of one shard's event loop.
#[derive(Clone, Debug)]
pub struct ShardRun {
    /// Shard index.
    pub shard: usize,
    /// Session uid → final report (exactly what the sequential replay
    /// returns for the same uid).
    pub reports: BTreeMap<u64, Result<SessionReport, ProtocolError>>,
    /// Session uid → verdict latency in ticks (decided − requested).
    pub latencies: BTreeMap<u64, u64>,
    /// Event-loop statistics.
    pub stats: ServiceStats,
    /// Chips enrolled in this shard.
    pub enrolled: usize,
    /// Compact-record bytes held by this shard.
    pub stored_bytes: usize,
    /// Warm-plane bytes held by this shard at drain time.
    pub warm_bytes: usize,
}

/// One shard's service instance with the fleet client/channel types.
pub type FleetService = AuthService<FleetClient, FaultyChannel>;

/// Builds one shard's store: a fresh [`AuthService`] with this shard's
/// slice of the fleet enrolled (no sessions yet). Kept separate from
/// [`serve_shard`] so benchmarks can time enrollment and serving
/// independently.
///
/// # Panics
///
/// Panics if the scenario's service configuration is invalid.
pub fn build_shard(
    config: &FleetConfig,
    universe: &Arc<ChallengeUniverse>,
    shard: usize,
) -> FleetService {
    let service_config = ServiceConfig {
        policy: config.policy,
        flush_rows: config.flush_rows,
        flush_ticks: config.flush_ticks,
    };
    let mut service: FleetService =
        AuthService::new(service_config, Arc::clone(universe)).expect("fleet service config");
    for chip_id in 0..config.enrolled_chips {
        if shard_of(config.seed, chip_id, config.shards) != shard {
            continue;
        }
        service
            .enroll_stored(stored_record(config, chip_id))
            .expect("fleet records match the universe width");
    }
    service
}

/// Drives one shard's sessions to completion on its built service.
///
/// # Panics
///
/// Panics if the event loop fails to drain within a generous tick budget
/// (a scheduling bug, not a data condition).
pub fn serve_shard(config: &FleetConfig, shard: usize, mut service: FleetService) -> ShardRun {
    let enrolled = service.store().len();
    let stored_bytes = service.store().stored_bytes();

    // Device side: every active chip's twin in one fleet dispatch.
    let active: Vec<u32> = (0..config.active_chips)
        .filter(|&id| shard_of(config.seed, id, config.shards) == shard)
        .collect();
    let twins = build_twins(config, service.universe_arc(), &active);

    // Submit this shard's sessions: chips ascending, per-chip serial order.
    let mut uid_of_session: BTreeMap<u64, u64> = BTreeMap::new();
    for chip_id in active {
        let twin = &twins[&chip_id];
        for k in 0..config.sessions_per_chip {
            let uid = config.session_uid(chip_id, k);
            let session_id = service.submit(
                chip_id,
                session_client(config, twin, uid),
                session_channel(config, uid),
                session_rng(config, uid),
                u64::from(k) * config.session_gap_ticks,
            );
            uid_of_session.insert(session_id, uid);
        }
    }

    let budget = 1_000_000 + config.total_sessions() * 64;
    assert!(
        service.run_until_idle(budget),
        "shard {shard} failed to drain within {budget} ticks"
    );

    let mut reports = BTreeMap::new();
    let mut latencies = BTreeMap::new();
    for verdict in service.drain_verdicts() {
        let uid = uid_of_session[&verdict.session_id];
        let requested = u64::from((uid % u64::from(config.sessions_per_chip)) as u32)
            * config.session_gap_ticks;
        latencies.insert(uid, verdict.decided_tick.saturating_sub(requested).max(1));
        reports.insert(uid, verdict.result);
    }
    ShardRun {
        shard,
        reports,
        latencies,
        stats: *service.stats(),
        enrolled,
        stored_bytes,
        warm_bytes: service.store().warm_bytes(),
    }
}

/// A whole fleet run: every shard's result, merged accessors on top.
#[derive(Clone, Debug)]
pub struct FleetRun {
    /// Per-shard results, ascending shard index.
    pub shards: Vec<ShardRun>,
}

impl FleetRun {
    /// All session reports merged, keyed by uid.
    pub fn reports(&self) -> BTreeMap<u64, &Result<SessionReport, ProtocolError>> {
        self.shards
            .iter()
            .flat_map(|s| s.reports.iter().map(|(&uid, r)| (uid, r)))
            .collect()
    }

    /// All verdict latencies merged, keyed by uid.
    pub fn latencies(&self) -> Vec<u64> {
        let mut all: Vec<u64> = self
            .shards
            .iter()
            .flat_map(|s| s.latencies.values().copied())
            .collect();
        all.sort_unstable();
        all
    }

    /// Total chips enrolled across shards.
    pub fn enrolled(&self) -> usize {
        self.shards.iter().map(|s| s.enrolled).sum()
    }

    /// Total compact-record bytes across shards.
    pub fn stored_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.stored_bytes).sum()
    }

    /// Total warm-plane bytes across shards.
    pub fn warm_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.warm_bytes).sum()
    }

    /// Summed event-loop statistics.
    pub fn stats(&self) -> ServiceStats {
        let mut total = ServiceStats::default();
        for s in &self.shards {
            total.ticks += s.stats.ticks;
            total.submitted += s.stats.submitted;
            total.decided += s.stats.decided;
            total.flushes += s.stats.flushes;
            total.aged_flushes += s.stats.aged_flushes;
            total.max_flush_rows = total.max_flush_rows.max(s.stats.max_flush_rows);
            total.warm_batches += s.stats.warm_batches;
            total.warm_chips += s.stats.warm_chips;
            total.warm_member_evals += s.stats.warm_member_evals;
        }
        total
    }
}

/// Builds every shard's store on `workers` deterministic workers.
pub fn build_fleet(
    config: &FleetConfig,
    universe: &Arc<ChallengeUniverse>,
    workers: usize,
) -> Vec<FleetService> {
    let shard_ids: Vec<usize> = (0..config.shards).collect();
    crate::par::par_map_with_workers(workers, &shard_ids, |_, &shard| {
        build_shard(config, universe, shard)
    })
}

/// Drives every built shard to completion on `workers` deterministic
/// workers. Shards share nothing, so the merged verdict stream is
/// bit-identical for any `workers` value.
///
/// # Panics
///
/// Panics if `services` does not hold one service per configured shard.
pub fn serve_fleet(config: &FleetConfig, services: Vec<FleetService>, workers: usize) -> FleetRun {
    assert_eq!(services.len(), config.shards, "one service per shard");
    let slots: Vec<std::sync::Mutex<Option<FleetService>>> =
        services.into_iter().map(|s| Mutex::new(Some(s))).collect();
    let shards = crate::par::par_map_with_workers(workers, &slots, |shard, slot| {
        let service = slot
            .lock()
            .expect("shard slot lock")
            .take()
            .expect("each shard is served exactly once");
        serve_shard(config, shard, service)
    });
    FleetRun { shards }
}

/// Builds and serves the whole scenario on `workers` deterministic
/// workers. The result is bit-identical for any `workers` value: shards
/// share nothing and every per-session input is uid-derived.
pub fn run_batched(
    config: &FleetConfig,
    universe: &Arc<ChallengeUniverse>,
    workers: usize,
) -> FleetRun {
    serve_fleet(config, build_fleet(config, universe, workers), workers)
}

/// Replays sessions `uid < limit` sequentially through a
/// [`SessionManager`] + [`PoolSource`] — one scalar model evaluation per
/// challenge draw. Returns uid → report, directly comparable with
/// [`FleetRun::reports`].
///
/// # Panics
///
/// Panics if a synthetic record fails to register (cannot happen for
/// well-formed fleet configs).
pub fn run_sequential(
    config: &FleetConfig,
    universe: &Arc<ChallengeUniverse>,
    limit: u64,
) -> BTreeMap<u64, Result<SessionReport, ProtocolError>> {
    let mut manager =
        SessionManager::new(Server::new(), config.policy).expect("fleet session policy");
    let mut source = PoolSource::new(Arc::clone(universe));
    let mut reports = BTreeMap::new();
    let active: Vec<u32> = (0..config.active_chips)
        .filter(|&id| config.session_uid(id, 0) < limit)
        .collect();
    let twins = build_twins(config, universe, &active);
    for chip_id in active {
        source
            .register(&stored_record(config, chip_id))
            .expect("fleet records rebuild");
        let twin = &twins[&chip_id];
        for k in 0..config.sessions_per_chip {
            let uid = config.session_uid(chip_id, k);
            if uid >= limit {
                break;
            }
            let mut client = session_client(config, twin, uid);
            let mut channel = session_channel(config, uid);
            let mut rng = session_rng(config, uid);
            let result = manager.authenticate_with_source(
                chip_id,
                &mut client,
                &mut channel,
                &mut source,
                &mut rng,
            );
            reports.insert(uid, result);
        }
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_records_are_deterministic() {
        let config = FleetConfig::tiny(7);
        assert_eq!(stored_record(&config, 3), stored_record(&config, 3));
        let device = device_model(&config, 3);
        let again = device_model(&config, 3);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..32 {
            let c = puf_core::Challenge::random(config.stages, &mut rng);
            assert_eq!(device.response(&c), again.response(&c));
        }
    }

    #[test]
    fn genuine_device_matches_expected_bits_on_stable_challenges() {
        let config = FleetConfig::tiny(11);
        let universe = build_universe(&config);
        let stored = stored_record(&config, 2);
        let model = stored.shifted_models().unwrap();
        let device = device_model(&config, 2);
        let mut stable = 0;
        for i in 0..universe.len() as u32 {
            let c = universe.challenge(i);
            if let Some(expected) = model.stable_expected(c) {
                assert_eq!(device.response(c), expected, "challenge slot {i}");
                stable += 1;
            }
        }
        assert!(stable > 0, "tiny config produced no stable challenges");
    }

    #[test]
    fn tiny_batched_run_matches_sequential_replay() {
        let config = FleetConfig::tiny(2017);
        let universe = build_universe(&config);
        let batched = run_batched(&config, &universe, 1);
        let sequential = run_sequential(&config, &universe, u64::MAX);
        let merged = batched.reports();
        assert_eq!(merged.len() as u64, config.total_sessions());
        assert_eq!(sequential.len() as u64, config.total_sessions());
        for (uid, report) in &sequential {
            assert_eq!(
                merged[uid], report,
                "session uid {uid} diverged between batched and sequential"
            );
        }
    }

    #[test]
    fn worker_count_does_not_change_verdicts() {
        let config = FleetConfig::tiny(99);
        let universe = build_universe(&config);
        let one = run_batched(&config, &universe, 1);
        for workers in [2, 4] {
            let many = run_batched(&config, &universe, workers);
            assert_eq!(
                one.reports(),
                many.reports(),
                "worker count {workers} changed the verdict stream"
            );
        }
    }
}
