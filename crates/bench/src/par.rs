//! Tiny scoped-thread fan-out: the allowed dependency set has no rayon, and
//! the fig harnesses only need an embarrassingly parallel indexed map.

use puf_telemetry::Progress;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use: the `PUF_THREADS` environment variable
/// if set to a positive integer, otherwise `available_parallelism`; always
/// capped at the item count and clamped to at least 1.
///
/// The chosen count is published as the `bench.par.workers` gauge.
pub fn worker_count(items: usize) -> usize {
    let cpus = env_thread_override().unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    });
    let workers = cpus.min(items).max(1);
    puf_telemetry::gauge!("bench.par.workers").set(workers as f64);
    workers
}

/// Parses `PUF_THREADS`: a positive integer overrides the detected core
/// count; unset, empty, zero or unparsable values fall through to detection.
fn env_thread_override() -> Option<usize> {
    let raw = std::env::var("PUF_THREADS").ok()?;
    match raw.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => None,
    }
}

/// Applies `f(index, &item)` to every item on a scoped thread pool and
/// returns the results in input order.
///
/// `f` must be `Sync` (shared across workers); per-item state (e.g. an RNG)
/// should be derived inside `f` from the index so results are deterministic
/// regardless of scheduling.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = worker_count(n);
    if workers == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<U>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f(i, &items[i]);
                results.lock().expect("poisoned results")[i] = Some(out);
            });
        }
    });
    results
        .into_inner()
        .expect("poisoned results")
        .into_iter()
        .map(|o| o.expect("worker skipped an item"))
        .collect()
}

/// [`par_map`] with a [`Progress`] reporter: counts completed items under
/// `label` (live stderr line when `PUF_PROGRESS` is set, final
/// `<label>.items`/`<label>.rate` metrics either way).
pub fn par_map_progress<T, U, F>(label: &str, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let progress = Progress::start(label, items.len() as u64);
    let out = par_map(items, |i, t| {
        let r = f(i, t);
        progress.inc(1);
        r
    });
    progress.finish();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_values() {
        let items: Vec<u64> = (0..500).collect();
        let out = par_map(&items, |i, &x| {
            assert_eq!(i as u64, x);
            x * 2
        });
        assert_eq!(out, (0..500).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u8> = par_map(&[] as &[u8], |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        let out = par_map(&[41], |_, &x| x + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn worker_count_bounds() {
        assert_eq!(worker_count(0), 1);
        assert!(worker_count(1) == 1);
        assert!(worker_count(1_000) >= 1);
    }

    #[test]
    fn puf_threads_env_overrides_worker_count() {
        // Env vars are process-global; run every case under one test so no
        // parallel test observes a half-set variable.
        let cases: &[(&str, Option<usize>)] = &[
            ("3", Some(3)),
            (" 2 ", Some(2)),
            ("1", Some(1)),
            ("0", None),    // clamp: fall back to detection
            ("-4", None),   // unparsable as usize
            ("lots", None), // unparsable
            ("", None),     // empty
        ];
        for &(raw, want) in cases {
            std::env::set_var("PUF_THREADS", raw);
            match want {
                Some(n) => assert_eq!(worker_count(1_000), n, "PUF_THREADS={raw:?}"),
                None => assert!(worker_count(1_000) >= 1, "PUF_THREADS={raw:?}"),
            }
        }
        std::env::set_var("PUF_THREADS", "64");
        assert_eq!(worker_count(2), 2, "item count still caps the override");
        std::env::remove_var("PUF_THREADS");
    }

    #[test]
    fn par_map_progress_matches_par_map() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map_progress("test.par.progress", &items, |_, &x| x + 1);
        assert_eq!(out, (1..=100).collect::<Vec<_>>());
    }
}
