//! Tiny scoped-thread fan-out: the allowed dependency set has no rayon, and
//! the fig harnesses only need an embarrassingly parallel indexed map.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use: `available_parallelism`, capped at the
/// item count.
pub fn worker_count(items: usize) -> usize {
    let cpus = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    cpus.min(items).max(1)
}

/// Applies `f(index, &item)` to every item on a scoped thread pool and
/// returns the results in input order.
///
/// `f` must be `Sync` (shared across workers); per-item state (e.g. an RNG)
/// should be derived inside `f` from the index so results are deterministic
/// regardless of scheduling.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = worker_count(n);
    if workers == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<U>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f(i, &items[i]);
                results.lock().expect("poisoned results")[i] = Some(out);
            });
        }
    });
    results
        .into_inner()
        .expect("poisoned results")
        .into_iter()
        .map(|o| o.expect("worker skipped an item"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_values() {
        let items: Vec<u64> = (0..500).collect();
        let out = par_map(&items, |i, &x| {
            assert_eq!(i as u64, x);
            x * 2
        });
        assert_eq!(out, (0..500).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u8> = par_map(&[] as &[u8], |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        let out = par_map(&[41], |_, &x| x + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn worker_count_bounds() {
        assert_eq!(worker_count(0), 1);
        assert!(worker_count(1) == 1);
        assert!(worker_count(1_000) >= 1);
    }
}
