//! Tiny scoped-thread fan-out: the allowed dependency set has no rayon, and
//! the fig harnesses only need an embarrassingly parallel indexed map.

use puf_telemetry::Progress;
use std::mem::{ManuallyDrop, MaybeUninit};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use: the `PUF_THREADS` environment variable
/// if set to a positive integer, otherwise `available_parallelism`; always
/// capped at the item count and clamped to at least 1.
///
/// The chosen count is published as the `bench.par.workers` gauge.
pub fn worker_count(items: usize) -> usize {
    let cpus = env_thread_override().unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    });
    let workers = cpus.min(items).max(1);
    puf_telemetry::gauge!("bench.par.workers").set(workers as f64);
    workers
}

/// Parses `PUF_THREADS`: a positive integer overrides the detected core
/// count; unset, empty, zero or unparsable values fall through to detection.
fn env_thread_override() -> Option<usize> {
    let raw = std::env::var("PUF_THREADS").ok()?;
    match raw.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => None,
    }
}

/// Raw output cursor shared with the workers. Safety rests on the claiming
/// protocol in [`par_map`]: each worker only writes slots inside ranges it
/// claimed from the shared atomic, and ranges are disjoint by construction.
struct SendPtr<U>(*mut MaybeUninit<U>);

unsafe impl<U: Send> Send for SendPtr<U> {}
unsafe impl<U: Send> Sync for SendPtr<U> {}

/// Applies `f(index, &item)` to every item on a scoped thread pool and
/// returns the results in input order.
///
/// Work distribution is lock-free: workers claim contiguous index chunks
/// from one shared atomic cursor and write results straight into disjoint
/// ranges of the pre-sized output buffer — no per-item mutex, no
/// post-collection `Option` unwrapping pass.
///
/// `f` must be `Sync` (shared across workers); per-item state (e.g. an RNG)
/// should be derived inside `f` from the index so results are deterministic
/// regardless of scheduling.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = worker_count(n);
    if workers == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    // ~8 chunks per worker balances claim contention against tail latency
    // when per-item cost is uneven.
    let chunk = (n / (workers * 8)).max(1);
    let next = AtomicUsize::new(0);
    let mut results: Vec<MaybeUninit<U>> = Vec::with_capacity(n);
    // SAFETY: MaybeUninit<U> needs no initialisation; every slot is written
    // exactly once below before being read.
    #[allow(clippy::uninit_vec)]
    unsafe {
        results.set_len(n);
    }
    let out = SendPtr(results.as_mut_ptr());
    let out = &out;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                // SAFETY: [start, end) was claimed exclusively by this
                // worker via the fetch_add above and lies within the
                // n-slot allocation, so ranges never alias.
                let slots =
                    unsafe { std::slice::from_raw_parts_mut(out.0.add(start), end - start) };
                for (off, slot) in slots.iter_mut().enumerate() {
                    let i = start + off;
                    slot.write(f(i, &items[i]));
                }
            });
        }
    });
    // If a worker panicked, the scope has already propagated the panic and
    // we never reach this point — `results` is then dropped as
    // MaybeUninit (leaking written slots, but no use of uninitialised
    // memory). On the success path every slot is initialised.
    // SAFETY: all n slots are written; MaybeUninit<U> and U share layout.
    unsafe {
        let mut results = ManuallyDrop::new(results);
        Vec::from_raw_parts(results.as_mut_ptr() as *mut U, n, results.capacity())
    }
}

/// [`par_map`] with a [`Progress`] reporter: counts completed items under
/// `label` (live stderr line when `PUF_PROGRESS` is set, final
/// `<label>.items`/`<label>.rate` metrics either way).
pub fn par_map_progress<T, U, F>(label: &str, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let progress = Progress::start(label, items.len() as u64);
    let out = par_map(items, |i, t| {
        let r = f(i, t);
        progress.inc(1);
        r
    });
    progress.finish();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_values() {
        let items: Vec<u64> = (0..500).collect();
        let out = par_map(&items, |i, &x| {
            assert_eq!(i as u64, x);
            x * 2
        });
        assert_eq!(out, (0..500).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u8> = par_map(&[] as &[u8], |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        let out = par_map(&[41], |_, &x| x + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn worker_count_bounds() {
        assert_eq!(worker_count(0), 1);
        assert!(worker_count(1) == 1);
        assert!(worker_count(1_000) >= 1);
    }

    #[test]
    fn puf_threads_env_overrides_worker_count() {
        // Env vars are process-global; run every case under one test so no
        // parallel test observes a half-set variable.
        let cases: &[(&str, Option<usize>)] = &[
            ("3", Some(3)),
            (" 2 ", Some(2)),
            ("1", Some(1)),
            ("0", None),    // clamp: fall back to detection
            ("-4", None),   // unparsable as usize
            ("lots", None), // unparsable
            ("", None),     // empty
        ];
        for &(raw, want) in cases {
            std::env::set_var("PUF_THREADS", raw);
            match want {
                Some(n) => assert_eq!(worker_count(1_000), n, "PUF_THREADS={raw:?}"),
                None => assert!(worker_count(1_000) >= 1, "PUF_THREADS={raw:?}"),
            }
        }
        std::env::set_var("PUF_THREADS", "64");
        assert_eq!(worker_count(2), 2, "item count still caps the override");
        std::env::remove_var("PUF_THREADS");
    }

    #[test]
    fn chunked_claiming_covers_every_index_with_heap_values() {
        // Heap-allocated results catch double-writes/missed slots (drop
        // bugs) that plain integers would hide.
        let items: Vec<u64> = (0..10_000).collect();
        let out = par_map(&items, |i, &x| format!("{i}:{x}"));
        assert_eq!(out.len(), items.len());
        for (i, s) in out.iter().enumerate() {
            assert_eq!(s, &format!("{i}:{i}"));
        }
    }

    #[test]
    fn uneven_item_counts_cover_the_tail_chunk() {
        // Counts around chunk boundaries: primes and off-by-ones.
        for n in [1usize, 2, 7, 63, 64, 65, 997] {
            let items: Vec<usize> = (0..n).collect();
            let out = par_map(&items, |i, &x| i + x);
            assert_eq!(out, (0..n).map(|x| 2 * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_progress_matches_par_map() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map_progress("test.par.progress", &items, |_, &x| x + 1);
        assert_eq!(out, (1..=100).collect::<Vec<_>>());
    }
}
