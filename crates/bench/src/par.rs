//! Tiny scoped-thread fan-out: the allowed dependency set has no rayon, and
//! the fig harnesses only need an embarrassingly parallel indexed map.
//!
//! ## Safety architecture
//!
//! This module carries the workspace's only `unsafe` code (the crate root
//! denies it everywhere else; `cargo xtask lint` rule L2 enforces that this
//! module stays the single opt-in). The design in one paragraph: workers
//! claim disjoint `[start, end)` index chunks from a single shared atomic
//! cursor, write each result exactly once into a pre-sized `MaybeUninit`
//! buffer, and record every initialized range in a shared ledger
//! ([`InitRanges`]) — on the success path the ledger is provably the full
//! `[0, n)` and the buffer is transmuted to `Vec<U>`; on a panic inside the
//! caller's closure the ledger holds exactly the initialized slots, and
//! [`OutputGuard`] drops precisely those during unwind, so no result is
//! leaked and nothing uninitialized is touched.
//!
//! Two machine checks back the hand-written SAFETY arguments:
//!
//! - [`crate::par_model`] exhaustively explores every interleaving of the
//!   claim/write/panic steps for small configurations (a hand-rolled,
//!   loom-style model checker) and proves the claimed ranges are disjoint,
//!   cover `[0, n)`, and that the ledger equals the initialized set even
//!   under mid-chunk panics.
//! - `scripts/sanitize.sh` runs these tests under Miri and ThreadSanitizer
//!   when the nightly components are available.

use puf_telemetry::Progress;
use std::mem::{ManuallyDrop, MaybeUninit};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use: the `PUF_THREADS` environment variable
/// if set to a positive integer, otherwise `available_parallelism`; always
/// capped at the item count and clamped to at least 1.
///
/// The chosen count is published as the `bench.par.workers` gauge.
pub fn worker_count(items: usize) -> usize {
    let cpus = env_thread_override().unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    });
    let workers = cpus.min(items).max(1);
    puf_telemetry::gauge!("bench.par.workers").set(workers as f64);
    workers
}

/// Parses `PUF_THREADS`: a positive integer overrides the detected core
/// count; unset, empty, zero or unparsable values fall through to detection.
fn env_thread_override() -> Option<usize> {
    let raw = std::env::var("PUF_THREADS").ok()?;
    match raw.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => None,
    }
}

/// Raw output cursor shared with the workers. Safety rests on the claiming
/// protocol in [`par_map_with_workers`]: each worker only writes slots
/// inside ranges it claimed from the shared atomic, and ranges are disjoint
/// by construction.
struct SendPtr<U>(*mut MaybeUninit<U>);

// SAFETY: the pointer refers to the output buffer, whose slots are only
// accessed through the disjoint ranges handed out by the atomic cursor —
// no two threads ever touch the same slot, and the buffer outlives the
// thread scope. Sending/sharing the cursor is therefore sound whenever the
// element type itself can move between threads (`U: Send`).
unsafe impl<U: Send> Send for SendPtr<U> {}
// SAFETY: see the Send impl above; `&SendPtr` only exposes the raw pointer,
// and all dereferences are confined to exclusively claimed ranges.
unsafe impl<U: Send> Sync for SendPtr<U> {}

/// Ledger of `[start, end)` output ranges whose slots are fully
/// initialized. Workers append under a mutex: a completed chunk pushes its
/// whole range, a chunk unwinding out of the caller's closure pushes the
/// prefix written before the panic. Ranges are disjoint because claimed
/// chunks are disjoint.
#[derive(Default)]
struct InitRanges(Mutex<Vec<(usize, usize)>>);

impl InitRanges {
    fn push(&self, start: usize, end: usize) {
        if start == end {
            return;
        }
        // A worker can only reach this line while no other panic is in
        // flight *in this mutex* (pushes never panic), but the mutex may
        // still be poisoned if the process is already unwinding elsewhere;
        // the ledger must keep recording regardless, so ignore poison.
        let mut ranges = match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        ranges.push((start, end));
    }
}

/// Per-chunk panic guard: counts the slots written so far and, on drop
/// (normal completion *or* unwind out of `f`), records the initialized
/// prefix of the chunk in the shared ledger.
struct ChunkGuard<'a> {
    init: &'a InitRanges,
    start: usize,
    written: usize,
}

impl Drop for ChunkGuard<'_> {
    fn drop(&mut self) {
        self.init.push(self.start, self.start + self.written);
    }
}

/// Owns the `MaybeUninit` output buffer during the parallel phase. If the
/// thread scope propagates a worker panic, this guard's `Drop` runs during
/// unwind on the caller's thread — after every worker has been joined — and
/// drops exactly the slots the ledger records as initialized, so a panic in
/// the caller's closure leaks none of the already-computed results.
struct OutputGuard<'a, U> {
    buf: Vec<MaybeUninit<U>>,
    init: &'a InitRanges,
}

impl<'a, U> OutputGuard<'a, U> {
    fn new(n: usize, init: &'a InitRanges) -> Self {
        // `MaybeUninit::uninit()` is a no-op per element; this is just a
        // sized allocation, with no unsafe `set_len` needed.
        let buf: Vec<MaybeUninit<U>> = (0..n).map(|_| MaybeUninit::uninit()).collect();
        OutputGuard { buf, init }
    }

    fn as_mut_ptr(&mut self) -> *mut MaybeUninit<U> {
        self.buf.as_mut_ptr()
    }

    /// Success path: every slot is initialized; reinterpret the buffer.
    fn into_vec(self) -> Vec<U> {
        let me = ManuallyDrop::new(self);
        // SAFETY: `me` is never used again and its `Drop` is suppressed, so
        // reading `buf` out of it cannot double-free.
        let buf = unsafe { std::ptr::read(&me.buf) };
        let mut buf = ManuallyDrop::new(buf);
        let (ptr, len, cap) = (buf.as_mut_ptr(), buf.len(), buf.capacity());
        // SAFETY: all `len` slots were written exactly once by the workers
        // (the scope completed without panicking, so every claimed chunk ran
        // to completion and the chunks cover [0, n)); `MaybeUninit<U>` and
        // `U` have identical layout, and the original Vec is forgotten, so
        // ownership of the allocation transfers without aliasing.
        unsafe { Vec::from_raw_parts(ptr as *mut U, len, cap) }
    }
}

impl<U> Drop for OutputGuard<'_, U> {
    fn drop(&mut self) {
        // Only reached during unwind (the success path consumes `self` via
        // `into_vec`). All workers are already joined, so this thread has
        // exclusive access to the buffer and the ledger.
        let ranges = match self.init.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        for &(start, end) in ranges.iter() {
            for i in start..end {
                // SAFETY: the ledger records exactly the initialized slots:
                // disjoint claimed ranges, each pushed once, covering every
                // slot whose `slot.write` completed and no slot whose write
                // never ran. Dropping each such value exactly once is sound.
                unsafe { self.buf[i].assume_init_drop() };
            }
        }
    }
}

/// Applies `f(index, &item)` to every item on a scoped thread pool and
/// returns the results in input order.
///
/// Work distribution is lock-free: workers claim contiguous index chunks
/// from one shared atomic cursor and write results straight into disjoint
/// ranges of the pre-sized output buffer — no per-item mutex, no
/// post-collection `Option` unwrapping pass.
///
/// `f` must be `Sync` (shared across workers); per-item state (e.g. an RNG)
/// should be derived inside `f` from the index so results are deterministic
/// regardless of scheduling.
///
/// # Panics
///
/// Propagates a panic from `f`. Already-computed results are dropped, not
/// leaked (see the module docs for the guard architecture).
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_with_workers(worker_count(items.len()), items, f)
}

/// [`par_map`] with an explicit worker count (still capped at the item
/// count and clamped to at least 1). Exposed so tests — and the sanitizer
/// harness — can exercise the parallel path deterministically on machines
/// where `available_parallelism` would report a single core.
pub fn par_map_with_workers<T, U, F>(workers: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.min(n).max(1);
    if workers == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    // ~8 chunks per worker balances claim contention against tail latency
    // when per-item cost is uneven.
    let chunk = (n / (workers * 8)).max(1);
    let next = AtomicUsize::new(0);
    let init = InitRanges::default();
    let mut guard = OutputGuard::new(n, &init);
    let out = SendPtr(guard.as_mut_ptr());
    let out = &out;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                let mut chunk_guard = ChunkGuard {
                    init: &init,
                    start,
                    written: 0,
                };
                // SAFETY: [start, end) was claimed exclusively by this
                // worker via the fetch_add above and lies within the n-slot
                // allocation, so ranges never alias and stay in bounds.
                let slots =
                    unsafe { std::slice::from_raw_parts_mut(out.0.add(start), end - start) };
                for (off, slot) in slots.iter_mut().enumerate() {
                    let i = start + off;
                    slot.write(f(i, &items[i]));
                    // Only count a slot after its write completed: if `f`
                    // panics, the in-flight slot stays uninitialized and
                    // must not be recorded.
                    chunk_guard.written += 1;
                }
                // Normal completion: the guard's drop records [start, end).
                drop(chunk_guard);
            });
        }
    });
    // The scope returned normally, so no worker panicked: every claimed
    // chunk completed, the cursor passed n, and all n slots are initialized.
    guard.into_vec()
}

/// [`par_map`] with a [`Progress`] reporter: counts completed items under
/// `label` (live stderr line when `PUF_PROGRESS` is set, final
/// `<label>.items`/`<label>.rate` metrics either way).
pub fn par_map_progress<T, U, F>(label: &str, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let progress = Progress::start(label, items.len() as u64);
    let out = par_map(items, |i, t| {
        let r = f(i, t);
        progress.inc(1);
        r
    });
    progress.finish();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn preserves_order_and_values() {
        let items: Vec<u64> = (0..500).collect();
        let out = par_map(&items, |i, &x| {
            assert_eq!(i as u64, x);
            x * 2
        });
        assert_eq!(out, (0..500).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u8> = par_map(&[] as &[u8], |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        let out = par_map(&[41], |_, &x| x + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn worker_count_bounds() {
        assert_eq!(worker_count(0), 1);
        assert!(worker_count(1) == 1);
        assert!(worker_count(1_000) >= 1);
    }

    #[test]
    fn puf_threads_env_overrides_worker_count() {
        // Env vars are process-global; run every case under one test so no
        // parallel test observes a half-set variable.
        let cases: &[(&str, Option<usize>)] = &[
            ("3", Some(3)),
            (" 2 ", Some(2)),
            ("1", Some(1)),
            ("0", None),    // clamp: fall back to detection
            ("-4", None),   // unparsable as usize
            ("lots", None), // unparsable
            ("", None),     // empty
        ];
        for &(raw, want) in cases {
            std::env::set_var("PUF_THREADS", raw);
            match want {
                Some(n) => assert_eq!(worker_count(1_000), n, "PUF_THREADS={raw:?}"),
                None => assert!(worker_count(1_000) >= 1, "PUF_THREADS={raw:?}"),
            }
        }
        std::env::set_var("PUF_THREADS", "64");
        assert_eq!(worker_count(2), 2, "item count still caps the override");
        std::env::remove_var("PUF_THREADS");
    }

    #[test]
    fn chunked_claiming_covers_every_index_with_heap_values() {
        // Heap-allocated results catch double-writes/missed slots (drop
        // bugs) that plain integers would hide. Explicit worker count: the
        // parallel path must run even on single-core CI.
        let items: Vec<u64> = (0..10_000).collect();
        let out = par_map_with_workers(4, &items, |i, &x| format!("{i}:{x}"));
        assert_eq!(out.len(), items.len());
        for (i, s) in out.iter().enumerate() {
            assert_eq!(s, &format!("{i}:{i}"));
        }
    }

    #[test]
    fn uneven_item_counts_cover_the_tail_chunk() {
        // Counts around chunk boundaries: primes and off-by-ones.
        for n in [1usize, 2, 7, 63, 64, 65, 997] {
            let items: Vec<usize> = (0..n).collect();
            let out = par_map_with_workers(3, &items, |i, &x| i + x);
            assert_eq!(out, (0..n).map(|x| 2 * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_progress_matches_par_map() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map_progress("test.par.progress", &items, |_, &x| x + 1);
        assert_eq!(out, (1..=100).collect::<Vec<_>>());
    }

    /// A result type whose constructions and drops are counted, with a heap
    /// payload so Miri's leak checker also sees any slot the guards miss.
    struct Tracked {
        _payload: Box<u64>,
        drops: Arc<AtomicUsize>,
    }

    impl Tracked {
        fn new(i: u64, created: &Arc<AtomicUsize>, drops: &Arc<AtomicUsize>) -> Tracked {
            created.fetch_add(1, Ordering::SeqCst);
            Tracked {
                _payload: Box::new(i),
                drops: Arc::clone(drops),
            }
        }
    }

    impl Drop for Tracked {
        fn drop(&mut self) {
            self.drops.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn panic_in_f_drops_every_written_result() {
        let created = Arc::new(AtomicUsize::new(0));
        let drops = Arc::new(AtomicUsize::new(0));
        let items: Vec<u64> = (0..1_000).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            par_map_with_workers(4, &items, |i, &x| {
                if i == 500 {
                    panic!("mid-chunk failure injected by test");
                }
                Tracked::new(x, &created, &drops)
            })
        }));
        assert!(result.is_err(), "the worker panic must propagate");
        // Every successfully constructed result must have been dropped by
        // the guards — nothing leaked, nothing double-dropped.
        assert_eq!(
            created.load(Ordering::SeqCst),
            drops.load(Ordering::SeqCst),
            "partially-written par_map output leaked results on panic"
        );
        assert!(
            created.load(Ordering::SeqCst) > 0,
            "some work ran before the panic"
        );
    }

    #[test]
    fn multiple_panicking_workers_still_account_for_all_results() {
        let created = Arc::new(AtomicUsize::new(0));
        let drops = Arc::new(AtomicUsize::new(0));
        let items: Vec<u64> = (0..600).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            par_map_with_workers(3, &items, |i, &x| {
                if i % 149 == 0 {
                    panic!("repeated failure injected by test");
                }
                Tracked::new(x, &created, &drops)
            })
        }));
        assert!(result.is_err());
        assert_eq!(created.load(Ordering::SeqCst), drops.load(Ordering::SeqCst));
    }

    /// The regression the drop-guard exists for, in `should_panic` form so
    /// Miri's leak checker exercises the unwind path directly
    /// (`scripts/sanitize.sh` runs it): before the guard, every `String`
    /// written ahead of the panic was leaked from the `MaybeUninit` buffer.
    // No `expected` string: `std::thread::scope` replaces the payload with
    // its own "a scoped thread panicked" when a worker dies.
    #[test]
    #[should_panic]
    fn panicking_f_propagates_and_leaks_nothing() {
        let items: Vec<u32> = (0..64).collect();
        let _ = par_map_with_workers(3, &items, |i, &x| {
            if i == 47 {
                panic!("injected");
            }
            format!("heap value {x}")
        });
    }
}
