//! # puf-bench
//!
//! Shared harness utilities for the figure-reproduction binaries
//! (`fig02` … `fig12`) and the Criterion benchmarks.
//!
//! Every fig binary runs at a reduced default scale (fast enough for a
//! laptop in minutes) and accepts:
//!
//! - `--full` — the paper's original scale (1,000,000 challenges, 10 chips,
//!   100,000 evaluations per soft response),
//! - `--challenges N`, `--chips N`, `--evals N`, `--seed N` — individual
//!   overrides.
//!
//! Scale-downs never change *what* is computed, only how many samples go
//! into each estimate; EXPERIMENTS.md records the scales used for the
//! committed numbers.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod par;
pub mod scale;

pub use scale::Scale;
