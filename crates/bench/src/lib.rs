//! # puf-bench
//!
//! Shared harness utilities for the figure-reproduction binaries
//! (`fig02` … `fig12`) and the Criterion benchmarks.
//!
//! Every fig binary runs at a reduced default scale (fast enough for a
//! laptop in minutes) and accepts:
//!
//! - `--full` — the paper's original scale (1,000,000 challenges, 10 chips,
//!   100,000 evaluations per soft response),
//! - `--challenges N`, `--chips N`, `--evals N`, `--seed N` — individual
//!   overrides.
//!
//! Scale-downs never change *what* is computed, only how many samples go
//! into each estimate; EXPERIMENTS.md records the scales used for the
//! committed numbers.

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

// The scoped-thread fan-out is the workspace's single sanctioned `unsafe`
// module (lint rule L2 allowlists exactly this declaration); its claiming
// protocol is machine-checked by `par_model` and `scripts/sanitize.sh`.
pub mod cli;
pub mod fleet;
#[allow(unsafe_code)]
pub mod par;
pub mod par_model;
pub mod scale;
pub mod schema;

pub use cli::{BenchCli, BenchCliSpec};
pub use scale::Scale;
pub use schema::SchemaHeader;

/// Prints the process-global telemetry report to stderr, if telemetry is
/// enabled (`PUF_TELEMETRY=1` in the environment).
///
/// Every fig binary calls this as its last statement, so a sweep run with
/// telemetry on ends with eval counts, measurement latency histograms and
/// shard throughput — on stderr, keeping piped stdout results clean.
pub fn emit_telemetry_report() {
    if puf_telemetry::enabled() {
        eprintln!("\n── telemetry ──");
        eprint!("{}", puf_telemetry::registry().render_table());
    }
}
