//! Chaos harness: deterministic fault scenarios × session policies × the
//! paper's nine V/T corners.
//!
//! For every cell of the sweep a [`SessionManager`] authenticates a genuine
//! chip and a random impostor through seeded fault injection (response
//! flips, lossy channels, V/T drift beyond the grid, glitchy fuse senses),
//! then the harness asserts the paper-level envelopes:
//!
//! * the genuine-chip session FRR stays under 1 % at a 1 % per-bit flip
//!   rate with at most 3 retries (resilient policy), at every corner;
//! * the impostor is **never** granted access — not even through the
//!   degraded fallback — and ends up locked out.
//!
//! Every draw comes from the run seed, so the same seed writes a
//! byte-identical `results/CHAOS.json` (no clocks, no global RNGs).
//!
//! Run: `cargo run -p puf-bench --release --bin chaos`
//! (`--smoke` runs a bounded sweep and writes `target/CHAOS_smoke.json`;
//! `--seed N` and `--out PATH` override the defaults; `--trace[=PATH]`
//! records a deterministic tick-clock trace of the sweep and writes Chrome
//! trace-event JSON to PATH — default `target/CHAOS_trace.json` — plus
//! folded flamegraph stacks to `PATH.folded`, byte-identical per seed)

use puf_core::{Challenge, Condition};
use puf_protocol::enrollment::{enroll, EnrollmentConfig};
use puf_protocol::session::SessionOutcome;
use puf_protocol::{
    ChannelFaultPlan, ChipResponder, FaultPlan, FaultyResponder, ProtocolError, RandomResponder,
    Responder, Server, SessionManager, SessionPolicy,
};
use puf_silicon::testbench::{collect_xor_crps_faulty, soft_sweep_faulty};
use puf_silicon::{Chip, ChipConfig, MeasurementFaults, SiliconError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

const CHIP_ID: u32 = 3;
const XOR_N: usize = 2;
const ROUNDS: usize = 24;

/// splitmix64-style mixer: independent sub-seeds for every sweep cell, so
/// cell order never shifts another cell's streams.
fn mix(seed: u64, a: u64, b: u64, c: u64) -> u64 {
    let mut z = seed
        .wrapping_add(a.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(b.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(c.wrapping_mul(0x94D0_49BB_1331_11EB))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A responder whose fuse sense path glitches transiently with the plan's
/// rate — the session layer must absorb these as transport failures.
struct GlitchyResponder<C> {
    inner: C,
    rng: StdRng,
    rate: f64,
}

impl<C: Responder> Responder for GlitchyResponder<C> {
    fn respond(&mut self, challenges: &[Challenge]) -> Vec<bool> {
        self.try_respond(challenges).unwrap_or_default()
    }

    fn try_respond(&mut self, challenges: &[Challenge]) -> Result<Vec<bool>, ProtocolError> {
        if self.rate > 0.0 && self.rng.gen::<f64>() < self.rate {
            return Err(ProtocolError::Silicon(SiliconError::FuseReadFailure));
        }
        self.inner.try_respond(challenges)
    }
}

/// Tallies for one (scenario, policy, corner) cell.
#[derive(Default)]
struct Cell {
    accepted: u64,
    degraded: u64,
    rejected: u64,
    locked_out: u64,
    attempts: u64,
    backoff_ticks: u64,
    impostor_false_accepts: u64,
    impostor_lockouts: u64,
}

impl Cell {
    fn sessions(&self) -> u64 {
        self.accepted + self.degraded + self.rejected + self.locked_out
    }

    /// False-rejection rate: the fraction of genuine sessions that ended
    /// without access (clean or degraded).
    fn frr(&self) -> f64 {
        let denied = self.rejected + self.locked_out;
        denied as f64 / self.sessions().max(1) as f64
    }
}

fn main() {
    let cli = puf_bench::BenchCliSpec::new("target/CHAOS_trace.json").parse();
    let (smoke, seed, out, trace) = (cli.smoke, cli.seed, cli.out, cli.trace);
    if trace.is_some() {
        // Tick clock: the trace, like the JSON, is byte-identical per seed.
        let tracer = puf_telemetry::tracer();
        tracer.set_clock(puf_telemetry::TraceClock::Tick);
        // The full sweep emits ~10k span events per cell; size the rings so
        // the smoke sweep never wraps.
        tracer.set_lane_capacity(1 << 20);
        tracer.set_enabled(true);
    }
    let out_path = out.unwrap_or_else(|| {
        if smoke {
            "target/CHAOS_smoke.json".to_string()
        } else {
            "results/CHAOS.json".to_string()
        }
    });
    let legit_sessions: u64 = if smoke { 40 } else { 400 };
    let impostor_sessions: u64 = if smoke { 8 } else { 40 };

    println!("Chaos sweep — fault scenarios × session policies × the 9 V/T corners");
    println!(
        "seed {seed}, {legit_sessions} genuine + {impostor_sessions} impostor sessions per cell{}\n",
        if smoke { " (smoke)" } else { "" }
    );

    // One chip, enrolled once with β fitting against all nine corners
    // (§5.2) so predicted-stable challenges survive the grid; every
    // scenario and policy sweeps the same enrollment record.
    let mut rng = StdRng::seed_from_u64(seed);
    let chip = Chip::fabricate(3, &ChipConfig::small(), &mut rng);
    let enroll_config = EnrollmentConfig {
        validation_conditions: Condition::paper_grid(),
        ..EnrollmentConfig::small(XOR_N)
    };
    let enrolled = enroll(&chip, &enroll_config, &mut rng).expect("enrollment");
    let mut server = Server::new();
    server.register(enrolled);

    let scenarios: Vec<(&str, FaultPlan)> = vec![
        ("clean", FaultPlan::none(0)),
        ("flips_1pct", FaultPlan::none(0).with_response_flips(0.01)),
        (
            "lossy_channel",
            FaultPlan::none(0)
                .with_response_flips(0.005)
                .with_channel(ChannelFaultPlan {
                    drop_rate: 0.05,
                    straggle_rate: 0.02,
                    duplicate_rate: 0.02,
                    reorder_rate: 0.02,
                    corrupt_rate: 0.01,
                }),
        ),
        (
            "vt_drift",
            FaultPlan::none(0)
                .with_response_flips(0.005)
                .with_condition_jitter(0.01, 3.0),
        ),
        (
            "glitchy_silicon",
            FaultPlan::none(0)
                .with_response_flips(0.005)
                .with_fuse_glitches(0.05)
                .with_counter_cap(3),
        ),
    ];
    let policies: Vec<(&str, SessionPolicy)> = vec![
        ("strict", SessionPolicy::strict(ROUNDS)),
        ("resilient", SessionPolicy::resilient(ROUNDS)),
        ("degraded", SessionPolicy::degraded(ROUNDS, 0.10)),
    ];
    let grid = Condition::paper_grid();

    let mut cells: Vec<(String, String, Condition, Cell)> = Vec::new();
    for (si, (scenario, base_plan)) in scenarios.iter().enumerate() {
        for (pi, (policy_name, policy)) in policies.iter().enumerate() {
            for (ci, &corner) in grid.iter().enumerate() {
                let plan = FaultPlan {
                    seed: mix(seed, si as u64 + 1, pi as u64 + 1, ci as u64 + 1),
                    ..*base_plan
                };
                plan.validate().expect("fault plan");
                let mut cell = Cell::default();

                // Genuine chip: one responder/channel per cell so the fault
                // lanes stream across that cell's sessions.
                let mut mgr = SessionManager::new(server.clone(), *policy).expect("session policy");
                let mut session_rng =
                    StdRng::seed_from_u64(mix(seed ^ 0x5E55_1045, si as u64, pi as u64, ci as u64));
                let mut jitter = plan.injector();
                let inner = ChipResponder::new(
                    &chip,
                    XOR_N,
                    corner,
                    mix(seed ^ 0xC41B, si as u64, pi as u64, ci as u64),
                );
                let mut client = GlitchyResponder {
                    inner: FaultyResponder::new(inner, &plan),
                    rng: plan.lane_rng(3),
                    rate: plan.measurement.fuse_glitch_rate,
                };
                let mut channel = plan.channel_faults();
                for _ in 0..legit_sessions {
                    // Per-session V/T excursion beyond the corner itself.
                    client
                        .inner
                        .inner_mut()
                        .set_condition(jitter.perturb(corner));
                    let report = mgr
                        .authenticate(CHIP_ID, &mut client, &mut channel, &mut session_rng)
                        .expect("genuine session");
                    cell.attempts += u64::from(report.attempts);
                    cell.backoff_ticks += report.backoff_ticks_total;
                    match report.outcome {
                        SessionOutcome::Accepted => cell.accepted += 1,
                        SessionOutcome::Degraded => cell.degraded += 1,
                        SessionOutcome::Rejected => cell.rejected += 1,
                        SessionOutcome::LockedOut => {
                            cell.locked_out += 1;
                            // Out-of-band vetting: keep measuring FRR.
                            mgr.reinstate(CHIP_ID);
                        }
                    }
                }

                // Impostor: perfect transport (the strongest setting for
                // the attacker) against a fresh manager.
                let mut imp_mgr =
                    SessionManager::new(server.clone(), *policy).expect("session policy");
                let mut impostor =
                    RandomResponder::new(mix(seed ^ 0x1111, si as u64, pi as u64, ci as u64));
                let mut perfect = puf_protocol::PerfectChannel;
                for _ in 0..impostor_sessions {
                    match imp_mgr.authenticate(
                        CHIP_ID,
                        &mut impostor,
                        &mut perfect,
                        &mut session_rng,
                    ) {
                        Ok(report) => {
                            if report.outcome.grants_access() {
                                cell.impostor_false_accepts += 1;
                            }
                            if report.outcome == SessionOutcome::LockedOut {
                                cell.impostor_lockouts += 1;
                                imp_mgr.reinstate(CHIP_ID);
                            }
                        }
                        Err(ProtocolError::ChipLockedOut { .. }) => {
                            cell.impostor_lockouts += 1;
                            imp_mgr.reinstate(CHIP_ID);
                        }
                        Err(e) => panic!("impostor session error: {e}"),
                    }
                }
                assert_eq!(
                    cell.impostor_false_accepts, 0,
                    "impostor accepted in {scenario}/{policy_name} at {corner:?}"
                );
                assert!(
                    cell.impostor_lockouts > 0,
                    "impostor never locked out in {scenario}/{policy_name} at {corner:?}"
                );
                cells.push((scenario.to_string(), policy_name.to_string(), corner, cell));
            }
        }
    }

    // FRR envelopes (deterministic for a given seed, so these are gates,
    // not flaky statistics). Per-corner cells are too small to resolve a
    // sub-1% rate, so the gate pools each (scenario, policy) across the
    // nine corners; the per-corner numbers still land in the JSON.
    let pooled = |scenario: &str, policy: &str| {
        let (mut denied, mut sessions, mut attempts) = (0u64, 0u64, 0u64);
        for (s, p, _, cell) in &cells {
            if s == scenario && p == policy {
                denied += cell.rejected + cell.locked_out;
                sessions += cell.sessions();
                attempts += cell.attempts;
            }
        }
        (denied as f64 / sessions.max(1) as f64, sessions, attempts)
    };
    let (clean_frr, _, _) = pooled("clean", "resilient");
    assert_eq!(clean_frr, 0.0, "clean resilient sessions must never reject");
    let (flip_frr, flip_sessions, flip_attempts) = pooled("flips_1pct", "resilient");
    // The smoke sweep has ~10x fewer sessions, so grant it a looser (but
    // still deterministic) ceiling.
    let envelope = if smoke { 0.02 } else { 0.01 };
    assert!(
        flip_frr < envelope,
        "FRR envelope broken: {flip_frr:.4} over {flip_sessions} sessions"
    );
    assert!(
        flip_attempts <= flip_sessions * 4,
        "more than 3 retries per session"
    );

    // Counter saturation and measurement-path flips cannot surface through
    // a live session (they hit the enrollment/soft path), so record their
    // bias directly from the faulty testbench sweeps.
    let probe: Vec<Challenge> = (0..256)
        .map(|i| Challenge::from_bits(i * 193, 16).expect("challenge"))
        .collect();
    let mut probe_rng = StdRng::seed_from_u64(mix(seed, 7, 7, 7));
    let uncapped = soft_sweep_faulty(
        &chip,
        0,
        &probe,
        Condition::NOMINAL,
        200,
        &MeasurementFaults::NONE,
        &mut probe_rng,
    )
    .expect("uncapped sweep");
    let mut probe_rng = StdRng::seed_from_u64(mix(seed, 7, 7, 7));
    let capped = soft_sweep_faulty(
        &chip,
        0,
        &probe,
        Condition::NOMINAL,
        200,
        &MeasurementFaults {
            counter_cap: Some(3),
            ..MeasurementFaults::NONE
        },
        &mut probe_rng,
    )
    .expect("capped sweep");
    let mut probe_rng = StdRng::seed_from_u64(mix(seed, 8, 8, 8));
    let flipped = collect_xor_crps_faulty(
        &chip,
        XOR_N,
        &probe,
        Condition::NOMINAL,
        &MeasurementFaults {
            response_flip_rate: 0.01,
            ..MeasurementFaults::NONE
        },
        &mut probe_rng,
    )
    .expect("flipped sweep");
    let mut probe_rng = StdRng::seed_from_u64(mix(seed, 8, 8, 8));
    let unflipped = collect_xor_crps_faulty(
        &chip,
        XOR_N,
        &probe,
        Condition::NOMINAL,
        &MeasurementFaults::NONE,
        &mut probe_rng,
    )
    .expect("clean sweep");
    let measured_flips = flipped
        .responses()
        .iter()
        .zip(unflipped.responses())
        .filter(|(a, b)| a != b)
        .count();

    // Human-readable FRR table for the flips_1pct scenario — the numbers
    // EXPERIMENTS.md quotes.
    println!("session FRR at a 1% per-bit flip rate ({ROUNDS} rounds):");
    println!("  corner (V, °C)    strict     resilient  degraded");
    for &corner in &grid {
        let mut row = format!("  {:>4.1} V {:>5.1} °C ", corner.vdd, corner.temp_c);
        for policy in ["strict", "resilient", "degraded"] {
            let cell = cells
                .iter()
                .find(|(s, p, c, _)| s == "flips_1pct" && p == policy && *c == corner)
                .map(|(_, _, _, cell)| cell)
                .expect("cell");
            let _ = write!(row, "  {:>8.4}", cell.frr());
        }
        println!("{row}");
    }
    println!("\nimpostor false accepts across the whole sweep: 0 (asserted)");

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "{},",
        puf_bench::SchemaHeader::capture().to_json_member(2)
    );
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"rounds\": {ROUNDS},");
    let _ = writeln!(json, "  \"legit_sessions_per_cell\": {legit_sessions},");
    let _ = writeln!(
        json,
        "  \"impostor_sessions_per_cell\": {impostor_sessions},"
    );
    let _ = writeln!(json, "  \"measurement_probe\": {{");
    let _ = writeln!(
        json,
        "    \"stable_fraction_uncapped\": {:.6},",
        uncapped.stable_fraction()
    );
    let _ = writeln!(
        json,
        "    \"stable_fraction_counter_cap_3\": {:.6},",
        capped.stable_fraction()
    );
    let _ = writeln!(
        json,
        "    \"flips_observed_at_1pct_over_{}\": {measured_flips}",
        probe.len()
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"cells\": [");
    for (i, (scenario, policy, corner, cell)) in cells.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"scenario\": \"{scenario}\",");
        let _ = writeln!(json, "      \"policy\": \"{policy}\",");
        let _ = writeln!(json, "      \"vdd\": {:.2},", corner.vdd);
        let _ = writeln!(json, "      \"temp_c\": {:.1},", corner.temp_c);
        let _ = writeln!(json, "      \"sessions\": {},", cell.sessions());
        let _ = writeln!(json, "      \"accepted\": {},", cell.accepted);
        let _ = writeln!(json, "      \"degraded\": {},", cell.degraded);
        let _ = writeln!(json, "      \"rejected\": {},", cell.rejected);
        let _ = writeln!(json, "      \"locked_out\": {},", cell.locked_out);
        let _ = writeln!(json, "      \"frr\": {:.6},", cell.frr());
        let _ = writeln!(json, "      \"attempts\": {},", cell.attempts);
        let _ = writeln!(json, "      \"backoff_ticks\": {},", cell.backoff_ticks);
        let _ = writeln!(json, "      \"impostor_sessions\": {impostor_sessions},");
        let _ = writeln!(
            json,
            "      \"impostor_false_accepts\": {},",
            cell.impostor_false_accepts
        );
        let _ = writeln!(
            json,
            "      \"impostor_lockouts\": {}",
            cell.impostor_lockouts
        );
        let _ = writeln!(json, "    }}{}", if i + 1 < cells.len() { "," } else { "" });
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(parent).expect("create output directory");
    }
    std::fs::write(&out_path, &json).expect("write chaos results");
    println!("wrote {out_path}");

    if let Some(trace_path) = trace {
        let tracer = puf_telemetry::tracer();
        let events = tracer.snapshot_events();
        assert_eq!(
            tracer.evicted(),
            0,
            "trace ring wrapped; raise the lane capacity"
        );
        if let Some(parent) = std::path::Path::new(&trace_path).parent() {
            std::fs::create_dir_all(parent).expect("create trace directory");
        }
        let clock = tracer.clock();
        std::fs::write(
            &trace_path,
            puf_telemetry::trace_export::chrome_trace_json(&events, clock),
        )
        .expect("write chrome trace");
        let folded_path = format!("{trace_path}.folded");
        std::fs::write(
            &folded_path,
            puf_telemetry::trace_export::folded_stacks(&events, clock),
        )
        .expect("write folded stacks");
        println!(
            "wrote {trace_path} and {folded_path} ({} events)",
            events.len()
        );
    }
    puf_bench::emit_telemetry_report();
}
