//! Ablation: the enrollment estimator.
//!
//! §4 of the paper: *"we use the linear regression algorithm, rather than
//! logistic regression"* because the enrollment data are fractional soft
//! responses. This harness quantifies that choice by enrolling the same PUF
//! with three estimators on the same 5,000 measured CRPs and comparing the
//! quality of the resulting challenge selection:
//!
//! - **direct linear** (the paper's): regress soft responses, threshold.
//! - **probit-inverted linear**: invert `Φ` first, regress in delay space.
//! - **logistic on hard bits**: the classical attack estimator, using only
//!   the majority bits (throwing the soft information away).
//!
//! Each selector is tuned to zero violations on the same β-fit measurement
//! and then scored by predicted-stable yield on a fresh evaluation set.
//!
//! Run: `cargo run -p puf-bench --release --bin ablation_estimator`

use puf_analysis::Table;
use puf_bench::Scale;
use puf_core::challenge::random_challenges;
use puf_core::{Challenge, Condition};
use puf_ml::logreg::{LogisticConfig, LogisticRegression};
use puf_ml::{LinearRegression, ProbitRegression};
use puf_protocol::threshold::{fit_betas, StabilityClass, Thresholds};
use puf_silicon::{Chip, ChipConfig, SoftResponse};
use rand::rngs::StdRng;
use rand::SeedableRng;

const TRAINING: usize = 5_000;

/// A generic "predicted score per challenge" selector front-end.
struct Selector {
    name: &'static str,
    predict: Box<dyn Fn(&Challenge) -> f64>,
}

fn main() {
    let scale = Scale::from_env();
    println!("Ablation — enrollment estimator (same chip, same 5,000 measured CRPs)");
    println!("scale: {scale}\n");

    let mut rng = StdRng::seed_from_u64(scale.seed);
    let chip = Chip::fabricate(0, &ChipConfig::paper_default(), &mut rng);
    let training = random_challenges(chip.stages(), TRAINING, &mut rng);
    let measurements: Vec<SoftResponse> = training
        .iter()
        .map(|c| {
            chip.measure_individual_soft(0, c, Condition::NOMINAL, scale.evals, &mut rng)
                .expect("measurement failed")
        })
        .collect();
    let soft: Vec<f64> = measurements.iter().map(|s| s.value()).collect();
    let hard: Vec<bool> = measurements.iter().map(|s| s.majority_bit()).collect();

    let linear = LinearRegression::fit_challenges(&training, &soft, 1e-6).expect("linear fit");
    let probit = ProbitRegression::fit(&training, &soft, scale.evals, 1e-6).expect("probit fit");
    let (logistic, _) =
        LogisticRegression::fit_challenges(&training, &hard, &LogisticConfig::default());

    let selectors = vec![
        Selector {
            name: "direct linear (paper)",
            predict: Box::new(move |c| linear.predict(c)),
        },
        Selector {
            name: "probit-inverted linear",
            predict: Box::new(move |c| probit.predict_soft(c)),
        },
        Selector {
            name: "logistic on hard bits",
            predict: Box::new(move |c| logistic.predict_proba(c)),
        },
    ];

    // Shared measurement sets for β fitting and evaluation.
    let beta_pool = random_challenges(
        chip.stages(),
        (scale.challenges / 8).clamp(4_000, 50_000),
        &mut rng,
    );
    let beta_measurements: Vec<SoftResponse> = beta_pool
        .iter()
        .map(|c| {
            chip.measure_individual_soft(0, c, Condition::NOMINAL, scale.evals, &mut rng)
                .expect("measurement failed")
        })
        .collect();
    let eval_pool = random_challenges(chip.stages(), (scale.challenges / 4).max(20_000), &mut rng);

    let mut table = Table::new(["estimator", "Thr(0)", "Thr(1)", "β₀", "β₁", "stable yield"]);
    for sel in &selectors {
        // Thresholds from the training comparison, βs from the shared pool.
        let pairs: Vec<(f64, f64)> = training
            .iter()
            .zip(&soft)
            .map(|(c, &s)| ((sel.predict)(c), s))
            .collect();
        let Some(thresholds) = Thresholds::from_training(&pairs) else {
            table.row::<String, _>([
                sel.name.into(),
                "—".into(),
                "—".into(),
                "—".into(),
                "—".into(),
                "degenerate".into(),
            ]);
            continue;
        };
        let triples: Vec<(f64, bool, bool)> = beta_pool
            .iter()
            .zip(&beta_measurements)
            .map(|(c, s)| ((sel.predict)(c), s.is_stable_zero(), s.is_stable_one()))
            .collect();
        let Some(betas) = fit_betas(thresholds, &triples) else {
            table.row::<String, _>([
                sel.name.into(),
                format!("{:.3}", thresholds.thr0),
                format!("{:.3}", thresholds.thr1),
                "—".into(),
                "—".into(),
                "β fit failed".into(),
            ]);
            continue;
        };
        let adjusted = thresholds.adjusted(betas);
        let stable = eval_pool
            .iter()
            .filter(|c| adjusted.classify((sel.predict)(c)) != StabilityClass::Unstable)
            .count();
        table.row([
            sel.name.to_string(),
            format!("{:.3}", thresholds.thr0),
            format!("{:.3}", thresholds.thr1),
            format!("{:.2}", betas.beta0),
            format!("{:.2}", betas.beta1),
            format!("{:.1}%", stable as f64 / eval_pool.len() as f64 * 100.0),
        ]);
    }
    println!("{}", table.render());
    println!("all three estimators can drive the selection; the yield at equal safety is the");
    println!("figure of merit. Soft responses carry the delay-margin information that hard");
    println!("bits lack, which is why the paper measures counters instead of single shots.");
}
