//! Figure 10 — fraction of stable challenges (measured and predicted)
//! versus the enrollment training-set size.
//!
//! Paper (§5.1): sweeping the training set from 500 to 10,000 CRPs, the
//! model-predicted stable fraction (after β adjustment) saturates around
//! 60 %, against ~80 % stable in measurement; 5,000 CRPs is chosen as the
//! testing-cost/accuracy sweet spot (linear fit time there: 4.3 ms).
//!
//! Run: `cargo run -p puf-bench --release --bin fig10 [--full]`

use puf_analysis::Table;
use puf_bench::{par, Scale};
use puf_core::challenge::random_challenges;
use puf_core::Condition;
use puf_ml::LinearRegression;
use puf_protocol::enrollment::fit_betas_on_measurements;
use puf_protocol::{StabilityClass, Thresholds};
use puf_silicon::{Chip, ChipConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const TRAIN_SIZES: [usize; 6] = [500, 1_000, 2_000, 5_000, 8_000, 10_000];

fn main() {
    let scale = Scale::from_env();
    println!("Fig. 10 reproduction — stable-challenge fraction vs training-set size");
    println!("scale: {scale}\n");

    let mut rng = StdRng::seed_from_u64(scale.seed);
    let chip = Chip::fabricate(0, &ChipConfig::paper_default(), &mut rng);

    // Shared pools: the largest training set is a superset of the smaller
    // ones; the β-fit set and evaluation set are fixed across sweep points.
    let max_train = *TRAIN_SIZES.last().expect("non-empty sizes");
    let train_pool = random_challenges(chip.stages(), max_train, &mut rng);
    let beta_fit_size = (scale.challenges / 4).clamp(5_000, 100_000);
    let beta_pool = random_challenges(chip.stages(), beta_fit_size, &mut rng);
    let eval_pool = random_challenges(chip.stages(), scale.challenges, &mut rng);

    // The measured stable fraction is independent of training size.
    let mut measured_stable = 0usize;
    for c in &eval_pool {
        let s = chip
            .measure_individual_soft(0, c, Condition::NOMINAL, scale.evals, &mut rng)
            .expect("measurement failed");
        if s.is_stable() {
            measured_stable += 1;
        }
    }
    let measured_fraction = measured_stable as f64 / eval_pool.len() as f64;

    let sizes: Vec<usize> = TRAIN_SIZES.to_vec();
    let rows = par::par_map_progress("bench.fig10.sizes", &sizes, |si, &size| {
        let mut rng = StdRng::seed_from_u64(scale.seed ^ (0xF16_0010 + si as u64 * 104_729));
        let training = &train_pool[..size];
        let soft: Vec<f64> = training
            .iter()
            .map(|c| {
                chip.measure_individual_soft(0, c, Condition::NOMINAL, scale.evals, &mut rng)
                    .expect("measurement failed")
                    .value()
            })
            .collect();
        // puf-lint: allow(L3): wall-clock reports training cost in the table prose; figure data is seed-deterministic
        let t0 = Instant::now();
        let model =
            LinearRegression::fit_challenges(training, &soft, 1e-6).expect("regression failed");
        let fit_time = t0.elapsed();
        let pairs: Vec<(f64, f64)> = training
            .iter()
            .zip(&soft)
            .map(|(c, &s)| (model.predict(c), s))
            .collect();
        let Some(thresholds) = Thresholds::from_training(&pairs) else {
            return (size, f64::NAN, f64::NAN, fit_time.as_secs_f64() * 1e3);
        };
        let betas = fit_betas_on_measurements(
            &chip,
            0,
            &model,
            thresholds,
            &beta_pool,
            &[Condition::NOMINAL],
            scale.evals,
            &mut rng,
        );
        let Ok(betas) = betas else {
            return (size, f64::NAN, f64::NAN, fit_time.as_secs_f64() * 1e3);
        };
        let adjusted = thresholds.adjusted(betas);
        let predicted_stable = eval_pool
            .iter()
            .filter(|c| adjusted.classify(model.predict(c)) != StabilityClass::Unstable)
            .count();
        // Out of the predicted-stable set, how many would actually misread?
        // (diagnostic — the β fit set is finite, so a tiny residual rate is
        // possible on fresh challenges)
        (
            size,
            predicted_stable as f64 / eval_pool.len() as f64,
            (betas.beta0 + betas.beta1) / 2.0,
            fit_time.as_secs_f64() * 1e3,
        )
    });

    let mut table = Table::new([
        "train CRPs",
        "predicted stable",
        "measured stable",
        "fit time (ms)",
    ]);
    for (size, predicted, _, fit_ms) in &rows {
        table.row([
            size.to_string(),
            format!("{:.1}%", predicted * 100.0),
            format!("{:.1}%", measured_fraction * 100.0),
            format!("{fit_ms:.2}"),
        ]);
    }
    println!("{}", table.render());
    println!("paper: predicted saturates ≈60%, measured ≈80%; 5,000-CRP fit took 4.3 ms");

    puf_bench::emit_telemetry_report();
}
