//! Decade-soak lifecycle harness: thousands of authentication sessions
//! against silicon chip models stepped through simulated **years** of
//! service, with the durable store crash-recovered mid-soak.
//!
//! Per epoch (a fraction of a simulated year) the harness:
//!
//! 1. **ages** every chip to the epoch's stress hours — per-stage BTI/HCI
//!    drift through [`puf_core::aging`], re-materialized into the device
//!    by [`Chip::set_age`] so every subsequent measurement drifts;
//! 2. **walks the V/T corners** — sessions run at the epoch's corner of
//!    [`Condition::paper_grid`], not pinned to nominal;
//! 3. **serves sessions** through a [`SessionManager`] whose challenges
//!    come from a finite-universe pool source: every challenge ever
//!    issued to a chip is excluded for its lifetime (the merged-exclusion
//!    semantics of [`Server::select_challenges_excluding`]), so pools
//!    genuinely deplete and `ChallengeSelectionExhausted` marks the
//!    chip's pool-exhaustion horizon;
//! 4. **re-enrolls** any chip whose sessions flagged
//!    `needs_reenrollment` (degraded accepts) or whose pool ran dry: a
//!    fresh model is measured from the *aged* chip, the pool account
//!    resets, and the lockout ladder clears;
//! 5. **audits fuses** — glitchy [`Chip::fuse_sense`] reads from the
//!    silicon testbench accumulate sense-path wear statistics;
//! 6. **journals** every control-plane event into a
//!    [`puf_protocol::durable`] write-ahead log and periodically
//!    **crashes**: the snapshot + WAL buffers are corrupted by a rotating
//!    [`DiskFaultKind`] (or left clean), recovered, and the recovered
//!    state **replaces** the live one — fault-free cycles assert
//!    bit-identical recovery; faulty cycles report exactly what was
//!    dropped and the soak carries on from the salvage.
//!
//! Chips are split into cohorts by **β margin** — the fitted β₀/β₁
//! threshold scalings stretched by a cohort factor. Wide margins select
//! only very stable challenges (low FRR under aging, small pools that
//! exhaust early); narrow margins select greedily (bigger pools, more
//! degraded accepts and re-enrollments). The result —
//! `results/BENCH_soak.json` with the shared [`SchemaHeader`] — reports
//! the pool-exhaustion horizon, re-enrollment rate and FRR trajectory per
//! lifetime year for each margin cohort.
//!
//! After every epoch a plain-text checkpoint (run configuration, metric
//! rows, and the durable snapshot + WAL in hex) is rewritten, so an
//! interrupted soak resumes at the next epoch boundary. Every per-epoch
//! input derives from `(seed, lane, chip, epoch)` splitmix streams and the
//! JSON contains no wall-clock, so a resumed run — and any re-execution
//! from the same seed — is byte-identical.
//!
//! Run: `cargo run -p puf-bench --release --bin soak`
//! (`--smoke` runs a seconds-scale soak and writes
//! `target/BENCH_soak_smoke.json`; `--seed N` / `--out PATH` /
//! `--checkpoint PATH` override defaults; `--fresh` ignores an existing
//! checkpoint.)

use puf_bench::SchemaHeader;
use puf_core::Condition;
use puf_protocol::durable::{recover, DurableEvent, DurableLog, DurableState};
use puf_protocol::enrollment::{enroll, EnrolledChip, EnrollmentConfig};
use puf_protocol::faults::{DiskCorruption, DiskFaultKind};
use puf_protocol::{
    Betas, ChallengeSource, ChallengeUniverse, ChannelFaultPlan, ChipResponder, ExclusionSet,
    FaultPlan, ProtocolError, SelectedChallenge, Server, SessionOutcome, SessionPolicy,
};
use puf_silicon::{Chip, ChipConfig, FuseSense};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::sync::Arc;

/// Simulated hours per lifetime year.
const HOURS_PER_YEAR: f64 = 8_766.0;
/// Splitmix lanes (mirroring the repo-wide lane discipline).
const LANE_FABRICATE: u64 = 0;
const LANE_UNIVERSE: u64 = 1;
const LANE_ENROLL: u64 = 2;
const LANE_SESSION: u64 = 3;
const LANE_CHANNEL: u64 = 4;
const LANE_FUSE: u64 = 5;
const LANE_CRASH: u64 = 6;

/// splitmix64-style mixer: independent sub-seeds per (lane, chip, epoch)
/// so resumed runs replay the identical RNG streams epoch by epoch.
fn mix(seed: u64, a: u64, b: u64, c: u64) -> u64 {
    let mut z = seed
        .wrapping_add(a.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(b.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(c.wrapping_mul(0x94D0_49BB_1331_11EB))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Soak dimensions, decade-scale vs `--smoke`.
struct Dims {
    years: usize,
    epochs_per_year: usize,
    margins: Vec<f64>,
    chips_per_margin: usize,
    sessions_per_epoch: usize,
    universe: usize,
    xor_n: usize,
    rounds: usize,
    lockout_threshold: u32,
    snapshot_every: u64,
    crash_every: usize,
    fuse_audits: usize,
    chip_config: ChipConfig,
}

impl Dims {
    fn full() -> Self {
        Self {
            years: 10,
            epochs_per_year: 4,
            margins: vec![0.85, 1.0, 1.3],
            chips_per_margin: 12,
            sessions_per_epoch: 4,
            universe: 2_048,
            xor_n: 2,
            rounds: 16,
            lockout_threshold: 8,
            snapshot_every: 96,
            crash_every: 4,
            fuse_audits: 8,
            chip_config: ChipConfig::paper_default(),
        }
    }

    fn smoke() -> Self {
        Self {
            years: 2,
            epochs_per_year: 2,
            margins: vec![0.85, 1.0, 1.3],
            chips_per_margin: 3,
            sessions_per_epoch: 3,
            universe: 128,
            xor_n: 2,
            rounds: 8,
            lockout_threshold: 6,
            snapshot_every: 24,
            crash_every: 2,
            fuse_audits: 4,
            chip_config: ChipConfig::small(),
        }
    }

    fn total_epochs(&self) -> usize {
        self.years * self.epochs_per_year
    }

    fn total_chips(&self) -> usize {
        self.margins.len() * self.chips_per_margin
    }

    /// Stress hours accumulated by the end of `epoch` (0-based).
    fn hours_at(&self, epoch: usize) -> f64 {
        (epoch + 1) as f64 * self.years as f64 * HOURS_PER_YEAR / self.total_epochs() as f64
    }

    /// The cohort (margin index) of a chip id.
    fn cohort_of(&self, chip_id: u32) -> usize {
        chip_id as usize / self.chips_per_margin
    }

    fn policy(&self) -> SessionPolicy {
        SessionPolicy {
            lockout_threshold: self.lockout_threshold,
            ..SessionPolicy::degraded(self.rounds, 0.25)
        }
    }

    fn channel_plan(&self) -> ChannelFaultPlan {
        ChannelFaultPlan {
            drop_rate: 0.01,
            straggle_rate: 0.005,
            duplicate_rate: 0.005,
            reorder_rate: 0.005,
            corrupt_rate: 0.002,
        }
    }
}

/// Stretches the fitted β₀/β₁ of every member by the cohort margin:
/// `margin > 1` pushes the effective thresholds further out (only very
/// stable challenges qualify), `margin < 1` pulls them in.
fn apply_margin(mut record: EnrolledChip, margin: f64) -> EnrolledChip {
    for puf in &mut record.pufs {
        puf.betas = Betas {
            beta0: puf.betas.beta0 * margin,
            beta1: puf.betas.beta1 * margin,
        };
    }
    record
}

/// A lifetime challenge-pool source over a finite universe: the merged
/// exclusion semantics of [`Server::select_challenges_excluding`], with
/// the chip's lifetime-consumed pool as a persistent exclusion set. Every
/// issued challenge is recorded (and journaled into the durable log), so
/// pools deplete across sessions, epochs, and — through recovery — across
/// crashes.
struct SoakSource {
    universe: Arc<ChallengeUniverse>,
    consumed: BTreeMap<u32, BTreeSet<u128>>,
    /// Issued-but-not-yet-journaled bits, drained into
    /// [`DurableEvent::PoolConsume`] at epoch end.
    fresh: BTreeMap<u32, Vec<u128>>,
}

impl SoakSource {
    fn new(universe: Arc<ChallengeUniverse>) -> Self {
        Self {
            universe,
            consumed: BTreeMap::new(),
            fresh: BTreeMap::new(),
        }
    }

    /// Rebuilds the pool accounts from a recovered durable state. Also
    /// drops any un-journaled fresh bits — exactly what a crash loses.
    fn restore(&mut self, state: &DurableState) {
        self.consumed.clear();
        self.fresh.clear();
        for record in state.records() {
            let pool = state.pool(record.chip_id);
            if !pool.is_empty() {
                self.consumed
                    .insert(record.chip_id, pool.iter().copied().collect());
            }
        }
    }

    /// Resets one chip's pool account (a fresh enrollment model).
    fn reset_pool(&mut self, chip_id: u32) {
        self.consumed.remove(&chip_id);
        self.fresh.remove(&chip_id);
    }

    fn consumed_total(&self) -> usize {
        self.consumed.values().map(BTreeSet::len).sum()
    }

    fn consumed_of(&self, chip_id: u32) -> usize {
        self.consumed.get(&chip_id).map_or(0, BTreeSet::len)
    }
}

impl ChallengeSource for SoakSource {
    fn select<R: Rng + ?Sized>(
        &mut self,
        server: &Server,
        chip_id: u32,
        count: usize,
        max_attempts: usize,
        exclude: &ExclusionSet,
        rng: &mut R,
    ) -> Result<Vec<SelectedChallenge>, ProtocolError> {
        let record = server
            .record(chip_id)
            .ok_or(ProtocolError::UnknownChip { chip_id })?;
        let pool = self.consumed.entry(chip_id).or_default();
        let mut out = Vec::with_capacity(count);
        let mut attempts = 0usize;
        while out.len() < count && attempts < max_attempts {
            attempts += 1;
            let i = rng.gen_range(0..self.universe.len() as u32);
            let challenge = self.universe.challenge(i);
            let bits = challenge.bits();
            if pool.contains(&bits) || exclude.contains(bits) {
                continue;
            }
            let Some(expected) = record.predict_stable_xor(challenge) else {
                continue;
            };
            pool.insert(bits);
            self.fresh.entry(chip_id).or_default().push(bits);
            out.push(SelectedChallenge {
                challenge: *challenge,
                expected,
            });
        }
        if out.len() < count {
            puf_telemetry::counter!("bench.soak.pool_exhausted").inc();
            return Err(ProtocolError::ChallengeSelectionExhausted {
                requested: count,
                found: out.len(),
                attempts,
            });
        }
        Ok(out)
    }
}

/// One epoch's tallies for one margin cohort (a checkpoint `row=` line).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct EpochRow {
    epoch: usize,
    cohort: usize,
    sessions: u64,
    accepted: u64,
    degraded: u64,
    rejected: u64,
    locked_out: u64,
    lockout_refusals: u64,
    reenrolls: u64,
    exhausted: u64,
    pool_consumed: u64,
    fuse_senses: u64,
    fuse_glitches: u64,
    recovery_reenrolls: u64,
}

impl EpochRow {
    fn denied(&self) -> u64 {
        self.rejected + self.locked_out + self.lockout_refusals
    }

    fn to_line(self) -> String {
        format!(
            "row={} {} {} {} {} {} {} {} {} {} {} {} {} {}",
            self.epoch,
            self.cohort,
            self.sessions,
            self.accepted,
            self.degraded,
            self.rejected,
            self.locked_out,
            self.lockout_refusals,
            self.reenrolls,
            self.exhausted,
            self.pool_consumed,
            self.fuse_senses,
            self.fuse_glitches,
            self.recovery_reenrolls,
        )
    }

    fn parse(line: &str) -> Option<Self> {
        let mut it = line.split_whitespace();
        let mut next = || it.next()?.parse::<u64>().ok();
        Some(Self {
            epoch: next()? as usize,
            cohort: next()? as usize,
            sessions: next()?,
            accepted: next()?,
            degraded: next()?,
            rejected: next()?,
            locked_out: next()?,
            lockout_refusals: next()?,
            reenrolls: next()?,
            exhausted: next()?,
            pool_consumed: next()?,
            fuse_senses: next()?,
            fuse_glitches: next()?,
            recovery_reenrolls: next()?,
        })
    }
}

/// Durability tallies accumulated across the whole soak.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct Durability {
    crashes: u64,
    clean_recoveries: u64,
    faulty_recoveries: u64,
    wal_bytes_dropped: u64,
    duplicates_skipped: u64,
    events_journaled: u64,
}

fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = write!(s, "{b:02x}");
    }
    s
}

fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(s.get(i..i + 2)?, 16).ok())
        .collect()
}

/// Everything a resumed soak needs: completed epochs, metric rows,
/// durability tallies, and the durable snapshot + WAL.
struct Checkpoint {
    epochs_done: usize,
    rows: Vec<EpochRow>,
    durability: Durability,
    snapshot: Vec<u8>,
    wal: Vec<u8>,
}

fn checkpoint_text(seed: u64, dims: &Dims, ckpt: &Checkpoint) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "version=1");
    let _ = writeln!(s, "seed={seed}");
    let _ = writeln!(s, "years={}", dims.years);
    let _ = writeln!(s, "epochs_per_year={}", dims.epochs_per_year);
    let _ = writeln!(s, "chips_per_margin={}", dims.chips_per_margin);
    let _ = writeln!(s, "sessions_per_epoch={}", dims.sessions_per_epoch);
    let _ = writeln!(s, "universe={}", dims.universe);
    let margins: Vec<String> = dims.margins.iter().map(|m| format!("{m:?}")).collect();
    let _ = writeln!(s, "margins={}", margins.join(","));
    let _ = writeln!(s, "epochs_done={}", ckpt.epochs_done);
    let d = &ckpt.durability;
    let _ = writeln!(
        s,
        "durability={} {} {} {} {} {}",
        d.crashes,
        d.clean_recoveries,
        d.faulty_recoveries,
        d.wal_bytes_dropped,
        d.duplicates_skipped,
        d.events_journaled,
    );
    for row in &ckpt.rows {
        let _ = writeln!(s, "{}", row.to_line());
    }
    let _ = writeln!(s, "snapshot={}", hex_encode(&ckpt.snapshot));
    let _ = writeln!(s, "wal={}", hex_encode(&ckpt.wal));
    s
}

/// Parses a checkpoint written by [`checkpoint_text`]; `None` (fresh
/// start) if malformed or written for a different configuration.
fn parse_checkpoint(text: &str, seed: u64, dims: &Dims) -> Option<Checkpoint> {
    let get = |key: &str| -> Option<String> {
        text.lines()
            .find_map(|l| l.strip_prefix(key)?.strip_prefix('=').map(str::to_string))
    };
    let margins: Vec<String> = dims.margins.iter().map(|m| format!("{m:?}")).collect();
    if get("version")?.parse::<u32>().ok()? != 1
        || get("seed")?.parse::<u64>().ok()? != seed
        || get("years")?.parse::<usize>().ok()? != dims.years
        || get("epochs_per_year")?.parse::<usize>().ok()? != dims.epochs_per_year
        || get("chips_per_margin")?.parse::<usize>().ok()? != dims.chips_per_margin
        || get("sessions_per_epoch")?.parse::<usize>().ok()? != dims.sessions_per_epoch
        || get("universe")?.parse::<usize>().ok()? != dims.universe
        || get("margins")? != margins.join(",")
    {
        return None;
    }
    let mut d = get("durability")?;
    let durability = {
        let mut it = d.split_whitespace();
        let mut next = || it.next()?.parse::<u64>().ok();
        Durability {
            crashes: next()?,
            clean_recoveries: next()?,
            faulty_recoveries: next()?,
            wal_bytes_dropped: next()?,
            duplicates_skipped: next()?,
            events_journaled: next()?,
        }
    };
    d.clear();
    let rows: Vec<EpochRow> = text
        .lines()
        .filter_map(|l| EpochRow::parse(l.strip_prefix("row=")?))
        .collect();
    Some(Checkpoint {
        epochs_done: get("epochs_done")?.parse().ok()?,
        rows,
        durability,
        snapshot: hex_decode(&get("snapshot")?)?,
        wal: hex_decode(&get("wal")?)?,
    })
}

/// Measures a fresh enrollment record from the (aged) chip and stamps the
/// cohort margin onto its fitted βs.
fn measure_enrollment(
    seed: u64,
    dims: &Dims,
    chip: &Chip,
    epoch: u64,
    margin: f64,
) -> EnrolledChip {
    let mut rng = StdRng::seed_from_u64(mix(seed, LANE_ENROLL, u64::from(chip.id()), epoch));
    let config = EnrollmentConfig::small(dims.xor_n);
    let record = enroll(chip, &config, &mut rng).expect("soak chips keep their fuses intact");
    apply_margin(record, margin)
}

fn main() {
    let cli = puf_bench::BenchCliSpec::new("target/SOAK_trace.json")
        .with_checkpoint()
        .parse();
    let (smoke, seed, fresh, trace) = (cli.smoke, cli.seed, cli.fresh, cli.trace);
    if trace.is_some() {
        // Tick clock: the trace, like the JSON, is byte-identical per seed.
        let tracer = puf_telemetry::tracer();
        tracer.set_clock(puf_telemetry::TraceClock::Tick);
        tracer.set_lane_capacity(1 << 20);
        tracer.set_enabled(true);
    }
    let dims = if smoke { Dims::smoke() } else { Dims::full() };
    let out_path = cli.out.unwrap_or_else(|| {
        if smoke {
            "target/BENCH_soak_smoke.json".to_string()
        } else {
            "results/BENCH_soak.json".to_string()
        }
    });
    let ckpt_path = cli.checkpoint.unwrap_or_else(|| {
        if smoke {
            "target/soak_checkpoint_smoke.txt".to_string()
        } else {
            "target/soak_checkpoint.txt".to_string()
        }
    });

    println!(
        "decade soak: {} chips ({} margins x {}), {} years x {} epochs, universe {}",
        dims.total_chips(),
        dims.margins.len(),
        dims.chips_per_margin,
        dims.years,
        dims.epochs_per_year,
        dims.universe,
    );

    // ---- fabricate the fleet (deterministic, so resume refabricates) ----
    let mut fab_rng = StdRng::seed_from_u64(mix(seed, LANE_FABRICATE, 0, 0));
    let mut chips: Vec<Chip> = (0..dims.total_chips() as u32)
        .map(|id| Chip::fabricate(id, &dims.chip_config, &mut fab_rng))
        .collect();
    let mut universe_rng = StdRng::seed_from_u64(mix(seed, LANE_UNIVERSE, 0, 0));
    let universe = Arc::new(
        ChallengeUniverse::generate(dims.chip_config.stages, dims.universe, &mut universe_rng)
            .expect("soak universe generation"),
    );

    // ---- resume or fresh start -----------------------------------------
    let mut rows: Vec<EpochRow> = Vec::new();
    let mut durability = Durability::default();
    let mut log = DurableLog::new(dims.snapshot_every);
    let mut start_epoch = 0usize;
    if !fresh {
        if let Ok(text) = std::fs::read_to_string(&ckpt_path) {
            if let Some(ckpt) = parse_checkpoint(&text, seed, &dims) {
                let (recovered, report) = recover(&ckpt.snapshot, &ckpt.wal);
                assert!(
                    report.is_clean(),
                    "soak checkpoint durable store must recover cleanly: {report:?}"
                );
                log = recovered;
                log.set_snapshot_every(dims.snapshot_every);
                start_epoch = ckpt.epochs_done;
                rows = ckpt.rows;
                durability = ckpt.durability;
                println!(
                    "  resuming from checkpoint: {}/{} epochs done",
                    start_epoch,
                    dims.total_epochs()
                );
            } else {
                println!("  checkpoint at {ckpt_path} does not match this run; starting fresh");
            }
        }
    }
    let resumed_from = start_epoch;

    // ---- initial enrollment (journaled; skipped entirely on resume) ----
    if start_epoch == 0 {
        for chip in &chips {
            let margin = dims.margins[dims.cohort_of(chip.id())];
            let record = measure_enrollment(seed, &dims, chip, 0, margin);
            log.append(&DurableEvent::Enroll(record));
            durability.events_journaled += 1;
        }
    }
    let mut manager = log
        .state()
        .restore_session_manager(dims.policy())
        .expect("soak session policy is valid");
    let mut source = SoakSource::new(Arc::clone(&universe));
    source.restore(log.state());

    let corners = Condition::paper_grid();
    let crash_kinds = [
        None,
        Some(DiskFaultKind::TornFinalRecord),
        Some(DiskFaultKind::BitRot),
        Some(DiskFaultKind::DuplicatedTail),
        Some(DiskFaultKind::TruncatedSnapshot),
    ];

    // ---- the soak loop --------------------------------------------------
    for epoch in start_epoch..dims.total_epochs() {
        puf_telemetry::counter!("bench.soak.epochs").inc();
        let hours = dims.hours_at(epoch);
        let corner = corners[epoch % corners.len()];
        for chip in &mut chips {
            chip.set_age(hours);
        }
        let mut epoch_rows: Vec<EpochRow> = (0..dims.margins.len())
            .map(|cohort| EpochRow {
                epoch,
                cohort,
                ..EpochRow::default()
            })
            .collect();

        for chip in &chips {
            let chip_id = chip.id();
            let cohort = dims.cohort_of(chip_id);
            let margin = dims.margins[cohort];
            let row = &mut epoch_rows[cohort];

            // A chip whose record vanished with a lost snapshot gets a
            // full (journaled) re-enrollment before serving resumes.
            if manager.server().record(chip_id).is_none() {
                let record = measure_enrollment(seed, &dims, chip, epoch as u64, margin);
                manager.register_chip(record.clone());
                source.reset_pool(chip_id);
                log.append(&DurableEvent::Enroll(record));
                durability.events_journaled += 1;
                row.recovery_reenrolls += 1;
                puf_telemetry::counter!("bench.soak.recovery_reenrolls").inc();
            }

            // Lockouts from a previous epoch get one administrative
            // reinstatement per epoch (the out-of-band vetting cooloff).
            if manager.is_locked_out(chip_id) {
                manager.reinstate(chip_id);
                log.append(&DurableEvent::Reinstate { chip_id });
                durability.events_journaled += 1;
            }

            let mut exhausted_this_epoch = false;
            for k in 0..dims.sessions_per_epoch {
                let uid = (epoch * dims.sessions_per_epoch + k) as u64;
                let mut responder = ChipResponder::new(
                    chip,
                    dims.xor_n,
                    corner,
                    mix(seed, LANE_SESSION, u64::from(chip_id), uid),
                );
                let mut channel = FaultPlan::none(mix(seed, LANE_CHANNEL, u64::from(chip_id), uid))
                    .with_channel(dims.channel_plan())
                    .channel_faults();
                let mut rng =
                    StdRng::seed_from_u64(mix(seed, LANE_SESSION, u64::from(chip_id), uid ^ 1));
                row.sessions += 1;
                puf_telemetry::counter!("bench.soak.sessions").inc();
                match manager.authenticate_with_source(
                    chip_id,
                    &mut responder,
                    &mut channel,
                    &mut source,
                    &mut rng,
                ) {
                    Ok(report) => match report.outcome {
                        SessionOutcome::Accepted => row.accepted += 1,
                        SessionOutcome::Degraded => row.degraded += 1,
                        SessionOutcome::Rejected => row.rejected += 1,
                        SessionOutcome::LockedOut => {
                            row.locked_out += 1;
                            log.append(&DurableEvent::Lockout { chip_id });
                            durability.events_journaled += 1;
                        }
                    },
                    Err(ProtocolError::ChipLockedOut { .. }) => row.lockout_refusals += 1,
                    Err(ProtocolError::ChallengeSelectionExhausted { .. }) => {
                        row.exhausted += 1;
                        exhausted_this_epoch = true;
                    }
                    Err(e) => panic!("soak session failed unexpectedly: {e}"),
                }
            }

            // Fuse-read wear: the testbench senses the fuse path with a
            // deterministic glitch rate; indeterminate reads are retried
            // in the field, so here they only accumulate wear statistics.
            let mut fuse_rng =
                StdRng::seed_from_u64(mix(seed, LANE_FUSE, u64::from(chip_id), epoch as u64));
            for _ in 0..dims.fuse_audits {
                let glitch = fuse_rng.gen_bool(0.1);
                row.fuse_senses += 1;
                if chip.fuse_sense(glitch) == FuseSense::Indeterminate {
                    row.fuse_glitches += 1;
                }
            }

            // Close the re-enrollment loop: degraded sessions flagged the
            // model stale, or the lifetime pool ran dry — either way the
            // aged chip is re-measured and its pool account starts over.
            let needs = manager.state(chip_id).is_some_and(|s| s.needs_reenrollment);
            if needs || exhausted_this_epoch {
                let record = measure_enrollment(seed, &dims, chip, epoch as u64, margin);
                manager
                    .reenroll_chip(record.clone())
                    .expect("re-enrolling a registered chip");
                source.reset_pool(chip_id);
                log.append(&DurableEvent::Reenroll(record));
                durability.events_journaled += 1;
                row.reenrolls += 1;
                puf_telemetry::counter!("bench.soak.reenrollments").inc();
            }
        }

        // Journal the epoch's pool consumption and ladder states.
        let fresh_bits = std::mem::take(&mut source.fresh);
        for (chip_id, bits) in fresh_bits {
            log.append(&DurableEvent::PoolConsume { chip_id, bits });
            durability.events_journaled += 1;
        }
        for (chip_id, state) in manager.states() {
            log.append(&DurableEvent::StateSync {
                chip_id,
                state: *state,
            });
        }
        durability.events_journaled += log.state().len() as u64;
        for chip in &chips {
            let cohort = dims.cohort_of(chip.id());
            epoch_rows[cohort].pool_consumed += source.consumed_of(chip.id()) as u64;
        }

        // Periodic crash/recover: corrupt the durable buffers with the
        // rotating fault kind (or none), recover, and carry on from the
        // salvage. Fault-free cycles must recover bit-identically.
        if (epoch + 1).is_multiple_of(dims.crash_every) {
            durability.crashes += 1;
            puf_telemetry::counter!("bench.soak.crashes").inc();
            let kind = crash_kinds[(epoch / dims.crash_every) % crash_kinds.len()];
            let mut snapshot = log.snapshot_bytes().to_vec();
            let mut wal = log.wal_bytes().to_vec();
            let corruption = match kind {
                None => DiskCorruption::None,
                Some(kind) => FaultPlan::none(mix(seed, LANE_CRASH, epoch as u64, 0))
                    .disk_faults(kind)
                    .corrupt(&mut snapshot, &mut wal),
            };
            let (recovered, report) = recover(&snapshot, &wal);
            if corruption == DiskCorruption::None {
                assert!(
                    report.is_clean() && recovered.state() == log.state(),
                    "clean crash must recover bit-identically: {report:?}"
                );
                durability.clean_recoveries += 1;
            } else {
                durability.faulty_recoveries += 1;
                durability.wal_bytes_dropped += report.wal_bytes_dropped as u64;
                durability.duplicates_skipped += report.duplicates_skipped;
                println!(
                    "  epoch {:>3}: crash with {:?} -> recovered {} events, dropped {} bytes",
                    epoch + 1,
                    corruption,
                    report.events_applied,
                    report.wal_bytes_dropped,
                );
            }
            // Adopt the salvage: the live service state after a crash IS
            // whatever recovery produced.
            log = recovered;
            log.set_snapshot_every(dims.snapshot_every);
            manager = log
                .state()
                .restore_session_manager(dims.policy())
                .expect("recovered policy is the same policy");
            source.restore(log.state());
        }

        rows.extend(epoch_rows);
        // Compact before checkpointing so the hex payload stays bounded.
        log.compact();
        let ckpt = Checkpoint {
            epochs_done: epoch + 1,
            rows: rows.clone(),
            durability,
            snapshot: log.snapshot_bytes().to_vec(),
            wal: log.wal_bytes().to_vec(),
        };
        std::fs::create_dir_all("target").expect("create target directory");
        std::fs::write(&ckpt_path, checkpoint_text(seed, &dims, &ckpt)).expect("write checkpoint");
        // Test hook (used by scripts/check.sh): abort after N epochs as if
        // the process died, leaving the checkpoint behind for a resume.
        if std::env::var("SOAK_STOP_AFTER")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            == Some(epoch + 1)
        {
            println!("  stopping after epoch {} (SOAK_STOP_AFTER)", epoch + 1);
            return;
        }
        if (epoch + 1).is_multiple_of(dims.epochs_per_year) {
            let year = (epoch + 1) / dims.epochs_per_year;
            let year_rows: Vec<&EpochRow> = rows
                .iter()
                .filter(|r| r.epoch / dims.epochs_per_year == year - 1)
                .collect();
            let sessions: u64 = year_rows.iter().map(|r| r.sessions).sum();
            let denied: u64 = year_rows.iter().map(|r| r.denied()).sum();
            println!(
                "  year {year:>2}/{}: {} sessions, FRR {:.4}, {} re-enrollments",
                dims.years,
                sessions,
                denied as f64 / sessions.max(1) as f64,
                year_rows.iter().map(|r| r.reenrolls).sum::<u64>(),
            );
        }
    }

    // ---- aggregate and emit ---------------------------------------------
    let header = SchemaHeader::capture();
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&header.to_json_member(2));
    json.push_str(",\n");
    json.push_str("  \"config\": {\n");
    let _ = writeln!(json, "    \"seed\": {seed},");
    let _ = writeln!(json, "    \"years\": {},", dims.years);
    let _ = writeln!(json, "    \"epochs_per_year\": {},", dims.epochs_per_year);
    let _ = writeln!(json, "    \"chips_per_margin\": {},", dims.chips_per_margin);
    let _ = writeln!(
        json,
        "    \"sessions_per_epoch\": {},",
        dims.sessions_per_epoch
    );
    let _ = writeln!(json, "    \"universe\": {},", dims.universe);
    let _ = writeln!(json, "    \"rounds\": {},", dims.rounds);
    let _ = writeln!(json, "    \"stages\": {},", dims.chip_config.stages);
    let _ = writeln!(json, "    \"xor_n\": {},", dims.xor_n);
    let _ = writeln!(json, "    \"snapshot_every\": {},", dims.snapshot_every);
    let _ = writeln!(json, "    \"crash_every\": {}", dims.crash_every);
    json.push_str("  },\n");
    json.push_str("  \"cohorts\": [\n");
    for (cohort, &margin) in dims.margins.iter().enumerate() {
        let cohort_rows: Vec<&EpochRow> = rows.iter().filter(|r| r.cohort == cohort).collect();
        let sessions: u64 = cohort_rows.iter().map(|r| r.sessions).sum();
        let denied: u64 = cohort_rows.iter().map(|r| r.denied()).sum();
        let reenrolls: u64 = cohort_rows.iter().map(|r| r.reenrolls).sum();
        let chip_years = (dims.chips_per_margin * dims.years) as f64;
        // First year in which any cohort chip's pool ran dry; 0 = never.
        let horizon = cohort_rows
            .iter()
            .find(|r| r.exhausted > 0)
            .map_or(0, |r| r.epoch / dims.epochs_per_year + 1);
        json.push_str("    {\n");
        let _ = writeln!(json, "      \"margin\": {margin:?},");
        let _ = writeln!(json, "      \"reenroll_total\": {reenrolls},");
        let _ = writeln!(
            json,
            "      \"reenroll_per_chip_year\": {:.4},",
            reenrolls as f64 / chip_years
        );
        let _ = writeln!(json, "      \"pool_exhaustion_horizon_year\": {horizon},");
        let _ = writeln!(
            json,
            "      \"frr\": {:.6},",
            denied as f64 / sessions.max(1) as f64
        );
        json.push_str("      \"years\": [\n");
        for year in 1..=dims.years {
            let yr: Vec<&&EpochRow> = cohort_rows
                .iter()
                .filter(|r| r.epoch / dims.epochs_per_year == year - 1)
                .collect();
            let s: u64 = yr.iter().map(|r| r.sessions).sum();
            let d: u64 = yr.iter().map(|r| r.denied()).sum();
            let _ = writeln!(
                json,
                "        {{\"year\": {year}, \"sessions\": {s}, \"frr\": {:.6}, \
                 \"degraded\": {}, \"lockouts\": {}, \"reenrolls\": {}, \"exhausted\": {}, \
                 \"pool_consumed\": {}, \"fuse_glitches\": {}}}{}",
                d as f64 / s.max(1) as f64,
                yr.iter().map(|r| r.degraded).sum::<u64>(),
                yr.iter().map(|r| r.locked_out).sum::<u64>(),
                yr.iter().map(|r| r.reenrolls).sum::<u64>(),
                yr.iter().map(|r| r.exhausted).sum::<u64>(),
                yr.last().map_or(0, |r| r.pool_consumed),
                yr.iter().map(|r| r.fuse_glitches).sum::<u64>(),
                if year < dims.years { "," } else { "" },
            );
        }
        json.push_str("      ]\n");
        let _ = writeln!(
            json,
            "    }}{}",
            if cohort + 1 < dims.margins.len() {
                ","
            } else {
                ""
            }
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"durability\": {\n");
    let _ = writeln!(json, "    \"crashes\": {},", durability.crashes);
    let _ = writeln!(
        json,
        "    \"clean_recoveries\": {},",
        durability.clean_recoveries
    );
    let _ = writeln!(
        json,
        "    \"faulty_recoveries\": {},",
        durability.faulty_recoveries
    );
    let _ = writeln!(
        json,
        "    \"wal_bytes_dropped\": {},",
        durability.wal_bytes_dropped
    );
    let _ = writeln!(
        json,
        "    \"duplicates_skipped\": {},",
        durability.duplicates_skipped
    );
    let _ = writeln!(
        json,
        "    \"events_journaled\": {},",
        durability.events_journaled
    );
    let _ = writeln!(
        json,
        "    \"snapshot_bytes_final\": {},",
        log.snapshot_bytes().len()
    );
    let _ = writeln!(
        json,
        "    \"recovery_reenrolls\": {}",
        rows.iter().map(|r| r.recovery_reenrolls).sum::<u64>()
    );
    json.push_str("  },\n");
    json.push_str("  \"totals\": {\n");
    let sessions: u64 = rows.iter().map(|r| r.sessions).sum();
    let denied: u64 = rows.iter().map(|r| r.denied()).sum();
    let _ = writeln!(json, "    \"sessions\": {sessions},");
    let _ = writeln!(
        json,
        "    \"frr\": {:.6},",
        denied as f64 / sessions.max(1) as f64
    );
    // Live pool accounting *after* the last crash/recover cycle — a
    // truncated-snapshot crash late in life legitimately zeroes this.
    let _ = writeln!(
        json,
        "    \"pool_live_final\": {},",
        source.consumed_total()
    );
    let _ = writeln!(
        json,
        "    \"fuse_glitches\": {}",
        rows.iter().map(|r| r.fuse_glitches).sum::<u64>()
    );
    json.push_str("  }\n");
    json.push_str("}\n");

    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(parent).expect("create output directory");
    }
    std::fs::write(&out_path, &json).expect("write benchmark output");
    // A finished soak invalidates its checkpoint.
    let _ = std::fs::remove_file(&ckpt_path);
    println!("\nwrote {out_path} (resumed from epoch {resumed_from})");

    if let Some(trace_path) = trace {
        let tracer = puf_telemetry::tracer();
        let events = tracer.snapshot_events();
        assert_eq!(
            tracer.evicted(),
            0,
            "trace ring wrapped; raise the lane capacity"
        );
        if let Some(parent) = std::path::Path::new(&trace_path).parent() {
            std::fs::create_dir_all(parent).expect("create trace directory");
        }
        let clock = tracer.clock();
        std::fs::write(
            &trace_path,
            puf_telemetry::trace_export::chrome_trace_json(&events, clock),
        )
        .expect("write chrome trace");
        println!("wrote {trace_path} ({} events)", events.len());
    }
    puf_bench::emit_telemetry_report();
}
