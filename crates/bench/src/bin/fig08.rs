//! Figure 8 — measured vs model-predicted soft responses and the
//! `Thr(0)`/`Thr(1)` extraction.
//!
//! Paper (32 nm, 0.9 V, 25 °C, 5,000 challenges × 100,000 trials): the
//! linear model's predicted soft responses span a wider range than the
//! measured `[0, 1]` but remain centred near 0.5; `Thr(0)` is the lowest
//! prediction whose measurement exceeded 0.00 and `Thr(1)` the highest
//! whose measurement stayed below 1.00. Some CRPs are "stable in
//! measurement but discarded" by the model — the marginally stable ones.
//!
//! Run: `cargo run -p puf-bench --release --bin fig08 [--full]`

use puf_analysis::hist::Histogram;
use puf_analysis::Table;
use puf_bench::Scale;
use puf_core::challenge::random_challenges;
use puf_core::Condition;
use puf_ml::LinearRegression;
use puf_protocol::Thresholds;
use puf_silicon::{Chip, ChipConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    const TRAINING: usize = 5_000;
    println!("Fig. 8 reproduction — measured vs predicted soft response, threshold extraction");
    println!("scale: {scale}; training set: {TRAINING} challenges\n");

    let mut rng = StdRng::seed_from_u64(scale.seed);
    let chip = Chip::fabricate(0, &ChipConfig::paper_default(), &mut rng);
    let training = random_challenges(chip.stages(), TRAINING, &mut rng);

    // Counter measurements + linear fit (the enrollment core, §4).
    let measured: Vec<f64> = training
        .iter()
        .map(|c| {
            chip.measure_individual_soft(0, c, Condition::NOMINAL, scale.evals, &mut rng)
                .expect("measurement failed")
                .value()
        })
        .collect();
    let model =
        LinearRegression::fit_challenges(&training, &measured, 1e-6).expect("regression failed");
    let predicted: Vec<f64> = model.predict_batch(&training);

    // Histograms: measured in [0,1], predicted over a wider range.
    let mut measured_hist = Histogram::soft_response();
    measured_hist.extend(measured.iter().copied());
    let (pmin, pmax) = predicted
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &p| {
            (lo.min(p), hi.max(p))
        });
    let mut predicted_hist = Histogram::new(-0.5, 1.5, 40);
    predicted_hist.extend(predicted.iter().copied());

    println!("measured soft responses (bin = 0.05):");
    println!("{}", measured_hist.render(40));
    println!(
        "predicted soft responses (range {:.3}..{:.3} — wider than [0,1], centred near 0.5):",
        pmin, pmax
    );
    println!("{}", predicted_hist.render(40));

    // Threshold extraction per the paper's definition.
    let pairs: Vec<(f64, f64)> = predicted
        .iter()
        .copied()
        .zip(measured.iter().copied())
        .collect();
    let thresholds = Thresholds::from_training(&pairs).expect("degenerate training set");
    println!(
        "Thr(0) = {:.4}   (lowest prediction with measured soft > 0.00)",
        thresholds.thr0
    );
    println!(
        "Thr(1) = {:.4}   (highest prediction with measured soft < 1.00)\n",
        thresholds.thr1
    );

    // Cross-tabulate measured category vs predicted category.
    let mut counts = [[0usize; 3]; 3]; // [measured][predicted]
    for (&pred, &meas) in predicted.iter().zip(&measured) {
        let m = if meas == 0.0 {
            0
        } else if meas == 1.0 {
            2
        } else {
            1
        };
        let p = match thresholds.classify(pred) {
            puf_protocol::StabilityClass::Stable0 => 0,
            puf_protocol::StabilityClass::Unstable => 1,
            puf_protocol::StabilityClass::Stable1 => 2,
        };
        counts[m][p] += 1;
    }
    let labels = [
        "measured stable 0",
        "measured unstable",
        "measured stable 1",
    ];
    let mut table = Table::new(["", "pred stable 0", "pred unstable", "pred stable 1"]);
    for (mi, label) in labels.iter().enumerate() {
        table.row([
            label.to_string(),
            counts[mi][0].to_string(),
            counts[mi][1].to_string(),
            counts[mi][2].to_string(),
        ]);
    }
    println!("{}", table.render());

    let discarded = counts[0][1] + counts[2][1];
    let misclassified = counts[1][0] + counts[1][2] + counts[0][2] + counts[2][0];
    println!(
        "stable in measurement but discarded by the model (marginally stable): {} ({:.1}%)",
        discarded,
        discarded as f64 / TRAINING as f64 * 100.0
    );
    println!(
        "CRPs classified stable by the model but not measured so: {misclassified} \
         (must be 0 on the training set by the threshold definition)"
    );

    puf_bench::emit_telemetry_report();
}
