//! Streaming replay of the paper's 1-trillion-CRP measurement campaign:
//! 10 chips × 1 M challenges × 100 k repeated evaluations, driven through
//! the bit-sliced evaluation engine ([`puf_core::bitslice`]) and the
//! counter shortcut (`counter::measure` collapses the 100 k repetitions of
//! a challenge into one binomial draw, exactly as the paper's on-chip
//! counters collapse them into one count register).
//!
//! Phases:
//!
//! 1. **calibrate** — single-thread throughput of the batched baseline
//!    (`xor10_batched_prebuilt_1t`, the PR-2 reference metric), the
//!    bit-sliced packed-response path per SIMD lane, and the fleet packed
//!    path (all 10 chips over one challenge matrix — the replay's actual
//!    hot loop, where plane expansion amortises across the fleet). The
//!    fleet path must be ≥ 4× the batched baseline; the gate aborts the
//!    bench unless `--no-gate` (or `--smoke`) is given.
//! 2. **threads** — the fleet packed path fanned out over shards via
//!    [`puf_bench::par`] at 1/2/4/all workers (thread-scaling curve).
//! 3. **replay** — the streamed campaign: challenges are generated shard
//!    by shard (the 1 M-challenge matrix never materialises), each chip's
//!    soft responses come from `measure_xor_soft_batch`, and aggregate
//!    stability statistics accumulate. After every shard a plain-text
//!    checkpoint is rewritten, so an interrupted run resumes at the next
//!    shard boundary (per-shard RNG streams make the resumed run
//!    bit-identical to an uninterrupted one). A small literal-path sample
//!    (`counter::measure_literal` over `eval_xor_once`) calibrates how
//!    much the counter shortcut buys.
//!
//! The result lands in `results/BENCH_trillion.json` (stamped with the
//! shared [`SchemaHeader`]): CRPs/s per lane kind, the thread-scaling
//! curve, replay statistics, and the projected wall-clock for the paper's
//! full 10¹² measurements on this host.
//!
//! Run: `cargo run -p puf-bench --release --bin trillion`
//! (`--smoke` runs a bounded replay in a few seconds and writes
//! `target/BENCH_trillion_smoke.json`; `--no-gate` records results even
//! below the 4× gate; `--seed N` / `--out PATH` / `--checkpoint PATH`
//! override defaults; `--fresh` ignores an existing checkpoint;
//! `--trace[=PATH]` exports a Chrome trace of the run.)

use puf_bench::{par, SchemaHeader};
use puf_core::bitslice::{self, Lane};
use puf_core::{Challenge, Condition, FeatureMatrix, XorPuf};
use puf_silicon::{counter, Chip, ChipConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Instant;

const XOR_N: usize = 10;
const STAGES: usize = 32;
const GATE_FACTOR: f64 = 4.0;
/// Timing repetitions for the calibration phase (best-of, both sides).
const TIMING_REPS: usize = 5;
/// The paper's campaign: 10 chips × 1 M challenges × 100 k evaluations.
const CAMPAIGN_MEASUREMENTS: f64 = 1e12;

/// Sweep dimensions, full-campaign replay vs `--smoke`.
struct Dims {
    chips: usize,
    challenges: usize,
    reps: u64,
    shard: usize,
    gate_pool: usize,
    literal_challenges: usize,
    literal_reps: u64,
}

impl Dims {
    fn full() -> Self {
        Self {
            chips: 10,
            challenges: 1_000_000,
            reps: 100_000,
            shard: 65_536,
            gate_pool: 65_536,
            literal_challenges: 128,
            literal_reps: 2_000,
        }
    }

    fn smoke() -> Self {
        Self {
            chips: 2,
            challenges: 8_192,
            reps: 1_000,
            shard: 4_096,
            gate_pool: 16_384,
            literal_challenges: 32,
            literal_reps: 200,
        }
    }
}

/// splitmix64-style mixer: independent sub-seeds per (stream, shard, chip)
/// so resumed runs replay the identical RNG streams shard by shard.
fn mix(seed: u64, a: u64, b: u64, c: u64) -> u64 {
    let mut z = seed
        .wrapping_add(a.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(b.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(c.wrapping_mul(0x94D0_49BB_1331_11EB))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Best-of-`TIMING_REPS` throughput of `work`, which reports how many
/// CRPs one invocation covered.
fn throughput(mut work: impl FnMut() -> usize) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..TIMING_REPS {
        // puf-lint: allow(L3): this binary measures throughput; timing is its output by design
        let t0 = Instant::now();
        let crps = work();
        let secs = t0.elapsed().as_secs_f64();
        if secs > 0.0 {
            best = best.max(crps as f64 / secs);
        }
    }
    best
}

/// Replay aggregates carried across shards (and across interrupted runs
/// via the checkpoint file).
#[derive(Default, Clone, PartialEq, Debug)]
struct ReplayState {
    shards_done: usize,
    crps: u64,
    stable: u64,
    stable_zero: u64,
    stable_one: u64,
    sum_soft: f64,
    elapsed_secs: f64,
}

/// Serialises the checkpoint as plain `key=value` lines. `{:?}` prints
/// f64 with round-trip precision, so resume is bit-exact.
fn checkpoint_text(seed: u64, dims: &Dims, state: &ReplayState) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "version=1");
    let _ = writeln!(s, "seed={seed}");
    let _ = writeln!(s, "chips={}", dims.chips);
    let _ = writeln!(s, "challenges={}", dims.challenges);
    let _ = writeln!(s, "reps={}", dims.reps);
    let _ = writeln!(s, "shards_done={}", state.shards_done);
    let _ = writeln!(s, "crps={}", state.crps);
    let _ = writeln!(s, "stable={}", state.stable);
    let _ = writeln!(s, "stable_zero={}", state.stable_zero);
    let _ = writeln!(s, "stable_one={}", state.stable_one);
    let _ = writeln!(s, "sum_soft={:?}", state.sum_soft);
    let _ = writeln!(s, "elapsed_secs={:?}", state.elapsed_secs);
    s
}

/// Parses a checkpoint written by [`checkpoint_text`]. Returns `None` if
/// the file is malformed or was written for a different configuration —
/// the replay then starts fresh.
fn parse_checkpoint(text: &str, seed: u64, dims: &Dims) -> Option<ReplayState> {
    let mut state = ReplayState::default();
    let get = |key: &str| -> Option<String> {
        text.lines()
            .find_map(|l| l.strip_prefix(key)?.strip_prefix('=').map(str::to_string))
    };
    if get("version")?.parse::<u32>().ok()? != 1
        || get("seed")?.parse::<u64>().ok()? != seed
        || get("chips")?.parse::<usize>().ok()? != dims.chips
        || get("challenges")?.parse::<usize>().ok()? != dims.challenges
        || get("reps")?.parse::<u64>().ok()? != dims.reps
    {
        return None;
    }
    state.shards_done = get("shards_done")?.parse().ok()?;
    state.crps = get("crps")?.parse().ok()?;
    state.stable = get("stable")?.parse().ok()?;
    state.stable_zero = get("stable_zero")?.parse().ok()?;
    state.stable_one = get("stable_one")?.parse().ok()?;
    state.sum_soft = get("sum_soft")?.parse().ok()?;
    state.elapsed_secs = get("elapsed_secs")?.parse().ok()?;
    Some(state)
}

/// The deterministic challenge stream for shard `s`.
fn shard_challenges(seed: u64, shard: usize, len: usize) -> Vec<Challenge> {
    let mut rng = StdRng::seed_from_u64(mix(seed, 1, shard as u64, 0));
    (0..len)
        .map(|_| Challenge::random(STAGES, &mut rng))
        .collect()
}

fn main() {
    let cli = puf_bench::BenchCliSpec::new("target/TRILLION_trace.json")
        .with_gate()
        .with_checkpoint()
        .parse();
    let (smoke, no_gate, fresh) = (cli.smoke, cli.no_gate, cli.fresh);
    let (seed, out, checkpoint, trace) = (cli.seed, cli.out, cli.checkpoint, cli.trace);
    if trace.is_some() {
        let tracer = puf_telemetry::tracer();
        tracer.set_lane_capacity(1 << 20);
        tracer.set_enabled(true);
    }
    let dims = if smoke { Dims::smoke() } else { Dims::full() };
    let out_path = out.unwrap_or_else(|| {
        if smoke {
            "target/BENCH_trillion_smoke.json".to_string()
        } else {
            "results/BENCH_trillion.json".to_string()
        }
    });
    let ckpt_path = checkpoint.unwrap_or_else(|| {
        if smoke {
            "target/trillion_checkpoint_smoke.txt".to_string()
        } else {
            "target/trillion_checkpoint.txt".to_string()
        }
    });

    let lanes = bitslice::available_lanes();
    let lane_names: Vec<&str> = lanes.iter().map(|l| l.name()).collect();
    println!(
        "trillion replay: {} chips x {} challenges x {} reps, lanes [{}], active {}",
        dims.chips,
        dims.challenges,
        dims.reps,
        lane_names.join(", "),
        bitslice::active_lane().name(),
    );

    // ---- phase 1: calibrate ------------------------------------------------
    let _phase = puf_telemetry::span!("bench.trillion.calibrate");
    let mut rng = StdRng::seed_from_u64(seed);
    let fleet: Vec<XorPuf> = (0..dims.chips)
        .map(|_| XorPuf::random(XOR_N, STAGES, &mut rng))
        .collect();
    let fleet_refs: Vec<&XorPuf> = fleet.iter().collect();
    let gate_cs: Vec<Challenge> = (0..dims.gate_pool)
        .map(|_| Challenge::random(STAGES, &mut rng))
        .collect();
    let gate_fm = FeatureMatrix::from_challenges(&gate_cs).expect("gate feature matrix");

    let mut sink = 0u64;
    let baseline = throughput(|| {
        sink += fleet[0]
            .response_batch(&gate_fm)
            .iter()
            .filter(|&&b| b)
            .count() as u64;
        gate_fm.len()
    });
    println!("  xor10 batched, prebuilt matrix (baseline)   {baseline:>12.0} CRPs/s");

    let mut packed_rates: Vec<(Lane, f64)> = Vec::new();
    let mut fleet_rates: Vec<(Lane, f64)> = Vec::new();
    for &lane in lanes {
        let single = throughput(|| {
            sink += bitslice::xor_response_packed_with(&fleet[0], &gate_fm, lane).count_ones();
            gate_fm.len()
        });
        let fleet_rate = throughput(|| {
            for packed in bitslice::xor_response_packed_many_with(&fleet_refs, &gate_fm, lane) {
                sink += packed.count_ones();
            }
            gate_fm.len() * dims.chips
        });
        println!(
            "  bit-sliced packed ({:<8})  single {single:>12.0}  fleet {fleet_rate:>12.0} CRPs/s",
            lane.name()
        );
        packed_rates.push((lane, single));
        fleet_rates.push((lane, fleet_rate));
    }
    let active = bitslice::active_lane();
    let active_fleet = fleet_rates
        .iter()
        .find(|(l, _)| *l == active)
        .map_or(0.0, |&(_, r)| r);
    let gate_ratio = active_fleet / baseline.max(1.0);
    println!(
        "  packed fleet ({}) vs batched prebuilt: {gate_ratio:.2}x (gate {GATE_FACTOR}x)",
        active.name()
    );
    let gate_checked = !smoke && !no_gate;
    if gate_checked {
        assert!(
            gate_ratio >= GATE_FACTOR,
            "bit-sliced packed fleet path is only {gate_ratio:.2}x the batched prebuilt \
             baseline (gate: >={GATE_FACTOR}x); pass --no-gate to record results anyway"
        );
    }
    drop(_phase);

    // ---- phase 2: thread scaling -------------------------------------------
    let _phase = puf_telemetry::span!("bench.trillion.threads");
    let workers_all = par::worker_count(usize::MAX);
    let mut widths = vec![1usize, 2, 4, workers_all];
    widths.sort_unstable();
    widths.dedup();
    let shard_len = dims
        .gate_pool
        .div_ceil(widths.iter().copied().max().unwrap_or(1) * 4);
    let shard_fms: Vec<FeatureMatrix> = gate_cs
        .chunks(shard_len.max(1))
        .map(|c| FeatureMatrix::from_challenges(c).expect("shard feature matrix"))
        .collect();
    let mut scaling: Vec<(usize, f64)> = Vec::new();
    for &w in &widths {
        let rate = throughput(|| {
            let counts = par::par_map_with_workers(w, &shard_fms, |_, fm| {
                bitslice::xor_response_packed_many(&fleet.iter().collect::<Vec<_>>(), fm)
                    .iter()
                    .map(bitslice::PackedBits::count_ones)
                    .sum::<u64>()
            });
            sink += counts.iter().sum::<u64>();
            gate_fm.len() * dims.chips
        });
        println!("  fleet packed, {w:>2} worker(s)                    {rate:>12.0} CRPs/s");
        scaling.push((w, rate));
    }
    drop(_phase);

    // ---- phase 3: streaming replay -----------------------------------------
    let _phase = puf_telemetry::span!("bench.trillion.replay");
    let mut chip_rng = StdRng::seed_from_u64(mix(seed, 0, 0, 0));
    let config = ChipConfig::paper_default();
    let chips: Vec<Chip> = (0..dims.chips)
        .map(|id| Chip::fabricate(id as u32, &config, &mut chip_rng))
        .collect();

    let num_shards = dims.challenges.div_ceil(dims.shard);
    let mut state = ReplayState::default();
    if !fresh {
        if let Ok(text) = std::fs::read_to_string(&ckpt_path) {
            if let Some(parsed) = parse_checkpoint(&text, seed, &dims) {
                println!(
                    "  resuming from checkpoint: {}/{} shards done ({:.1}s already spent)",
                    parsed.shards_done, num_shards, parsed.elapsed_secs
                );
                state = parsed;
            } else {
                println!("  checkpoint at {ckpt_path} does not match this run; starting fresh");
            }
        }
    }
    let resumed_from = state.shards_done;

    for shard in state.shards_done..num_shards {
        let _shard_span = puf_telemetry::trace_span!("bench.trillion.shard");
        // puf-lint: allow(L3): this binary measures throughput; timing is its output by design
        let t0 = Instant::now();
        let len = dims.shard.min(dims.challenges - shard * dims.shard);
        let cs = shard_challenges(seed, shard, len);
        let fm = FeatureMatrix::from_challenges(&cs).expect("replay feature matrix");
        for (ci, chip) in chips.iter().enumerate() {
            let mut mrng = StdRng::seed_from_u64(mix(seed, 2, shard as u64, ci as u64));
            let softs = chip
                .measure_xor_soft_batch(XOR_N, &fm, Condition::NOMINAL, dims.reps, &mut mrng)
                .expect("replay measurement");
            for soft in &softs {
                state.crps += 1;
                state.stable += u64::from(soft.is_stable());
                state.stable_zero += u64::from(soft.is_stable_zero());
                state.stable_one += u64::from(soft.is_stable_one());
                state.sum_soft += soft.value();
            }
        }
        state.shards_done = shard + 1;
        state.elapsed_secs += t0.elapsed().as_secs_f64();
        std::fs::create_dir_all("target").expect("create target directory");
        std::fs::write(&ckpt_path, checkpoint_text(seed, &dims, &state)).expect("write checkpoint");
        if state.shards_done % 4 == 0 || state.shards_done == num_shards {
            println!(
                "  replay shard {:>3}/{num_shards}: {} CRPs, {:.1}s",
                state.shards_done, state.crps, state.elapsed_secs
            );
        }
    }
    let replay_crps_per_sec = state.crps as f64 / state.elapsed_secs.max(1e-9);
    let measured_evals = state.crps as f64 * dims.reps as f64;
    let evals_per_sec = measured_evals / state.elapsed_secs.max(1e-9);
    drop(_phase);

    // ---- literal-path sample ----------------------------------------------
    let _phase = puf_telemetry::span!("bench.trillion.literal");
    let literal_cs = shard_challenges(seed.wrapping_add(1), 0, dims.literal_challenges);
    let mut lrng = StdRng::seed_from_u64(mix(seed, 3, 0, 0));
    // puf-lint: allow(L3): this binary measures throughput; timing is its output by design
    let t0 = Instant::now();
    let mut literal_sum = 0.0f64;
    for c in &literal_cs {
        let soft = counter::measure_literal(dims.literal_reps, &mut lrng, |r| {
            chips[0]
                .eval_xor_once(XOR_N, c, Condition::NOMINAL, r)
                .expect("literal evaluation")
        });
        literal_sum += soft.value();
    }
    let literal_secs = t0.elapsed().as_secs_f64();
    let literal_evals = dims.literal_challenges as f64 * dims.literal_reps as f64;
    let literal_evals_per_sec = literal_evals / literal_secs.max(1e-9);
    let shortcut_speedup = evals_per_sec / literal_evals_per_sec.max(1e-9);
    println!(
        "  literal path: {literal_evals_per_sec:.0} evals/s; counter shortcut replays {shortcut_speedup:.0}x faster"
    );
    drop(_phase);

    // ---- campaign projection ----------------------------------------------
    let wall_hours_shortcut = CAMPAIGN_MEASUREMENTS / evals_per_sec.max(1e-9) / 3600.0;
    let wall_days_literal = CAMPAIGN_MEASUREMENTS / literal_evals_per_sec.max(1e-9) / 86_400.0;
    println!(
        "  projected 1e12-measurement campaign: {wall_hours_shortcut:.2}h via counter shortcut, {wall_days_literal:.0} days literal"
    );

    // ---- emit JSON ---------------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "{},", SchemaHeader::capture().to_json_member(2));
    json.push_str("  \"config\": {\n");
    let _ = writeln!(json, "    \"chips\": {},", dims.chips);
    let _ = writeln!(json, "    \"challenges\": {},", dims.challenges);
    let _ = writeln!(json, "    \"reps\": {},", dims.reps);
    let _ = writeln!(json, "    \"xor_n\": {XOR_N},");
    let _ = writeln!(json, "    \"stages\": {STAGES},");
    let _ = writeln!(json, "    \"seed\": {seed},");
    let _ = writeln!(json, "    \"smoke\": {smoke},");
    let _ = writeln!(json, "    \"active_lane\": \"{}\"", active.name());
    json.push_str("  },\n");
    json.push_str("  \"crps_per_sec\": {\n");
    let _ = writeln!(json, "    \"xor10_batched_prebuilt_1t\": {baseline:.0},");
    for (lane, rate) in &packed_rates {
        let _ = writeln!(
            json,
            "    \"xor10_bitsliced_packed_{}_1t\": {rate:.0},",
            lane.name()
        );
    }
    for (lane, rate) in &fleet_rates {
        let _ = writeln!(
            json,
            "    \"fleet{}_bitsliced_packed_{}_1t\": {rate:.0},",
            dims.chips,
            lane.name()
        );
    }
    let _ = writeln!(
        json,
        "    \"replay_counter_shortcut\": {replay_crps_per_sec:.0},"
    );
    let _ = writeln!(
        json,
        "    \"literal_path_evals\": {literal_evals_per_sec:.0}"
    );
    json.push_str("  },\n");
    json.push_str("  \"gate\": {\n");
    let _ = writeln!(json, "    \"threshold\": {GATE_FACTOR},");
    let _ = writeln!(json, "    \"ratio\": {gate_ratio:.3},");
    let _ = writeln!(json, "    \"checked\": {}", u8::from(gate_checked));
    json.push_str("  },\n");
    json.push_str("  \"thread_scaling\": {\n");
    for (i, (w, rate)) in scaling.iter().enumerate() {
        let key = if *w == workers_all && i == scaling.len() - 1 {
            "t_all".to_string()
        } else {
            format!("t{w}")
        };
        let comma = if i + 1 < scaling.len() { "," } else { "" };
        let _ = writeln!(json, "    \"{key}\": {rate:.0}{comma}");
    }
    json.push_str("  },\n");
    json.push_str("  \"replay\": {\n");
    let _ = writeln!(json, "    \"crps\": {},", state.crps);
    let _ = writeln!(json, "    \"measured_evals\": {measured_evals:.0},");
    let _ = writeln!(json, "    \"evals_per_sec\": {evals_per_sec:.0},");
    let _ = writeln!(
        json,
        "    \"stable_fraction\": {:.6},",
        state.stable as f64 / state.crps.max(1) as f64
    );
    let _ = writeln!(
        json,
        "    \"stable_zero_fraction\": {:.6},",
        state.stable_zero as f64 / state.crps.max(1) as f64
    );
    let _ = writeln!(
        json,
        "    \"stable_one_fraction\": {:.6},",
        state.stable_one as f64 / state.crps.max(1) as f64
    );
    let _ = writeln!(
        json,
        "    \"mean_soft_response\": {:.6},",
        state.sum_soft / state.crps.max(1) as f64
    );
    let _ = writeln!(json, "    \"elapsed_secs\": {:.3},", state.elapsed_secs);
    let _ = writeln!(json, "    \"resumed_from_shard\": {resumed_from}");
    json.push_str("  },\n");
    json.push_str("  \"campaign_estimate\": {\n");
    let _ = writeln!(
        json,
        "    \"total_measurements\": {CAMPAIGN_MEASUREMENTS:.0},"
    );
    let _ = writeln!(
        json,
        "    \"wall_hours_counter_shortcut\": {wall_hours_shortcut:.3},"
    );
    let _ = writeln!(
        json,
        "    \"wall_days_literal_path\": {wall_days_literal:.1},"
    );
    let _ = writeln!(
        json,
        "    \"counter_shortcut_speedup\": {shortcut_speedup:.0},"
    );
    let _ = writeln!(
        json,
        "    \"literal_sample_mean_soft\": {:.6}",
        literal_sum / (dims.literal_challenges as f64).max(1.0)
    );
    json.push_str("  }\n");
    json.push_str("}\n");

    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(parent).expect("create output directory");
    }
    std::fs::write(&out_path, &json).expect("write benchmark output");
    // A finished replay invalidates its checkpoint.
    let _ = std::fs::remove_file(&ckpt_path);
    println!("\nwrote {out_path} (sink {sink})");

    if let Some(trace_path) = trace {
        let tracer = puf_telemetry::tracer();
        let events = tracer.snapshot_events();
        if let Some(parent) = std::path::Path::new(&trace_path).parent() {
            std::fs::create_dir_all(parent).expect("create trace directory");
        }
        let clock = tracer.clock();
        std::fs::write(
            &trace_path,
            puf_telemetry::trace_export::chrome_trace_json(&events, clock),
        )
        .expect("write chrome trace");
        println!("wrote {trace_path} ({} events)", events.len());
    }
    puf_bench::emit_telemetry_report();
}
