//! Figures 5–7 — the proposed hardware and protocol, walked end to end.
//!
//! These three figures are block/flow diagrams rather than data plots:
//!
//! - **Fig. 5** — the model-assisted XOR PUF hardware: individual PUFs
//!   readable through fuses, counters for soft responses, XOR output.
//! - **Fig. 6** — the enrollment phase: measure → extract delay parameters
//!   → determine thresholds → burn fuses.
//! - **Fig. 7** — the authentication phase: select predicted-stable
//!   challenges → one-shot sampling → exact comparison.
//!
//! This binary *executes* each diagram box against a simulated chip and
//! narrates the intermediate artefacts, which is the closest a software
//! reproduction can come to a schematic.
//!
//! Run: `cargo run -p puf-bench --release --bin fig05_07`

use puf_bench::Scale;
use puf_core::Condition;
use puf_protocol::auth::{AuthPolicy, ChipResponder, RandomResponder};
use puf_protocol::enrollment::{enroll, EnrollmentConfig};
use puf_protocol::server::Server;
use puf_silicon::{Chip, ChipConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    let n = 4;
    let mut rng = StdRng::seed_from_u64(scale.seed);

    println!("=== Fig. 5 — hardware ===");
    let mut chip = Chip::fabricate(0, &ChipConfig::paper_default(), &mut rng);
    println!(
        "chip {}: {} parallel {}-stage arbiter PUFs, counters behind a fuse port, XOR output",
        chip.id(),
        chip.bank_size(),
        chip.stages()
    );
    println!(
        "fuses intact: {} (individual responses visible to the authorised tester)\n",
        chip.fuses_intact()
    );

    println!("=== Fig. 6 — enrollment phase ===");
    let config = EnrollmentConfig::paper_all_conditions(n);
    println!(
        "[measure]    {} training + {} validation challenges per PUF, {} evaluations each",
        config.training_size, config.validation_size, config.evals
    );
    let record = enroll(&chip, &config, &mut rng).expect("enrollment failed");
    println!(
        "[extract]    linear regression → delay parameters (θ, {} floats per PUF)",
        chip.stages() + 1
    );
    for (i, puf) in record.pufs.iter().enumerate() {
        println!(
            "[threshold]  PUF {i}: {}, β = ({:.2}, {:.2})",
            puf.thresholds, puf.betas.beta0, puf.betas.beta1
        );
    }
    chip.blow_fuses();
    println!(
        "[burn fuses] individual PUF access now: {}\n",
        if chip.fuses_intact() {
            "OPEN (BUG)"
        } else {
            "blocked forever"
        }
    );

    println!("=== Fig. 7 — authentication phase ===");
    let mut server = Server::new();
    server.register(record);
    let picks = server
        .select_challenges(0, 8, 10_000_000, &mut rng)
        .expect("selection failed");
    println!("[select]     server draws random challenges, keeps all-PUFs-predicted-stable:");
    for (i, p) in picks.iter().enumerate() {
        println!(
            "             #{i}: challenge {:032x} → predicted XOR response {}",
            p.challenge.bits(),
            u8::from(p.expected)
        );
    }
    let mut client = ChipResponder::new(&chip, n, Condition::NOMINAL, 7);
    let outcome = server
        .authenticate(
            0,
            &mut client,
            64,
            AuthPolicy::ZeroHammingDistance,
            &mut rng,
        )
        .expect("authentication failed");
    println!("[sample]     chip answers each challenge ONCE (no averaging needed)");
    println!("[compare]    zero-Hamming-distance policy → {outcome}");

    let mut impostor = RandomResponder::new(99);
    let denied = server
        .authenticate(
            0,
            &mut impostor,
            64,
            AuthPolicy::ZeroHammingDistance,
            &mut rng,
        )
        .expect("authentication failed");
    println!("[compare]    random impostor               → {denied}");

    puf_bench::emit_telemetry_report();
}
