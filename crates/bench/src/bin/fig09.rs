//! Figure 9 — threshold tightening via β scaling under the nominal
//! condition.
//!
//! Paper (§5.1): training set of 5,000 CRPs, test set of 1,000,000 CRPs,
//! both at 0.9 V/25 °C. β₀ starts at 0.99 and is decreased, β₁ at 1.01 and
//! increased, until every unstable test response is filtered out. Across
//! 10 PUFs the fitted values span β₀ ∈ 0.74…0.93 and β₁ ∈ 1.04…1.08; the
//! most conservative pair (0.74, 1.08) is applied lot-wide.
//!
//! Run: `cargo run -p puf-bench --release --bin fig09 [--full]`

use puf_analysis::Table;
use puf_bench::{par, Scale};
use puf_core::challenge::random_challenges;
use puf_core::Condition;
use puf_ml::LinearRegression;
use puf_protocol::enrollment::fit_betas_on_measurements;
use puf_protocol::{Betas, StabilityClass, Thresholds};
use puf_silicon::{ChipConfig, ChipLot};
use rand::rngs::StdRng;
use rand::SeedableRng;

const TRAINING: usize = 5_000;

fn main() {
    let scale = Scale::from_env();
    println!("Fig. 9 reproduction — β threshold adjustment at nominal condition");
    println!("scale: {scale}; training 5,000 CRPs per PUF\n");

    let lot = ChipLot::fabricate(scale.chips, &ChipConfig::paper_default(), scale.seed);
    let chip_indices: Vec<usize> = (0..lot.len()).collect();

    let per_chip = par::par_map_progress("bench.fig09.chips", &chip_indices, |_, &ci| {
        let chip = &lot.chips()[ci];
        let mut rng = StdRng::seed_from_u64(scale.seed ^ (0xF16_0009 + ci as u64 * 7919));
        let training = random_challenges(chip.stages(), TRAINING, &mut rng);
        let test = random_challenges(chip.stages(), scale.challenges, &mut rng);

        // Enrollment fit on PUF 0.
        let measured: Vec<f64> = training
            .iter()
            .map(|c| {
                chip.measure_individual_soft(0, c, Condition::NOMINAL, scale.evals, &mut rng)
                    .expect("measurement failed")
                    .value()
            })
            .collect();
        let model = LinearRegression::fit_challenges(&training, &measured, 1e-6)
            .expect("regression failed");
        let pairs: Vec<(f64, f64)> = training
            .iter()
            .zip(&measured)
            .map(|(c, &s)| (model.predict(c), s))
            .collect();
        let thresholds = Thresholds::from_training(&pairs).expect("degenerate training");

        // β fit against the big nominal test measurement.
        let betas = fit_betas_on_measurements(
            chip,
            0,
            &model,
            thresholds,
            &test,
            &[Condition::NOMINAL],
            scale.evals,
            &mut rng,
        )
        .expect("beta fit failed");

        // Stable fractions before and after tightening, plus the residual
        // misprediction count after tightening (must be 0 by construction
        // of the fit on this same set).
        let raw = thresholds;
        let adjusted = thresholds.adjusted(betas);
        let mut raw_stable = 0usize;
        let mut adj_stable = 0usize;
        for c in &test {
            let p = model.predict(c);
            if raw.classify(p) != StabilityClass::Unstable {
                raw_stable += 1;
            }
            if adjusted.classify(p) != StabilityClass::Unstable {
                adj_stable += 1;
            }
        }
        (
            ci,
            thresholds,
            betas,
            raw_stable as f64 / test.len() as f64,
            adj_stable as f64 / test.len() as f64,
        )
    });

    let mut table = Table::new([
        "chip",
        "Thr(0)",
        "Thr(1)",
        "β₀",
        "β₁",
        "stable% raw",
        "stable% adjusted",
    ]);
    let mut conservative = Betas::new(f64::MAX, f64::MIN_POSITIVE);
    let (mut b0_min, mut b0_max) = (f64::MAX, f64::MIN);
    let (mut b1_min, mut b1_max) = (f64::MAX, f64::MIN);
    for (ci, thr, betas, raw, adj) in &per_chip {
        table.row([
            ci.to_string(),
            format!("{:.4}", thr.thr0),
            format!("{:.4}", thr.thr1),
            format!("{:.2}", betas.beta0),
            format!("{:.2}", betas.beta1),
            format!("{:.1}%", raw * 100.0),
            format!("{:.1}%", adj * 100.0),
        ]);
        conservative = conservative.most_conservative(*betas);
        b0_min = b0_min.min(betas.beta0);
        b0_max = b0_max.max(betas.beta0);
        b1_min = b1_min.min(betas.beta1);
        b1_max = b1_max.max(betas.beta1);
    }
    println!("{}", table.render());
    println!("β₀ range: {b0_min:.2}…{b0_max:.2}   [paper: 0.74…0.93]");
    println!("β₁ range: {b1_min:.2}…{b1_max:.2}   [paper: 1.04…1.08]");
    println!(
        "lot-wide conservative pair: β₀ = {:.2}, β₁ = {:.2}   [paper: 0.74, 1.08]",
        conservative.beta0, conservative.beta1
    );

    puf_bench::emit_telemetry_report();
}
