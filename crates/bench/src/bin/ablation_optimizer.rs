//! Ablation: the optimizer behind the modeling attack.
//!
//! The paper uses scikit-learn's L-BFGS ("Limited-memory BFGS") for its
//! 35-25-25 MLP. This harness trains the identical network on the identical
//! stable-CRP dataset with L-BFGS, full-batch Adam and plain gradient
//! descent, to quantify how much of the attack's efficiency the choice of
//! optimizer carries.
//!
//! Run: `cargo run -p puf-bench --release --bin ablation_optimizer`

use puf_analysis::Table;
use puf_bench::Scale;
use puf_core::challenge::random_challenges;
use puf_core::Condition;
use puf_ml::features::{design_matrix, encode_bits};
use puf_ml::opt::{Adam, GradientDescent, Lbfgs};
use puf_ml::{Mlp, MlpConfig};
use puf_silicon::testbench::collect_stable_xor_crps;
use puf_silicon::{Chip, ChipConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    println!("Ablation — attack optimizer (same 35-25-25 network, same data)");
    println!("scale: {scale}\n");

    let mut rng = StdRng::seed_from_u64(scale.seed);
    let chip = Chip::fabricate(0, &ChipConfig::paper_default(), &mut rng);
    let n = 4;
    let pool = random_challenges(chip.stages(), 16_000, &mut rng);
    let (train_pool, test_pool) = pool.split_at(13_000);
    let train = collect_stable_xor_crps(
        &chip,
        n,
        train_pool,
        Condition::NOMINAL,
        scale.evals,
        &mut rng,
    )
    .expect("collection failed")
    .truncated(8_000);
    let test = collect_stable_xor_crps(
        &chip,
        n,
        test_pool,
        Condition::NOMINAL,
        scale.evals,
        &mut rng,
    )
    .expect("collection failed");
    println!(
        "{n}-XOR attack, {} train / {} test stable CRPs\n",
        train.len(),
        test.len()
    );

    let x = design_matrix(train.challenges());
    let y = encode_bits(train.responses());
    let xt = design_matrix(test.challenges());
    let config = MlpConfig::paper_default();

    let mut table = Table::new([
        "optimizer",
        "accuracy",
        "iterations",
        "grad evals",
        "time (s)",
    ]);
    for name in ["lbfgs", "adam", "gd"] {
        // puf-lint: allow(L7): all three optimizers start from the identical init so only the optimizer varies
        let mut rng = StdRng::seed_from_u64(scale.seed ^ 0xAB1A);
        let mut mlp = Mlp::new(x.cols(), &config, &mut rng);
        // The pooled objective reuses fused-kernel workspaces across every
        // gradient evaluation, so all three optimizers see the identical
        // loss surface through the same fast path.
        let objective = mlp.objective(&x, &y, 1e-4, 0);
        // puf-lint: allow(L3): wall-clock reports optimizer cost in the table prose; accuracies are seed-deterministic
        let t0 = Instant::now();
        let result = match name {
            "lbfgs" => Lbfgs::new()
                .with_max_iterations(200)
                .minimize(&objective, mlp.params().to_vec()),
            "adam" => Adam::new()
                .with_learning_rate(5e-3)
                .with_max_iterations(1_500)
                .minimize(&objective, mlp.params().to_vec()),
            _ => GradientDescent {
                learning_rate: 0.5,
                max_iterations: 1_500,
                tolerance: 1e-6,
            }
            .minimize(&objective, mlp.params().to_vec()),
        };
        let elapsed = t0.elapsed();
        mlp.set_params(result.x.clone());
        let acc = puf_ml::accuracy(&mlp.predict(&xt), test.responses());
        table.row([
            name.to_string(),
            format!("{:.1}%", acc * 100.0),
            result.iterations.to_string(),
            result.evaluations.to_string(),
            format!("{:.2}", elapsed.as_secs_f64()),
        ]);
    }
    println!("{}", table.render());
    println!("the paper's L-BFGS choice buys curvature-aware steps: it reaches the same");
    println!("accuracy in far fewer gradient evaluations than first-order methods.");
}
