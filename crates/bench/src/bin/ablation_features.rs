//! Ablation: the transformed-challenge input representation.
//!
//! §2.3: *"Transformed challenge vectors were applied as training inputs,
//! which is a widely used method for linear MUX arbiter PUF modeling."*
//! This harness quantifies what that buys: the same MLP trained on the
//! φ parity transform versus on raw ±1 challenge bits, on the same stable
//! CRPs of the same chip.
//!
//! Run: `cargo run -p puf-bench --release --bin ablation_features`

use puf_analysis::Table;
use puf_bench::Scale;
use puf_core::challenge::random_challenges;
use puf_core::{Challenge, Condition};
use puf_ml::features::{design_matrix, encode_bits};
use puf_ml::{Matrix, Mlp, MlpConfig};
use puf_silicon::testbench::collect_stable_xor_crps;
use puf_silicon::{Chip, ChipConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Raw-bit design matrix: ±1 encoding of the challenge bits plus a bias
/// column — everything the φ transform sees, minus the suffix products.
fn raw_design_matrix(challenges: &[Challenge]) -> Matrix {
    let stages = challenges[0].stages();
    let mut m = Matrix::zeros(challenges.len(), stages + 1);
    for (i, c) in challenges.iter().enumerate() {
        let row = m.row_mut(i);
        for (j, slot) in row.iter_mut().enumerate().take(stages) {
            *slot = if c.bit(j) { -1.0 } else { 1.0 };
        }
        row[stages] = 1.0;
    }
    m
}

fn main() {
    let scale = Scale::from_env();
    println!("Ablation — φ parity transform vs raw challenge bits");
    println!("scale: {scale}\n");

    let mut rng = StdRng::seed_from_u64(scale.seed);
    let chip = Chip::fabricate(0, &ChipConfig::paper_default(), &mut rng);
    let n = 2;
    let pool = random_challenges(chip.stages(), 40_000, &mut rng);
    let (train_pool, test_pool) = pool.split_at(36_000);
    let train = collect_stable_xor_crps(
        &chip,
        n,
        train_pool,
        Condition::NOMINAL,
        scale.evals,
        &mut rng,
    )
    .expect("collection failed");
    let test = collect_stable_xor_crps(
        &chip,
        n,
        test_pool,
        Condition::NOMINAL,
        scale.evals,
        &mut rng,
    )
    .expect("collection failed");
    println!(
        "{n}-XOR attack, up to {} train / {} test stable CRPs\n",
        train.len(),
        test.len()
    );

    let config = MlpConfig::paper_default();
    let mut table = Table::new([
        "train CRPs",
        "accuracy (φ transform)",
        "accuracy (raw bits)",
    ]);
    for size in [2_000usize, 8_000, 20_000] {
        let subset = train.truncated(size.min(train.len()));
        let y = encode_bits(subset.responses());
        let mut row = vec![subset.len().to_string()];
        for raw in [false, true] {
            let (x, xt) = if raw {
                (
                    raw_design_matrix(subset.challenges()),
                    raw_design_matrix(test.challenges()),
                )
            } else {
                (
                    design_matrix(subset.challenges()),
                    design_matrix(test.challenges()),
                )
            };
            // puf-lint: allow(L7): same init for φ and raw features isolates the feature map as the ablation variable
            let mut rng = StdRng::seed_from_u64(scale.seed ^ 0xFEA7);
            let mut mlp = Mlp::new(x.cols(), &config, &mut rng);
            mlp.train(&x, &y, &config);
            let acc = puf_ml::accuracy(&mlp.predict(&xt), test.responses());
            row.push(format!("{:.1}%", acc * 100.0));
        }
        // Column order in the header is (φ, raw); we computed raw second.
        table.row([row[0].clone(), row[1].clone(), row[2].clone()]);
    }
    println!("{}", table.render());
    println!("the φ transform linearises each member PUF, so the network spends its");
    println!("capacity on the XOR structure instead of rediscovering the delay physics.");
}
