//! Figure 12 — stable-CRP probability versus XOR width under measurement,
//! nominal model selection and all-V/T model selection.
//!
//! Paper: all three curves decay exponentially (negligible inter-PUF
//! correlation):
//!
//! - measured at nominal:              ≈ 0.800ⁿ → 10.9 %  at n = 10
//! - model-predicted, nominal βs:      ≈ 0.545ⁿ → 0.238 % at n = 10
//! - model-predicted, all-V/T βs:      ≈ 0.342ⁿ → ~2·10⁻⁵ at n = 10
//!
//! and even the smallest fraction leaves ~10¹⁴ usable challenges in a
//! 64-stage PUF's 2⁶⁴ space.
//!
//! Run: `cargo run -p puf-bench --release --bin fig12 [--full]`

use puf_analysis::stability::{fit_exponential_base, StabilityPoint};
use puf_analysis::Table;
use puf_bench::{par, Scale};
use puf_core::challenge::random_challenges;
use puf_core::{Challenge, Condition};
use puf_ml::LinearRegression;
use puf_protocol::enrollment::fit_betas_on_measurements;
use puf_protocol::{StabilityClass, Thresholds};
use puf_silicon::{Chip, ChipConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const MAX_N: usize = 10;
const TRAINING: usize = 5_000;

struct MemberModel {
    model: LinearRegression,
    nominal: Thresholds,
    all_vt: Thresholds,
}

fn main() {
    let scale = Scale::from_env();
    println!("Fig. 12 reproduction — stable-CRP probability vs n under three selection rules");
    println!("scale: {scale}\n");

    let mut rng = StdRng::seed_from_u64(scale.seed);
    let chip = Chip::fabricate(0, &ChipConfig::paper_default(), &mut rng);
    let grid = Condition::paper_grid();

    // Enroll all MAX_N member PUFs: linear model + thresholds + two β fits.
    let beta_fit_size = (scale.challenges / 8).clamp(4_000, 50_000);
    println!("enrolling {MAX_N} member PUFs (training {TRAINING}, β-fit set {beta_fit_size})…");
    let member_ids: Vec<usize> = (0..MAX_N).collect();
    let members: Vec<MemberModel> =
        par::par_map_progress("bench.fig12.members", &member_ids, |_, &puf| {
            let mut rng = StdRng::seed_from_u64(scale.seed ^ (0xF16_0012 + puf as u64 * 7919));
            let training = random_challenges(chip.stages(), TRAINING, &mut rng);
            let soft: Vec<f64> = training
                .iter()
                .map(|c| {
                    chip.measure_individual_soft(puf, c, Condition::NOMINAL, scale.evals, &mut rng)
                        .expect("measurement failed")
                        .value()
                })
                .collect();
            let model = LinearRegression::fit_challenges(&training, &soft, 1e-6)
                .expect("regression failed");
            let pairs: Vec<(f64, f64)> = training
                .iter()
                .zip(&soft)
                .map(|(c, &s)| (model.predict(c), s))
                .collect();
            let thresholds = Thresholds::from_training(&pairs).expect("degenerate training");
            let beta_pool = random_challenges(chip.stages(), beta_fit_size, &mut rng);
            let betas_nominal = fit_betas_on_measurements(
                &chip,
                puf,
                &model,
                thresholds,
                &beta_pool,
                &[Condition::NOMINAL],
                scale.evals,
                &mut rng,
            )
            .expect("nominal beta fit failed");
            let betas_all = fit_betas_on_measurements(
                &chip,
                puf,
                &model,
                thresholds,
                &beta_pool,
                &grid,
                scale.evals,
                &mut rng,
            )
            .expect("all-V/T beta fit failed");
            let betas_all = betas_nominal.most_conservative(betas_all);
            MemberModel {
                nominal: thresholds.adjusted(betas_nominal),
                all_vt: thresholds.adjusted(betas_all),
                model,
            }
        });

    // Curve 1: measured stable fraction per n (counter measurements).
    let shards = par::worker_count(64).max(1) * 4;
    let per_shard = scale.challenges.div_ceil(shards);
    let shard_ids: Vec<u64> = (0..shards as u64).collect();
    let measured_partials =
        par::par_map_progress("bench.fig12.measured_shards", &shard_ids, |_, &shard| {
            let mut rng = StdRng::seed_from_u64(scale.seed ^ (0xF16_0112 + shard * 104_729));
            let mut stable_upto = vec![0u64; MAX_N + 1];
            for _ in 0..per_shard {
                let c = Challenge::random(chip.stages(), &mut rng);
                let mut prefix = MAX_N;
                for puf in 0..MAX_N {
                    let s = chip
                        .measure_individual_soft(puf, &c, Condition::NOMINAL, scale.evals, &mut rng)
                        .expect("measurement failed");
                    if !s.is_stable() {
                        prefix = puf;
                        break;
                    }
                }
                for slot in &mut stable_upto[1..=prefix] {
                    *slot += 1;
                }
            }
            stable_upto
        });
    let measured_total = (per_shard * shards) as f64;
    let mut measured_upto = vec![0u64; MAX_N + 1];
    for p in &measured_partials {
        for (a, b) in measured_upto.iter_mut().zip(p) {
            *a += b;
        }
    }

    // Curves 2 and 3: predicted stable fractions. Predictions are pure
    // arithmetic, so a larger sample keeps the deep-exponential tail
    // resolvable (0.342¹⁰ ≈ 2·10⁻⁵ needs ≥ 10⁶ samples).
    let pred_samples = scale.challenges.max(1_000_000);
    let pred_per_shard = pred_samples.div_ceil(shards);
    let pred_partials =
        par::par_map_progress("bench.fig12.predicted_shards", &shard_ids, |_, &shard| {
            let mut rng = StdRng::seed_from_u64(scale.seed ^ (0xF16_0212 + shard * 104_729));
            let mut nominal_upto = vec![0u64; MAX_N + 1];
            let mut all_vt_upto = vec![0u64; MAX_N + 1];
            for _ in 0..pred_per_shard {
                let c = Challenge::random(chip.stages(), &mut rng);
                let mut nominal_prefix = MAX_N;
                let mut all_vt_prefix = MAX_N;
                for (i, m) in members.iter().enumerate() {
                    let pred = m.model.predict(&c);
                    let nominal_stable = m.nominal.classify(pred) != StabilityClass::Unstable;
                    let all_vt_stable = m.all_vt.classify(pred) != StabilityClass::Unstable;
                    if !nominal_stable && nominal_prefix == MAX_N {
                        nominal_prefix = i;
                    }
                    if !all_vt_stable && all_vt_prefix == MAX_N {
                        all_vt_prefix = i;
                    }
                    if nominal_prefix != MAX_N && all_vt_prefix != MAX_N {
                        break;
                    }
                }
                for slot in &mut nominal_upto[1..=nominal_prefix] {
                    *slot += 1;
                }
                for slot in &mut all_vt_upto[1..=all_vt_prefix] {
                    *slot += 1;
                }
            }
            (nominal_upto, all_vt_upto)
        });
    let pred_total = (pred_per_shard * shards) as f64;
    let mut nominal_upto = vec![0u64; MAX_N + 1];
    let mut all_vt_upto = vec![0u64; MAX_N + 1];
    for (a, b) in &pred_partials {
        for (x, y) in nominal_upto.iter_mut().zip(a) {
            *x += y;
        }
        for (x, y) in all_vt_upto.iter_mut().zip(b) {
            *x += y;
        }
    }

    let curve = |upto: &[u64], total: f64| -> Vec<StabilityPoint> {
        (1..=MAX_N)
            .map(|n| StabilityPoint {
                n,
                fraction: upto[n] as f64 / total,
            })
            .collect()
    };
    let measured = curve(&measured_upto, measured_total);
    let nominal = curve(&nominal_upto, pred_total);
    let all_vt = curve(&all_vt_upto, pred_total);

    let mut table = Table::new([
        "n",
        "measured",
        "predicted (nominal β)",
        "predicted (all V,T β)",
    ]);
    for i in 0..MAX_N {
        table.row([
            (i + 1).to_string(),
            format!("{:.3}%", measured[i].fraction * 100.0),
            format!("{:.4}%", nominal[i].fraction * 100.0),
            format!("{:.5}%", all_vt[i].fraction * 100.0),
        ]);
    }
    println!("{}", table.render());

    let base_m = fit_exponential_base(&measured);
    let base_n = fit_exponential_base(&nominal);
    let base_a = fit_exponential_base(&all_vt);
    println!("fitted decay bases:");
    println!("  measured:             {base_m:.3}  [paper: 0.800]");
    println!("  predicted (nominal):  {base_n:.3}  [paper: 0.545]");
    println!("  predicted (all V,T):  {base_a:.3}  [paper: 0.342]");
    println!(
        "\nn = 10 fractions: measured {:.2}% [10.9%], nominal {:.4}% [0.238%], all V,T {:.5}%",
        measured[MAX_N - 1].fraction * 100.0,
        nominal[MAX_N - 1].fraction * 100.0,
        all_vt[MAX_N - 1].fraction * 100.0,
    );
    let usable = all_vt[MAX_N - 1].fraction * 2f64.powi(64);
    println!(
        "usable challenges in a 64-stage PUF's 2^64 space at the strictest selection: ≈ {usable:.2e}"
    );

    puf_bench::emit_telemetry_report();
}
