//! Figure 11 — threshold adjustment under voltage and temperature
//! variation.
//!
//! Paper (§5.2): the model is trained once at 0.9 V/25 °C (5,000 CRPs);
//! the test set is measured at all nine corners of 0.8–1.0 V × 0–60 °C.
//! The test-set soft-response distribution widens, but unstable CRPs stay
//! concentrated near 0.5, so the same β scheme works — it just needs more
//! stringent values than the nominal fit.
//!
//! Run: `cargo run -p puf-bench --release --bin fig11 [--full]`

use puf_analysis::hist::Histogram;
use puf_bench::Scale;
use puf_core::challenge::random_challenges;
use puf_core::Condition;
use puf_ml::LinearRegression;
use puf_protocol::enrollment::fit_betas_on_measurements;
use puf_protocol::{StabilityClass, Thresholds};
use puf_silicon::{Chip, ChipConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const TRAINING: usize = 5_000;

fn main() {
    let scale = Scale::from_env();
    println!("Fig. 11 reproduction — β adjustment across the V/T grid");
    println!(
        "scale: {scale}; training at {} only, testing at 9 conditions\n",
        Condition::NOMINAL
    );

    let mut rng = StdRng::seed_from_u64(scale.seed);
    let chip = Chip::fabricate(0, &ChipConfig::paper_default(), &mut rng);
    let grid = Condition::paper_grid();

    // Enrollment at nominal.
    let training = random_challenges(chip.stages(), TRAINING, &mut rng);
    let soft: Vec<f64> = training
        .iter()
        .map(|c| {
            chip.measure_individual_soft(0, c, Condition::NOMINAL, scale.evals, &mut rng)
                .expect("measurement failed")
                .value()
        })
        .collect();
    let model =
        LinearRegression::fit_challenges(&training, &soft, 1e-6).expect("regression failed");
    let pairs: Vec<(f64, f64)> = training
        .iter()
        .zip(&soft)
        .map(|(c, &s)| (model.predict(c), s))
        .collect();
    let thresholds = Thresholds::from_training(&pairs).expect("degenerate training");
    println!("training thresholds: {thresholds}");

    // β fit at nominal vs across the whole grid; the grid sweep is the
    // expensive part, so use a slice of the challenge budget per fit.
    let beta_fit_size = (scale.challenges / 4).clamp(5_000, 100_000);
    let beta_pool = random_challenges(chip.stages(), beta_fit_size, &mut rng);
    let betas_nominal = fit_betas_on_measurements(
        &chip,
        0,
        &model,
        thresholds,
        &beta_pool,
        &[Condition::NOMINAL],
        scale.evals,
        &mut rng,
    )
    .expect("nominal beta fit failed");
    let betas_all = fit_betas_on_measurements(
        &chip,
        0,
        &model,
        thresholds,
        &beta_pool,
        &grid,
        scale.evals,
        &mut rng,
    )
    .expect("all-V/T beta fit failed");

    println!("β fit on nominal-only measurements: {betas_nominal}   [paper: e.g. 0.74/1.08]");
    println!("β fit on all-V/T measurements:      {betas_all}   (more stringent)\n");
    assert!(
        betas_all.beta0 <= betas_nominal.beta0 + 1e-9
            && betas_all.beta1 >= betas_nominal.beta1 - 1e-9,
        "all-V/T betas should tighten relative to nominal"
    );

    // Test-set soft-response distributions: nominal vs all conditions.
    let test = random_challenges(chip.stages(), (scale.challenges / 10).max(10_000), &mut rng);
    let mut nominal_hist = Histogram::soft_response();
    let mut grid_hist = Histogram::soft_response();
    let mut unstable_values: Vec<f64> = Vec::new();
    for c in &test {
        for &cond in &grid {
            let s = chip
                .measure_individual_soft(0, c, cond, scale.evals, &mut rng)
                .expect("measurement failed");
            grid_hist.add(s.value());
            if cond.is_nominal() {
                nominal_hist.add(s.value());
            }
            if !s.is_stable() {
                unstable_values.push(s.value());
            }
        }
    }
    let nominal_interior: u64 = nominal_hist.counts()[1..19].iter().sum();
    let grid_interior: u64 = grid_hist.counts()[1..19].iter().sum();
    println!(
        "interior (non-saturated) soft responses: nominal {:.2}%, all V/T {:.2}% — distribution widens",
        nominal_interior as f64 / nominal_hist.total() as f64 * 100.0,
        grid_interior as f64 / grid_hist.total() as f64 * 100.0,
    );
    let mean_unstable = unstable_values.iter().sum::<f64>() / unstable_values.len().max(1) as f64;
    println!(
        "mean unstable soft response across conditions: {mean_unstable:.3} (concentrated near 0.5)"
    );

    // Final check: challenges selected with the all-V/T βs stay stable at
    // every corner.
    let adjusted = thresholds.adjusted(betas_all);
    let fresh = random_challenges(chip.stages(), (scale.challenges / 10).max(10_000), &mut rng);
    let mut selected = 0usize;
    let mut violations = 0usize;
    for c in &fresh {
        let class = adjusted.classify(model.predict(c));
        if class == StabilityClass::Unstable {
            continue;
        }
        selected += 1;
        for &cond in &grid {
            let s = chip
                .measure_individual_soft(0, c, cond, scale.evals, &mut rng)
                .expect("measurement failed");
            let ok = match class {
                StabilityClass::Stable0 => s.is_stable_zero(),
                StabilityClass::Stable1 => s.is_stable_one(),
                StabilityClass::Unstable => unreachable!(),
            };
            if !ok {
                violations += 1;
                break;
            }
        }
    }
    println!(
        "fresh challenges selected with all-V/T βs: {selected}; corner violations: {violations} \
         ({:.4}%)",
        violations as f64 / selected.max(1) as f64 * 100.0
    );

    puf_bench::emit_telemetry_report();
}
