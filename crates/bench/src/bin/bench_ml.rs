//! ML training-kernel throughput harness: CRPs/s for one full-batch
//! loss+gradient step of the paper's 35-25-25 MLP (the unit of work L-BFGS
//! repeats per attack), written to `results/BENCH_ml.json`.
//!
//! Measures, per XOR width n ∈ {1, 4, 10}, on stable-CRP attack datasets:
//!
//! * `naive` — the retained pre-blocking reference path
//!   (`Mlp::loss_value_grad_reference`: per-call activation allocation,
//!   strided weight loops),
//! * `fused_1t` — the blocked-GEMM workspace path pinned to one worker,
//! * `fused_mt` — the same path over the deterministic chunked reduction
//!   with auto-detected workers (bit-identical gradient, checked here).
//!
//! Also re-times the fused enrollment normal equations (`linreg::fit`)
//! against the two-pass `gram_ridge` + `t_matvec` baseline.
//!
//! Run: `cargo run -p puf-bench --release --bin bench_ml`
//! (`PUF_BENCH_CRPS=N` overrides the dataset size, `PUF_THREADS=N` the
//! fan-out width)

use puf_core::challenge::random_challenges;
use puf_core::Condition;
use puf_ml::features::{design_matrix, encode_bits};
use puf_ml::linalg::{cholesky_solve, normal_equations};
use puf_ml::{Matrix, Mlp, MlpConfig, Objective};
use puf_silicon::testbench::collect_stable_xor_crps;
use puf_silicon::{Chip, ChipConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

const DEFAULT_CRPS: usize = 8_192;
const REPS: usize = 5;
const XOR_WIDTHS: [usize; 3] = [1, 4, 10];
/// MLP weight-init seed, shared across widths so the timing comparison
/// varies only the architecture, never the draw.
const MLP_INIT_SEED: u64 = 77;

/// Times `f` best-of-[`REPS`] after one warmup call and returns CRPs/s.
fn throughput<F: FnMut() -> f64>(crps: usize, mut f: F) -> f64 {
    black_box(f());
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        // puf-lint: allow(L3): this binary measures throughput; timing is its output by design
        let t0 = Instant::now();
        black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    crps as f64 / best
}

fn attack_dataset(n: usize, size: usize, seed: u64) -> (Matrix, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let chip = Chip::fabricate(0, &ChipConfig::paper_default(), &mut rng);
    let oversample = (size as f64 / 0.8f64.powi(n as i32) * 1.3) as usize;
    let pool = random_challenges(chip.stages(), oversample, &mut rng);
    let crps = collect_stable_xor_crps(&chip, n, &pool, Condition::NOMINAL, 100_000, &mut rng)
        .expect("CRP collection")
        .truncated(size);
    assert_eq!(crps.len(), size, "not enough stable CRPs collected");
    (
        design_matrix(crps.challenges()),
        encode_bits(crps.responses()),
    )
}

struct StepRow {
    n: usize,
    naive: f64,
    fused_1t: f64,
    fused_mt: f64,
}

fn main() {
    let size: usize = std::env::var("PUF_BENCH_CRPS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or(DEFAULT_CRPS);
    let workers = puf_ml::parallel::worker_count(size);

    println!("ML training-step harness: {size} stable CRPs per width, {workers} workers");

    let config = MlpConfig::paper_default();
    let mut rows = Vec::new();
    for n in XOR_WIDTHS {
        let (x, y) = attack_dataset(n, size, 0xB1_0000 + n as u64);
        // puf-lint: allow(L7): identical init across widths is the point — the timing ablation varies architecture only
        let mut rng = StdRng::seed_from_u64(MLP_INIT_SEED);
        let mlp = Mlp::new(x.cols(), &config, &mut rng);
        let params = mlp.params().to_vec();
        let mut grad = vec![0.0; params.len()];

        // Determinism gate before timing: fused gradients must be
        // bit-identical at 1 worker and at the fan-out width.
        let obj_1t = mlp.objective(&x, &y, config.alpha, 1);
        let obj_mt = mlp.objective(&x, &y, config.alpha, workers);
        let mut grad_mt = vec![0.0; params.len()];
        let l1 = obj_1t.value_grad(&params, &mut grad);
        let lm = obj_mt.value_grad(&params, &mut grad_mt);
        assert_eq!(l1.to_bits(), lm.to_bits(), "loss diverged across workers");
        for (a, b) in grad.iter().zip(&grad_mt) {
            assert_eq!(a.to_bits(), b.to_bits(), "gradient diverged across workers");
        }

        let naive = throughput(size, || {
            mlp.loss_value_grad_reference(&params, &x, &y, config.alpha, &mut grad)
        });
        let fused_1t = throughput(size, || obj_1t.value_grad(&params, &mut grad));
        let fused_mt = throughput(size, || obj_mt.value_grad(&params, &mut grad));
        println!(
            "  n={n:<2} naive {naive:>12.0}  fused(1t) {fused_1t:>12.0}  fused({workers}t) {fused_mt:>12.0} CRPs/s  ({:.2}x)",
            fused_1t / naive
        );
        rows.push(StepRow {
            n,
            naive,
            fused_1t,
            fused_mt,
        });
    }

    // Enrollment normal equations: fused single-pass vs two-pass baseline.
    let (x, y) = attack_dataset(1, size, 0xE2_0001);
    let linreg_two_pass = throughput(size, || {
        let gram = x.gram_ridge(1e-6);
        let xty = x.t_matvec(&y);
        cholesky_solve(&gram, &xty).expect("solve")[0]
    });
    let linreg_fused = throughput(size, || {
        let (gram, xty) = normal_equations(&x, &y, 1e-6);
        cholesky_solve(&gram, &xty).expect("solve")[0]
    });
    println!(
        "  linreg normal equations: two-pass {linreg_two_pass:>12.0}  fused {linreg_fused:>12.0} rows/s ({:.2}x)",
        linreg_fused / linreg_two_pass
    );

    let headline = rows.last().expect("at least one row");
    let headline_speedup = headline.fused_1t / headline.naive;
    println!("  10-XOR training step: {headline_speedup:.2}x single-thread speedup (target >= 4x)");

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "{},",
        puf_bench::SchemaHeader::capture().to_json_member(2)
    );
    let _ = writeln!(json, "  \"crps_per_width\": {size},");
    let _ = writeln!(json, "  \"threads\": {workers},");
    let _ = writeln!(json, "  \"step_crps_per_sec\": {{");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    \"xor{}\": {{\"naive\": {:.0}, \"fused_1t\": {:.0}, \"fused_mt\": {:.0}}}{comma}",
            r.n, r.naive, r.fused_1t, r.fused_mt
        );
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"linreg_rows_per_sec\": {{");
    let _ = writeln!(json, "    \"two_pass\": {linreg_two_pass:.0},");
    let _ = writeln!(json, "    \"fused\": {linreg_fused:.0}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"speedup\": {{");
    let _ = writeln!(
        json,
        "    \"xor10_step_fused_vs_naive_1t\": {headline_speedup:.2},"
    );
    let _ = writeln!(
        json,
        "    \"xor10_step_fused_mt_vs_naive\": {:.2},",
        headline.fused_mt / headline.naive
    );
    let _ = writeln!(
        json,
        "    \"linreg_fused_vs_two_pass\": {:.2}",
        linreg_fused / linreg_two_pass
    );
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_ml.json", &json).expect("write BENCH_ml.json");
    println!("\nwrote results/BENCH_ml.json");

    puf_bench::emit_telemetry_report();
}
