//! Evaluation-throughput harness: CRPs/s for the scalar and batched PUF
//! evaluation paths, written to `results/BENCH_eval.json`.
//!
//! Measures, on one fixed challenge pool (32 stages):
//!
//! * single arbiter — per-challenge `delay_difference` vs `delta_batch_into`,
//! * 10-XOR — per-challenge `response` vs `response_batch` (with and without
//!   the feature-matrix build in the timed region),
//! * 10-XOR batched fanned out over all worker threads via `par::par_map`.
//!
//! Each path is timed best-of-3 after a warmup pass, and the batched XOR
//! bits are asserted bit-identical to the scalar loop before any timing.
//!
//! Run: `cargo run -p puf-bench --release --bin bench_eval`
//! (`PUF_BENCH_CRPS=N` overrides the pool size, `PUF_THREADS=N` the fan-out)

use puf_bench::par;
use puf_core::batch::FeatureMatrix;
use puf_core::{ArbiterPuf, Challenge, XorPuf};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

const STAGES: usize = 32;
const XOR_N: usize = 10;
const DEFAULT_CRPS: usize = 262_144;
const REPS: usize = 3;

/// Times `f` best-of-[`REPS`] after one warmup call and returns CRPs/s.
fn throughput<F: FnMut() -> f64>(crps: usize, mut f: F) -> f64 {
    black_box(f());
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        // puf-lint: allow(L3): this binary measures throughput; timing is its output by design
        let t0 = Instant::now();
        black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    crps as f64 / best
}

fn main() {
    let crps: usize = std::env::var("PUF_BENCH_CRPS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or(DEFAULT_CRPS);

    let mut rng = StdRng::seed_from_u64(0xE7A1);
    let arbiter = ArbiterPuf::random(STAGES, &mut rng);
    let xor = XorPuf::random(XOR_N, STAGES, &mut rng);
    let challenges: Vec<Challenge> = (0..crps)
        .map(|_| Challenge::random(STAGES, &mut rng))
        .collect();
    let features = FeatureMatrix::from_challenges(&challenges).expect("feature matrix");

    // Bit-exactness gate before any timing: the batched path must reproduce
    // the scalar loop exactly.
    let scalar_bits: Vec<bool> = challenges.iter().map(|ch| xor.response(ch)).collect();
    assert_eq!(
        xor.response_batch(&features),
        scalar_bits,
        "batched XOR responses diverge from the scalar loop"
    );

    println!("eval throughput harness: {crps} challenges, {STAGES} stages, {XOR_N}-XOR");

    let arbiter_scalar = throughput(crps, || {
        challenges
            .iter()
            .map(|ch| arbiter.delay_difference(ch))
            .sum()
    });
    let mut deltas = vec![0.0f64; crps];
    let arbiter_batched = throughput(crps, || {
        let fm = FeatureMatrix::from_challenges(&challenges).unwrap();
        arbiter.delta_batch_into(&fm, &mut deltas);
        deltas.iter().sum()
    });
    let xor_scalar = throughput(crps, || {
        challenges.iter().filter(|ch| xor.response(ch)).count() as f64
    });
    let xor_batched = throughput(crps, || {
        let fm = FeatureMatrix::from_challenges(&challenges).unwrap();
        xor.response_batch(&fm).iter().filter(|&&b| b).count() as f64
    });
    let xor_batched_prebuilt = throughput(crps, || {
        xor.response_batch(&features).iter().filter(|&&b| b).count() as f64
    });

    // Multi-thread batched path: shard the pool, one feature matrix per
    // shard, fan out with an explicitly pinned worker count so the
    // `threads` field in the JSON is exactly the width that ran (an earlier
    // revision let par_map re-derive its own count from the shard total,
    // so the recorded number was not provably the measured one; on 1-core
    // hosts all_threads ≈ 1t is the *correct* reading, not an anomaly).
    let workers = par::worker_count(crps);
    let shards: Vec<&[Challenge]> = challenges.chunks(crps.div_ceil(workers * 4)).collect();
    let xor_batched_mt = throughput(crps, || {
        par::par_map_with_workers(workers, &shards, |_, chunk| {
            let fm = FeatureMatrix::from_challenges(chunk).unwrap();
            xor.response_batch(&fm).iter().filter(|&&b| b).count()
        })
        .iter()
        .sum::<usize>() as f64
    });

    let speedup_1t = xor_batched / xor_scalar;
    let speedup_mt = xor_batched_mt / xor_scalar;

    let rows = [
        ("arbiter scalar (1 thread)", arbiter_scalar),
        ("arbiter batched (1 thread)", arbiter_batched),
        ("10-XOR scalar (1 thread)", xor_scalar),
        ("10-XOR batched (1 thread)", xor_batched),
        ("10-XOR batched, prebuilt matrix", xor_batched_prebuilt),
        ("10-XOR batched (all threads)", xor_batched_mt),
    ];
    for (label, v) in rows {
        println!("  {label:34} {:>12.0} CRPs/s", v);
    }
    println!("  batched vs scalar 10-XOR: {speedup_1t:.2}× (1 thread), {speedup_mt:.2}× ({workers} threads)");

    let schema = puf_bench::SchemaHeader::capture().to_json_member(2);
    let json = format!(
        "{{\n{schema},\n  \"stages\": {STAGES},\n  \"xor_n\": {XOR_N},\n  \"challenges\": {crps},\n  \"threads\": {workers},\n  \"crps_per_sec\": {{\n    \"arbiter_scalar_1t\": {arbiter_scalar:.0},\n    \"arbiter_batched_1t\": {arbiter_batched:.0},\n    \"xor10_scalar_1t\": {xor_scalar:.0},\n    \"xor10_batched_1t\": {xor_batched:.0},\n    \"xor10_batched_prebuilt_1t\": {xor_batched_prebuilt:.0},\n    \"xor10_batched_all_threads\": {xor_batched_mt:.0}\n  }},\n  \"speedup\": {{\n    \"xor10_batched_vs_scalar_1t\": {speedup_1t:.2},\n    \"xor10_batched_vs_scalar_all_threads\": {speedup_mt:.2}\n  }}\n}}\n"
    );
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_eval.json", &json).expect("write BENCH_eval.json");
    println!("\nwrote results/BENCH_eval.json");

    puf_bench::emit_telemetry_report();
}
