//! Evaluation-throughput harness: CRPs/s for the scalar, batched and
//! bit-sliced PUF evaluation paths, written to `results/BENCH_eval.json`.
//!
//! Measures, on one fixed challenge pool (32 stages):
//!
//! * single arbiter — per-challenge `delay_difference` vs `delta_batch_into`,
//! * 10-XOR — per-challenge `response` vs `response_batch` (with and without
//!   the feature-matrix build in the timed region),
//! * 10-XOR bit-sliced packed responses (`puf_core::bitslice`), one row per
//!   available SIMD lane plus the auto-dispatched active lane,
//! * a thread-scaling curve (1/2/4/all workers via `par_map_with_workers`)
//!   for both the batched and the bit-sliced packed path, over prebuilt
//!   per-shard feature matrices so the curve isolates kernel scaling.
//!
//! Each path is timed best-of-3 after a warmup pass, and every batched and
//! bit-sliced lane is asserted bit-identical to the scalar loop before any
//! timing.
//!
//! The JSON nests all metrics under the run's `target-cpu` variant
//! (`"variants": {"native": {...}}`), and a rerun under a *different*
//! `target-cpu` merges into the existing file instead of replacing it —
//! so `cargo xtask bench-diff` compares native-vs-native and
//! default-vs-default, never flagging a native-vs-default rerun as a
//! regression (unmatched variant paths only warn).
//!
//! Run: `cargo run -p puf-bench --release --bin bench_eval`
//! (`PUF_BENCH_CRPS=N` overrides the pool size, `PUF_THREADS=N` the fan-out)

use puf_bench::par;
use puf_core::batch::FeatureMatrix;
use puf_core::bitslice::{self, xor_response_packed_with};
use puf_core::{ArbiterPuf, Challenge, XorPuf};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

const STAGES: usize = 32;
const XOR_N: usize = 10;
const DEFAULT_CRPS: usize = 262_144;
const REPS: usize = 3;
/// Master seed of the throughput harness: instances and challenges are
/// fixed so every run (and every kernel under test) sees the same work.
const BENCH_EVAL_SEED: u64 = 0xE7A1;
/// Explicit fan-out widths of the thread-scaling curve; the current
/// `par::worker_count` width is measured as well and recorded as `t_all`.
const CURVE_WIDTHS: [usize; 3] = [1, 2, 4];

/// Times `f` best-of-[`REPS`] after one warmup call and returns CRPs/s.
fn throughput<F: FnMut() -> f64>(crps: usize, mut f: F) -> f64 {
    black_box(f());
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        // puf-lint: allow(L3): this binary measures throughput; timing is its output by design
        let t0 = Instant::now();
        black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    crps as f64 / best
}

/// Extracts `(key, raw-object-text)` pairs from the `"variants"` object of
/// a previous `BENCH_eval.json`, so a rerun under a different `target-cpu`
/// preserves the other variant's numbers. Tolerant: any parse hiccup just
/// yields an empty list (the file is then rewritten from scratch).
fn existing_variants(text: &str) -> Vec<(String, String)> {
    let Some(vpos) = text.find("\"variants\"") else {
        return Vec::new();
    };
    let Some(open) = text[vpos..].find('{').map(|o| vpos + o) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut i = open + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'}' => break,
            b'"' => {
                let key_start = i + 1;
                let Some(key_end) = text[key_start..].find('"').map(|e| key_start + e) else {
                    return Vec::new();
                };
                let key = text[key_start..key_end].to_string();
                let Some(obj_start) = text[key_end..].find('{').map(|o| key_end + o) else {
                    return Vec::new();
                };
                let mut depth = 0usize;
                let mut j = obj_start;
                loop {
                    if j >= bytes.len() {
                        return Vec::new();
                    }
                    match bytes[j] {
                        b'{' => depth += 1,
                        b'}' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                out.push((key, text[obj_start..=j].to_string()));
                i = j + 1;
            }
            _ => i += 1,
        }
    }
    out
}

fn main() {
    let crps: usize = std::env::var("PUF_BENCH_CRPS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or(DEFAULT_CRPS);

    let mut rng = StdRng::seed_from_u64(BENCH_EVAL_SEED);
    let arbiter = ArbiterPuf::random(STAGES, &mut rng);
    let xor = XorPuf::random(XOR_N, STAGES, &mut rng);
    let challenges: Vec<Challenge> = (0..crps)
        .map(|_| Challenge::random(STAGES, &mut rng))
        .collect();
    let features = FeatureMatrix::from_challenges(&challenges).expect("feature matrix");
    let lanes = bitslice::available_lanes();
    let active = bitslice::active_lane();

    // Bit-exactness gate before any timing: the batched path and every
    // available bit-sliced lane must reproduce the scalar loop exactly.
    let scalar_bits: Vec<bool> = challenges.iter().map(|ch| xor.response(ch)).collect();
    assert_eq!(
        xor.response_batch(&features),
        scalar_bits,
        "batched XOR responses diverge from the scalar loop"
    );
    for &lane in lanes {
        assert_eq!(
            xor_response_packed_with(&xor, &features, lane).to_bools(),
            scalar_bits,
            "bit-sliced {} lane diverges from the scalar loop",
            lane.name()
        );
    }

    println!(
        "eval throughput harness: {crps} challenges, {STAGES} stages, {XOR_N}-XOR, \
         lanes [{}], active {}",
        lanes
            .iter()
            .map(|l| l.name())
            .collect::<Vec<_>>()
            .join(", "),
        active.name()
    );

    let arbiter_scalar = throughput(crps, || {
        challenges
            .iter()
            .map(|ch| arbiter.delay_difference(ch))
            .sum()
    });
    let mut deltas = vec![0.0f64; crps];
    let arbiter_batched = throughput(crps, || {
        let fm = FeatureMatrix::from_challenges(&challenges).unwrap();
        arbiter.delta_batch_into(&fm, &mut deltas);
        deltas.iter().sum()
    });
    let xor_scalar = throughput(crps, || {
        challenges.iter().filter(|ch| xor.response(ch)).count() as f64
    });
    let xor_batched = throughput(crps, || {
        let fm = FeatureMatrix::from_challenges(&challenges).unwrap();
        xor.response_batch(&fm).iter().filter(|&&b| b).count() as f64
    });
    let xor_batched_prebuilt = throughput(crps, || {
        xor.response_batch(&features).iter().filter(|&&b| b).count() as f64
    });

    // Bit-sliced packed responses, one row per available lane (prebuilt
    // matrix, single thread — directly comparable to
    // xor10_batched_prebuilt_1t).
    let lane_rates: Vec<(&str, f64)> = lanes
        .iter()
        .map(|&lane| {
            let rate = throughput(crps, || {
                xor_response_packed_with(&xor, &features, lane).count_ones() as f64
            });
            (lane.name(), rate)
        })
        .collect();
    let bitsliced_active = lane_rates
        .iter()
        .find(|(name, _)| *name == active.name())
        .map(|&(_, r)| r)
        .unwrap_or(0.0);

    // Thread-scaling curve over prebuilt per-shard matrices: pinned worker
    // counts 1/2/4 plus the auto-derived width, so the JSON records the
    // exact widths that ran (on 1-core hosts the curve is flat — that is
    // the correct reading, not an anomaly).
    let workers = par::worker_count(crps);
    let max_width = CURVE_WIDTHS.iter().copied().max().unwrap().max(workers);
    let shard_mats: Vec<FeatureMatrix> = challenges
        .chunks(crps.div_ceil(max_width * 4))
        .map(|chunk| FeatureMatrix::from_challenges(chunk).unwrap())
        .collect();
    let mut widths: Vec<usize> = CURVE_WIDTHS.into_iter().chain([workers]).collect();
    widths.sort_unstable();
    widths.dedup();
    let curve: Vec<(usize, f64, f64)> = widths
        .iter()
        .map(|&w| {
            let batched = throughput(crps, || {
                par::par_map_with_workers(w, &shard_mats, |_, fm| {
                    xor.response_batch(fm).iter().filter(|&&b| b).count()
                })
                .iter()
                .sum::<usize>() as f64
            });
            let packed = throughput(crps, || {
                par::par_map_with_workers(w, &shard_mats, |_, fm| {
                    xor.response_batch_packed(fm).count_ones()
                })
                .iter()
                .sum::<u64>() as f64
            });
            (w, batched, packed)
        })
        .collect();
    let curve_at = |w: usize| curve.iter().find(|&&(cw, _, _)| cw == w);

    let speedup_1t = xor_batched / xor_scalar;
    let speedup_bitsliced = bitsliced_active / xor_batched_prebuilt;

    let mut rows = vec![
        ("arbiter scalar (1 thread)".to_string(), arbiter_scalar),
        ("arbiter batched (1 thread)".to_string(), arbiter_batched),
        ("10-XOR scalar (1 thread)".to_string(), xor_scalar),
        ("10-XOR batched (1 thread)".to_string(), xor_batched),
        (
            "10-XOR batched, prebuilt matrix".to_string(),
            xor_batched_prebuilt,
        ),
    ];
    for &(name, rate) in &lane_rates {
        rows.push((format!("10-XOR bit-sliced packed ({name})"), rate));
    }
    for &(w, batched, packed) in &curve {
        rows.push((format!("10-XOR batched ({w} threads)"), batched));
        rows.push((format!("10-XOR bit-sliced packed ({w} threads)"), packed));
    }
    for (label, v) in &rows {
        println!("  {label:40} {v:>12.0} CRPs/s");
    }
    println!(
        "  batched vs scalar 10-XOR: {speedup_1t:.2}× (1 thread); \
         bit-sliced ({}) vs batched prebuilt: {speedup_bitsliced:.2}×",
        active.name()
    );

    let header = puf_bench::SchemaHeader::capture();
    let variant = header.target_cpu.clone();
    let schema = header.to_json_member(2);

    let mut metrics = String::new();
    let _ = writeln!(metrics, "{{");
    let _ = writeln!(metrics, "      \"crps_per_sec\": {{");
    let _ = writeln!(
        metrics,
        "        \"arbiter_scalar_1t\": {arbiter_scalar:.0},"
    );
    let _ = writeln!(
        metrics,
        "        \"arbiter_batched_1t\": {arbiter_batched:.0},"
    );
    let _ = writeln!(metrics, "        \"xor10_scalar_1t\": {xor_scalar:.0},");
    let _ = writeln!(metrics, "        \"xor10_batched_1t\": {xor_batched:.0},");
    let _ = writeln!(
        metrics,
        "        \"xor10_batched_prebuilt_1t\": {xor_batched_prebuilt:.0},"
    );
    for &(name, rate) in &lane_rates {
        let _ = writeln!(metrics, "        \"xor10_bitsliced_{name}_1t\": {rate:.0},");
    }
    let _ = writeln!(
        metrics,
        "        \"xor10_bitsliced_packed_1t\": {bitsliced_active:.0}"
    );
    let _ = writeln!(metrics, "      }},");
    let _ = writeln!(metrics, "      \"thread_scaling\": {{");
    for (path, pick) in [("xor10_batched", 1usize), ("xor10_bitsliced_packed", 2)] {
        let _ = writeln!(metrics, "        \"{path}\": {{");
        let mut entries: Vec<(String, f64)> = curve
            .iter()
            .map(|&(w, b, p)| (format!("t{w}"), if pick == 1 { b } else { p }))
            .collect();
        if let Some(&(_, b, p)) = curve_at(workers) {
            entries.push(("t_all".to_string(), if pick == 1 { b } else { p }));
        }
        let last = entries.len() - 1;
        for (i, (key, v)) in entries.iter().enumerate() {
            let comma = if i == last { "" } else { "," };
            let _ = writeln!(metrics, "          \"{key}\": {v:.0}{comma}");
        }
        let close = if path == "xor10_batched" { "}," } else { "}" };
        let _ = writeln!(metrics, "        {close}");
    }
    let _ = writeln!(metrics, "      }},");
    let _ = writeln!(metrics, "      \"speedup\": {{");
    let _ = writeln!(
        metrics,
        "        \"xor10_batched_vs_scalar_1t\": {speedup_1t:.2},"
    );
    let _ = writeln!(
        metrics,
        "        \"xor10_bitsliced_vs_batched_prebuilt_1t\": {speedup_bitsliced:.2}"
    );
    let _ = writeln!(metrics, "      }}");
    let _ = write!(metrics, "    }}");

    let previous = std::fs::read_to_string("results/BENCH_eval.json").unwrap_or_default();
    let mut variants: Vec<(String, String)> = existing_variants(&previous)
        .into_iter()
        .filter(|(k, _)| *k != variant)
        .collect();
    variants.push((variant.clone(), metrics));
    variants.sort_by(|a, b| a.0.cmp(&b.0));

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "{schema},");
    let _ = writeln!(json, "  \"stages\": {STAGES},");
    let _ = writeln!(json, "  \"xor_n\": {XOR_N},");
    let _ = writeln!(json, "  \"challenges\": {crps},");
    let _ = writeln!(json, "  \"threads\": {workers},");
    let _ = writeln!(json, "  \"active_lane\": \"{}\",", active.name());
    let _ = writeln!(json, "  \"variants\": {{");
    let last = variants.len() - 1;
    for (i, (key, body)) in variants.iter().enumerate() {
        let comma = if i == last { "" } else { "," };
        let _ = writeln!(json, "    \"{key}\": {body}{comma}");
    }
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_eval.json", &json).expect("write BENCH_eval.json");
    println!("\nwrote results/BENCH_eval.json (variant \"{variant}\")");

    puf_bench::emit_telemetry_report();
}
