//! Fleet-scale authentication server bench: sharded chip store +
//! cross-session batched verification on the bit-sliced engine.
//!
//! Enrolls a synthetic fleet (100k chips in smoke, ~1M in full) into
//! per-shard [`puf_protocol::AuthService`] stores, drives every active
//! chip through fault-injected authentication sessions (response flips,
//! lossy channels, random impostors → lockouts), and measures:
//!
//! * **auths/sec** — sessions decided per wall-clock second through the
//!   batched event loop;
//! * **p50/p99 verdict latency in ticks** — bounded at low load by the
//!   flush policy (`flush_rows` full OR `flush_ticks` age);
//! * **bytes per enrolled chip** — the compact sign-plane store;
//! * **batched-vs-sequential speedup** — the same sessions replayed
//!   scalar-at-a-time through `SessionManager` + `PoolSource`; the run
//!   asserts ≥3× and bit-identical verdicts (`--no-gate` to disable);
//! * **worker determinism** — the merged verdict stream is asserted
//!   bit-identical across 1/2/4/8 workers.
//!
//! Run: `cargo run -p puf-bench --release --bin server`
//! (`--smoke` runs the small fleet and writes
//! `target/BENCH_server_smoke.json`; `--seed N`, `--out PATH` override
//! defaults; `--trace[=PATH]` records a deterministic tick-clock trace of
//! the enqueue→flush→verdict pipeline; `--no-gate` skips the speedup
//! assertion)

use puf_bench::fleet::{
    build_fleet, build_universe, run_batched, run_sequential, serve_fleet, FleetConfig,
};
use puf_protocol::{ProtocolError, SessionOutcome};
use std::fmt::Write as _;
use std::time::Instant;

fn percentile(sorted: &[u64], pct: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((sorted.len() - 1) as u64 * pct / 100) as usize]
}

fn main() {
    let cli = puf_bench::BenchCliSpec::new("target/BENCH_server_trace.json")
        .with_gate()
        .parse();
    let (smoke, seed, out, trace) = (cli.smoke, cli.seed, cli.out, cli.trace);
    let gate = !cli.no_gate;
    if trace.is_some() {
        let tracer = puf_telemetry::tracer();
        tracer.set_clock(puf_telemetry::TraceClock::Tick);
        tracer.set_lane_capacity(1 << 22);
        tracer.set_enabled(true);
    }
    let out_path = out.unwrap_or_else(|| {
        if smoke {
            "target/BENCH_server_smoke.json".to_string()
        } else {
            "results/BENCH_server.json".to_string()
        }
    });
    let config = if smoke {
        FleetConfig::smoke(seed)
    } else {
        FleetConfig::full(seed)
    };
    // Sequential scalar replay is orders of magnitude slower; time it on a
    // bounded session prefix and compare per-session rates.
    let sequential_limit = if smoke {
        config.total_sessions()
    } else {
        config.total_sessions().min(4_000)
    };

    println!("Fleet authentication service bench — sharded store + batched verification");
    println!(
        "seed {seed}, {} enrolled chips, {} active × {} sessions, universe {}, {} shards{}",
        config.enrolled_chips,
        config.active_chips,
        config.sessions_per_chip,
        config.universe,
        config.shards,
        if smoke { " (smoke)" } else { "" }
    );

    let universe = build_universe(&config);

    // Enrollment: build every shard's compact store (timed separately —
    // it is one-time capital, not per-session serving cost).
    // puf-lint: allow(L3): this binary measures throughput; timing is its output by design
    let started = Instant::now();
    let services = build_fleet(&config, &universe, 1);
    let enroll_secs = started.elapsed().as_secs_f64();
    let enrolls_per_sec = f64::from(config.enrolled_chips) / enroll_secs;
    println!(
        "enrolled {} chips in {enroll_secs:.2} s ({enrolls_per_sec:.0} chips/sec)",
        config.enrolled_chips
    );

    // The measured serving run: every shard's event loop on one worker.
    // puf-lint: allow(L3): this binary measures throughput; timing is its output by design
    let started = Instant::now();
    let batched = serve_fleet(&config, services, 1);
    let batched_secs = started.elapsed().as_secs_f64();
    let stats = batched.stats();
    assert_eq!(stats.decided, config.total_sessions(), "sessions lost");

    let latencies = batched.latencies();
    let p50 = percentile(&latencies, 50);
    let p99 = percentile(&latencies, 99);
    let auths_per_sec = stats.decided as f64 / batched_secs;
    let bytes_per_chip = batched.stored_bytes() as f64 / batched.enrolled().max(1) as f64;
    let warm_bytes_per_chip = batched.warm_bytes() as f64 / stats.warm_chips.max(1) as f64;

    // Outcome census.
    let reports = batched.reports();
    let (mut accepted, mut degraded, mut rejected, mut locked_out) = (0u64, 0u64, 0u64, 0u64);
    let (mut lockout_errors, mut other_errors) = (0u64, 0u64);
    for report in reports.values() {
        match report {
            Ok(r) => match r.outcome {
                SessionOutcome::Accepted => accepted += 1,
                SessionOutcome::Degraded => degraded += 1,
                SessionOutcome::Rejected => rejected += 1,
                SessionOutcome::LockedOut => locked_out += 1,
            },
            Err(ProtocolError::ChipLockedOut { .. }) => lockout_errors += 1,
            Err(_) => other_errors += 1,
        }
    }
    assert_eq!(
        other_errors, 0,
        "unexpected session errors in the fleet run"
    );

    // Sequential scalar replay of the comparison prefix.
    // puf-lint: allow(L3): this binary measures throughput; timing is its output by design
    let started = Instant::now();
    let sequential = run_sequential(&config, &universe, sequential_limit);
    let sequential_secs = started.elapsed().as_secs_f64();
    let sequential_per_sec = sequential.len() as f64 / sequential_secs;
    for (uid, report) in &sequential {
        assert_eq!(
            reports[uid], report,
            "session uid {uid} diverged between batched and sequential"
        );
    }
    let speedup = auths_per_sec / sequential_per_sec;

    // Worker determinism: the merged verdict stream must not move.
    let mut worker_checks = Vec::new();
    for workers in [2usize, 4, 8] {
        let run = run_batched(&config, &universe, workers);
        assert_eq!(
            batched.reports(),
            run.reports(),
            "worker count {workers} changed the verdict stream"
        );
        worker_checks.push(workers);
    }

    println!(
        "\nbatched:    {auths_per_sec:>12.0} auths/sec ({} sessions in {batched_secs:.2} s)",
        stats.decided
    );
    println!(
        "sequential: {sequential_per_sec:>12.0} auths/sec ({} sessions in {sequential_secs:.2} s)",
        sequential.len()
    );
    println!("speedup:    {speedup:>12.1}×");
    println!(
        "latency:    p50 {p50} ticks, p99 {p99} ticks (flush every {} rows / {} ticks)",
        config.flush_rows, config.flush_ticks
    );
    println!("store:      {bytes_per_chip:.1} B/chip cold, {warm_bytes_per_chip:.1} B/chip warm ({} chips)", batched.enrolled());
    println!(
        "outcomes:   {accepted} accepted, {degraded} degraded, {rejected} rejected, {locked_out} locked out, {lockout_errors} lockout-refused"
    );
    println!(
        "engine:     {} warm batches, {} warm chips, {} bit-sliced member evals, {} flushes ({} age-triggered, max block {})",
        stats.warm_batches, stats.warm_chips, stats.warm_member_evals, stats.flushes, stats.aged_flushes, stats.max_flush_rows
    );

    if gate {
        assert!(
            speedup >= 3.0,
            "batched-vs-sequential speedup gate failed: {speedup:.2}× < 3×"
        );
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "{},",
        puf_bench::SchemaHeader::capture().to_json_member(2)
    );
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"enrolled_chips\": {},", config.enrolled_chips);
    let _ = writeln!(json, "  \"active_chips\": {},", config.active_chips);
    let _ = writeln!(
        json,
        "  \"sessions_per_chip\": {},",
        config.sessions_per_chip
    );
    let _ = writeln!(json, "  \"sessions\": {},", stats.decided);
    let _ = writeln!(json, "  \"universe\": {},", config.universe);
    let _ = writeln!(json, "  \"shards\": {},", config.shards);
    let _ = writeln!(json, "  \"stages\": {},", config.stages);
    let _ = writeln!(json, "  \"members\": {},", config.members);
    let _ = writeln!(json, "  \"flush_rows\": {},", config.flush_rows);
    let _ = writeln!(json, "  \"flush_ticks\": {},", config.flush_ticks);
    let _ = writeln!(json, "  \"enrolls_per_sec\": {enrolls_per_sec:.1},");
    let _ = writeln!(json, "  \"auths_per_sec\": {auths_per_sec:.1},");
    let _ = writeln!(json, "  \"p50_latency_ticks\": {p50},");
    let _ = writeln!(json, "  \"p99_latency_ticks\": {p99},");
    let _ = writeln!(json, "  \"bytes_per_chip\": {bytes_per_chip:.1},");
    let _ = writeln!(json, "  \"warm_bytes_per_chip\": {warm_bytes_per_chip:.1},");
    let _ = writeln!(json, "  \"sequential_sessions\": {},", sequential.len());
    let _ = writeln!(
        json,
        "  \"sequential_auths_per_sec\": {sequential_per_sec:.1},"
    );
    let _ = writeln!(json, "  \"speedup\": {speedup:.2},");
    let _ = writeln!(
        json,
        "  \"speedup_gate\": {},",
        if gate { "3.0" } else { "null" }
    );
    let _ = writeln!(json, "  \"worker_counts_verified\": {worker_checks:?},");
    let _ = writeln!(json, "  \"outcomes\": {{");
    let _ = writeln!(json, "    \"accepted\": {accepted},");
    let _ = writeln!(json, "    \"degraded\": {degraded},");
    let _ = writeln!(json, "    \"rejected\": {rejected},");
    let _ = writeln!(json, "    \"locked_out\": {locked_out},");
    let _ = writeln!(json, "    \"lockout_refused\": {lockout_errors}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"event_loop\": {{");
    let _ = writeln!(json, "    \"ticks\": {},", stats.ticks);
    let _ = writeln!(json, "    \"flushes\": {},", stats.flushes);
    let _ = writeln!(json, "    \"aged_flushes\": {},", stats.aged_flushes);
    let _ = writeln!(json, "    \"max_flush_rows\": {},", stats.max_flush_rows);
    let _ = writeln!(json, "    \"warm_batches\": {},", stats.warm_batches);
    let _ = writeln!(json, "    \"warm_chips\": {},", stats.warm_chips);
    let _ = writeln!(
        json,
        "    \"warm_member_evals\": {}",
        stats.warm_member_evals
    );
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(parent).expect("create output directory");
    }
    std::fs::write(&out_path, &json).expect("write server bench results");
    println!("\nwrote {out_path}");

    if let Some(trace_path) = trace {
        let tracer = puf_telemetry::tracer();
        let events = tracer.snapshot_events();
        assert_eq!(
            tracer.evicted(),
            0,
            "trace ring wrapped; raise the lane capacity"
        );
        if let Some(parent) = std::path::Path::new(&trace_path).parent() {
            std::fs::create_dir_all(parent).expect("create trace directory");
        }
        let clock = tracer.clock();
        std::fs::write(
            &trace_path,
            puf_telemetry::trace_export::chrome_trace_json(&events, clock),
        )
        .expect("write chrome trace");
        let folded_path = format!("{trace_path}.folded");
        std::fs::write(
            &folded_path,
            puf_telemetry::trace_export::folded_stacks(&events, clock),
        )
        .expect("write folded stacks");
        println!(
            "wrote {trace_path} and {folded_path} ({} events)",
            events.len()
        );
    }
    puf_bench::emit_telemetry_report();
}
