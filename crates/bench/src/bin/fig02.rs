//! Figure 2 — soft-response distribution of a single MUX arbiter PUF.
//!
//! Paper (32 nm, 0.9 V, 25 °C, 1,000,000 random challenges × 100,000
//! evaluations): Pr(stable 0) = 39.7 %, Pr(stable 1) = 40.1 %, histogram
//! bin size 0.05 with a strongly bimodal shape.
//!
//! Run: `cargo run -p puf-bench --release --bin fig02 [--full]`

use puf_analysis::hist::Histogram;
use puf_bench::{par, Scale};
use puf_core::batch::FeatureMatrix;
use puf_core::challenge::random_challenges;
use puf_core::Condition;
use puf_silicon::{Chip, ChipConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    println!("Fig. 2 reproduction — single-PUF soft-response distribution");
    println!("scale: {scale}\n");

    let mut rng = StdRng::seed_from_u64(scale.seed);
    let chip = Chip::fabricate(0, &ChipConfig::paper_default(), &mut rng);

    // Shard the challenge sweep across threads; each shard derives its own
    // deterministic RNG.
    let shards = par::worker_count(64).max(1) * 4;
    let per_shard = scale.challenges.div_ceil(shards);
    let shard_ids: Vec<u64> = (0..shards as u64).collect();
    let partials = par::par_map_progress("bench.fig02.shards", &shard_ids, |_, &shard| {
        let mut rng = StdRng::seed_from_u64(scale.seed ^ (0xF16_0002 + shard * 7919));
        // The shard's challenges go through the batch engine: one feature
        // matrix, one kernel pass, counter draws in challenge order.
        let challenges = random_challenges(chip.stages(), per_shard, &mut rng);
        let features = FeatureMatrix::from_challenges(&challenges).expect("feature matrix");
        let soft = chip
            .measure_individual_soft_batch(0, &features, Condition::NOMINAL, scale.evals, &mut rng)
            .expect("measurement failed");
        let mut hist = Histogram::soft_response();
        let mut stable0 = 0u64;
        let mut stable1 = 0u64;
        for s in soft {
            hist.add(s.value());
            if s.is_stable_zero() {
                stable0 += 1;
            } else if s.is_stable_one() {
                stable1 += 1;
            }
        }
        (hist, stable0, stable1)
    });

    let mut hist = Histogram::soft_response();
    let mut stable0 = 0u64;
    let mut stable1 = 0u64;
    let total = (per_shard * shards) as f64;
    for (h, s0, s1) in &partials {
        hist.merge(h);
        stable0 += s0;
        stable1 += s1;
    }

    println!("soft response histogram (bin = 0.05, fraction of challenges):");
    println!("{}", hist.render(48));

    let p0 = stable0 as f64 / total;
    let p1 = stable1 as f64 / total;
    println!("Pr(stable 0) = {:.1}%   [paper: 39.7%]", p0 * 100.0);
    println!("Pr(stable 1) = {:.1}%   [paper: 40.1%]", p1 * 100.0);
    println!("Pr(stable)   = {:.1}%   [paper: ~80%]", (p0 + p1) * 100.0);

    puf_bench::emit_telemetry_report();
}
