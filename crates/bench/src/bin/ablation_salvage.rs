//! Extension harness: salvaging marginally stable CRPs from the XOR
//! output's soft response (§2.2's deferred idea).
//!
//! Compares, per XOR width, the strict all-members-100 %-stable yield (the
//! paper's rule, Fig. 3 curve) with the salvage yield at several soft
//! thresholds, alongside the per-CRP error rate an authentication policy
//! would have to absorb.
//!
//! Run: `cargo run -p puf-bench --release --bin ablation_salvage`

use puf_analysis::Table;
use puf_bench::Scale;
use puf_core::challenge::random_challenges;
use puf_core::Condition;
use puf_protocol::salvage::{recommended_tolerance, salvage_select, SalvageConfig};
use puf_silicon::testbench::xor_stable_mask;
use puf_silicon::{Chip, ChipConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    println!("Extension — XOR soft-response salvage vs strict stability (§2.2)");
    println!("scale: {scale}\n");

    let mut rng = StdRng::seed_from_u64(scale.seed);
    let chip = Chip::fabricate(0, &ChipConfig::paper_default(), &mut rng);
    let challenges =
        random_challenges(chip.stages(), (scale.challenges / 10).max(10_000), &mut rng);

    let mut table = Table::new([
        "n",
        "strict stable",
        "salvage @0.02",
        "err @0.02",
        "salvage @0.05",
        "err @0.05",
        "zero-HD tol. @0.05 (64 ch)",
    ]);
    for n in [4usize, 6, 8, 10] {
        let strict = xor_stable_mask(
            &chip,
            n,
            &challenges,
            Condition::NOMINAL,
            scale.evals,
            &mut rng,
        )
        .expect("mask failed");
        let strict_yield = strict.iter().filter(|&&b| b).count() as f64 / strict.len() as f64;
        let mut cells = vec![n.to_string(), format!("{:.2}%", strict_yield * 100.0)];
        let mut tol = String::new();
        for margin in [0.02f64, 0.05] {
            let report = salvage_select(
                &chip,
                n,
                &challenges,
                Condition::NOMINAL,
                &SalvageConfig {
                    soft_margin: margin,
                    evals: scale.evals.min(10_000),
                },
                &mut rng,
            )
            .expect("salvage failed");
            cells.push(format!("{:.2}%", report.yield_fraction() * 100.0));
            cells.push(format!("{:.4}", report.expected_error_rate));
            if margin == 0.05 {
                tol = format!("{:.3}", recommended_tolerance(&report, 64, 4.0));
            }
        }
        cells.push(tol);
        table.row(cells);
    }
    println!("{}", table.render());
    println!("salvage multiplies the usable-CRP pool at large n, at the price of a nonzero");
    println!("per-CRP error rate — the zero-Hamming-distance policy must be relaxed to the");
    println!("listed tolerance, which is exactly the trade-off the paper declines (§2.2).");
}
