//! Figure 3 — percentage of stable CRPs versus the number of PUFs in an
//! XOR PUF.
//!
//! Paper (32 nm, 0.9 V, 25 °C, 1,000,000 challenges): the stable fraction
//! follows ≈ 0.800ⁿ; for a 10-input XOR PUF only 10.9 % of CRPs are stable.
//!
//! Run: `cargo run -p puf-bench --release --bin fig03 [--full]`

use puf_analysis::stability::{exponential_fit_r2, fit_exponential_base, StabilityPoint};
use puf_analysis::Table;
use puf_bench::{par, Scale};
use puf_core::challenge::random_challenges;
use puf_core::Condition;
use puf_silicon::testbench::stable_prefix_counts;
use puf_silicon::{Chip, ChipConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const MAX_N: usize = 10;

fn main() {
    let scale = Scale::from_env();
    println!("Fig. 3 reproduction — stable-CRP fraction vs number of XOR-ed PUFs");
    println!("scale: {scale}\n");

    let mut rng = StdRng::seed_from_u64(scale.seed);
    let chip = Chip::fabricate(0, &ChipConfig::paper_default(), &mut rng);

    // For each challenge, measure the stability of the first MAX_N member
    // PUFs once; the n-input XOR PUF is stable iff members 0..n all are.
    let shards = par::worker_count(64).max(1) * 4;
    let per_shard = scale.challenges.div_ceil(shards);
    let shard_ids: Vec<u64> = (0..shards as u64).collect();
    let partials = par::par_map_progress("bench.fig03.shards", &shard_ids, |_, &shard| {
        let mut rng = StdRng::seed_from_u64(scale.seed ^ (0xF16_0003 + shard * 7919));
        // Batched: the per-member probabilities come from one kernel pass
        // per member over the shard's feature matrix; the counter draws
        // keep the scalar early-break order.
        let challenges = random_challenges(chip.stages(), per_shard, &mut rng);
        let counts = stable_prefix_counts(
            &chip,
            MAX_N,
            &challenges,
            Condition::NOMINAL,
            scale.evals,
            &mut rng,
        )
        .expect("measurement failed");
        let mut stable_upto = vec![0u64; MAX_N + 1]; // stable_upto[n] = #challenges stable for all first n
        for prefix_stable in counts {
            for slot in &mut stable_upto[1..=prefix_stable] {
                *slot += 1;
            }
        }
        stable_upto
    });

    let total = (per_shard * shards) as f64;
    let mut stable_upto = [0u64; MAX_N + 1];
    for p in &partials {
        for (a, b) in stable_upto.iter_mut().zip(p) {
            *a += b;
        }
    }

    let points: Vec<StabilityPoint> = (1..=MAX_N)
        .map(|n| StabilityPoint {
            n,
            fraction: stable_upto[n] as f64 / total,
        })
        .collect();
    let base = fit_exponential_base(&points);
    let r2 = exponential_fit_r2(&points, base);

    let mut table = Table::new(["n", "stable CRPs", "fit a^n", "paper 0.800^n"]);
    for p in &points {
        table.row([
            p.n.to_string(),
            format!("{:.2}%", p.fraction * 100.0),
            format!("{:.2}%", base.powi(p.n as i32) * 100.0),
            format!("{:.2}%", 0.8f64.powi(p.n as i32) * 100.0),
        ]);
    }
    println!("{}", table.render());
    println!("fitted exponential base a = {base:.3}  (paper: 0.800, R² = {r2:.4})");
    println!(
        "stable fraction at n = 10: {:.1}%  [paper: 10.9%]",
        points[MAX_N - 1].fraction * 100.0
    );

    puf_bench::emit_telemetry_report();
}
