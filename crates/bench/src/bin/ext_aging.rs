//! Extension harness: challenge-selection margins over device lifetime.
//!
//! The paper's introduction lists aging next to voltage and temperature as
//! the reliability threats; its evaluation covers V/T only. This harness
//! ages the simulated chip along a BTI-style √t drift law and measures how
//! the model-selected challenges hold up: with nominal-only βs versus the
//! stricter all-V/T βs. The prediction borne out below is that the V/T
//! safety margin doubles as an aging margin, because both are repeatable
//! delay shifts of similar magnitude.
//!
//! Run: `cargo run -p puf-bench --release --bin ext_aging`

use puf_analysis::Table;
use puf_bench::Scale;
use puf_core::aging::REFERENCE_HOURS;
use puf_core::Condition;
use puf_protocol::auth::{AuthPolicy, ChipResponder};
use puf_protocol::enrollment::{enroll, EnrollmentConfig};
use puf_protocol::server::Server;
use puf_silicon::{Chip, ChipConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    println!("Extension — selected-challenge stability over device lifetime");
    println!("scale: {scale}\n");

    let n = 4;
    let rounds = 64;
    let ages = [0.0, 0.1, 1.0, 3.0, 10.0].map(|m| m * REFERENCE_HOURS);

    let mut table = Table::new([
        "age (hours)",
        "nominal-β mismatches/64",
        "nominal-β verdict",
        "all-V/T-β mismatches/64",
        "all-V/T-β verdict",
    ]);

    // Two identical chips enrolled under the two β regimes.
    let configs = [
        ("nominal", EnrollmentConfig::paper_default(n)),
        ("all-V/T", EnrollmentConfig::paper_all_conditions(n)),
    ];
    let mut outcomes: Vec<Vec<(usize, bool)>> = Vec::new();
    for (label, config) in &configs {
        // puf-lint: allow(L7): both β regimes must enroll the *same* chip — the replay is the experiment's control
        let mut rng = StdRng::seed_from_u64(scale.seed);
        let mut chip = Chip::fabricate(0, &ChipConfig::paper_default(), &mut rng);
        let record = enroll(&chip, config, &mut rng).expect("enrollment failed");
        let mut server = Server::new();
        server.register(record);
        println!("enrolled with {label} βs");
        let mut per_age = Vec::new();
        for &hours in &ages {
            chip.set_age(hours);
            let mut client = ChipResponder::new(&chip, n, Condition::NOMINAL, 5);
            let outcome = server
                .authenticate(
                    0,
                    &mut client,
                    rounds,
                    AuthPolicy::ZeroHammingDistance,
                    &mut rng,
                )
                .expect("authentication failed");
            per_age.push((outcome.mismatches, outcome.approved));
        }
        outcomes.push(per_age);
    }
    println!();

    for (i, &hours) in ages.iter().enumerate() {
        let (m_nom, ok_nom) = outcomes[0][i];
        let (m_all, ok_all) = outcomes[1][i];
        let verdict = |ok: bool| if ok { "APPROVED" } else { "DENIED" };
        table.row([
            format!("{hours:.0}"),
            m_nom.to_string(),
            verdict(ok_nom).to_string(),
            m_all.to_string(),
            verdict(ok_all).to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("nominal-only margins erode as the die ages; the all-V/T βs' extra delay");
    println!("margin absorbs the BTI drift for considerably longer — margin is margin,");
    println!("whether the shift comes from a corner or from wear-out.");
}
