//! Extension harness: Becker's reliability-based CMA-ES attack (the
//! paper's Ref. 9) against the simulated chip, and the two protocol
//! properties that defeat it.
//!
//! The MLP attack of Fig. 4 needs exponentially many CRPs in `n`; the
//! reliability attack recovers **one member at a time** from repeated
//! XOR-output measurements, scaling linearly — it is the reason wide XOR
//! PUFs alone are not a security argument. The paper's protocol happens to
//! deny it both inputs: authentication responses are one-shot samples
//! ("one-time sampling", Fig. 7) and only deeply stable challenges are ever
//! queried, so the attacker observes zero unreliability variance.
//!
//! Run: `cargo run -p puf-bench --release --bin ext_reliability`

use puf_analysis::Table;
use puf_bench::Scale;
use puf_core::{Condition, NoiseModel};
use puf_ml::cmaes::CmaesConfig;
use puf_protocol::attacks::{member_match, reliability_attack, ReliabilityAttackConfig};
use puf_silicon::{Chip, ChipConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    println!("Extension — reliability-based CMA-ES attack (Ref. 9) vs the protocol's defences");
    println!("scale: {scale}\n");

    let n = 4;
    let mut rng = StdRng::seed_from_u64(scale.seed);
    // Paper geometry; mismatch off so member weights are exact ground truth
    // for the match diagnostic.
    let chip_config = ChipConfig {
        noise: NoiseModel::paper_default().with_evaluations(1_000),
        ..ChipConfig::paper_default()
    }
    .with_model_mismatch(0.0);
    let mut chip = Chip::fabricate(0, &chip_config, &mut rng);
    chip.blow_fuses(); // deployed — no enrollment access for the attacker

    let config = ReliabilityAttackConfig {
        measurements: 6_000,
        evals: 15,
        restarts: 6,
        cmaes: CmaesConfig {
            max_generations: 300,
            ..CmaesConfig::default()
        },
    };
    println!(
        "attacker budget: {} challenges × {} repeated evaluations, {} CMA-ES restarts\n",
        config.measurements, config.evals, config.restarts
    );
    // puf-lint: allow(L3): wall-clock only reports attack cost on stderr/stdout prose, never in figure data
    let t0 = Instant::now();
    let models =
        reliability_attack(&chip, n, Condition::NOMINAL, &config, &mut rng).expect("attack failed");
    let elapsed = t0.elapsed();

    let mut table = Table::new(["restart", "fitness (corr)", "best member match", "member"]);
    // BTreeSet: recovered-member count/order must not vary run to run.
    let mut members_recovered = std::collections::BTreeSet::new();
    for (i, model) in models.iter().enumerate() {
        let matches = member_match(&chip, n, model, Condition::NOMINAL).expect("diagnostic");
        let (best_member, best) = matches
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN"))
            .expect("non-empty");
        if *best > 0.85 {
            members_recovered.insert(best_member);
        }
        table.row([
            i.to_string(),
            format!("{:.3}", model.fitness),
            format!("{:.3}", best),
            if *best > 0.85 {
                format!("PUF {best_member} RECOVERED")
            } else {
                "—".to_string()
            },
        ]);
    }
    println!("{}", table.render());
    println!(
        "{} of {} member PUFs recovered in {elapsed:.1?} — linear-in-n attack cost, vs the\n\
         exponential CRP counts of Fig. 4's MLP attack.\n",
        members_recovered.len(),
        n
    );

    // The defences: one-shot responses carry no reliability signal.
    let blind = ReliabilityAttackConfig {
        evals: 1,
        restarts: 2,
        measurements: 4_000,
        cmaes: CmaesConfig {
            max_generations: 60,
            ..CmaesConfig::default()
        },
    };
    let blinded =
        reliability_attack(&chip, n, Condition::NOMINAL, &blind, &mut rng).expect("attack failed");
    println!(
        "same attack against one-shot responses (the protocol's access pattern): best fitness {:.3} — no signal.",
        blinded[0].fitness
    );
    println!("the model-assisted protocol defeats Ref. 9's attack by construction: it never");
    println!("exposes repeated measurements, and its selected CRPs never flicker anyway.");
}
