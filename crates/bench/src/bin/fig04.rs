//! Figure 4 — MLP modeling-attack accuracy versus training-set size and
//! XOR width `n`.
//!
//! Paper (§2.3): a 35-25-25 multi-layer perceptron trained with L-BFGS on
//! 100 %-stable XOR CRPs (90 %/10 % train/test split of 1,000,000
//! challenges) reaches > 90 % prediction accuracy with fewer than 100,000
//! CRPs for every n < 10 — hence "more than 10 individual PUFs are needed
//! for an XOR PUF to be considered secure". Training speed averaged
//! 0.395 ms per CRP.
//!
//! Run: `cargo run -p puf-bench --release --bin fig04 [--full]`
//! (the default reduced scale sweeps n ∈ {4, 5, 6, 8, 10} and training sets
//! up to 24,000 CRPs; `--full` sweeps n = 4..11 up to the full stable pool)

use puf_analysis::Table;
use puf_bench::{par, Scale};
use puf_core::batch::FeatureMatrix;
use puf_core::challenge::random_challenges;
use puf_core::Condition;
use puf_ml::features::{design_matrix, encode_bits};
use puf_ml::{Mlp, MlpConfig};
use puf_silicon::testbench::collect_stable_xor_crps_features;
use puf_silicon::{dataset::CrpSet, Chip, ChipConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    println!("Fig. 4 reproduction — MLP attack accuracy vs training-set size");
    println!("scale: {scale}\n");

    let (n_values, train_sizes): (Vec<usize>, Vec<usize>) = if scale.full {
        (
            (4..=11).collect(),
            vec![1_000, 3_000, 10_000, 30_000, 100_000, 300_000],
        )
    } else {
        (vec![4, 5, 6, 8, 10], vec![1_000, 3_000, 8_000, 24_000])
    };

    let mut rng = StdRng::seed_from_u64(scale.seed);
    let chip = Chip::fabricate(0, &ChipConfig::paper_default(), &mut rng);

    // 90/10 split of the random challenge pool (paper protocol); stable-only
    // CRPs on both sides.
    let pool = random_challenges(chip.stages(), scale.challenges, &mut rng);
    let split = pool.len() * 9 / 10;
    let (train_pool, test_pool) = pool.split_at(split);
    // Feature matrices are built once and shared across every XOR width.
    let fm_train = FeatureMatrix::from_challenges(train_pool).expect("train features");
    let fm_test = FeatureMatrix::from_challenges(test_pool).expect("test features");

    println!("collecting stable CRPs per n (fuse-port measurements)…");
    let datasets: Vec<(usize, CrpSet, CrpSet)> =
        par::par_map_progress("bench.fig04.datasets", &n_values, |idx, &n| {
            let mut rng = StdRng::seed_from_u64(scale.seed ^ (0xF16_0004 + idx as u64));
            let train = collect_stable_xor_crps_features(
                &chip,
                n,
                &fm_train,
                Condition::NOMINAL,
                scale.evals,
                &mut rng,
            )
            .expect("train collection failed");
            let test = collect_stable_xor_crps_features(
                &chip,
                n,
                &fm_test,
                Condition::NOMINAL,
                scale.evals,
                &mut rng,
            )
            .expect("test collection failed");
            (n, train, test.truncated(20_000))
        });
    for (n, train, test) in &datasets {
        println!(
            "  n = {n:2}: {} stable train CRPs, {} stable test CRPs (max train ≈ {}·0.8^n)",
            train.len(),
            test.len(),
            train_pool.len(),
        );
    }
    println!();

    // One training job per (n, size) pair, fanned out across threads.
    struct Job {
        n: usize,
        size: usize,
        dataset_idx: usize,
    }
    let mut jobs = Vec::new();
    for (di, (n, train, _)) in datasets.iter().enumerate() {
        for &size in &train_sizes {
            if size <= train.len() {
                jobs.push(Job {
                    n: *n,
                    size,
                    dataset_idx: di,
                });
            }
        }
        // Always include the full available pool as the last point.
        jobs.push(Job {
            n: *n,
            size: train.len(),
            dataset_idx: di,
        });
    }

    let results = par::par_map_progress("bench.fig04.attacks", &jobs, |ji, job| {
        let (_, train, test) = &datasets[job.dataset_idx];
        let train = train.truncated(job.size);
        let x = design_matrix(train.challenges());
        let y = encode_bits(train.responses());
        // Jobs are already fanned out one-per-thread here, so pin the
        // inner row-parallel gradient to one worker — the trained model is
        // bit-identical either way (deterministic fixed-order reduction),
        // this only avoids thread oversubscription.
        let config = MlpConfig {
            workers: 1,
            ..MlpConfig::paper_default()
        };
        let mut rng = StdRng::seed_from_u64(scale.seed ^ (0xF16_0104 + ji as u64));
        let mut mlp = Mlp::new(x.cols(), &config, &mut rng);
        // puf-lint: allow(L3): wall-clock reports attack cost on stderr; figure data is seed-deterministic
        let t0 = Instant::now();
        let diag = mlp.train(&x, &y, &config);
        let train_time = t0.elapsed();

        let xt = design_matrix(test.challenges());
        let predictions = mlp.predict(&xt);
        let accuracy = puf_ml::accuracy(&predictions, test.responses());
        (
            job.n,
            job.size,
            accuracy,
            train_time.as_secs_f64() * 1_000.0 / job.size as f64,
            diag.iterations,
        )
    });

    let mut table = Table::new(["n", "train CRPs", "accuracy", "ms/CRP", "lbfgs iters"]);
    for (n, size, acc, ms_per_crp, iters) in &results {
        table.row([
            n.to_string(),
            size.to_string(),
            format!("{:.1}%", acc * 100.0),
            format!("{ms_per_crp:.3}"),
            iters.to_string(),
        ]);
    }
    println!("{}", table.render());

    // Headline check: which n reach 90 % accuracy with the largest budget?
    println!("accuracy at the largest training set per n:");
    for (n, _, _) in &datasets {
        let best = results
            .iter()
            .filter(|r| r.0 == *n)
            .map(|r| (r.1, r.2))
            .max_by_key(|(size, _)| *size);
        if let Some((size, acc)) = best {
            println!(
                "  n = {n:2}: {:.1}% with {size} CRPs{}",
                acc * 100.0,
                if acc > 0.9 {
                    "  → broken (< 10 PUFs insufficient)"
                } else {
                    "  → resists at this budget"
                }
            );
        }
    }
    let mean_ms: f64 = results.iter().map(|r| r.3).sum::<f64>() / results.len().max(1) as f64;
    println!("\nmean training speed: {mean_ms:.3} ms/CRP  [paper: 0.395 ms/CRP on an i7-3770]");

    puf_bench::emit_telemetry_report();
}
