//! Experiment-scale configuration shared by the fig binaries.

use std::fmt;

/// Scale knobs for a figure run.
#[derive(Clone, Debug, PartialEq)]
pub struct Scale {
    /// Number of random test challenges (paper: 1,000,000).
    pub challenges: usize,
    /// Number of chips in the lot (paper: 10).
    pub chips: usize,
    /// Counter evaluations per soft-response measurement (paper: 100,000).
    pub evals: u64,
    /// Base RNG seed for fabrication and measurement noise.
    pub seed: u64,
    /// Whether `--full` was requested.
    pub full: bool,
}

impl Scale {
    /// The paper's full measurement campaign.
    pub fn paper() -> Self {
        Self {
            challenges: 1_000_000,
            chips: 10,
            evals: 100_000,
            seed: 2017,
            full: true,
        }
    }

    /// The reduced default: 200,000 challenges, 10 chips, 100,000
    /// evaluations (only the challenge count is reduced — stability
    /// statistics depend on the evaluation count, so that stays at paper
    /// scale).
    pub fn default_reduced() -> Self {
        Self {
            challenges: 200_000,
            chips: 10,
            evals: 100_000,
            seed: 2017,
            full: false,
        }
    }

    /// Parses command-line style arguments (`--full`, `--challenges N`,
    /// `--chips N`, `--evals N`, `--seed N`) on top of the reduced default.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on an unknown flag or malformed number.
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut scale = Self::default_reduced();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--full" => {
                    let seed = scale.seed;
                    scale = Self::paper();
                    scale.seed = seed;
                }
                "--challenges" => scale.challenges = next_number(&mut iter, "--challenges"),
                "--chips" => scale.chips = next_number(&mut iter, "--chips"),
                "--evals" => scale.evals = next_number(&mut iter, "--evals") as u64,
                "--seed" => scale.seed = next_number(&mut iter, "--seed") as u64,
                other => panic!(
                    "unknown argument `{other}` (expected --full, --challenges, --chips, --evals, --seed)"
                ),
            }
        }
        scale
    }

    /// Parses the real process arguments (skipping the binary name).
    pub fn from_env() -> Self {
        Self::from_args(std::env::args().skip(1))
    }
}

impl Default for Scale {
    fn default() -> Self {
        Self::default_reduced()
    }
}

impl fmt::Display for Scale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} challenges, {} chips, {} evals/measurement, seed {}{}",
            self.challenges,
            self.chips,
            self.evals,
            self.seed,
            if self.full { " (paper scale)" } else { "" }
        )
    }
}

fn next_number<I: Iterator<Item = String>>(iter: &mut I, flag: &str) -> usize {
    let value = iter
        .next()
        .unwrap_or_else(|| panic!("{flag} requires a value"));
    value
        .replace('_', "")
        .parse()
        .unwrap_or_else(|_| panic!("{flag}: `{value}` is not a number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Scale {
        Scale::from_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn default_scale() {
        let s = parse(&[]);
        assert_eq!(s.challenges, 200_000);
        assert_eq!(s.chips, 10);
        assert_eq!(s.evals, 100_000);
        assert!(!s.full);
    }

    #[test]
    fn full_scale() {
        let s = parse(&["--full"]);
        assert_eq!(s.challenges, 1_000_000);
        assert!(s.full);
    }

    #[test]
    fn overrides_and_underscores() {
        let s = parse(&["--challenges", "50_000", "--seed", "7", "--chips", "3"]);
        assert_eq!(s.challenges, 50_000);
        assert_eq!(s.seed, 7);
        assert_eq!(s.chips, 3);
    }

    #[test]
    fn full_then_override() {
        let s = parse(&["--full", "--challenges", "10"]);
        assert_eq!(s.challenges, 10);
        assert!(s.full);
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn unknown_flag_panics() {
        parse(&["--bogus"]);
    }

    #[test]
    fn display_mentions_scale() {
        assert!(parse(&["--full"]).to_string().contains("paper scale"));
    }
}
