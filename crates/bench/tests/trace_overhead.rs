//! Disabled-trace overhead gate: with tracing off, a `trace_span!` at a
//! hot-path entry costs one relaxed atomic load — this test pins that cost
//! to under 1 % of the xor10 batch evaluation it instruments.
//!
//! The comparison is deliberately lopsided against the tracer: the span
//! count budget `K` over-counts the real instrumentation density of
//! `response_batch` (one entry span plus one span per 64-row block) by
//! ~4×, and the measured per-span cost includes the loop overhead around
//! it. If `K · cost(disarmed span) < 1 % · cost(batch)` still holds, the
//! production overhead is comfortably below the acceptance bar.

use puf_core::batch::FeatureMatrix;
use puf_core::{Challenge, XorPuf};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

const STAGES: usize = 32;
const XOR_N: usize = 10;
const CRPS: usize = 8_192;
const SPAN_SAMPLES: u32 = 1_000_000;
const REPS: usize = 3;

fn best_of<F: FnMut()>(mut f: F) -> f64 {
    f(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

#[test]
fn disarmed_trace_spans_cost_under_one_percent_of_the_batch_path() {
    // The global tracer defaults to disabled; this test must observe the
    // disarmed fast path.
    let tracer = puf_telemetry::tracer();
    tracer.set_enabled(false);

    let mut rng = StdRng::seed_from_u64(0x0BE5);
    let xor = XorPuf::random(XOR_N, STAGES, &mut rng);
    let challenges: Vec<Challenge> = (0..CRPS)
        .map(|_| Challenge::random(STAGES, &mut rng))
        .collect();
    let features = FeatureMatrix::from_challenges(&challenges).expect("feature matrix");

    // Per-call span budget: `response_batch` arms one entry span plus one
    // per 64-row block; CRPS/16 + 2 over-counts that by ~4×.
    let spans_per_batch = CRPS / 16 + 2;

    let span_total = best_of(|| {
        for _ in 0..SPAN_SAMPLES {
            let guard = puf_telemetry::trace_span!("eval.batch.overhead_probe");
            black_box(&guard);
        }
    });
    let span_cost = span_total / SPAN_SAMPLES as f64;

    let batch_cost = best_of(|| {
        black_box(xor.response_batch(black_box(&features)));
    });

    let overhead = span_cost * spans_per_batch as f64;
    assert!(
        overhead < 0.01 * batch_cost,
        "disarmed tracing overhead too high: {spans_per_batch} spans × {:.1} ns = {:.2} µs \
         vs 1 % of batch = {:.2} µs",
        span_cost * 1e9,
        overhead * 1e6,
        0.01 * batch_cost * 1e6,
    );

    // And the disarmed spans really did record nothing.
    assert_eq!(tracer.snapshot_events().len(), 0);
}
