//! Property test: the batched [`puf_protocol::AuthService`] verdict
//! stream is bit-identical to replaying the same sessions sequentially
//! through [`puf_protocol::SessionManager`] with a
//! [`puf_protocol::PoolSource`] — including under injected response
//! flips, lossy channels and impostor-driven lockouts, and across
//! 1/2/4/8 workers.
//!
//! Session reports are compared as whole values (outcome, attempt count,
//! backoff ticks, challenge accounting, event log, errors), so any
//! divergence in the event-loop state machine — not just the final
//! accept/reject bit — fails the property.

use proptest::prelude::*;
use puf_bench::fleet::{build_universe, run_batched, run_sequential, FleetConfig};
use puf_protocol::ChannelFaultPlan;

fn arb_config() -> impl Strategy<Value = FleetConfig> {
    (
        any::<u64>(),
        0.0f64..0.08,
        0.0f64..0.12,
        0.0f64..0.3,
        2u32..=4,
    )
        .prop_map(
            |(seed, flip_rate, drop_rate, impostor_fraction, sessions)| {
                let mut config = FleetConfig::tiny(seed);
                config.response_flip_rate = flip_rate;
                config.channel = ChannelFaultPlan {
                    drop_rate,
                    straggle_rate: drop_rate / 2.0,
                    duplicate_rate: 0.02,
                    reorder_rate: 0.02,
                    corrupt_rate: drop_rate / 4.0,
                };
                config.impostor_fraction = impostor_fraction;
                config.sessions_per_chip = sessions;
                config
            },
        )
}

proptest! {
    // Each case runs 4 full fleet drains plus a sequential replay; keep
    // the case count modest so the suite stays in CI budget.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn batched_service_is_bit_identical_to_sequential_sessions(config in arb_config()) {
        let universe = build_universe(&config);
        let sequential = run_sequential(&config, &universe, u64::MAX);
        let baseline = run_batched(&config, &universe, 1);
        let merged = baseline.reports();

        prop_assert_eq!(merged.len() as u64, config.total_sessions());
        prop_assert_eq!(sequential.len(), merged.len());
        for (uid, report) in &sequential {
            prop_assert_eq!(
                &merged[uid],
                &report,
                "session uid {} diverged from the sequential replay",
                uid
            );
        }

        for workers in [2usize, 4, 8] {
            let run = run_batched(&config, &universe, workers);
            prop_assert_eq!(
                baseline.reports(),
                run.reports(),
                "worker count {} changed the verdict stream",
                workers
            );
        }
    }
}
