//! End-to-end equivalence of the batched evaluation engine with the scalar
//! paths it replaced, across the crate boundaries the harnesses actually
//! exercise: puf-core batch APIs, the silicon testbench collectors, and the
//! enrollment measurement path.
//!
//! The unit/property tests in `puf-core::batch` already pin bit-exactness at
//! the kernel level; this test pins it at the *pipeline* level — same seeds,
//! same RNG draw order, same bits — so a regression anywhere in the chain
//! (feature packing, block expansion, silicon replay order) fails loudly.

use puf_core::batch::FeatureMatrix;
use puf_core::challenge::random_challenges;
use puf_core::{ArbiterPuf, Condition, XorPuf};
use puf_silicon::testbench::{collect_stable_xor_crps_features, stable_prefix_counts};
use puf_silicon::{Chip, ChipConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn core_batch_paths_are_bit_exact_across_widths() {
    let mut rng = StdRng::seed_from_u64(0xB17E);
    for stages in [1, 7, 32, 64, 99] {
        let challenges = random_challenges(stages, 173, &mut rng);
        let features = FeatureMatrix::from_challenges(&challenges).unwrap();

        let arbiter = ArbiterPuf::random(stages, &mut rng);
        for (i, ch) in challenges.iter().enumerate() {
            assert_eq!(
                arbiter.delta_batch(&features)[i].to_bits(),
                arbiter.delay_difference(ch).to_bits(),
                "arbiter delta diverges at stages={stages}, row {i}"
            );
        }

        for n in [1, 4, 10] {
            let xor = XorPuf::random(n, stages, &mut rng);
            let scalar_bits: Vec<bool> = challenges.iter().map(|c| xor.response(c)).collect();
            assert_eq!(xor.response_batch(&features), scalar_bits);

            let sigma = 0.07;
            let batched_soft = xor.soft_response_batch(&features, sigma);
            for (i, ch) in challenges.iter().enumerate() {
                assert_eq!(
                    batched_soft[i].to_bits(),
                    xor.soft_response(ch, sigma).to_bits(),
                    "soft response diverges at stages={stages}, n={n}, row {i}"
                );
            }
        }
    }
}

#[test]
fn noisy_batch_replays_the_scalar_rng_stream() {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let challenges = random_challenges(48, 301, &mut rng);
    let features = FeatureMatrix::from_challenges(&challenges).unwrap();
    let xor = XorPuf::random(5, 48, &mut rng);
    let sigma = 0.12;

    let batched = xor.eval_noisy_batch(&features, sigma, &mut StdRng::seed_from_u64(7));
    let mut scalar_rng = StdRng::seed_from_u64(7);
    let scalar: Vec<bool> = challenges
        .iter()
        .map(|c| xor.eval_noisy(c, sigma, &mut scalar_rng))
        .collect();
    assert_eq!(
        batched, scalar,
        "noisy batch consumed a different RNG stream"
    );

    // Determinism: same seed, same bits, run-to-run.
    assert_eq!(
        batched,
        xor.eval_noisy_batch(&features, sigma, &mut StdRng::seed_from_u64(7))
    );
}

#[test]
fn silicon_enrollment_batch_matches_scalar_measurements() {
    let mut rng = StdRng::seed_from_u64(0xC819);
    let chip = Chip::fabricate(0, &ChipConfig::small(), &mut rng);
    let challenges = random_challenges(chip.stages(), 200, &mut rng);
    let features = FeatureMatrix::from_challenges(&challenges).unwrap();
    let evals = 1_000;

    let batched = chip
        .measure_individual_soft_batch(
            1,
            &features,
            Condition::NOMINAL,
            evals,
            &mut StdRng::seed_from_u64(11),
        )
        .unwrap();
    let mut scalar_rng = StdRng::seed_from_u64(11);
    for (ch, got) in challenges.iter().zip(&batched) {
        let want = chip
            .measure_individual_soft(1, ch, Condition::NOMINAL, evals, &mut scalar_rng)
            .unwrap();
        assert_eq!(*got, want, "enrollment counter draws diverged");
    }
}

#[test]
fn silicon_stable_collectors_are_seed_deterministic() {
    let mut rng = StdRng::seed_from_u64(0xFAB5);
    let chip = Chip::fabricate(3, &ChipConfig::small(), &mut rng);
    let challenges = random_challenges(chip.stages(), 150, &mut rng);
    let features = FeatureMatrix::from_challenges(&challenges).unwrap();
    let evals = 2_000;

    let counts_a = stable_prefix_counts(
        &chip,
        4,
        &challenges,
        Condition::NOMINAL,
        evals,
        &mut StdRng::seed_from_u64(42),
    )
    .unwrap();
    let counts_b = stable_prefix_counts(
        &chip,
        4,
        &challenges,
        Condition::NOMINAL,
        evals,
        &mut StdRng::seed_from_u64(42),
    )
    .unwrap();
    assert_eq!(
        counts_a, counts_b,
        "stable_prefix_counts is not deterministic"
    );

    let set_a = collect_stable_xor_crps_features(
        &chip,
        3,
        &features,
        Condition::NOMINAL,
        evals,
        &mut StdRng::seed_from_u64(43),
    )
    .unwrap();
    let set_b = collect_stable_xor_crps_features(
        &chip,
        3,
        &features,
        Condition::NOMINAL,
        evals,
        &mut StdRng::seed_from_u64(43),
    )
    .unwrap();
    assert_eq!(set_a.len(), set_b.len());
    for ((ca, ra), (cb, rb)) in set_a.iter().zip(set_b.iter()) {
        assert_eq!(ca, cb);
        assert_eq!(ra, rb);
    }
}
