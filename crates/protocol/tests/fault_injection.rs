//! Integration property tests for the fault-injection layer: seeded fault
//! plans must replay bit-identically through every component they touch
//! (sessions, salvage, lockdown, silicon sweeps), and lockout state must be
//! monotone — a failed retry never winds the consecutive-failure counter
//! back, under any injected fault.

use puf_core::{Challenge, Condition};
use puf_protocol::enrollment::{enroll, EnrollmentConfig};
use puf_protocol::lockdown::LockdownInterface;
use puf_protocol::salvage::{recommended_tolerance, salvage_select, SalvageConfig};
use puf_protocol::session::{Channel, Delivery, SessionOutcome, SessionPolicy};
use puf_protocol::{
    AuthPolicy, ChannelFaultPlan, ChipResponder, FaultPlan, FaultyResponder, ProtocolError,
    RandomResponder, Responder, Server, SessionManager,
};
use puf_silicon::testbench::{collect_xor_crps_faulty, soft_sweep_faulty};
use puf_silicon::{Chip, ChipConfig, MeasurementFaults};
use rand::rngs::StdRng;
use rand::SeedableRng;

const CHIP_ID: u32 = 3;

fn setup(seed: u64) -> (Chip, Server, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let chip = Chip::fabricate(3, &ChipConfig::small(), &mut rng);
    let enrolled = enroll(&chip, &EnrollmentConfig::small(2), &mut rng).unwrap();
    let mut server = Server::new();
    server.register(enrolled);
    (chip, server, rng)
}

fn challenges(stages: usize, count: u128) -> Vec<Challenge> {
    (0..count)
        .map(|i| Challenge::from_bits(i * 257, stages).unwrap())
        .collect()
}

/// One full faulted session, reconstructed from scratch for a given seed —
/// the replay property quantifies over everything: chip fabrication,
/// enrollment, challenge selection, response flips and channel faults.
fn run_faulted_session(
    world_seed: u64,
    plan: FaultPlan,
    policy: SessionPolicy,
) -> (puf_protocol::SessionReport, Vec<u32>) {
    let (chip, server, mut rng) = setup(world_seed);
    let mut mgr = SessionManager::new(server, policy).unwrap();
    let inner = ChipResponder::new(&chip, 2, Condition::NOMINAL, world_seed ^ 0xDEAD);
    let mut client = FaultyResponder::new(inner, &plan);
    let mut channel = plan.channel_faults();
    let report = mgr
        .authenticate(CHIP_ID, &mut client, &mut channel, &mut rng)
        .unwrap();
    let failures = mgr.state(CHIP_ID).unwrap().consecutive_failures;
    (report, vec![failures])
}

#[test]
fn faulted_sessions_replay_bit_identically() {
    // Response flips + channel drops/corruption, rebuilt twice from the
    // same seeds: the full transition log must match event for event.
    let plan = FaultPlan::none(101)
        .with_response_flips(0.1)
        .with_channel(ChannelFaultPlan {
            drop_rate: 0.2,
            corrupt_rate: 0.1,
            ..ChannelFaultPlan::NONE
        });
    plan.validate().unwrap();
    let policy = SessionPolicy {
        lockout_threshold: 50,
        ..SessionPolicy::resilient(20)
    };
    let (report_a, state_a) = run_faulted_session(7, plan, policy);
    let (report_b, state_b) = run_faulted_session(7, plan, policy);
    assert_eq!(
        report_a, report_b,
        "same seeds must replay the same session"
    );
    assert_eq!(state_a, state_b);
    // And a different fault seed genuinely changes the injected stream.
    let other = FaultPlan { seed: 102, ..plan };
    let (report_c, _) = run_faulted_session(7, other, policy);
    assert_ne!(
        report_a.events, report_c.events,
        "a different fault seed should perturb the transition log"
    );
}

#[test]
fn measurement_fault_sweeps_replay_bit_identically() {
    let (chip, _, _) = setup(11);
    let cs = challenges(16, 200);
    let faults = MeasurementFaults {
        response_flip_rate: 0.05,
        counter_cap: Some(3),
        fuse_glitch_rate: 0.0,
    };
    let run = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let crps =
            collect_xor_crps_faulty(&chip, 2, &cs, Condition::NOMINAL, &faults, &mut rng).unwrap();
        crps.responses().to_vec()
    };
    assert_eq!(run(5), run(5), "faulted CRP sweep must replay");
    assert_ne!(run(5), run(6), "different seeds must differ");

    let soft = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        soft_sweep_faulty(&chip, 0, &cs, Condition::NOMINAL, 50, &faults, &mut rng)
            .unwrap()
            .iter()
            .map(|(_, s)| s.value())
            .collect::<Vec<_>>()
    };
    assert_eq!(soft(9), soft(9), "faulted soft sweep must replay");
}

#[test]
fn lockout_counter_is_monotone_under_every_fault_mix() {
    // An impostor hammering the server through a lossy channel: across
    // sessions and retries the consecutive-failure counter may only grow
    // (transport failures hold it constant) until lockout, which latches.
    let (_, server, mut rng) = setup(21);
    let policy = SessionPolicy {
        max_retries: 2,
        lockout_threshold: 7,
        ..SessionPolicy::resilient(10)
    };
    let mut mgr = SessionManager::new(server, policy).unwrap();
    let plan = FaultPlan::none(303)
        .with_response_flips(0.3)
        .with_channel(ChannelFaultPlan {
            drop_rate: 0.2,
            straggle_rate: 0.1,
            ..ChannelFaultPlan::NONE
        });
    let mut impostor = FaultyResponder::new(RandomResponder::new(99), &plan);
    let mut channel = plan.channel_faults();
    let mut last_failures = 0u32;
    let mut was_locked = false;
    for _ in 0..12 {
        match mgr.authenticate(CHIP_ID, &mut impostor, &mut channel, &mut rng) {
            Ok(report) => {
                assert!(
                    !report.outcome.grants_access(),
                    "an impostor must never be granted access"
                );
                let state = mgr.state(CHIP_ID).unwrap();
                assert!(
                    state.consecutive_failures >= last_failures,
                    "failure counter regressed {last_failures} -> {}",
                    state.consecutive_failures
                );
                last_failures = state.consecutive_failures;
                if report.outcome == SessionOutcome::LockedOut {
                    was_locked = true;
                }
            }
            Err(ProtocolError::ChipLockedOut { .. }) => {
                assert!(was_locked, "lockout error without a lockout transition");
                assert!(mgr.is_locked_out(CHIP_ID), "lockout must latch");
            }
            Err(e) => panic!("unexpected session error: {e}"),
        }
    }
    assert!(was_locked, "a random impostor must eventually lock out");
    assert!(mgr.is_locked_out(CHIP_ID), "lockout never resets by itself");
}

#[test]
fn genuine_chip_transport_faults_never_advance_lockout() {
    // A channel that drops everything: the legitimate chip burns its retry
    // budget but accumulates zero lockout progress — transport failures
    // carry no evidence about who is responding.
    struct DropAll;
    impl Channel for DropAll {
        fn transmit(&mut self, _: Vec<bool>) -> Delivery {
            Delivery::Dropped
        }
    }
    let (chip, server, mut rng) = setup(31);
    let policy = SessionPolicy {
        max_retries: 3,
        ..SessionPolicy::resilient(10)
    };
    let mut mgr = SessionManager::new(server, policy).unwrap();
    let mut client = ChipResponder::new(&chip, 2, Condition::NOMINAL, 17);
    for _ in 0..4 {
        let report = mgr
            .authenticate(CHIP_ID, &mut client, &mut DropAll, &mut rng)
            .unwrap();
        assert_eq!(report.outcome, SessionOutcome::Rejected);
        assert_eq!(report.attempts, 4);
        assert_eq!(mgr.state(CHIP_ID).unwrap().consecutive_failures, 0);
    }
    assert!(!mgr.is_locked_out(CHIP_ID));
}

#[test]
fn salvage_replays_bit_identically_with_blown_fuses() {
    // Salvage runs on the *deployed* chip; the whole campaign (soft
    // measurements included) must be a pure function of the seed.
    let (mut chip, _, _) = setup(41);
    chip.blow_fuses();
    let cs = challenges(16, 150);
    let config = SalvageConfig {
        soft_margin: 0.05,
        evals: 200,
    };
    let run = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        salvage_select(&chip, 2, &cs, Condition::NOMINAL, &config, &mut rng).unwrap()
    };
    let a = run(13);
    let b = run(13);
    assert_eq!(a, b, "salvage campaign must replay bit-identically");
    assert_eq!(a.tested, 150);
    assert!(
        !a.selected.is_empty(),
        "a 5% margin over 150 challenges salvaged nothing"
    );
}

#[test]
fn salvaged_crps_authenticate_under_injected_flips() {
    // End-to-end: salvage a challenge set, then verify the chip over it
    // while a fault plan flips response bits. The recommended tolerance
    // must absorb both the salvage error rate and the injected flips when
    // it is widened by the flip rate; zero-HD would be far too brittle.
    let (mut chip, _, _) = setup(43);
    chip.blow_fuses();
    let cs = challenges(16, 400);
    let config = SalvageConfig {
        soft_margin: 0.02,
        evals: 400,
    };
    let mut rng = StdRng::seed_from_u64(19);
    let report = salvage_select(&chip, 2, &cs, Condition::NOMINAL, &config, &mut rng).unwrap();
    let rounds = report.selected.len();
    assert!(rounds >= 20, "need a usable salvaged set, got {rounds}");

    let flip_rate = 0.01;
    let plan = FaultPlan::none(404).with_response_flips(flip_rate);
    let inner = ChipResponder::new(&chip, 2, Condition::NOMINAL, 23);
    let mut client = FaultyResponder::new(inner, &plan);
    let selected: Vec<Challenge> = report.selected.iter().map(|s| s.challenge).collect();
    let bits = client.try_respond(&selected).unwrap();
    let mismatches = report
        .selected
        .iter()
        .zip(&bits)
        .filter(|(s, &b)| s.expected != b)
        .count();
    // recommended_tolerance covers salvage noise; widen by the injected
    // flip rate (independent error sources add) plus its own headroom.
    let tol = recommended_tolerance(&report, rounds, 4.0)
        + flip_rate
        + 4.0 * (flip_rate * (1.0 - flip_rate) / rounds as f64).sqrt();
    let policy = AuthPolicy::MaxHammingFraction(tol);
    assert!(
        policy.try_accepts(rounds, mismatches).unwrap(),
        "genuine chip rejected: {mismatches}/{rounds} vs tolerance {tol:.4}"
    );
}

#[test]
fn lockdown_budget_holds_under_channel_faults() {
    // An attacker harvesting CRPs through a lossy channel: every answered
    // query costs budget whether or not the reply survives the channel, so
    // the lifetime CRP bound holds regardless of transport faults.
    let (chip, _, _) = setup(53);
    let mut iface = LockdownInterface::new(&chip, 2, Condition::NOMINAL, 8, 3, 61);
    let plan = FaultPlan::none(505).with_channel(ChannelFaultPlan {
        drop_rate: 0.4,
        corrupt_rate: 0.2,
        ..ChannelFaultPlan::NONE
    });
    let mut channel = plan.channel_faults();
    let cs = challenges(16, 64);
    let mut harvested = 0u64;
    let mut exhausted = false;
    'outer: for _ in 0..4 {
        match iface.open_session() {
            Ok(()) => {}
            Err(ProtocolError::CrpBudgetExhausted { answered }) => {
                assert_eq!(answered, iface.total_answered());
                exhausted = true;
                break;
            }
            Err(e) => panic!("unexpected lockdown error: {e}"),
        }
        for c in &cs {
            match iface.query(c) {
                Ok(bit) => {
                    // The reply still rides the faulty channel; only
                    // delivered, uncorrupted bits are useful to the
                    // attacker — but the budget was spent either way.
                    if let Delivery::Delivered(bits) = channel.transmit(vec![bit]) {
                        harvested += bits.len() as u64;
                    }
                }
                Err(ProtocolError::CrpBudgetExhausted { .. }) => continue 'outer,
                Err(e) => panic!("unexpected query error: {e}"),
            }
        }
    }
    assert!(exhausted, "the session cap never bit");
    assert_eq!(iface.total_answered(), iface.lifetime_budget());
    assert!(
        harvested <= iface.lifetime_budget(),
        "channel faults cannot mint extra CRPs"
    );
    assert!(
        harvested < iface.lifetime_budget(),
        "a 40% drop rate should lose some of the harvest"
    );
}

#[test]
fn lockdown_replies_replay_bit_identically() {
    let (chip, _, _) = setup(59);
    let cs = challenges(16, 30);
    let run = |seed: u64| {
        let mut iface = LockdownInterface::new(&chip, 2, Condition::NOMINAL, 30, 1, seed);
        iface.open_session().unwrap();
        cs.iter()
            .map(|c| iface.query(c).unwrap())
            .collect::<Vec<bool>>()
    };
    assert_eq!(run(71), run(71), "lockdown readout must replay");
}

#[test]
fn fuse_glitches_are_retried_transparently_in_sessions() {
    // A responder whose measurement path glitches on its first exchange:
    // the session treats it as a transport failure, retries with fresh
    // challenges, and still accepts the genuine chip cleanly.
    struct GlitchOnce<'a> {
        inner: ChipResponder<'a>,
        glitched: bool,
    }
    impl Responder for GlitchOnce<'_> {
        fn respond(&mut self, challenges: &[Challenge]) -> Vec<bool> {
            self.inner.respond(challenges)
        }
        fn try_respond(&mut self, challenges: &[Challenge]) -> Result<Vec<bool>, ProtocolError> {
            if !self.glitched {
                self.glitched = true;
                return Err(ProtocolError::Silicon(
                    puf_silicon::SiliconError::FuseReadFailure,
                ));
            }
            self.inner.try_respond(challenges)
        }
    }
    let (chip, server, mut rng) = setup(61);
    let mut mgr = SessionManager::new(server, SessionPolicy::resilient(15)).unwrap();
    let mut client = GlitchOnce {
        inner: ChipResponder::new(&chip, 2, Condition::NOMINAL, 29),
        glitched: false,
    };
    let report = mgr
        .authenticate(
            CHIP_ID,
            &mut client,
            &mut puf_protocol::PerfectChannel,
            &mut rng,
        )
        .unwrap();
    assert_eq!(report.outcome, SessionOutcome::Accepted);
    assert_eq!(report.attempts, 2, "one glitch, one clean retry");
    assert_eq!(mgr.state(CHIP_ID).unwrap().consecutive_failures, 0);
}
