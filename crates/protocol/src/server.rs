//! The authentication server: stores enrollment records, selects
//! predicted-stable challenges and verifies responses (paper Fig. 7).

use crate::auth::{AuthOutcome, AuthPolicy, Responder};
use crate::enrollment::EnrolledChip;
use crate::ProtocolError;
use puf_core::Challenge;
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet};

/// A selected challenge together with the server's predicted XOR response.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SelectedChallenge {
    /// The challenge to send to the chip.
    pub challenge: Challenge,
    /// The response the server expects.
    pub expected: bool,
}

/// A reusable challenge-exclusion set: a sorted vector of challenge bit
/// patterns with binary-search membership.
///
/// The session layer excludes every challenge it has already issued so a
/// failed set is never re-exposed. A `BTreeSet` rebuilt per session
/// allocates a node per entry and throws the whole tree away at session
/// end — across a million-session run that is pure allocator churn. This
/// structure keeps one flat allocation that [`ExclusionSet::clear`]
/// retains, so a [`super::session::SessionManager`] can thread the same
/// scratch buffer through every session it drives.
///
/// Ordered insertion is O(len) worst case, but sessions exclude at most a
/// few hundred challenges, so the memmove stays within one or two cache
/// lines and beats per-node tree allocation comfortably.
#[derive(Clone, Debug, Default)]
pub struct ExclusionSet {
    bits: Vec<u128>,
}

impl ExclusionSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty set with pre-reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            bits: Vec::with_capacity(capacity),
        }
    }

    /// Removes every entry, retaining the allocation.
    pub fn clear(&mut self) {
        self.bits.clear();
    }

    /// Number of excluded challenge patterns.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Whether `bits` is excluded.
    pub fn contains(&self, bits: u128) -> bool {
        self.bits.binary_search(&bits).is_ok()
    }

    /// Inserts `bits`; returns `true` if it was not already present.
    pub fn insert(&mut self, bits: u128) -> bool {
        match self.bits.binary_search(&bits) {
            Ok(_) => false,
            Err(at) => {
                self.bits.insert(at, bits);
                true
            }
        }
    }

    /// The excluded patterns in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u128> + '_ {
        self.bits.iter().copied()
    }
}

impl FromIterator<u128> for ExclusionSet {
    fn from_iter<I: IntoIterator<Item = u128>>(iter: I) -> Self {
        let mut bits: Vec<u128> = iter.into_iter().collect();
        bits.sort_unstable();
        bits.dedup();
        Self { bits }
    }
}

/// The server database: one [`EnrolledChip`] record per registered chip.
///
/// Matching the paper's storage argument (Refs. 4, 6-7), the server keeps
/// only delay parameters and thresholds — `n · (stages + 1)` floats per chip
/// — instead of an exhaustive CRP table.
///
/// Records live in a `BTreeMap` so every listing and serialization of the
/// database walks chips in ascending id order: `HashMap` iteration order
/// varies per process, which would leak nondeterminism into exported
/// enrollment snapshots (lint rule L3 bans it in result-producing crates).
#[derive(Clone, Debug, Default)]
pub struct Server {
    records: BTreeMap<u32, EnrolledChip>,
}

impl Server {
    /// An empty server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an enrollment record; replaces any previous record for the
    /// same chip id and returns it.
    pub fn register(&mut self, record: EnrolledChip) -> Option<EnrolledChip> {
        puf_telemetry::counter!("protocol.register.chips").inc();
        self.records.insert(record.chip_id, record)
    }

    /// Replaces the enrollment record of an *already-registered* chip with
    /// a freshly measured one, returning the superseded record.
    ///
    /// This is the server half of closing the `needs_reenrollment` loop:
    /// when the degraded-accept ladder flags a drifted chip, the operator
    /// re-measures it ([`crate::enrollment::enroll`] against the aged
    /// silicon) and swaps the stale delay model here. Unlike
    /// [`Server::register`], an unknown chip id is an error — re-enrollment
    /// must never silently enroll a chip the fleet has no history for.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::UnknownChip`] if the chip was never registered.
    pub fn reenroll_chip(&mut self, record: EnrolledChip) -> Result<EnrolledChip, ProtocolError> {
        let chip_id = record.chip_id;
        match self.records.entry(chip_id) {
            std::collections::btree_map::Entry::Occupied(mut entry) => {
                puf_telemetry::counter!("protocol.reenroll.chips").inc();
                Ok(entry.insert(record))
            }
            std::collections::btree_map::Entry::Vacant(_) => {
                Err(ProtocolError::UnknownChip { chip_id })
            }
        }
    }

    /// Number of registered chips.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no chips are registered.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The record of a chip, if registered.
    pub fn record(&self, chip_id: u32) -> Option<&EnrolledChip> {
        self.records.get(&chip_id)
    }

    /// The ids of all registered chips, in ascending order.
    pub fn chip_ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.records.keys().copied()
    }

    /// All enrollment records, in ascending chip-id order (the iteration
    /// order serialization relies on).
    pub fn records(&self) -> impl Iterator<Item = &EnrolledChip> + '_ {
        self.records.values()
    }

    /// Generates random challenges and keeps the ones predicted stable on
    /// every member PUF, together with the predicted XOR responses — the
    /// "Select Stable Challenges" loop of Fig. 7.
    ///
    /// # Errors
    ///
    /// - [`ProtocolError::UnknownChip`] if the chip is not registered.
    /// - [`ProtocolError::ChallengeSelectionExhausted`] if `max_attempts`
    ///   random draws yield fewer than `count` stable challenges (a sign the
    ///   βs are too strict for the requested count, or `n` is very large).
    pub fn select_challenges<R: Rng + ?Sized>(
        &self,
        chip_id: u32,
        count: usize,
        max_attempts: usize,
        rng: &mut R,
    ) -> Result<Vec<SelectedChallenge>, ProtocolError> {
        static NO_EXCLUSIONS: BTreeSet<u128> = BTreeSet::new();
        self.select_challenges_excluding(chip_id, count, max_attempts, &NO_EXCLUSIONS, rng)
    }

    /// [`Server::select_challenges`] with an exclusion set: challenges whose
    /// bit patterns appear in `exclude` are never selected. The session
    /// layer uses this to guarantee that a retry after a failed round draws
    /// *fresh* challenges — re-exposing a failed set would hand an
    /// eavesdropper repeated observations of the same CRPs.
    ///
    /// # Errors
    ///
    /// As [`Server::select_challenges`]; a large exclusion set makes
    /// [`ProtocolError::ChallengeSelectionExhausted`] correspondingly more
    /// likely.
    pub fn select_challenges_excluding<R: Rng + ?Sized>(
        &self,
        chip_id: u32,
        count: usize,
        max_attempts: usize,
        exclude: &BTreeSet<u128>,
        rng: &mut R,
    ) -> Result<Vec<SelectedChallenge>, ProtocolError> {
        self.select_filtered(
            chip_id,
            count,
            max_attempts,
            |bits| exclude.contains(&bits),
            rng,
        )
    }

    /// [`Server::select_challenges_excluding`] over a reusable
    /// [`ExclusionSet`] — same semantics and identical rng draw sequence,
    /// without rebuilding a tree per session. This is the entry point the
    /// session layer threads its scratch exclusion buffer through.
    ///
    /// # Errors
    ///
    /// As [`Server::select_challenges_excluding`].
    pub fn select_challenges_excluding_set<R: Rng + ?Sized>(
        &self,
        chip_id: u32,
        count: usize,
        max_attempts: usize,
        exclude: &ExclusionSet,
        rng: &mut R,
    ) -> Result<Vec<SelectedChallenge>, ProtocolError> {
        self.select_filtered(
            chip_id,
            count,
            max_attempts,
            |bits| exclude.contains(bits),
            rng,
        )
    }

    /// The shared selection loop: both exclusion representations draw the
    /// exact same rng sequence, so swapping one for the other never shifts
    /// downstream challenge streams.
    fn select_filtered<R, F>(
        &self,
        chip_id: u32,
        count: usize,
        max_attempts: usize,
        excluded: F,
        rng: &mut R,
    ) -> Result<Vec<SelectedChallenge>, ProtocolError>
    where
        R: Rng + ?Sized,
        F: Fn(u128) -> bool,
    {
        let record = self
            .records
            .get(&chip_id)
            .ok_or(ProtocolError::UnknownChip { chip_id })?;
        let _span = puf_telemetry::span!("protocol.select.duration");
        let _trace = puf_telemetry::trace_span!("protocol.select.challenges");
        let mut selected = Vec::with_capacity(count);
        let mut attempted = 0u64;
        for _ in 0..max_attempts {
            if selected.len() == count {
                break;
            }
            attempted += 1;
            let challenge = Challenge::random(record.stages, rng);
            if excluded(challenge.bits()) {
                continue;
            }
            if let Some(expected) = record.predict_stable_xor(&challenge) {
                selected.push(SelectedChallenge {
                    challenge,
                    expected,
                });
            }
        }
        puf_telemetry::counter!("protocol.select.attempted").add(attempted);
        puf_telemetry::counter!("protocol.select.accepted").add(selected.len() as u64);
        if attempted > 0 {
            // Predicted-stable yield of this selection round — how much of
            // the random challenge space the thresholds certify.
            puf_telemetry::gauge!("protocol.select.yield")
                .set(selected.len() as f64 / attempted as f64);
        }
        if selected.len() < count {
            return Err(ProtocolError::ChallengeSelectionExhausted {
                requested: count,
                found: selected.len(),
                attempts: max_attempts,
            });
        }
        Ok(selected)
    }

    /// Runs one authentication round: selects `count` predicted-stable
    /// challenges, queries the responder once per challenge, and compares
    /// under `policy`.
    ///
    /// # Errors
    ///
    /// See [`Server::select_challenges`]; also fails if the responder
    /// returns the wrong number of bits.
    pub fn authenticate<R: Rng + ?Sized, C: Responder>(
        &self,
        chip_id: u32,
        client: &mut C,
        count: usize,
        policy: AuthPolicy,
        rng: &mut R,
    ) -> Result<AuthOutcome, ProtocolError> {
        puf_telemetry::counter!("protocol.auth.attempts").inc();
        let _span = puf_telemetry::span!("protocol.auth.duration");
        let _trace = puf_telemetry::trace_span!("protocol.auth.one_shot");
        // Draw attempts generously: stable fractions below ~0.1 % still
        // terminate, while genuinely exhausted selection errors out.
        let max_attempts = count.saturating_mul(200_000).max(100_000);
        let selected = self.select_challenges(chip_id, count, max_attempts, rng)?;
        let challenges: Vec<Challenge> = selected.iter().map(|s| s.challenge).collect();
        let responses = client.try_respond(&challenges)?;
        if responses.len() != challenges.len() {
            return Err(ProtocolError::ResponseCountMismatch {
                expected: challenges.len(),
                actual: responses.len(),
            });
        }
        let mismatches = selected
            .iter()
            .zip(&responses)
            .filter(|(s, &r)| s.expected != r)
            .count();
        let outcome = AuthOutcome::try_judge(policy, count, mismatches)?;
        if outcome.approved {
            puf_telemetry::counter!("protocol.auth.accepts").inc();
            puf_telemetry::trace_instant!("protocol.auth.accept");
        } else {
            puf_telemetry::counter!("protocol.auth.rejects").inc();
            puf_telemetry::trace_instant!("protocol.auth.reject");
        }
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::ChipResponder;
    use crate::enrollment::{enroll, EnrollmentConfig};
    use puf_core::Condition;
    use puf_silicon::{Chip, ChipConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(seed: u64) -> (Chip, Server, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let chip = Chip::fabricate(3, &ChipConfig::small(), &mut rng);
        let enrolled = enroll(&chip, &EnrollmentConfig::small(2), &mut rng).unwrap();
        let mut server = Server::new();
        assert!(server.register(enrolled).is_none());
        (chip, server, rng)
    }

    #[test]
    fn select_challenges_all_predicted_stable() {
        let (_, server, mut rng) = setup(1);
        let picks = server.select_challenges(3, 25, 100_000, &mut rng).unwrap();
        assert_eq!(picks.len(), 25);
        let record = server.record(3).unwrap();
        for p in &picks {
            assert_eq!(record.predict_stable_xor(&p.challenge), Some(p.expected));
        }
    }

    #[test]
    fn unknown_chip_is_rejected() {
        let (_, server, mut rng) = setup(2);
        assert!(matches!(
            server.select_challenges(99, 1, 100, &mut rng),
            Err(ProtocolError::UnknownChip { chip_id: 99 })
        ));
    }

    #[test]
    fn exhausted_selection_reports_counts() {
        let (_, server, mut rng) = setup(3);
        let err = server
            .select_challenges(3, 1_000, 50, &mut rng)
            .unwrap_err();
        match err {
            ProtocolError::ChallengeSelectionExhausted {
                requested,
                found,
                attempts,
            } => {
                assert_eq!(requested, 1_000);
                assert!(found < 1_000);
                assert_eq!(attempts, 50);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn exclusion_set_forces_fresh_challenges() {
        let (_, server, mut rng) = setup(6);
        let first = server.select_challenges(3, 20, 200_000, &mut rng).unwrap();
        let exclude: BTreeSet<u128> = first.iter().map(|s| s.challenge.bits()).collect();
        let second = server
            .select_challenges_excluding(3, 20, 200_000, &exclude, &mut rng)
            .unwrap();
        for s in &second {
            assert!(
                !exclude.contains(&s.challenge.bits()),
                "excluded challenge was re-selected"
            );
        }
    }

    #[test]
    fn exhaustive_exclusion_errors_instead_of_underfilling() {
        // Regression: with the entire (tiny) stable pool excluded the server
        // must report ChallengeSelectionExhausted, never silently under-fill
        // or hand back an excluded challenge. A 16-stage chip has 2^16
        // challenges, so exclude every single stable one.
        let (_, server, mut rng) = setup(7);
        let record = server.record(3).unwrap();
        let exclude: BTreeSet<u128> = (0..(1u128 << 16))
            .filter(|&bits| {
                let c = Challenge::from_bits(bits, 16).unwrap();
                record.predict_stable_xor(&c).is_some()
            })
            .collect();
        assert!(!exclude.is_empty(), "test setup: no stable challenges");
        let err = server
            .select_challenges_excluding(3, 5, 20_000, &exclude, &mut rng)
            .unwrap_err();
        assert!(matches!(
            err,
            ProtocolError::ChallengeSelectionExhausted { found: 0, .. }
        ));
    }

    #[test]
    fn exclusion_set_insert_contains_clear() {
        let mut set = ExclusionSet::with_capacity(8);
        assert!(set.is_empty());
        assert!(set.insert(7));
        assert!(set.insert(3));
        assert!(!set.insert(7), "duplicate insert must report false");
        assert_eq!(set.len(), 2);
        assert!(set.contains(3) && set.contains(7));
        assert!(!set.contains(5));
        let ordered: Vec<u128> = set.iter().collect();
        assert_eq!(ordered, vec![3, 7], "iteration must be ascending");
        set.clear();
        assert!(set.is_empty());
        assert!(!set.contains(3));
        let rebuilt: ExclusionSet = [9u128, 1, 9, 4].into_iter().collect();
        assert_eq!(rebuilt.iter().collect::<Vec<_>>(), vec![1, 4, 9]);
    }

    #[test]
    fn exclusion_set_path_matches_btreeset_path() {
        // Same seed, both exclusion representations: the selections (and
        // therefore the consumed rng stream) must be identical.
        let (_, server, _) = setup(8);
        let first = {
            let mut rng = StdRng::seed_from_u64(99);
            server.select_challenges(3, 20, 200_000, &mut rng).unwrap()
        };
        let tree: BTreeSet<u128> = first.iter().map(|s| s.challenge.bits()).collect();
        let flat: ExclusionSet = first.iter().map(|s| s.challenge.bits()).collect();
        let mut rng_a = StdRng::seed_from_u64(123);
        let mut rng_b = StdRng::seed_from_u64(123);
        let via_tree = server
            .select_challenges_excluding(3, 20, 200_000, &tree, &mut rng_a)
            .unwrap();
        let via_flat = server
            .select_challenges_excluding_set(3, 20, 200_000, &flat, &mut rng_b)
            .unwrap();
        assert_eq!(via_tree, via_flat);
        for s in &via_flat {
            assert!(!flat.contains(s.challenge.bits()));
        }
    }

    #[test]
    fn genuine_chip_authenticates_with_zero_hamming() {
        let (chip, server, mut rng) = setup(4);
        let mut client = ChipResponder::new(&chip, 2, Condition::NOMINAL, 5);
        let outcome = server
            .authenticate(
                3,
                &mut client,
                30,
                AuthPolicy::ZeroHammingDistance,
                &mut rng,
            )
            .unwrap();
        assert!(outcome.approved, "genuine chip denied: {outcome:?}");
        assert_eq!(outcome.mismatches, 0);
    }

    #[test]
    fn register_replaces_previous_record() {
        let (chip, mut server, mut rng) = setup(5);
        let again = enroll(&chip, &EnrollmentConfig::small(2), &mut rng).unwrap();
        assert!(server.register(again).is_some());
        assert_eq!(server.len(), 1);
        assert!(!server.is_empty());
    }
}
