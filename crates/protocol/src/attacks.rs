//! Reliability-based CMA-ES modeling attack (the paper's Ref. 9 —
//! Becker, *"The gap between promise and reality: on the insecurity of XOR
//! arbiter PUFs"*, CHES 2015).
//!
//! The insight: a challenge's *unreliability* under repeated evaluation is
//! dominated by whichever member PUF has the smallest delay margin on it.
//! An attacker who can re-query the deployed XOR output therefore measures
//! per-challenge soft responses, computes the unreliability signal
//! `u(c) = ½ − |s(c) − ½|`, and searches (with CMA-ES — the objective is a
//! correlation, not differentiable) for a weight vector `w` whose
//! hypothetical margin `|w·φ(c)|` anti-correlates with `u(c)`. The search
//! converges to **one member PUF at a time**, so the attack scales linearly
//! in `n` instead of exponentially — which is why it, and not logistic
//! regression, is the reason "XOR PUFs are not completely immune" (§2.3).
//!
//! The flip side, demonstrated in the tests: the signal exists **only** if
//! the attacker can extract reliability information. The paper's protocol
//! answers each selected challenge exactly once ("one-time sampling",
//! Fig. 7), and its selected CRPs are all deeply stable — both of which
//! zero out `u(c)`'s variance and blind this attack.

use crate::ProtocolError;
use puf_core::batch::FeatureMatrix;
use puf_core::{Challenge, Condition};
use puf_ml::cmaes::{self, CmaesConfig, CmaesResult};
use puf_silicon::{Chip, SiliconError};
use rand::Rng;

/// Configuration of the reliability attack.
#[derive(Clone, Debug, PartialEq)]
pub struct ReliabilityAttackConfig {
    /// Number of challenges the attacker measures.
    pub measurements: usize,
    /// Repeated evaluations per challenge (Becker used ~10; 1 disables the
    /// reliability signal entirely).
    pub evals: u64,
    /// CMA-ES settings for each restart.
    pub cmaes: CmaesConfig,
    /// Independent CMA-ES restarts; different restarts tend to converge to
    /// different member PUFs.
    pub restarts: usize,
}

impl Default for ReliabilityAttackConfig {
    fn default() -> Self {
        Self {
            measurements: 4_000,
            evals: 15,
            cmaes: CmaesConfig {
                max_generations: 250,
                ..CmaesConfig::default()
            },
            restarts: 3,
        }
    }
}

/// One restart's result: the recovered weight hypothesis and its fitness
/// (the unreliability correlation achieved).
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveredModel {
    /// The weight hypothesis (length `stages + 1`), normalised to unit
    /// Euclidean norm.
    pub weights: Vec<f64>,
    /// The fitness (Pearson correlation between the hypothetical margin and
    /// the measured reliability).
    pub fitness: f64,
    /// CMA-ES generations spent.
    pub generations: usize,
}

/// Measures the attacker's view: per-challenge XOR soft responses over
/// `evals` repeated evaluations (works on a deployed chip — no fuse access
/// needed) and the derived unreliability `u(c) = ½ − |s − ½| ∈ [0, ½]`.
///
/// # Errors
///
/// Chip errors pass through.
pub fn measure_unreliability<R: Rng + ?Sized>(
    chip: &Chip,
    n: usize,
    challenges: &[Challenge],
    cond: Condition,
    evals: u64,
    rng: &mut R,
) -> Result<Vec<f64>, ProtocolError> {
    if challenges.is_empty() {
        return Ok(Vec::new());
    }
    let features = FeatureMatrix::new(chip.stages(), challenges).map_err(|_| {
        let actual = challenges
            .iter()
            .find(|c| c.stages() != chip.stages())
            .map_or(chip.stages(), Challenge::stages);
        ProtocolError::Silicon(SiliconError::StageMismatch {
            expected: chip.stages(),
            actual,
        })
    })?;
    Ok(chip
        .measure_xor_soft_batch(n, &features, cond, evals, rng)?
        .iter()
        .map(|s| {
            let v = s.value();
            0.5 - (v - 0.5).abs()
        })
        .collect())
}

/// Runs the full attack: measure, then `restarts` CMA-ES searches.
/// Results are sorted by fitness, best first.
///
/// # Errors
///
/// Chip errors pass through.
///
/// # Panics
///
/// Panics on zero measurements or restarts.
pub fn reliability_attack<R: Rng + ?Sized>(
    chip: &Chip,
    n: usize,
    cond: Condition,
    config: &ReliabilityAttackConfig,
    rng: &mut R,
) -> Result<Vec<RecoveredModel>, ProtocolError> {
    assert!(config.measurements > 0, "need measurements");
    assert!(config.restarts > 0, "need at least one restart");
    let challenges: Vec<Challenge> = (0..config.measurements)
        .map(|_| Challenge::random(chip.stages(), rng))
        .collect();
    let unreliability = measure_unreliability(chip, n, &challenges, cond, config.evals, rng)?;
    // Precompute the feature matrix once; the fitness evaluations that
    // dominate the run then go through the batched dot kernel.
    let features = FeatureMatrix::new(chip.stages(), &challenges)
        // puf-lint: allow(L4): challenges were drawn with chip.stages() three lines up
        .expect("attack challenges match the chip's stage count");

    let dim = chip.stages() + 1;
    let mut models = Vec::with_capacity(config.restarts);
    for _ in 0..config.restarts {
        // Random unit-ish start breaks the symmetry between members.
        let x0: Vec<f64> = (0..dim)
            .map(|_| puf_core::rngx::normal(rng, 0.0, 0.2))
            .collect();
        let fitness = |w: &[f64]| {
            // Hypothetical reliability = |w·φ|; target = −unreliability.
            let mut margins = vec![0.0f64; features.len()];
            features.deltas_into(w, &mut margins);
            for m in &mut margins {
                *m = m.abs();
            }
            let corr = puf_core::math::pearson(&margins, &unreliability);
            if corr.is_nan() {
                -1.0
            } else {
                -corr // unreliable challenges have small margins
            }
        };
        let CmaesResult {
            x,
            fitness,
            generations,
        } = cmaes::maximize(fitness, x0, &config.cmaes, rng);
        let norm = x.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-12);
        models.push(RecoveredModel {
            weights: x.into_iter().map(|v| v / norm).collect(),
            fitness,
            generations,
        });
    }
    // puf-lint: allow(L4): fitness is a finite correlation by construction; NaN is a programming error
    models.sort_by(|a, b| b.fitness.partial_cmp(&a.fitness).expect("NaN fitness"));
    Ok(models)
}

/// A full XOR clone assembled from recovered member models.
///
/// Each recovered weight vector carries a sign ambiguity (the reliability
/// fitness only sees `|w·φ|`); per member that flips the predicted bit for
/// *every* challenge, so only the parity of the sign errors matters — a
/// single global polarity bit, which [`assemble_xor_clone`] calibrates
/// against a handful of observed one-shot responses.
#[derive(Clone, Debug, PartialEq)]
pub struct XorClone {
    members: Vec<Vec<f64>>,
    invert: bool,
}

impl XorClone {
    /// Predicted XOR response for a challenge.
    ///
    /// # Panics
    ///
    /// Panics on a stage mismatch.
    pub fn predict(&self, challenge: &Challenge) -> bool {
        let phi = challenge.features();
        let mut acc = self.invert;
        for w in &self.members {
            acc ^= phi.dot(w) > 0.0;
        }
        acc
    }

    /// Prediction accuracy against labelled CRPs.
    ///
    /// # Panics
    ///
    /// Panics on empty or mismatched inputs.
    pub fn accuracy(&self, challenges: &[Challenge], responses: &[bool]) -> f64 {
        assert_eq!(challenges.len(), responses.len(), "length mismatch");
        assert!(!challenges.is_empty(), "empty evaluation set");
        // Reused feature buffer: same fold as `predict`, minus the
        // per-challenge allocation.
        let width = self.members[0].len();
        let mut phi = vec![0.0f64; width];
        let correct = challenges
            .iter()
            .zip(responses)
            .filter(|(c, &r)| {
                assert_eq!(c.stages() + 1, width, "stage mismatch");
                c.features_into(&mut phi);
                let bit = self.members.iter().fold(self.invert, |acc, w| {
                    acc ^ (puf_core::batch::dot(&phi, w) > 0.0)
                });
                bit == r
            })
            .count();
        correct as f64 / challenges.len() as f64
    }
}

/// Assembles a clone of the whole `n`-input XOR PUF from `n` recovered
/// member models, calibrating the global polarity against observed
/// `(challenge, response)` pairs (a dozen one-shot observations suffice).
///
/// # Panics
///
/// Panics if `members` or `calibration` is empty.
pub fn assemble_xor_clone(
    members: &[RecoveredModel],
    calibration: &[(Challenge, bool)],
) -> XorClone {
    assert!(!members.is_empty(), "need at least one member model");
    assert!(!calibration.is_empty(), "need calibration CRPs");
    let weights: Vec<Vec<f64>> = members.iter().map(|m| m.weights.clone()).collect();
    let score = |invert: bool| {
        let clone = XorClone {
            members: weights.clone(),
            invert,
        };
        calibration
            .iter()
            .filter(|(c, r)| clone.predict(c) == *r)
            .count()
    };
    let invert = score(true) > score(false);
    XorClone {
        members: weights,
        invert,
    }
}

/// Diagnostic (simulation-only): the absolute correlation of a recovered
/// weight hypothesis with each member PUF's true weights. A successful
/// restart shows one value near 1.
///
/// # Errors
///
/// Chip errors pass through.
pub fn member_match(
    chip: &Chip,
    n: usize,
    model: &RecoveredModel,
    cond: Condition,
) -> Result<Vec<f64>, ProtocolError> {
    let mut out = Vec::with_capacity(n);
    for puf in 0..n {
        let truth = chip.ground_truth_puf(puf, cond)?;
        let corr = puf_core::math::pearson(&model.weights, truth.weights()).abs();
        out.push(corr);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use puf_core::NoiseModel;
    use puf_silicon::ChipConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A chip tuned for the attack tests: 16 stages keeps CMA-ES fast, and
    /// model mismatch is disabled so member weights are the exact ground
    /// truth the attack should recover.
    fn attack_chip(seed: u64) -> (Chip, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let config = ChipConfig {
            stages: 16,
            bank_size: 3,
            noise: NoiseModel::paper_default().with_evaluations(1_000),
            ..ChipConfig::paper_default()
        }
        .with_model_mismatch(0.0);
        let chip = Chip::fabricate(0, &config, &mut rng);
        (chip, rng)
    }

    #[test]
    fn recovers_a_member_of_a_2_xor_puf() {
        let (mut chip, mut rng) = attack_chip(1);
        chip.blow_fuses(); // the attack needs no enrollment access
        let config = ReliabilityAttackConfig {
            measurements: 3_000,
            evals: 21,
            restarts: 3,
            ..ReliabilityAttackConfig::default()
        };
        let models = reliability_attack(&chip, 2, Condition::NOMINAL, &config, &mut rng)
            .expect("attack failed to run");
        let best = &models[0];
        let matches = member_match(&chip, 2, best, Condition::NOMINAL).unwrap();
        let top = matches.iter().cloned().fold(0.0, f64::max);
        assert!(
            top > 0.85,
            "best restart should align with a member: matches {matches:?}, fitness {}",
            best.fitness
        );
    }

    #[test]
    fn one_shot_responses_blind_the_attack() {
        // With evals = 1 every measured soft response is exactly 0 or 1, so
        // the unreliability signal has zero variance — the paper's
        // "one-time sampling" protocol property as a defence.
        let (chip, mut rng) = attack_chip(2);
        let challenges: Vec<Challenge> = (0..2_000)
            .map(|_| Challenge::random(chip.stages(), &mut rng))
            .collect();
        let u =
            measure_unreliability(&chip, 2, &challenges, Condition::NOMINAL, 1, &mut rng).unwrap();
        assert!(
            u.iter().all(|&v| v == 0.0),
            "one-shot unreliability must be identically zero"
        );
        // And the attack's fitness signal is degenerate.
        let config = ReliabilityAttackConfig {
            measurements: 1_000,
            evals: 1,
            restarts: 1,
            cmaes: CmaesConfig {
                max_generations: 30,
                ..CmaesConfig::default()
            },
        };
        let models = reliability_attack(&chip, 2, Condition::NOMINAL, &config, &mut rng).unwrap();
        assert!(
            models[0].fitness <= 0.0,
            "no reliability signal should be extractable: fitness {}",
            models[0].fitness
        );
    }

    #[test]
    fn stable_only_challenges_also_blind_the_attack() {
        // Even with repeated evaluations, if the attacker only ever sees the
        // server's *selected stable* challenges, every measurement
        // saturates and u(c) ≡ 0 — the challenge-selection defence.
        let (chip, mut rng) = attack_chip(3);
        let record = crate::enrollment::enroll(
            &chip,
            &crate::enrollment::EnrollmentConfig::small(2),
            &mut rng,
        )
        .unwrap();
        let mut server = crate::server::Server::new();
        server.register(record);
        let picks = server
            .select_challenges(0, 300, 2_000_000, &mut rng)
            .unwrap();
        let challenges: Vec<Challenge> = picks.iter().map(|p| p.challenge).collect();
        let u =
            measure_unreliability(&chip, 2, &challenges, Condition::NOMINAL, 50, &mut rng).unwrap();
        let nonzero = u.iter().filter(|&&v| v > 0.0).count();
        assert!(
            nonzero * 50 < challenges.len(),
            "selected-stable challenges should almost never flicker: {nonzero}/{}",
            challenges.len()
        );
    }

    #[test]
    fn full_clone_of_a_2_xor_puf_predicts_responses() {
        // End-to-end Becker attack: recover both members by restarting
        // until two distinct ones appear, assemble the clone, and verify
        // its XOR prediction accuracy.
        let (mut chip, mut rng) = attack_chip(5);
        chip.blow_fuses();
        let n = 2;
        let config = ReliabilityAttackConfig {
            measurements: 3_000,
            evals: 21,
            restarts: 8,
            ..ReliabilityAttackConfig::default()
        };
        let models = reliability_attack(&chip, n, Condition::NOMINAL, &config, &mut rng).unwrap();
        // Pick one model per distinct member (by the ground-truth match).
        let mut per_member: Vec<Option<RecoveredModel>> = vec![None; n];
        for m in &models {
            let matches = member_match(&chip, n, m, Condition::NOMINAL).unwrap();
            for (i, &corr) in matches.iter().enumerate() {
                if corr > 0.85 && per_member[i].is_none() {
                    per_member[i] = Some(m.clone());
                }
            }
        }
        let members: Vec<RecoveredModel> = per_member.into_iter().flatten().collect();
        assert_eq!(members.len(), n, "restarts did not cover every member");

        // Calibration and evaluation from one-shot responses.
        let calib: Vec<(Challenge, bool)> = (0..16)
            .map(|_| {
                let c = Challenge::random(chip.stages(), &mut rng);
                let r = chip
                    .eval_xor_once(n, &c, Condition::NOMINAL, &mut rng)
                    .unwrap();
                (c, r)
            })
            .collect();
        let clone = assemble_xor_clone(&members, &calib);
        let test: Vec<Challenge> = (0..2_000)
            .map(|_| Challenge::random(chip.stages(), &mut rng))
            .collect();
        let truth: Vec<bool> = test
            .iter()
            .map(|c| chip.xor_reference_bit(n, c, Condition::NOMINAL).unwrap())
            .collect();
        let acc = clone.accuracy(&test, &truth);
        assert!(acc > 0.9, "assembled clone accuracy only {acc}");
    }

    #[test]
    #[should_panic(expected = "need measurements")]
    fn zero_measurements_rejected() {
        let (chip, mut rng) = attack_chip(4);
        let config = ReliabilityAttackConfig {
            measurements: 0,
            ..ReliabilityAttackConfig::default()
        };
        let _ = reliability_attack(&chip, 2, Condition::NOMINAL, &config, &mut rng);
    }
}
