//! A lockdown-style rate-limited CRP interface (the paper's Ref. 7,
//! Yu et al., *"A Lockdown Technique to Prevent Machine Learning on PUFs
//! for Lightweight Authentication"*).
//!
//! The idea: the deployed device only answers challenges inside
//! server-authorised sessions, each with a bounded challenge budget, so a
//! modeling attacker can never accumulate the CRP volume that Fig. 4 shows
//! an attack needs. The paper cites this as effective but requiring
//! "complicated system level support" — which its fuse-based scheme avoids.
//! We implement it as a baseline so the trade-off is measurable.

use crate::ProtocolError;
use puf_core::{Challenge, Condition};
use puf_silicon::Chip;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// A rate-limited XOR-PUF readout: answers at most `budget` challenges per
/// authorised session, and at most `max_sessions` sessions in total.
pub struct LockdownInterface<'a> {
    chip: &'a Chip,
    n: usize,
    condition: Condition,
    budget_per_session: usize,
    max_sessions: usize,
    sessions_opened: usize,
    remaining_in_session: usize,
    total_answered: u64,
    rng: StdRng,
}

impl fmt::Debug for LockdownInterface<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LockdownInterface {{ n: {}, sessions: {}/{}, remaining: {}, answered: {} }}",
            self.n,
            self.sessions_opened,
            self.max_sessions,
            self.remaining_in_session,
            self.total_answered
        )
    }
}

impl<'a> LockdownInterface<'a> {
    /// Wraps a deployed chip behind session-gated access.
    ///
    /// # Panics
    ///
    /// Panics on a zero budget or zero session cap.
    pub fn new(
        chip: &'a Chip,
        n: usize,
        condition: Condition,
        budget_per_session: usize,
        max_sessions: usize,
        seed: u64,
    ) -> Self {
        assert!(budget_per_session > 0, "budget must be positive");
        assert!(max_sessions > 0, "session cap must be positive");
        Self {
            chip,
            n,
            condition,
            budget_per_session,
            max_sessions,
            sessions_opened: 0,
            remaining_in_session: 0,
            total_answered: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Opens a new authorised session (in the real protocol this requires a
    /// server MAC; here the call itself models the authorisation).
    ///
    /// # Errors
    ///
    /// [`ProtocolError::CrpBudgetExhausted`] once the session cap is hit.
    pub fn open_session(&mut self) -> Result<(), ProtocolError> {
        if self.sessions_opened >= self.max_sessions {
            return Err(ProtocolError::CrpBudgetExhausted {
                answered: self.total_answered,
            });
        }
        self.sessions_opened += 1;
        self.remaining_in_session = self.budget_per_session;
        Ok(())
    }

    /// One gated XOR evaluation.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::CrpBudgetExhausted`] when no session budget remains
    /// (open a new session, if any are left); chip errors pass through.
    pub fn query(&mut self, challenge: &Challenge) -> Result<bool, ProtocolError> {
        if self.remaining_in_session == 0 {
            return Err(ProtocolError::CrpBudgetExhausted {
                answered: self.total_answered,
            });
        }
        self.remaining_in_session -= 1;
        self.total_answered += 1;
        Ok(self
            .chip
            .eval_xor_once(self.n, challenge, self.condition, &mut self.rng)?)
    }

    /// Total challenges answered over the interface's lifetime.
    pub fn total_answered(&self) -> u64 {
        self.total_answered
    }

    /// The hard upper bound on CRPs any attacker can ever harvest.
    pub fn lifetime_budget(&self) -> u64 {
        (self.budget_per_session * self.max_sessions) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puf_core::challenge::random_challenges;
    use puf_silicon::ChipConfig;
    use rand::rngs::StdRng;

    fn chip(seed: u64) -> (Chip, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let chip = Chip::fabricate(0, &ChipConfig::small(), &mut rng);
        (chip, rng)
    }

    #[test]
    fn budget_is_enforced_per_session_and_lifetime() {
        let (chip, mut rng) = chip(1);
        let mut iface = LockdownInterface::new(&chip, 2, Condition::NOMINAL, 3, 2, 9);
        assert_eq!(iface.lifetime_budget(), 6);
        let cs = random_challenges(chip.stages(), 10, &mut rng);

        // No session open yet.
        assert!(matches!(
            iface.query(&cs[0]),
            Err(ProtocolError::CrpBudgetExhausted { .. })
        ));

        iface.open_session().unwrap();
        for c in &cs[..3] {
            iface.query(c).unwrap();
        }
        assert!(
            iface.query(&cs[3]).is_err(),
            "4th query in a 3-budget session"
        );

        iface.open_session().unwrap();
        for c in &cs[3..6] {
            iface.query(c).unwrap();
        }
        assert_eq!(iface.total_answered(), 6);
        assert!(iface.open_session().is_err(), "3rd session beyond the cap");
        assert!(!format!("{iface:?}").is_empty());
    }

    #[test]
    fn gated_answers_match_direct_chip_access() {
        // The lockdown gate changes availability, not the responses' source
        // distribution: gated answers are genuine one-shot evaluations.
        let (chip, mut rng) = chip(2);
        let mut iface = LockdownInterface::new(&chip, 1, Condition::NOMINAL, 100, 1, 10);
        iface.open_session().unwrap();
        let cs = random_challenges(chip.stages(), 100, &mut rng);
        let mut agreements = 0;
        for c in &cs {
            let gated = iface.query(c).unwrap();
            let reference = chip.ground_truth_soft(0, c, Condition::NOMINAL).unwrap() >= 0.5;
            if gated == reference {
                agreements += 1;
            }
        }
        // One-shot answers agree with the majority bit on all but the noisy
        // marginal challenges.
        assert!(agreements > 80, "only {agreements}/100 agreements");
    }

    #[test]
    fn attack_accuracy_is_bounded_by_the_budget() {
        use puf_ml::logreg::{LogisticConfig, LogisticRegression};
        // Even a single (trivially learnable) arbiter PUF stays unclonable
        // when the lockdown budget is far below the learning threshold.
        let (chip, mut rng) = chip(3);
        let mut iface = LockdownInterface::new(&chip, 1, Condition::NOMINAL, 40, 1, 11);
        iface.open_session().unwrap();
        let mut train_c = Vec::new();
        let mut train_r = Vec::new();
        loop {
            let c = Challenge::random(chip.stages(), &mut rng);
            match iface.query(&c) {
                Ok(bit) => {
                    train_c.push(c);
                    train_r.push(bit);
                }
                Err(_) => break,
            }
        }
        assert_eq!(train_c.len(), 40);
        let (model, _) =
            LogisticRegression::fit_challenges(&train_c, &train_r, &LogisticConfig::default());
        let test = random_challenges(chip.stages(), 2_000, &mut rng);
        let truth: Vec<bool> = test
            .iter()
            .map(|c| chip.ground_truth_soft(0, c, Condition::NOMINAL).unwrap() >= 0.5)
            .collect();
        let acc = model.accuracy(&test, &truth);
        assert!(
            acc < 0.92,
            "40 CRPs should not fully clone even a single PUF: {acc}"
        );
    }
}
