//! The noise-bifurcation architecture (the paper's Ref. 6: Yu, M'Raïhi,
//! Verbauwhede, Devadas, HOST 2014), as a comparison scheme.
//!
//! Idea: the device partitions the server's challenges into groups of `g`
//! and returns **one response per group, without saying which challenge it
//! belongs to**. The server, holding the delay models, can still verify —
//! it checks each returned bit against the predicted bits of the group —
//! but an eavesdropping attacker must guess the pairing, so a fraction of
//! the CRPs it harvests carry wrong labels. The paper's critique (§1): "the
//! authentication criterion must be relaxed considerably in this case,
//! requiring a higher number of CRPs for a reliable authentication" — this
//! module makes both the protection and the cost measurable.

use crate::enrollment::EnrolledChip;
use crate::ProtocolError;
use puf_core::{Challenge, Condition};
use puf_silicon::{dataset::CrpSet, Chip};
use rand::seq::SliceRandom;
use rand::Rng;

/// Configuration of the bifurcation scheme.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BifurcationConfig {
    /// Challenges per group; one response is returned per group. The
    /// reference design uses small groups (2–4).
    pub group_size: usize,
}

impl BifurcationConfig {
    /// Creates a config.
    ///
    /// # Panics
    ///
    /// Panics if `group_size < 2` (no decimation).
    pub fn new(group_size: usize) -> Self {
        assert!(group_size >= 2, "group_size must be at least 2");
        Self { group_size }
    }
}

/// The device side: evaluates every challenge but returns only one
/// response per group, at a secret random position.
///
/// # Errors
///
/// Chip errors pass through (works with blown fuses — only XOR access).
///
/// # Panics
///
/// Panics if `challenges.len()` is not a multiple of the group size.
pub fn device_respond<R: Rng + ?Sized>(
    chip: &Chip,
    n: usize,
    challenges: &[Challenge],
    cond: Condition,
    config: BifurcationConfig,
    rng: &mut R,
) -> Result<Vec<bool>, ProtocolError> {
    let g = config.group_size;
    assert!(
        challenges.len().is_multiple_of(g),
        "challenge count must be a multiple of the group size"
    );
    let mut out = Vec::with_capacity(challenges.len() / g);
    for group in challenges.chunks(g) {
        let pick = rng.gen_range(0..g);
        out.push(chip.eval_xor_once(n, &group[pick], cond, rng)?);
    }
    Ok(out)
}

/// Server-side verification statistic: the mean likelihood the server's
/// model assigns to the returned bits, averaged over groups. For each group
/// the server scores `(#stable predictions equal to the bit + ½·#unstable
/// predictions) / g` — the probability a uniformly decimated genuine device
/// would have produced this bit under the model.
///
/// For fully stable, independent members a genuine device scores
/// `(g + 1)/(2g)` in expectation (0.75 at g = 2) while any impostor without
/// the model scores 0.5; the gap `1/(2g)` shrinks with the group size,
/// which is exactly the "authentication criterion must be relaxed
/// considerably" cost the paper cites.
///
/// # Panics
///
/// Panics on a length mismatch or non-multiple challenge count.
pub fn server_verify(
    record: &EnrolledChip,
    challenges: &[Challenge],
    returned: &[bool],
    config: BifurcationConfig,
) -> f64 {
    let g = config.group_size;
    assert!(
        challenges.len().is_multiple_of(g),
        "challenge count not a multiple of g"
    );
    assert_eq!(
        challenges.len() / g,
        returned.len(),
        "response count mismatch"
    );
    let mut score = 0.0;
    for (group, &bit) in challenges.chunks(g).zip(returned) {
        let mut mass = 0.0;
        for c in group {
            mass += match record.predict_stable_xor(c) {
                Some(pred) if pred == bit => 1.0,
                Some(_) => 0.0,
                None => 0.5,
            };
        }
        score += mass / g as f64;
    }
    score / returned.len() as f64
}

/// The eavesdropper's best-effort training set: each returned bit paired
/// with a uniformly random challenge from its group (the attacker cannot do
/// better without the secret positions). Labels are wrong whenever the
/// guessed challenge's true response differs from the measured one.
///
/// # Panics
///
/// Panics on mismatched lengths.
pub fn attacker_view<R: Rng + ?Sized>(
    challenges: &[Challenge],
    returned: &[bool],
    config: BifurcationConfig,
    rng: &mut R,
) -> CrpSet {
    let g = config.group_size;
    assert!(
        challenges.len().is_multiple_of(g),
        "challenge count not a multiple of g"
    );
    assert_eq!(
        challenges.len() / g,
        returned.len(),
        "response count mismatch"
    );
    challenges
        .chunks(g)
        .zip(returned)
        // puf-lint: allow(L4): chunks() never yields an empty slice
        .map(|(group, &bit)| (*group.choose(rng).expect("non-empty group"), bit))
        .collect()
}

/// The asymptotic label-error probability of [`attacker_view`] for unbiased
/// responses: the guess hits the answering challenge with probability
/// `1/g`; otherwise the label is a coin flip relative to the guessed
/// challenge's true response.
pub fn expected_label_error(config: BifurcationConfig) -> f64 {
    let g = config.group_size as f64;
    (g - 1.0) / g * 0.5
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enrollment::{enroll, EnrollmentConfig};
    use puf_core::challenge::random_challenges;
    use puf_silicon::ChipConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(seed: u64) -> (Chip, EnrolledChip, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let chip = Chip::fabricate(0, &ChipConfig::small(), &mut rng);
        let record = enroll(&chip, &EnrollmentConfig::small(2), &mut rng).unwrap();
        (chip, record, rng)
    }

    #[test]
    fn genuine_device_scores_near_theory() {
        let (chip, record, mut rng) = setup(1);
        let config = BifurcationConfig::new(2);
        let challenges = random_challenges(chip.stages(), 3_000, &mut rng);
        let returned =
            device_respond(&chip, 2, &challenges, Condition::NOMINAL, config, &mut rng).unwrap();
        let score = server_verify(&record, &challenges, &returned, config);
        // Theory: with per-member predicted-stable fraction s, the genuine
        // expectation at g = 2 is ≈ 0.5 + s/4 (0.75 in the all-stable
        // limit); the small-config enrollment here has s ≈ 0.4.
        assert!(
            score > 0.55 && score < 0.85,
            "genuine device likelihood {score} outside the plausible band"
        );
    }

    #[test]
    fn random_impostor_scores_lower_but_not_zero() {
        let (chip, record, mut rng) = setup(2);
        let config = BifurcationConfig::new(2);
        let challenges = random_challenges(chip.stages(), 3_000, &mut rng);
        let genuine =
            device_respond(&chip, 2, &challenges, Condition::NOMINAL, config, &mut rng).unwrap();
        let genuine_score = server_verify(&record, &challenges, &genuine, config);
        let fake: Vec<bool> = (0..1_500).map(|_| rng.gen()).collect();
        let fake_score = server_verify(&record, &challenges, &fake, config);
        assert!(
            genuine_score > fake_score + 0.05,
            "no discrimination: genuine {genuine_score} vs impostor {fake_score}"
        );
        assert!(
            (fake_score - 0.5).abs() < 0.05,
            "impostor likelihood should hover at 0.5: {fake_score}"
        );
    }

    #[test]
    fn discrimination_gap_shrinks_with_group_size() {
        let (chip, record, mut rng) = setup(3);
        let mut gaps = Vec::new();
        for g in [2usize, 4] {
            let config = BifurcationConfig::new(g);
            let challenges = random_challenges(chip.stages(), 2_400, &mut rng);
            let genuine =
                device_respond(&chip, 2, &challenges, Condition::NOMINAL, config, &mut rng)
                    .unwrap();
            let genuine_score = server_verify(&record, &challenges, &genuine, config);
            let fake: Vec<bool> = (0..challenges.len() / g).map(|_| rng.gen()).collect();
            let fake_score = server_verify(&record, &challenges, &fake, config);
            gaps.push(genuine_score - fake_score);
        }
        assert!(
            gaps[1] < gaps[0],
            "gap should shrink with g: {gaps:?} (the paper's 'relaxed criterion' cost)"
        );
    }

    #[test]
    fn attacker_label_error_matches_theory() {
        let (chip, _, mut rng) = setup(4);
        let config = BifurcationConfig::new(4);
        let challenges = random_challenges(chip.stages(), 8_000, &mut rng);
        let returned =
            device_respond(&chip, 1, &challenges, Condition::NOMINAL, config, &mut rng).unwrap();
        let view = attacker_view(&challenges, &returned, config, &mut rng);
        let mut wrong = 0usize;
        for (c, label) in view.iter() {
            let truth = chip.ground_truth_soft(0, c, Condition::NOMINAL).unwrap() >= 0.5;
            if truth != label {
                wrong += 1;
            }
        }
        let rate = wrong as f64 / view.len() as f64;
        let expected = expected_label_error(config);
        assert!(
            (rate - expected).abs() < 0.06,
            "label error {rate} vs theoretical {expected}"
        );
    }

    #[test]
    fn bifurcated_training_data_degrades_the_attack() {
        use puf_ml::logreg::{LogisticConfig, LogisticRegression};
        let (chip, _, mut rng) = setup(5);
        let config = BifurcationConfig::new(2);
        let pool = random_challenges(chip.stages(), 8_000, &mut rng);
        // Direct CRPs (no bifurcation).
        let direct: CrpSet = pool
            .iter()
            .map(|c| {
                (
                    *c,
                    chip.eval_xor_once(1, c, Condition::NOMINAL, &mut rng)
                        .unwrap(),
                )
            })
            .collect();
        // Bifurcated view of the same challenge budget.
        let returned =
            device_respond(&chip, 1, &pool, Condition::NOMINAL, config, &mut rng).unwrap();
        let leaked = attacker_view(&pool, &returned, config, &mut rng);

        let test = random_challenges(chip.stages(), 2_000, &mut rng);
        let truth: Vec<bool> = test
            .iter()
            .map(|c| chip.ground_truth_soft(0, c, Condition::NOMINAL).unwrap() >= 0.5)
            .collect();
        let cfg = LogisticConfig::default();
        let (direct_model, _) =
            LogisticRegression::fit_challenges(direct.challenges(), direct.responses(), &cfg);
        let (leaked_model, _) =
            LogisticRegression::fit_challenges(leaked.challenges(), leaked.responses(), &cfg);
        let direct_acc = direct_model.accuracy(&test, &truth);
        let leaked_acc = leaked_model.accuracy(&test, &truth);
        assert!(
            leaked_acc < direct_acc - 0.03,
            "bifurcation should hurt the attacker: {leaked_acc} vs {direct_acc}"
        );
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn group_size_one_rejected() {
        BifurcationConfig::new(1);
    }
}
