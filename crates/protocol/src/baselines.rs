//! Baseline schemes the paper compares against or builds upon.
//!
//! - [`select_by_measurement`] — the measurement-based stable-CRP selection
//!   of Ref. 1 (Zhou et al., ISLPED 2016): test challenges one by one with
//!   the on-chip counter (optionally across several V/T conditions) and keep
//!   the ones that measure 100 % stable everywhere. Correct, but for a wide
//!   XOR PUF "most tested CRPs are discarded due to poor stability" (§3),
//!   which is the inefficiency the model-assisted scheme removes. The
//!   returned [`SelectionCost`] quantifies that.
//! - [`classic_enroll`] — the traditional protocol: random challenges, the
//!   enrollment majority bit stored, authentication with a relaxed Hamming
//!   threshold.
//! - [`flip_labels`] — noise-bifurcation-style label corruption (Ref. 6):
//!   the attacker-visible CRP labels are wrong with a configured
//!   probability, which is the mechanism by which response decimation
//!   frustrates model training.

use crate::server::SelectedChallenge;
use crate::ProtocolError;
use puf_core::{Challenge, Condition};
use puf_silicon::{dataset::CrpSet, Chip};
use rand::Rng;

/// Cost accounting of a measurement-based selection campaign.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SelectionCost {
    /// Random challenges tested.
    pub challenges_tested: usize,
    /// Individual counter measurements performed (each `evals` evaluations).
    pub measurements: usize,
    /// Challenges that survived all stability checks.
    pub selected: usize,
}

impl SelectionCost {
    /// Measurements spent per kept challenge. `NaN` when nothing was kept.
    pub fn measurements_per_selected(&self) -> f64 {
        if self.selected == 0 {
            return f64::NAN;
        }
        self.measurements as f64 / self.selected as f64
    }
}

/// Measurement-based stable-CRP selection (Ref. 1): keeps challenges whose
/// member PUFs all measure 100 % stable at **every** listed condition, with
/// the stored response taken from the nominal-condition reference bits.
///
/// Requires intact fuses.
///
/// # Errors
///
/// - [`ProtocolError::Silicon`] on blown fuses or chip API misuse.
/// - [`ProtocolError::ChallengeSelectionExhausted`] if `max_attempts` draws
///   yield fewer than `count` stable challenges.
///
/// # Panics
///
/// Panics if `conditions` is empty.
pub fn select_by_measurement<R: Rng + ?Sized>(
    chip: &Chip,
    n: usize,
    count: usize,
    conditions: &[Condition],
    evals: u64,
    max_attempts: usize,
    rng: &mut R,
) -> Result<(Vec<SelectedChallenge>, SelectionCost), ProtocolError> {
    assert!(!conditions.is_empty(), "need at least one condition");
    let mut cost = SelectionCost::default();
    let mut selected = Vec::with_capacity(count);
    'outer: for _ in 0..max_attempts {
        if selected.len() == count {
            break;
        }
        let challenge = Challenge::random(chip.stages(), rng);
        cost.challenges_tested += 1;
        let mut expected = false;
        for (ci, &cond) in conditions.iter().enumerate() {
            for puf in 0..n {
                cost.measurements += 1;
                let s = chip.measure_individual_soft(puf, &challenge, cond, evals, rng)?;
                if !s.is_stable() {
                    continue 'outer;
                }
                if ci == 0 {
                    expected ^= s.is_stable_one();
                }
            }
        }
        cost.selected += 1;
        selected.push(SelectedChallenge {
            challenge,
            expected,
        });
    }
    if selected.len() < count {
        return Err(ProtocolError::ChallengeSelectionExhausted {
            requested: count,
            found: selected.len(),
            attempts: max_attempts,
        });
    }
    Ok((selected, cost))
}

/// Classic enrollment: `count` random challenges, each response stored as
/// the majority bit of a counter measurement. No stability screening at all
/// — authentication must tolerate mismatches with a Hamming threshold.
///
/// Requires intact fuses (it measures through the enrollment port to obtain
/// per-member bits before XOR).
///
/// # Errors
///
/// [`ProtocolError::Silicon`] on blown fuses or chip API misuse.
pub fn classic_enroll<R: Rng + ?Sized>(
    chip: &Chip,
    n: usize,
    count: usize,
    cond: Condition,
    evals: u64,
    rng: &mut R,
) -> Result<Vec<SelectedChallenge>, ProtocolError> {
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let challenge = Challenge::random(chip.stages(), rng);
        let mut expected = false;
        for puf in 0..n {
            let s = chip.measure_individual_soft(puf, &challenge, cond, evals, rng)?;
            expected ^= s.majority_bit();
        }
        out.push(SelectedChallenge {
            challenge,
            expected,
        });
    }
    Ok(out)
}

/// Noise-bifurcation-style label corruption: returns a copy of `crps` in
/// which each label is flipped independently with probability
/// `flip_probability` — the attacker's view after response decimation.
///
/// # Panics
///
/// Panics if `flip_probability` is outside `[0, 1]`.
pub fn flip_labels<R: Rng + ?Sized>(crps: &CrpSet, flip_probability: f64, rng: &mut R) -> CrpSet {
    assert!(
        (0.0..=1.0).contains(&flip_probability),
        "flip probability must be in [0,1]"
    );
    crps.iter()
        .map(|(c, r)| {
            let flipped = rng.gen::<f64>() < flip_probability;
            (*c, r ^ flipped)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use puf_silicon::ChipConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chip_and_rng(seed: u64) -> (Chip, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let chip = Chip::fabricate(0, &ChipConfig::small(), &mut rng);
        (chip, rng)
    }

    #[test]
    fn measurement_selection_yields_stable_crps() {
        let (chip, mut rng) = chip_and_rng(1);
        let (picks, cost) = select_by_measurement(
            &chip,
            2,
            20,
            &[Condition::NOMINAL],
            50_000,
            20_000,
            &mut rng,
        )
        .unwrap();
        assert_eq!(picks.len(), 20);
        assert_eq!(cost.selected, 20);
        assert!(cost.challenges_tested >= 20);
        assert!(cost.measurements_per_selected() >= 2.0);
        // Selected bits match the reference XOR.
        for p in &picks {
            let want = chip
                .xor_reference_bit(2, &p.challenge, Condition::NOMINAL)
                .unwrap();
            assert_eq!(p.expected, want);
        }
    }

    #[test]
    fn multi_condition_selection_is_stricter() {
        let (chip, mut rng) = chip_and_rng(2);
        let budget = 3_000;
        let (_, nominal_cost) =
            select_by_measurement(&chip, 2, 1, &[Condition::NOMINAL], 20_000, budget, &mut rng)
                .unwrap();
        let grid = Condition::paper_grid();
        let (_, grid_cost) =
            select_by_measurement(&chip, 2, 1, &grid, 20_000, budget, &mut rng).unwrap();
        // Per selected challenge, the 9-condition campaign costs more
        // measurements.
        assert!(grid_cost.measurements_per_selected() > nominal_cost.measurements_per_selected());
    }

    #[test]
    fn selection_exhaustion_error() {
        let (chip, mut rng) = chip_and_rng(3);
        let err =
            select_by_measurement(&chip, 4, 1_000, &[Condition::NOMINAL], 10_000, 10, &mut rng)
                .unwrap_err();
        assert!(matches!(
            err,
            ProtocolError::ChallengeSelectionExhausted { .. }
        ));
    }

    #[test]
    fn classic_enroll_produces_count_records() {
        let (chip, mut rng) = chip_and_rng(4);
        let picks = classic_enroll(&chip, 3, 50, Condition::NOMINAL, 1_000, &mut rng).unwrap();
        assert_eq!(picks.len(), 50);
    }

    #[test]
    fn flip_labels_statistics() {
        let (chip, mut rng) = chip_and_rng(5);
        let challenges: Vec<Challenge> = (0..4_000)
            .map(|_| Challenge::random(chip.stages(), &mut rng))
            .collect();
        let crps: CrpSet = challenges.iter().map(|c| (*c, true)).collect();
        let flipped = flip_labels(&crps, 0.3, &mut rng);
        let flips = flipped.responses().iter().filter(|&&r| !r).count() as f64;
        assert!((flips / 4_000.0 - 0.3).abs() < 0.03);
        // Probability 0 is the identity.
        let same = flip_labels(&crps, 0.0, &mut rng);
        assert_eq!(same.responses(), crps.responses());
    }
}
