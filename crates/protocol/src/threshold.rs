//! Three-way CRP classification thresholds and the β adjustment scheme.
//!
//! §4: model-predicted soft responses are classified into **stable 0**,
//! **unstable** and **stable 1** — unlike the traditional two-way threshold
//! at 0.5 which "is prone to flipping errors". `Thr(0)` is "the lowest
//! predicted soft response to result in a measured soft response greater
//! than 0.00"; `Thr(1)` the highest prediction whose measurement stayed
//! below 1.00.
//!
//! §5: for challenges that were never measured (and for off-nominal
//! voltage/temperature), the training-set thresholds are tightened by
//! scaling factors `β₀ < 1` and `β₁ > 1`:
//! `Thr(0)_adjust = β₀ · Thr(0)`, `Thr(1)_adjust = β₁ · Thr(1)`.

use std::fmt;

/// Predicted stability class of a CRP.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StabilityClass {
    /// Predicted to always read `0`.
    Stable0,
    /// Not safely predictable — discard for authentication.
    Unstable,
    /// Predicted to always read `1`.
    Stable1,
}

impl StabilityClass {
    /// The predicted response bit, or `None` for unstable CRPs.
    pub fn bit(self) -> Option<bool> {
        match self {
            StabilityClass::Stable0 => Some(false),
            StabilityClass::Stable1 => Some(true),
            StabilityClass::Unstable => None,
        }
    }
}

impl fmt::Display for StabilityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            StabilityClass::Stable0 => "stable 0",
            StabilityClass::Unstable => "unstable",
            StabilityClass::Stable1 => "stable 1",
        };
        f.write_str(name)
    }
}

/// The raw training-set thresholds of one PUF's model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Thresholds {
    /// `Thr(0)`: predictions strictly below this are stable 0.
    pub thr0: f64,
    /// `Thr(1)`: predictions strictly above this are stable 1.
    pub thr1: f64,
}

impl Thresholds {
    /// Creates a threshold pair.
    ///
    /// # Panics
    ///
    /// Panics if `thr0 > thr1` (the unstable band would be negative) or
    /// either is non-finite.
    pub fn new(thr0: f64, thr1: f64) -> Self {
        assert!(
            thr0.is_finite() && thr1.is_finite(),
            "thresholds must be finite"
        );
        assert!(thr0 <= thr1, "thr0 {thr0} must not exceed thr1 {thr1}");
        Self { thr0, thr1 }
    }

    /// Derives thresholds from a training set of `(predicted, measured)`
    /// soft-response pairs, per the paper's definition: `Thr(0)` is the
    /// minimum prediction among CRPs whose *measured* soft response exceeds
    /// 0.00, `Thr(1)` the maximum prediction among CRPs measured below 1.00.
    ///
    /// Returns `None` when either boundary set is empty (a degenerate
    /// training set where every measurement saturated the same way).
    pub fn from_training(pairs: &[(f64, f64)]) -> Option<Self> {
        let thr0 = pairs
            .iter()
            .filter(|(_, measured)| *measured > 0.0)
            .map(|(pred, _)| *pred)
            .fold(f64::INFINITY, f64::min);
        let thr1 = pairs
            .iter()
            .filter(|(_, measured)| *measured < 1.0)
            .map(|(pred, _)| *pred)
            .fold(f64::NEG_INFINITY, f64::max);
        if !thr0.is_finite() || !thr1.is_finite() || thr0 > thr1 {
            return None;
        }
        Some(Self { thr0, thr1 })
    }

    /// Applies β scaling: `(β₀·thr0, β₁·thr1)`.
    pub fn adjusted(&self, betas: Betas) -> Thresholds {
        Thresholds {
            thr0: self.thr0 * betas.beta0,
            thr1: self.thr1 * betas.beta1,
        }
    }

    /// Classifies a predicted soft response.
    pub fn classify(&self, predicted: f64) -> StabilityClass {
        if predicted < self.thr0 {
            StabilityClass::Stable0
        } else if predicted > self.thr1 {
            StabilityClass::Stable1
        } else {
            StabilityClass::Unstable
        }
    }
}

impl fmt::Display for Thresholds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Thr(0) = {:.4}, Thr(1) = {:.4}", self.thr0, self.thr1)
    }
}

/// The threshold scaling factors `β₀` (scales `Thr(0)` down) and `β₁`
/// (scales `Thr(1)` up).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Betas {
    /// Scaling for the stable-0 threshold; `< 1` tightens.
    pub beta0: f64,
    /// Scaling for the stable-1 threshold; `> 1` tightens.
    pub beta1: f64,
}

impl Betas {
    /// The identity scaling (raw training thresholds).
    pub const IDENTITY: Betas = Betas {
        beta0: 1.0,
        beta1: 1.0,
    };

    /// The paper's most conservative nominal-condition values across its 10
    /// chips: β₀ = 0.74, β₁ = 1.08 (§5.1).
    pub const PAPER_NOMINAL: Betas = Betas {
        beta0: 0.74,
        beta1: 1.08,
    };

    /// Creates a β pair.
    ///
    /// # Panics
    ///
    /// Panics if either value is non-positive or non-finite.
    pub fn new(beta0: f64, beta1: f64) -> Self {
        assert!(
            beta0 > 0.0 && beta0.is_finite() && beta1 > 0.0 && beta1.is_finite(),
            "betas must be positive and finite"
        );
        Self { beta0, beta1 }
    }

    /// Component-wise most conservative combination (smaller β₀, larger β₁)
    /// — how the paper picks lot-wide values from per-chip fits.
    pub fn most_conservative(self, other: Betas) -> Betas {
        Betas {
            beta0: self.beta0.min(other.beta0),
            beta1: self.beta1.max(other.beta1),
        }
    }
}

impl Default for Betas {
    fn default() -> Self {
        Self::IDENTITY
    }
}

impl fmt::Display for Betas {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "β₀ = {:.3}, β₁ = {:.3}", self.beta0, self.beta1)
    }
}

/// Fits the β values for one PUF by the paper's trial-and-error procedure
/// (§5.1): start at β₀ = 0.99, β₁ = 1.01 and "gradually decrease β₀ and
/// increase β₁, until all unstable responses are filtered out" of the
/// validation set.
///
/// `validation` holds `(predicted, measured_is_stable_zero,
/// measured_is_stable_one)` triples; a CRP with both flags false measured
/// unstable. The returned βs guarantee that on this validation set no CRP
/// classified stable is measured otherwise (stable-0 predictions must have
/// measured stable 0, and likewise for 1).
///
/// Returns `None` if even the maximum tightening (β₀ → 0, β₁ → hard cap)
/// cannot filter all violations — which indicates a broken model.
pub fn fit_betas(thresholds: Thresholds, validation: &[(f64, bool, bool)]) -> Option<Betas> {
    const STEP: f64 = 0.01;
    const BETA1_CAP: f64 = 10.0;
    let mut beta0 = 0.99;
    let mut beta1 = 1.01;
    loop {
        let adj = thresholds.adjusted(Betas { beta0, beta1 });
        let mut violation0 = false;
        let mut violation1 = false;
        for &(pred, stable0, stable1) in validation {
            match adj.classify(pred) {
                StabilityClass::Stable0 if !stable0 => violation0 = true,
                StabilityClass::Stable1 if !stable1 => violation1 = true,
                _ => {}
            }
            if violation0 && violation1 {
                break;
            }
        }
        if !violation0 && !violation1 {
            return Some(Betas { beta0, beta1 });
        }
        if violation0 {
            beta0 -= STEP;
            if beta0 <= 0.0 {
                return None;
            }
        }
        if violation1 {
            beta1 += STEP;
            if beta1 > BETA1_CAP {
                return None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_bands() {
        let t = Thresholds::new(0.3, 0.7);
        assert_eq!(t.classify(0.1), StabilityClass::Stable0);
        assert_eq!(t.classify(0.3), StabilityClass::Unstable); // boundary inclusive
        assert_eq!(t.classify(0.5), StabilityClass::Unstable);
        assert_eq!(t.classify(0.7), StabilityClass::Unstable);
        assert_eq!(t.classify(0.9), StabilityClass::Stable1);
        assert_eq!(t.classify(-0.5), StabilityClass::Stable0);
        assert_eq!(t.classify(1.5), StabilityClass::Stable1);
    }

    #[test]
    fn class_bits() {
        assert_eq!(StabilityClass::Stable0.bit(), Some(false));
        assert_eq!(StabilityClass::Stable1.bit(), Some(true));
        assert_eq!(StabilityClass::Unstable.bit(), None);
        assert_eq!(StabilityClass::Unstable.to_string(), "unstable");
    }

    #[test]
    fn from_training_matches_paper_definition() {
        // (predicted, measured): measured 0.0 entries don't constrain thr0.
        let pairs = [
            (0.05, 0.0),  // stable 0 in measurement
            (0.20, 0.01), // lowest prediction with measured > 0 → thr0
            (0.50, 0.40),
            (0.80, 0.99), // highest prediction with measured < 1 → thr1
            (0.95, 1.0),  // stable 1 in measurement
        ];
        let t = Thresholds::from_training(&pairs).unwrap();
        assert!((t.thr0 - 0.20).abs() < 1e-12);
        assert!((t.thr1 - 0.80).abs() < 1e-12);
    }

    #[test]
    fn from_training_degenerate_sets() {
        // Everything measured stable 0 → no thr0 evidence.
        assert!(Thresholds::from_training(&[(0.1, 0.0), (0.2, 0.0)]).is_none());
        // Crossed thresholds (an anti-correlated model): the only
        // measured-flickering CRP sits above the only measured-below-one CRP.
        let crossed = [(0.8, 1.0), (0.2, 0.0)];
        assert!(Thresholds::from_training(&crossed).is_none());
    }

    #[test]
    fn adjusted_tightens_with_paper_betas() {
        let t = Thresholds::new(0.4, 0.6);
        let adj = t.adjusted(Betas::PAPER_NOMINAL);
        assert!(adj.thr0 < t.thr0);
        assert!(adj.thr1 > t.thr1);
        // A prediction previously stable 0 becomes unstable after tightening.
        assert_eq!(t.classify(0.35), StabilityClass::Stable0);
        assert_eq!(adj.classify(0.35), StabilityClass::Unstable);
    }

    #[test]
    fn most_conservative_combination() {
        let a = Betas::new(0.8, 1.05);
        let b = Betas::new(0.9, 1.10);
        let c = a.most_conservative(b);
        assert!((c.beta0 - 0.8).abs() < 1e-12);
        assert!((c.beta1 - 1.10).abs() < 1e-12);
    }

    #[test]
    fn fit_betas_tightens_until_clean() {
        let t = Thresholds::new(0.4, 0.6);
        // One troublemaker: predicted 0.30 (< 0.99·0.4) but measured unstable.
        let validation = vec![
            (0.10, true, false),
            (0.30, false, false), // violation until β₀·0.4 ≤ 0.30 → β₀ ≤ 0.75
            (0.50, false, false),
            (0.90, false, true),
        ];
        let betas = fit_betas(t, &validation).unwrap();
        assert!(betas.beta0 <= 0.75 + 1e-9, "β₀ = {}", betas.beta0);
        // After fitting, no stable classification is wrong.
        let adj = t.adjusted(betas);
        for &(pred, s0, s1) in &validation {
            match adj.classify(pred) {
                StabilityClass::Stable0 => assert!(s0),
                StabilityClass::Stable1 => assert!(s1),
                StabilityClass::Unstable => {}
            }
        }
    }

    #[test]
    fn fit_betas_identity_when_already_clean() {
        let t = Thresholds::new(0.4, 0.6);
        let validation = vec![(0.1, true, false), (0.9, false, true), (0.5, false, false)];
        let betas = fit_betas(t, &validation).unwrap();
        assert!((betas.beta0 - 0.99).abs() < 1e-9);
        assert!((betas.beta1 - 1.01).abs() < 1e-9);
    }

    #[test]
    fn fit_betas_gives_up_on_hopeless_models() {
        let t = Thresholds::new(0.4, 0.6);
        // A CRP predicted at −100 that measured unstable can never be
        // filtered by shrinking a positive threshold toward zero.
        let validation = vec![(-100.0, false, false)];
        assert!(fit_betas(t, &validation).is_none());
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn thresholds_reject_inverted_band() {
        Thresholds::new(0.7, 0.3);
    }
}
