//! Deterministic, seeded fault injection for the device↔server path.
//!
//! Every fault in a chaos run is drawn from an [`rand::rngs::StdRng`]
//! derived from one [`FaultPlan::seed`], with independent splitmix64 lanes
//! for the response path, the channel and the environment — so the same
//! plan replays bit-identically no matter how the components interleave,
//! and disarming a fault never shifts another lane's stream. Nothing here
//! reads the clock or a global RNG (lint rule L3).
//!
//! The taxonomy (DESIGN.md §10):
//!
//! | fault | layer | knob |
//! |---|---|---|
//! | response bit flips | silicon / device | [`FaultPlan::response_flip_rate`] |
//! | V/T drift beyond the 3×3 grid | environment | [`ConditionJitter`] |
//! | counter saturation | silicon | [`puf_silicon::MeasurementFaults`] |
//! | fuse-read failures | silicon | [`puf_silicon::MeasurementFaults`] |
//! | message drop / corruption / duplication / reorder | channel | [`ChannelFaultPlan`] |
//! | stragglers (timeouts) | channel | [`ChannelFaultPlan::straggle_rate`] |

use crate::auth::Responder;
use crate::session::{Channel, Delivery};
use crate::ProtocolError;
use puf_core::{rngx, Challenge, Condition};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// splitmix64 finalizer — derives statistically independent lane seeds from
/// one plan seed (the standard seeding recommendation for split streams).
fn splitmix64(seed: u64, lane: u64) -> u64 {
    let mut z = seed
        .wrapping_add(lane.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Gaussian voltage/temperature perturbation applied on top of a nominal
/// [`Condition`] — operating excursions beyond the paper's 3×3 grid.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConditionJitter {
    /// Standard deviation of the supply-voltage excursion, in volts.
    pub sigma_vdd: f64,
    /// Standard deviation of the temperature excursion, in °C.
    pub sigma_temp: f64,
}

impl ConditionJitter {
    /// No jitter.
    pub const NONE: Self = Self {
        sigma_vdd: 0.0,
        sigma_temp: 0.0,
    };

    /// Whether both excursions are disabled.
    pub fn is_none(&self) -> bool {
        self.sigma_vdd <= 0.0 && self.sigma_temp <= 0.0
    }
}

/// Message-path fault rates, each the per-message probability of the event.
/// Events are drawn in a fixed order (drop, straggle, duplicate, reorder,
/// corrupt) and a draw is taken only when its rate is armed, so disarming
/// one fault never shifts the others' streams.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChannelFaultPlan {
    /// Message lost entirely.
    pub drop_rate: f64,
    /// Message arrives past the server's deadline (timeout).
    pub straggle_rate: f64,
    /// Message delivered twice; the session's lockstep sequence numbering
    /// absorbs the duplicate, so only the `faults.channel.duplicates`
    /// counter observes it.
    pub duplicate_rate: f64,
    /// Message overtakes a neighbour in flight; reassembly absorbs it, so
    /// only the `faults.channel.reorders` counter observes it.
    pub reorder_rate: f64,
    /// One uniformly chosen response bit flips in flight.
    pub corrupt_rate: f64,
}

impl ChannelFaultPlan {
    /// A perfectly behaved channel.
    pub const NONE: Self = Self {
        drop_rate: 0.0,
        straggle_rate: 0.0,
        duplicate_rate: 0.0,
        reorder_rate: 0.0,
        corrupt_rate: 0.0,
    };

    /// Whether every channel fault is disarmed.
    pub fn is_none(&self) -> bool {
        self.drop_rate <= 0.0
            && self.straggle_rate <= 0.0
            && self.duplicate_rate <= 0.0
            && self.reorder_rate <= 0.0
            && self.corrupt_rate <= 0.0
    }

    fn rates(&self) -> [(f64, &'static str); 5] {
        [
            (self.drop_rate, "channel drop rate"),
            (self.straggle_rate, "channel straggle rate"),
            (self.duplicate_rate, "channel duplicate rate"),
            (self.reorder_rate, "channel reorder rate"),
            (self.corrupt_rate, "channel corrupt rate"),
        ]
    }
}

/// A complete, seeded description of every fault in a chaos scenario.
///
/// Identical plans replay bit-identically; [`FaultPlan::none`] disarms
/// everything.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Master seed; each fault lane derives its own stream from it.
    pub seed: u64,
    /// Per-bit probability that a device response flips before transmission
    /// (brownout on the arbiter sense path).
    pub response_flip_rate: f64,
    /// Environment excursions applied per session.
    pub jitter: ConditionJitter,
    /// Message-path fault rates.
    pub channel: ChannelFaultPlan,
    /// Silicon-level measurement faults (counter saturation, fuse
    /// glitches) forwarded to [`puf_silicon::testbench`].
    pub measurement: puf_silicon::MeasurementFaults,
}

impl FaultPlan {
    /// A plan with every fault disarmed.
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            response_flip_rate: 0.0,
            jitter: ConditionJitter::NONE,
            channel: ChannelFaultPlan::NONE,
            measurement: puf_silicon::MeasurementFaults::NONE,
        }
    }

    /// Sets the per-bit response flip rate (builder style).
    pub fn with_response_flips(mut self, rate: f64) -> Self {
        self.response_flip_rate = rate;
        self.measurement.response_flip_rate = rate;
        self
    }

    /// Sets the V/T jitter sigmas (builder style).
    pub fn with_condition_jitter(mut self, sigma_vdd: f64, sigma_temp: f64) -> Self {
        self.jitter = ConditionJitter {
            sigma_vdd,
            sigma_temp,
        };
        self
    }

    /// Sets the channel fault rates (builder style).
    pub fn with_channel(mut self, channel: ChannelFaultPlan) -> Self {
        self.channel = channel;
        self
    }

    /// Sets the counter saturation cap (builder style).
    pub fn with_counter_cap(mut self, cap: u64) -> Self {
        self.measurement.counter_cap = Some(cap);
        self
    }

    /// Sets the fuse-sense glitch rate (builder style).
    pub fn with_fuse_glitches(mut self, rate: f64) -> Self {
        self.measurement.fuse_glitch_rate = rate;
        self
    }

    /// Checks that every rate is a probability and every sigma is finite
    /// and non-negative.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::InvalidPolicy`] naming the offending knob.
    pub fn validate(&self) -> Result<(), ProtocolError> {
        let rate_checks = [
            (self.response_flip_rate, "response flip rate"),
            (self.measurement.response_flip_rate, "measurement flip rate"),
            (self.measurement.fuse_glitch_rate, "fuse glitch rate"),
        ];
        for (rate, reason) in rate_checks.into_iter().chain(self.channel.rates()) {
            if !(0.0..=1.0).contains(&rate) {
                return Err(ProtocolError::InvalidPolicy { reason });
            }
        }
        for (sigma, reason) in [
            (self.jitter.sigma_vdd, "vdd jitter sigma"),
            (self.jitter.sigma_temp, "temperature jitter sigma"),
        ] {
            if !sigma.is_finite() || sigma < 0.0 {
                return Err(ProtocolError::InvalidPolicy { reason });
            }
        }
        Ok(())
    }

    /// The seeded RNG for lane `lane` — distinct lanes give independent
    /// streams from the same plan seed.
    pub fn lane_rng(&self, lane: u64) -> StdRng {
        StdRng::seed_from_u64(splitmix64(self.seed, lane))
    }

    /// The response-path injector (lane 0).
    pub fn injector(&self) -> FaultInjector {
        FaultInjector {
            rng: self.lane_rng(0),
            flip_rate: self.response_flip_rate,
            jitter: self.jitter,
        }
    }

    /// The message-path channel (lane 1).
    pub fn channel_faults(&self) -> FaultyChannel {
        FaultyChannel {
            rng: self.lane_rng(1),
            plan: self.channel,
        }
    }

    /// The silicon measurement faults, for the `puf_silicon::testbench`
    /// `*_faulty` sweeps (lane 2 is reserved for their RNG).
    pub fn measurement_faults(&self) -> puf_silicon::MeasurementFaults {
        self.measurement
    }

    /// The storage-path fault injector (lane 4; lane 3 is claimed by the
    /// chaos bench's device-glitch wrapper).
    pub fn disk_faults(&self, kind: DiskFaultKind) -> DiskFault {
        DiskFault {
            rng: self.lane_rng(4),
            kind,
        }
    }
}

/// Storage-path failure classes — what a decade of flash and disk actually
/// does to a write-ahead log and its snapshots (DESIGN.md §16).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiskFaultKind {
    /// A crash mid-append: the log loses a random-length suffix of its
    /// final record (the classic torn write).
    TornFinalRecord,
    /// One bit flips somewhere in the stored bytes (media bit rot); the
    /// frame CRC must catch it.
    BitRot,
    /// The snapshot file was only partially written before the crash.
    TruncatedSnapshot,
    /// A retried flush appended the tail bytes a second time (the storage
    /// stack acknowledged the first write late).
    DuplicatedTail,
}

/// What a [`DiskFault`] actually did to the buffers, so recovery tests can
/// assert the salvage report against ground truth.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiskCorruption {
    /// The targeted buffer was empty; nothing was corrupted.
    None,
    /// The log lost its last `dropped` bytes.
    TornFinalRecord {
        /// Bytes removed from the end of the log.
        dropped: usize,
    },
    /// One bit flipped.
    BitRot {
        /// Whether the flip landed in the snapshot (else the log).
        in_snapshot: bool,
        /// Byte offset of the flip.
        byte: usize,
        /// Bit index within the byte.
        bit: u8,
    },
    /// The snapshot kept only its first `kept` bytes.
    TruncatedSnapshot {
        /// Bytes surviving at the front.
        kept: usize,
        /// Bytes lost from the end.
        dropped: usize,
    },
    /// The log's last `duplicated` bytes were appended a second time.
    DuplicatedTail {
        /// Length of the duplicated tail.
        duplicated: usize,
    },
}

/// Deterministic storage-fault injector over raw snapshot/log byte
/// buffers. Built from [`FaultPlan::disk_faults`] (lane 4), so the same
/// plan seed corrupts the same offsets no matter what else the scenario
/// injects.
#[derive(Clone, Debug)]
pub struct DiskFault {
    rng: StdRng,
    kind: DiskFaultKind,
}

impl DiskFault {
    /// The fault class this injector applies.
    pub fn kind(&self) -> DiskFaultKind {
        self.kind
    }

    /// Applies the fault to the stored buffers, returning exactly what was
    /// done. Empty targets degrade to [`DiskCorruption::None`] — a fault
    /// cannot tear a write that never happened.
    pub fn corrupt(&mut self, snapshot: &mut Vec<u8>, wal: &mut Vec<u8>) -> DiskCorruption {
        match self.kind {
            DiskFaultKind::TornFinalRecord => {
                if wal.is_empty() {
                    return DiskCorruption::None;
                }
                // A torn append loses up to one frame's worth of tail.
                let dropped = self.rng.gen_range(1..=wal.len().min(64));
                wal.truncate(wal.len() - dropped);
                puf_telemetry::counter!("faults.disk.torn_writes").inc();
                DiskCorruption::TornFinalRecord { dropped }
            }
            DiskFaultKind::BitRot => {
                let in_snapshot = if snapshot.is_empty() {
                    false
                } else if wal.is_empty() {
                    true
                } else {
                    self.rng.gen::<bool>()
                };
                let target: &mut Vec<u8> = if in_snapshot { snapshot } else { wal };
                if target.is_empty() {
                    return DiskCorruption::None;
                }
                let byte = self.rng.gen_range(0..target.len());
                let bit = self.rng.gen_range(0..8u8);
                if let Some(b) = target.get_mut(byte) {
                    *b ^= 1 << bit;
                }
                puf_telemetry::counter!("faults.disk.bit_rot").inc();
                DiskCorruption::BitRot {
                    in_snapshot,
                    byte,
                    bit,
                }
            }
            DiskFaultKind::TruncatedSnapshot => {
                if snapshot.is_empty() {
                    return DiskCorruption::None;
                }
                let kept = self.rng.gen_range(0..snapshot.len());
                let dropped = snapshot.len() - kept;
                snapshot.truncate(kept);
                puf_telemetry::counter!("faults.disk.truncated_snapshots").inc();
                DiskCorruption::TruncatedSnapshot { kept, dropped }
            }
            DiskFaultKind::DuplicatedTail => {
                if wal.is_empty() {
                    return DiskCorruption::None;
                }
                let duplicated = self.rng.gen_range(1..=wal.len().min(128));
                let tail = wal[wal.len() - duplicated..].to_vec();
                wal.extend_from_slice(&tail);
                puf_telemetry::counter!("faults.disk.duplicated_tails").inc();
                DiskCorruption::DuplicatedTail { duplicated }
            }
        }
    }
}

/// Response-path fault injector: per-bit flips and V/T perturbation, all
/// from one seeded lane.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    rng: StdRng,
    flip_rate: f64,
    jitter: ConditionJitter,
}

impl FaultInjector {
    /// Flips each bit independently with the plan's flip rate, returning
    /// how many flipped. Draws are taken only when the rate is armed, and
    /// each flip increments `faults.response.flips`.
    pub fn flip_bits(&mut self, bits: &mut [bool]) -> u64 {
        if self.flip_rate <= 0.0 {
            return 0;
        }
        let mut flips = 0u64;
        for b in bits.iter_mut() {
            if self.rng.gen::<f64>() < self.flip_rate {
                *b = !*b;
                flips += 1;
            }
        }
        if flips > 0 {
            puf_telemetry::counter!("faults.response.flips").add(flips);
        }
        flips
    }

    /// Perturbs an operating condition by the plan's V/T jitter — drift
    /// beyond the characterized 3×3 grid. Draws are taken only for armed
    /// sigmas; each perturbation increments `faults.condition.perturbations`.
    pub fn perturb(&mut self, cond: Condition) -> Condition {
        if self.jitter.is_none() {
            return cond;
        }
        let vdd = if self.jitter.sigma_vdd > 0.0 {
            rngx::normal(&mut self.rng, cond.vdd, self.jitter.sigma_vdd)
        } else {
            cond.vdd
        };
        let temp_c = if self.jitter.sigma_temp > 0.0 {
            rngx::normal(&mut self.rng, cond.temp_c, self.jitter.sigma_temp)
        } else {
            cond.temp_c
        };
        puf_telemetry::counter!("faults.condition.perturbations").inc();
        Condition { vdd, temp_c }
    }
}

/// A [`Channel`] that drops, delays, duplicates, reorders and corrupts
/// messages per a seeded [`ChannelFaultPlan`].
#[derive(Clone, Debug)]
pub struct FaultyChannel {
    rng: StdRng,
    plan: ChannelFaultPlan,
}

impl Channel for FaultyChannel {
    fn transmit(&mut self, mut response: Vec<bool>) -> Delivery {
        let plan = self.plan;
        if plan.drop_rate > 0.0 && self.rng.gen::<f64>() < plan.drop_rate {
            puf_telemetry::counter!("faults.channel.drops").inc();
            return Delivery::Dropped;
        }
        if plan.straggle_rate > 0.0 && self.rng.gen::<f64>() < plan.straggle_rate {
            puf_telemetry::counter!("faults.channel.stragglers").inc();
            return Delivery::Straggled;
        }
        // Duplicates and reorders are absorbed by the session's lockstep
        // sequence numbering; they are observable only through telemetry.
        if plan.duplicate_rate > 0.0 && self.rng.gen::<f64>() < plan.duplicate_rate {
            puf_telemetry::counter!("faults.channel.duplicates").inc();
        }
        if plan.reorder_rate > 0.0 && self.rng.gen::<f64>() < plan.reorder_rate {
            puf_telemetry::counter!("faults.channel.reorders").inc();
        }
        if plan.corrupt_rate > 0.0
            && !response.is_empty()
            && self.rng.gen::<f64>() < plan.corrupt_rate
        {
            let idx = self.rng.gen_range(0..response.len());
            if let Some(bit) = response.get_mut(idx) {
                *bit = !*bit;
            }
            puf_telemetry::counter!("faults.channel.corruptions").inc();
        }
        Delivery::Delivered(response)
    }
}

/// A [`Responder`] wrapper that routes the inner client's responses through
/// a [`FaultInjector`] — the device-side brownout view of any client.
#[derive(Debug)]
pub struct FaultyResponder<C> {
    inner: C,
    injector: FaultInjector,
}

impl<C: Responder> FaultyResponder<C> {
    /// Wraps `inner` with the plan's response-path injector.
    pub fn new(inner: C, plan: &FaultPlan) -> Self {
        Self {
            inner,
            injector: plan.injector(),
        }
    }

    /// The wrapped client.
    pub fn inner_mut(&mut self) -> &mut C {
        &mut self.inner
    }
}

impl<C: Responder> Responder for FaultyResponder<C> {
    fn respond(&mut self, challenges: &[Challenge]) -> Vec<bool> {
        // Errors surface through try_respond; the infallible path returns
        // an empty frame, which the session treats as a frame mismatch.
        self.try_respond(challenges).unwrap_or_default()
    }

    fn try_respond(&mut self, challenges: &[Challenge]) -> Result<Vec<bool>, ProtocolError> {
        let mut bits = self.inner.try_respond(challenges)?;
        self.injector.flip_bits(&mut bits);
        Ok(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::RandomResponder;
    use crate::session::PerfectChannel;

    #[test]
    fn lane_seeds_are_independent_and_stable() {
        let plan = FaultPlan::none(42);
        let mut a = plan.lane_rng(0);
        let mut b = plan.lane_rng(0);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>(), "same lane must replay");
        let mut c = plan.lane_rng(1);
        assert_ne!(
            plan.lane_rng(0).gen::<u64>(),
            c.gen::<u64>(),
            "distinct lanes must diverge"
        );
    }

    #[test]
    fn validation_names_bad_knobs() {
        assert!(FaultPlan::none(1).validate().is_ok());
        assert!(FaultPlan::none(1)
            .with_response_flips(1.5)
            .validate()
            .is_err());
        assert!(FaultPlan::none(1)
            .with_fuse_glitches(-0.1)
            .validate()
            .is_err());
        assert!(FaultPlan::none(1)
            .with_condition_jitter(f64::NAN, 0.0)
            .validate()
            .is_err());
        let bad_channel = ChannelFaultPlan {
            drop_rate: 2.0,
            ..ChannelFaultPlan::NONE
        };
        assert!(FaultPlan::none(1)
            .with_channel(bad_channel)
            .validate()
            .is_err());
    }

    #[test]
    fn injector_replays_bit_identically() {
        let plan = FaultPlan::none(7).with_response_flips(0.3);
        let mut bits_a = vec![false; 500];
        let mut bits_b = vec![false; 500];
        let flips_a = plan.injector().flip_bits(&mut bits_a);
        let flips_b = plan.injector().flip_bits(&mut bits_b);
        assert_eq!(bits_a, bits_b, "same plan must flip the same bits");
        assert_eq!(flips_a, flips_b);
        assert!(flips_a > 0, "30 % over 500 bits flipped nothing");
    }

    #[test]
    fn disarmed_injector_is_transparent() {
        let plan = FaultPlan::none(8);
        let mut injector = plan.injector();
        let mut bits = vec![true; 100];
        assert_eq!(injector.flip_bits(&mut bits), 0);
        assert!(bits.iter().all(|&b| b));
        let cond = Condition::NOMINAL;
        assert_eq!(injector.perturb(cond), cond);
    }

    #[test]
    fn perturb_moves_conditions() {
        let plan = FaultPlan::none(9).with_condition_jitter(0.05, 10.0);
        let mut injector = plan.injector();
        let jittered = injector.perturb(Condition::NOMINAL);
        assert_ne!(jittered, Condition::NOMINAL);
        // Replay: a fresh injector from the same plan lands identically.
        let again = plan.injector().perturb(Condition::NOMINAL);
        assert_eq!(jittered, again);
    }

    #[test]
    fn channel_faults_fire_at_expected_rates() {
        let plan = FaultPlan::none(10).with_channel(ChannelFaultPlan {
            drop_rate: 0.3,
            straggle_rate: 0.1,
            duplicate_rate: 0.0,
            reorder_rate: 0.0,
            corrupt_rate: 0.2,
        });
        let mut channel = plan.channel_faults();
        let (mut drops, mut straggles, mut corrupt, mut clean) = (0, 0, 0, 0);
        for _ in 0..2_000 {
            match channel.transmit(vec![false; 8]) {
                Delivery::Dropped => drops += 1,
                Delivery::Straggled => straggles += 1,
                Delivery::Delivered(bits) => {
                    if bits.iter().any(|&b| b) {
                        corrupt += 1;
                    } else {
                        clean += 1;
                    }
                }
            }
        }
        assert!((drops as f64 / 2_000.0 - 0.3).abs() < 0.05, "drops {drops}");
        assert!(straggles > 0 && corrupt > 0 && clean > 0);
        // Exactly one bit flips per corruption event.
        let mut channel = plan.channel_faults();
        for _ in 0..500 {
            if let Delivery::Delivered(bits) = channel.transmit(vec![false; 8]) {
                assert!(bits.iter().filter(|&&b| b).count() <= 1);
            }
        }
    }

    #[test]
    fn perfect_channel_plan_is_transparent() {
        let plan = FaultPlan::none(11);
        assert!(plan.channel.is_none());
        let mut channel = plan.channel_faults();
        let payload = vec![true, false, true];
        assert_eq!(
            channel.transmit(payload.clone()),
            Delivery::Delivered(payload.clone())
        );
        assert_eq!(
            PerfectChannel.transmit(payload.clone()),
            Delivery::Delivered(payload)
        );
    }

    #[test]
    fn disk_faults_replay_bit_identically() {
        let plan = FaultPlan::none(21);
        for kind in [
            DiskFaultKind::TornFinalRecord,
            DiskFaultKind::BitRot,
            DiskFaultKind::TruncatedSnapshot,
            DiskFaultKind::DuplicatedTail,
        ] {
            let (mut snap_a, mut wal_a) = (vec![7u8; 100], vec![9u8; 200]);
            let (mut snap_b, mut wal_b) = (vec![7u8; 100], vec![9u8; 200]);
            let done_a = plan.disk_faults(kind).corrupt(&mut snap_a, &mut wal_a);
            let done_b = plan.disk_faults(kind).corrupt(&mut snap_b, &mut wal_b);
            assert_eq!(done_a, done_b, "{kind:?} must replay");
            assert_eq!(snap_a, snap_b);
            assert_eq!(wal_a, wal_b);
            assert_ne!(done_a, DiskCorruption::None, "{kind:?} must act");
        }
    }

    #[test]
    fn disk_fault_shapes_match_their_kind() {
        let plan = FaultPlan::none(22);
        let snapshot: Vec<u8> = (0..=99).collect();
        let wal: Vec<u8> = (0..200).map(|i| (i % 251) as u8).collect();

        let (mut s, mut w) = (snapshot.clone(), wal.clone());
        match plan
            .disk_faults(DiskFaultKind::TornFinalRecord)
            .corrupt(&mut s, &mut w)
        {
            DiskCorruption::TornFinalRecord { dropped } => {
                assert_eq!(w.len(), wal.len() - dropped);
                assert_eq!(w[..], wal[..wal.len() - dropped]);
                assert_eq!(s, snapshot, "torn log must not touch the snapshot");
            }
            other => panic!("unexpected corruption {other:?}"),
        }

        let (mut s, mut w) = (snapshot.clone(), wal.clone());
        match plan
            .disk_faults(DiskFaultKind::BitRot)
            .corrupt(&mut s, &mut w)
        {
            DiskCorruption::BitRot {
                in_snapshot,
                byte,
                bit,
            } => {
                let (orig, now) = if in_snapshot {
                    (&snapshot, &s)
                } else {
                    (&wal, &w)
                };
                assert_eq!(now[byte], orig[byte] ^ (1 << bit));
                let untouched = now
                    .iter()
                    .zip(orig)
                    .enumerate()
                    .all(|(i, (a, b))| i == byte || a == b);
                assert!(untouched, "bit rot flipped more than one byte");
            }
            other => panic!("unexpected corruption {other:?}"),
        }

        let (mut s, mut w) = (snapshot.clone(), wal.clone());
        match plan
            .disk_faults(DiskFaultKind::TruncatedSnapshot)
            .corrupt(&mut s, &mut w)
        {
            DiskCorruption::TruncatedSnapshot { kept, dropped } => {
                assert_eq!(kept + dropped, snapshot.len());
                assert_eq!(s[..], snapshot[..kept]);
                assert_eq!(w, wal, "snapshot truncation must not touch the log");
            }
            other => panic!("unexpected corruption {other:?}"),
        }

        let (mut s, mut w) = (snapshot.clone(), wal.clone());
        match plan
            .disk_faults(DiskFaultKind::DuplicatedTail)
            .corrupt(&mut s, &mut w)
        {
            DiskCorruption::DuplicatedTail { duplicated } => {
                assert_eq!(w.len(), wal.len() + duplicated);
                assert_eq!(w[..wal.len()], wal[..]);
                assert_eq!(w[wal.len()..], wal[wal.len() - duplicated..]);
            }
            other => panic!("unexpected corruption {other:?}"),
        }
    }

    #[test]
    fn disk_faults_on_empty_buffers_are_noops() {
        let plan = FaultPlan::none(23);
        for kind in [
            DiskFaultKind::TornFinalRecord,
            DiskFaultKind::BitRot,
            DiskFaultKind::TruncatedSnapshot,
            DiskFaultKind::DuplicatedTail,
        ] {
            let (mut snap, mut wal) = (Vec::new(), Vec::new());
            assert_eq!(
                plan.disk_faults(kind).corrupt(&mut snap, &mut wal),
                DiskCorruption::None
            );
            assert!(snap.is_empty() && wal.is_empty());
        }
    }

    #[test]
    fn faulty_responder_flips_inner_bits_deterministically() {
        let plan = FaultPlan::none(12).with_response_flips(0.5);
        let challenges: Vec<Challenge> = (0..64)
            .map(|i| Challenge::from_bits(i, 16).unwrap())
            .collect();
        let mut a = FaultyResponder::new(RandomResponder::new(3), &plan);
        let mut b = FaultyResponder::new(RandomResponder::new(3), &plan);
        assert_eq!(a.respond(&challenges), b.respond(&challenges));
        // And differs from the unfaulted inner stream.
        let clean = RandomResponder::new(3).respond(&challenges);
        let faulted = FaultyResponder::new(RandomResponder::new(3), &plan).respond(&challenges);
        assert_ne!(clean, faulted);
        assert_eq!(a.inner_mut().respond(&challenges).len(), 64);
    }
}
