//! Deterministic, seeded fault injection for the device↔server path.
//!
//! Every fault in a chaos run is drawn from an [`rand::rngs::StdRng`]
//! derived from one [`FaultPlan::seed`], with independent splitmix64 lanes
//! for the response path, the channel and the environment — so the same
//! plan replays bit-identically no matter how the components interleave,
//! and disarming a fault never shifts another lane's stream. Nothing here
//! reads the clock or a global RNG (lint rule L3).
//!
//! The taxonomy (DESIGN.md §10):
//!
//! | fault | layer | knob |
//! |---|---|---|
//! | response bit flips | silicon / device | [`FaultPlan::response_flip_rate`] |
//! | V/T drift beyond the 3×3 grid | environment | [`ConditionJitter`] |
//! | counter saturation | silicon | [`puf_silicon::MeasurementFaults`] |
//! | fuse-read failures | silicon | [`puf_silicon::MeasurementFaults`] |
//! | message drop / corruption / duplication / reorder | channel | [`ChannelFaultPlan`] |
//! | stragglers (timeouts) | channel | [`ChannelFaultPlan::straggle_rate`] |

use crate::auth::Responder;
use crate::session::{Channel, Delivery};
use crate::ProtocolError;
use puf_core::{rngx, Challenge, Condition};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// splitmix64 finalizer — derives statistically independent lane seeds from
/// one plan seed (the standard seeding recommendation for split streams).
fn splitmix64(seed: u64, lane: u64) -> u64 {
    let mut z = seed
        .wrapping_add(lane.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Gaussian voltage/temperature perturbation applied on top of a nominal
/// [`Condition`] — operating excursions beyond the paper's 3×3 grid.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConditionJitter {
    /// Standard deviation of the supply-voltage excursion, in volts.
    pub sigma_vdd: f64,
    /// Standard deviation of the temperature excursion, in °C.
    pub sigma_temp: f64,
}

impl ConditionJitter {
    /// No jitter.
    pub const NONE: Self = Self {
        sigma_vdd: 0.0,
        sigma_temp: 0.0,
    };

    /// Whether both excursions are disabled.
    pub fn is_none(&self) -> bool {
        self.sigma_vdd <= 0.0 && self.sigma_temp <= 0.0
    }
}

/// Message-path fault rates, each the per-message probability of the event.
/// Events are drawn in a fixed order (drop, straggle, duplicate, reorder,
/// corrupt) and a draw is taken only when its rate is armed, so disarming
/// one fault never shifts the others' streams.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChannelFaultPlan {
    /// Message lost entirely.
    pub drop_rate: f64,
    /// Message arrives past the server's deadline (timeout).
    pub straggle_rate: f64,
    /// Message delivered twice; the session's lockstep sequence numbering
    /// absorbs the duplicate, so only the `faults.channel.duplicates`
    /// counter observes it.
    pub duplicate_rate: f64,
    /// Message overtakes a neighbour in flight; reassembly absorbs it, so
    /// only the `faults.channel.reorders` counter observes it.
    pub reorder_rate: f64,
    /// One uniformly chosen response bit flips in flight.
    pub corrupt_rate: f64,
}

impl ChannelFaultPlan {
    /// A perfectly behaved channel.
    pub const NONE: Self = Self {
        drop_rate: 0.0,
        straggle_rate: 0.0,
        duplicate_rate: 0.0,
        reorder_rate: 0.0,
        corrupt_rate: 0.0,
    };

    /// Whether every channel fault is disarmed.
    pub fn is_none(&self) -> bool {
        self.drop_rate <= 0.0
            && self.straggle_rate <= 0.0
            && self.duplicate_rate <= 0.0
            && self.reorder_rate <= 0.0
            && self.corrupt_rate <= 0.0
    }

    fn rates(&self) -> [(f64, &'static str); 5] {
        [
            (self.drop_rate, "channel drop rate"),
            (self.straggle_rate, "channel straggle rate"),
            (self.duplicate_rate, "channel duplicate rate"),
            (self.reorder_rate, "channel reorder rate"),
            (self.corrupt_rate, "channel corrupt rate"),
        ]
    }
}

/// A complete, seeded description of every fault in a chaos scenario.
///
/// Identical plans replay bit-identically; [`FaultPlan::none`] disarms
/// everything.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Master seed; each fault lane derives its own stream from it.
    pub seed: u64,
    /// Per-bit probability that a device response flips before transmission
    /// (brownout on the arbiter sense path).
    pub response_flip_rate: f64,
    /// Environment excursions applied per session.
    pub jitter: ConditionJitter,
    /// Message-path fault rates.
    pub channel: ChannelFaultPlan,
    /// Silicon-level measurement faults (counter saturation, fuse
    /// glitches) forwarded to [`puf_silicon::testbench`].
    pub measurement: puf_silicon::MeasurementFaults,
}

impl FaultPlan {
    /// A plan with every fault disarmed.
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            response_flip_rate: 0.0,
            jitter: ConditionJitter::NONE,
            channel: ChannelFaultPlan::NONE,
            measurement: puf_silicon::MeasurementFaults::NONE,
        }
    }

    /// Sets the per-bit response flip rate (builder style).
    pub fn with_response_flips(mut self, rate: f64) -> Self {
        self.response_flip_rate = rate;
        self.measurement.response_flip_rate = rate;
        self
    }

    /// Sets the V/T jitter sigmas (builder style).
    pub fn with_condition_jitter(mut self, sigma_vdd: f64, sigma_temp: f64) -> Self {
        self.jitter = ConditionJitter {
            sigma_vdd,
            sigma_temp,
        };
        self
    }

    /// Sets the channel fault rates (builder style).
    pub fn with_channel(mut self, channel: ChannelFaultPlan) -> Self {
        self.channel = channel;
        self
    }

    /// Sets the counter saturation cap (builder style).
    pub fn with_counter_cap(mut self, cap: u64) -> Self {
        self.measurement.counter_cap = Some(cap);
        self
    }

    /// Sets the fuse-sense glitch rate (builder style).
    pub fn with_fuse_glitches(mut self, rate: f64) -> Self {
        self.measurement.fuse_glitch_rate = rate;
        self
    }

    /// Checks that every rate is a probability and every sigma is finite
    /// and non-negative.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::InvalidPolicy`] naming the offending knob.
    pub fn validate(&self) -> Result<(), ProtocolError> {
        let rate_checks = [
            (self.response_flip_rate, "response flip rate"),
            (self.measurement.response_flip_rate, "measurement flip rate"),
            (self.measurement.fuse_glitch_rate, "fuse glitch rate"),
        ];
        for (rate, reason) in rate_checks.into_iter().chain(self.channel.rates()) {
            if !(0.0..=1.0).contains(&rate) {
                return Err(ProtocolError::InvalidPolicy { reason });
            }
        }
        for (sigma, reason) in [
            (self.jitter.sigma_vdd, "vdd jitter sigma"),
            (self.jitter.sigma_temp, "temperature jitter sigma"),
        ] {
            if !sigma.is_finite() || sigma < 0.0 {
                return Err(ProtocolError::InvalidPolicy { reason });
            }
        }
        Ok(())
    }

    /// The seeded RNG for lane `lane` — distinct lanes give independent
    /// streams from the same plan seed.
    pub fn lane_rng(&self, lane: u64) -> StdRng {
        StdRng::seed_from_u64(splitmix64(self.seed, lane))
    }

    /// The response-path injector (lane 0).
    pub fn injector(&self) -> FaultInjector {
        FaultInjector {
            rng: self.lane_rng(0),
            flip_rate: self.response_flip_rate,
            jitter: self.jitter,
        }
    }

    /// The message-path channel (lane 1).
    pub fn channel_faults(&self) -> FaultyChannel {
        FaultyChannel {
            rng: self.lane_rng(1),
            plan: self.channel,
        }
    }

    /// The silicon measurement faults, for the `puf_silicon::testbench`
    /// `*_faulty` sweeps (lane 2 is reserved for their RNG).
    pub fn measurement_faults(&self) -> puf_silicon::MeasurementFaults {
        self.measurement
    }
}

/// Response-path fault injector: per-bit flips and V/T perturbation, all
/// from one seeded lane.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    rng: StdRng,
    flip_rate: f64,
    jitter: ConditionJitter,
}

impl FaultInjector {
    /// Flips each bit independently with the plan's flip rate, returning
    /// how many flipped. Draws are taken only when the rate is armed, and
    /// each flip increments `faults.response.flips`.
    pub fn flip_bits(&mut self, bits: &mut [bool]) -> u64 {
        if self.flip_rate <= 0.0 {
            return 0;
        }
        let mut flips = 0u64;
        for b in bits.iter_mut() {
            if self.rng.gen::<f64>() < self.flip_rate {
                *b = !*b;
                flips += 1;
            }
        }
        if flips > 0 {
            puf_telemetry::counter!("faults.response.flips").add(flips);
        }
        flips
    }

    /// Perturbs an operating condition by the plan's V/T jitter — drift
    /// beyond the characterized 3×3 grid. Draws are taken only for armed
    /// sigmas; each perturbation increments `faults.condition.perturbations`.
    pub fn perturb(&mut self, cond: Condition) -> Condition {
        if self.jitter.is_none() {
            return cond;
        }
        let vdd = if self.jitter.sigma_vdd > 0.0 {
            rngx::normal(&mut self.rng, cond.vdd, self.jitter.sigma_vdd)
        } else {
            cond.vdd
        };
        let temp_c = if self.jitter.sigma_temp > 0.0 {
            rngx::normal(&mut self.rng, cond.temp_c, self.jitter.sigma_temp)
        } else {
            cond.temp_c
        };
        puf_telemetry::counter!("faults.condition.perturbations").inc();
        Condition { vdd, temp_c }
    }
}

/// A [`Channel`] that drops, delays, duplicates, reorders and corrupts
/// messages per a seeded [`ChannelFaultPlan`].
#[derive(Clone, Debug)]
pub struct FaultyChannel {
    rng: StdRng,
    plan: ChannelFaultPlan,
}

impl Channel for FaultyChannel {
    fn transmit(&mut self, mut response: Vec<bool>) -> Delivery {
        let plan = self.plan;
        if plan.drop_rate > 0.0 && self.rng.gen::<f64>() < plan.drop_rate {
            puf_telemetry::counter!("faults.channel.drops").inc();
            return Delivery::Dropped;
        }
        if plan.straggle_rate > 0.0 && self.rng.gen::<f64>() < plan.straggle_rate {
            puf_telemetry::counter!("faults.channel.stragglers").inc();
            return Delivery::Straggled;
        }
        // Duplicates and reorders are absorbed by the session's lockstep
        // sequence numbering; they are observable only through telemetry.
        if plan.duplicate_rate > 0.0 && self.rng.gen::<f64>() < plan.duplicate_rate {
            puf_telemetry::counter!("faults.channel.duplicates").inc();
        }
        if plan.reorder_rate > 0.0 && self.rng.gen::<f64>() < plan.reorder_rate {
            puf_telemetry::counter!("faults.channel.reorders").inc();
        }
        if plan.corrupt_rate > 0.0
            && !response.is_empty()
            && self.rng.gen::<f64>() < plan.corrupt_rate
        {
            let idx = self.rng.gen_range(0..response.len());
            if let Some(bit) = response.get_mut(idx) {
                *bit = !*bit;
            }
            puf_telemetry::counter!("faults.channel.corruptions").inc();
        }
        Delivery::Delivered(response)
    }
}

/// A [`Responder`] wrapper that routes the inner client's responses through
/// a [`FaultInjector`] — the device-side brownout view of any client.
#[derive(Debug)]
pub struct FaultyResponder<C> {
    inner: C,
    injector: FaultInjector,
}

impl<C: Responder> FaultyResponder<C> {
    /// Wraps `inner` with the plan's response-path injector.
    pub fn new(inner: C, plan: &FaultPlan) -> Self {
        Self {
            inner,
            injector: plan.injector(),
        }
    }

    /// The wrapped client.
    pub fn inner_mut(&mut self) -> &mut C {
        &mut self.inner
    }
}

impl<C: Responder> Responder for FaultyResponder<C> {
    fn respond(&mut self, challenges: &[Challenge]) -> Vec<bool> {
        // Errors surface through try_respond; the infallible path returns
        // an empty frame, which the session treats as a frame mismatch.
        self.try_respond(challenges).unwrap_or_default()
    }

    fn try_respond(&mut self, challenges: &[Challenge]) -> Result<Vec<bool>, ProtocolError> {
        let mut bits = self.inner.try_respond(challenges)?;
        self.injector.flip_bits(&mut bits);
        Ok(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::RandomResponder;
    use crate::session::PerfectChannel;

    #[test]
    fn lane_seeds_are_independent_and_stable() {
        let plan = FaultPlan::none(42);
        let mut a = plan.lane_rng(0);
        let mut b = plan.lane_rng(0);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>(), "same lane must replay");
        let mut c = plan.lane_rng(1);
        assert_ne!(
            plan.lane_rng(0).gen::<u64>(),
            c.gen::<u64>(),
            "distinct lanes must diverge"
        );
    }

    #[test]
    fn validation_names_bad_knobs() {
        assert!(FaultPlan::none(1).validate().is_ok());
        assert!(FaultPlan::none(1)
            .with_response_flips(1.5)
            .validate()
            .is_err());
        assert!(FaultPlan::none(1)
            .with_fuse_glitches(-0.1)
            .validate()
            .is_err());
        assert!(FaultPlan::none(1)
            .with_condition_jitter(f64::NAN, 0.0)
            .validate()
            .is_err());
        let bad_channel = ChannelFaultPlan {
            drop_rate: 2.0,
            ..ChannelFaultPlan::NONE
        };
        assert!(FaultPlan::none(1)
            .with_channel(bad_channel)
            .validate()
            .is_err());
    }

    #[test]
    fn injector_replays_bit_identically() {
        let plan = FaultPlan::none(7).with_response_flips(0.3);
        let mut bits_a = vec![false; 500];
        let mut bits_b = vec![false; 500];
        let flips_a = plan.injector().flip_bits(&mut bits_a);
        let flips_b = plan.injector().flip_bits(&mut bits_b);
        assert_eq!(bits_a, bits_b, "same plan must flip the same bits");
        assert_eq!(flips_a, flips_b);
        assert!(flips_a > 0, "30 % over 500 bits flipped nothing");
    }

    #[test]
    fn disarmed_injector_is_transparent() {
        let plan = FaultPlan::none(8);
        let mut injector = plan.injector();
        let mut bits = vec![true; 100];
        assert_eq!(injector.flip_bits(&mut bits), 0);
        assert!(bits.iter().all(|&b| b));
        let cond = Condition::NOMINAL;
        assert_eq!(injector.perturb(cond), cond);
    }

    #[test]
    fn perturb_moves_conditions() {
        let plan = FaultPlan::none(9).with_condition_jitter(0.05, 10.0);
        let mut injector = plan.injector();
        let jittered = injector.perturb(Condition::NOMINAL);
        assert_ne!(jittered, Condition::NOMINAL);
        // Replay: a fresh injector from the same plan lands identically.
        let again = plan.injector().perturb(Condition::NOMINAL);
        assert_eq!(jittered, again);
    }

    #[test]
    fn channel_faults_fire_at_expected_rates() {
        let plan = FaultPlan::none(10).with_channel(ChannelFaultPlan {
            drop_rate: 0.3,
            straggle_rate: 0.1,
            duplicate_rate: 0.0,
            reorder_rate: 0.0,
            corrupt_rate: 0.2,
        });
        let mut channel = plan.channel_faults();
        let (mut drops, mut straggles, mut corrupt, mut clean) = (0, 0, 0, 0);
        for _ in 0..2_000 {
            match channel.transmit(vec![false; 8]) {
                Delivery::Dropped => drops += 1,
                Delivery::Straggled => straggles += 1,
                Delivery::Delivered(bits) => {
                    if bits.iter().any(|&b| b) {
                        corrupt += 1;
                    } else {
                        clean += 1;
                    }
                }
            }
        }
        assert!((drops as f64 / 2_000.0 - 0.3).abs() < 0.05, "drops {drops}");
        assert!(straggles > 0 && corrupt > 0 && clean > 0);
        // Exactly one bit flips per corruption event.
        let mut channel = plan.channel_faults();
        for _ in 0..500 {
            if let Delivery::Delivered(bits) = channel.transmit(vec![false; 8]) {
                assert!(bits.iter().filter(|&&b| b).count() <= 1);
            }
        }
    }

    #[test]
    fn perfect_channel_plan_is_transparent() {
        let plan = FaultPlan::none(11);
        assert!(plan.channel.is_none());
        let mut channel = plan.channel_faults();
        let payload = vec![true, false, true];
        assert_eq!(
            channel.transmit(payload.clone()),
            Delivery::Delivered(payload.clone())
        );
        assert_eq!(
            PerfectChannel.transmit(payload.clone()),
            Delivery::Delivered(payload)
        );
    }

    #[test]
    fn faulty_responder_flips_inner_bits_deterministically() {
        let plan = FaultPlan::none(12).with_response_flips(0.5);
        let challenges: Vec<Challenge> = (0..64)
            .map(|i| Challenge::from_bits(i, 16).unwrap())
            .collect();
        let mut a = FaultyResponder::new(RandomResponder::new(3), &plan);
        let mut b = FaultyResponder::new(RandomResponder::new(3), &plan);
        assert_eq!(a.respond(&challenges), b.respond(&challenges));
        // And differs from the unfaulted inner stream.
        let clean = RandomResponder::new(3).respond(&challenges);
        let faulted = FaultyResponder::new(RandomResponder::new(3), &plan).respond(&challenges);
        assert_ne!(clean, faulted);
        assert_eq!(a.inner_mut().respond(&challenges).len(), 64);
    }
}
