//! Resilient authentication sessions: retry, lockout and graceful
//! degradation on top of the one-shot [`Server`] verification round.
//!
//! The paper's Fig. 7 protocol is a single round: select predicted-stable
//! challenges, sample the chip once, accept on zero Hamming distance. Real
//! deployments see flipped bits from brownouts, saturated counters and
//! corrupted frames — and a single flip rejects a legitimate chip. This
//! module turns the one-shot round into a *session* state machine:
//!
//! - **Bounded retries** — a failed round is retried up to
//!   [`SessionPolicy::max_retries`] times, and every retry draws *fresh*
//!   predicted-stable challenges through
//!   [`Server::select_challenges_excluding`]; a failed challenge set is
//!   never re-exposed (re-sending it would hand an eavesdropper repeated
//!   observations of the same CRPs — the chosen-challenge harvesting risk).
//! - **Deterministic backoff bookkeeping** — retries accrue exponential
//!   backoff *ticks* (`base · 2^(attempt−1)`, capped); the session never
//!   sleeps, it records the schedule so callers and tests stay
//!   deterministic.
//! - **Lockout** — each chip carries a consecutive-failure counter that
//!   only a clean acceptance clears. At
//!   [`SessionPolicy::lockout_threshold`] the chip locks out and the server
//!   refuses to issue further challenges until [`SessionManager::reinstate`]
//!   is called. Transport failures (drops, stragglers, glitched
//!   measurements) consume retry budget but do **not** advance the counter:
//!   they carry no evidence about who is responding.
//! - **Graceful degradation** — when every retry fails under the strict
//!   zero-Hamming-distance policy, an optional
//!   [`AuthPolicy::MaxHammingFraction`] fallback re-judges the *last
//!   verified* round. Passing the fallback yields an explicit
//!   [`SessionOutcome::Degraded`] that flags the chip for re-enrollment —
//!   security is never weakened silently.
//!
//! Every transition increments a `protocol.session.*` telemetry counter
//! (see the README's observability table).

use crate::auth::{AuthOutcome, AuthPolicy, Responder};
use crate::server::{ExclusionSet, SelectedChallenge, Server};
use crate::ProtocolError;
use rand::Rng;
use std::collections::BTreeMap;
use std::fmt;

/// How a transport-level exchange failed (no judgement was possible).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransportFailureKind {
    /// The message never arrived.
    Dropped,
    /// The device straggled past the response deadline.
    Straggled,
    /// The frame arrived with the wrong number of response bits.
    FrameMismatch,
    /// The device's measurement path glitched transiently (e.g. a fuse
    /// sense failure) and produced no responses.
    MeasurementGlitch,
}

impl fmt::Display for TransportFailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportFailureKind::Dropped => write!(f, "message dropped"),
            TransportFailureKind::Straggled => write!(f, "device straggled past the deadline"),
            TransportFailureKind::FrameMismatch => write!(f, "frame carried a wrong bit count"),
            TransportFailureKind::MeasurementGlitch => {
                write!(f, "device measurement glitched transiently")
            }
        }
    }
}

/// What a channel did to one response message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Delivery {
    /// The payload arrived (possibly corrupted in flight).
    Delivered(Vec<bool>),
    /// The message was lost.
    Dropped,
    /// The message arrived after the server's deadline — a straggler, which
    /// the server treats exactly like a timeout.
    Straggled,
}

/// The device→server response path. Implementations may drop, corrupt,
/// duplicate, reorder or delay messages; the session layer only observes
/// the resulting [`Delivery`].
pub trait Channel {
    /// Transmits one response frame.
    fn transmit(&mut self, response: Vec<bool>) -> Delivery;
}

/// A lossless, instantaneous channel.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PerfectChannel;

impl Channel for PerfectChannel {
    fn transmit(&mut self, response: Vec<bool>) -> Delivery {
        Delivery::Delivered(response)
    }
}

/// Configuration of the session state machine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SessionPolicy {
    /// Challenges per authentication attempt.
    pub rounds: usize,
    /// Additional attempts after the first (0 = one-shot).
    pub max_retries: u32,
    /// Backoff ticks scheduled before the first retry.
    pub backoff_base_ticks: u64,
    /// Ceiling on the per-retry backoff ticks.
    pub backoff_cap_ticks: u64,
    /// Consecutive failed *verification* rounds before the chip locks out.
    pub lockout_threshold: u32,
    /// The primary acceptance policy (the paper's zero Hamming distance).
    pub primary: AuthPolicy,
    /// Optional degraded-mode fallback, judged on the last verified round
    /// only after every retry failed the primary policy. Accepting through
    /// it yields [`SessionOutcome::Degraded`] and flags re-enrollment.
    pub fallback: Option<AuthPolicy>,
}

impl SessionPolicy {
    /// The paper's strict protocol: one shot, zero Hamming distance, no
    /// fallback, lockout after 3 consecutive failures.
    pub fn strict(rounds: usize) -> Self {
        Self {
            rounds,
            max_retries: 0,
            backoff_base_ticks: 1,
            backoff_cap_ticks: 64,
            lockout_threshold: 3,
            primary: AuthPolicy::ZeroHammingDistance,
            fallback: None,
        }
    }

    /// Production preset: up to 3 retries with exponential backoff, lockout
    /// after 8 consecutive failures, no degraded fallback.
    pub fn resilient(rounds: usize) -> Self {
        Self {
            rounds,
            max_retries: 3,
            backoff_base_ticks: 1,
            backoff_cap_ticks: 64,
            lockout_threshold: 8,
            primary: AuthPolicy::ZeroHammingDistance,
            fallback: None,
        }
    }

    /// [`SessionPolicy::resilient`] plus a degraded-mode ladder: after the
    /// retries are spent, a round within `fallback_fraction` Hamming
    /// fraction is accepted as [`SessionOutcome::Degraded`] and the chip is
    /// flagged for re-enrollment.
    pub fn degraded(rounds: usize, fallback_fraction: f64) -> Self {
        Self {
            fallback: Some(AuthPolicy::MaxHammingFraction(fallback_fraction)),
            ..Self::resilient(rounds)
        }
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::InvalidPolicy`] on zero rounds, a zero lockout
    /// threshold, a backoff cap below the base, or an invalid acceptance
    /// policy.
    pub fn validate(&self) -> Result<(), ProtocolError> {
        if self.rounds == 0 {
            return Err(ProtocolError::InvalidPolicy {
                reason: "session rounds must be positive",
            });
        }
        if self.lockout_threshold == 0 {
            return Err(ProtocolError::InvalidPolicy {
                reason: "lockout threshold must be positive",
            });
        }
        if self.backoff_cap_ticks < self.backoff_base_ticks {
            return Err(ProtocolError::InvalidPolicy {
                reason: "backoff cap must be at least the base",
            });
        }
        self.primary.validate()?;
        if let Some(fallback) = self.fallback {
            fallback.validate()?;
        }
        Ok(())
    }

    /// Backoff ticks scheduled after failed attempt number `attempt`
    /// (1-based): `base · 2^(attempt−1)`, saturating, capped at
    /// [`SessionPolicy::backoff_cap_ticks`].
    pub fn backoff_ticks(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(63);
        let doubled = if shift >= self.backoff_base_ticks.leading_zeros() {
            u64::MAX // the shift would overflow: saturate
        } else {
            self.backoff_base_ticks << shift
        };
        doubled.min(self.backoff_cap_ticks)
    }

    /// Random-draw budget per selection round. Generous — stable yields
    /// below ~0.1 % still terminate — while genuinely exhausted pools
    /// error out. Every session driver (the [`SessionManager`] and the
    /// batched `service` event loop) must use this same budget so their
    /// selection streams stay comparable.
    pub fn select_budget(&self) -> usize {
        self.rounds.saturating_mul(200_000).max(100_000)
    }
}

/// Where a session draws its fresh predicted-stable challenges from.
///
/// The default, [`ServerSource`], is the server's own random-search
/// selection ([`Server::select_challenges_excluding_set`]). The batched
/// authentication service substitutes a pre-screened challenge-universe
/// pool so that a sequential [`SessionManager`] replay can consume the
/// *exact same* challenge stream the batched event loop does — the
/// equivalence harness relies on this hook.
pub trait ChallengeSource {
    /// Selects `count` fresh predicted-stable challenges for `chip_id`,
    /// never returning one whose bit pattern is in `exclude`.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::UnknownChip`] /
    /// [`ProtocolError::ChallengeSelectionExhausted`] as for
    /// [`Server::select_challenges_excluding_set`].
    fn select<R: Rng + ?Sized>(
        &mut self,
        server: &Server,
        chip_id: u32,
        count: usize,
        max_attempts: usize,
        exclude: &ExclusionSet,
        rng: &mut R,
    ) -> Result<Vec<SelectedChallenge>, ProtocolError>;
}

/// The default [`ChallengeSource`]: the server's random stable-challenge
/// search.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerSource;

impl ChallengeSource for ServerSource {
    fn select<R: Rng + ?Sized>(
        &mut self,
        server: &Server,
        chip_id: u32,
        count: usize,
        max_attempts: usize,
        exclude: &ExclusionSet,
        rng: &mut R,
    ) -> Result<Vec<SelectedChallenge>, ProtocolError> {
        server.select_challenges_excluding_set(chip_id, count, max_attempts, exclude, rng)
    }
}

/// Terminal state of one authentication session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionOutcome {
    /// A round passed the primary policy.
    Accepted,
    /// Every retry failed the primary policy but the last verified round
    /// passed the degraded fallback; the chip is flagged for re-enrollment.
    Degraded,
    /// All attempts failed; no fallback applied (or the fallback also
    /// failed).
    Rejected,
    /// The consecutive-failure counter crossed the lockout threshold during
    /// this session.
    LockedOut,
}

impl SessionOutcome {
    /// Whether this outcome grants the client access ([`Accepted`] or the
    /// explicitly flagged [`Degraded`]).
    ///
    /// [`Accepted`]: SessionOutcome::Accepted
    /// [`Degraded`]: SessionOutcome::Degraded
    pub fn grants_access(&self) -> bool {
        matches!(self, SessionOutcome::Accepted | SessionOutcome::Degraded)
    }
}

impl fmt::Display for SessionOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionOutcome::Accepted => write!(f, "accepted"),
            SessionOutcome::Degraded => write!(f, "degraded accept (re-enroll)"),
            SessionOutcome::Rejected => write!(f, "rejected"),
            SessionOutcome::LockedOut => write!(f, "locked out"),
        }
    }
}

/// One transition in a session, in order of occurrence.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SessionEvent {
    /// A fresh-challenge attempt began (1-based).
    AttemptStarted {
        /// Attempt number.
        attempt: u32,
    },
    /// The exchange failed at the transport layer; no judgement happened.
    TransportFailed {
        /// Attempt number.
        attempt: u32,
        /// What went wrong.
        kind: TransportFailureKind,
    },
    /// A verified round failed the primary policy.
    VerificationFailed {
        /// Attempt number.
        attempt: u32,
        /// Mismatching bits in the round.
        mismatches: usize,
    },
    /// Backoff ticks were scheduled before the next attempt.
    BackoffScheduled {
        /// Attempt that just failed.
        attempt: u32,
        /// Ticks scheduled.
        ticks: u64,
    },
    /// A round passed the primary policy.
    Accepted {
        /// Attempt number.
        attempt: u32,
    },
    /// The last verified round passed the degraded fallback.
    DegradedAccept {
        /// Mismatches tolerated by the fallback.
        mismatches: usize,
    },
    /// The chip crossed the lockout threshold.
    LockedOut {
        /// Consecutive failures recorded at lockout.
        consecutive_failures: u32,
    },
}

/// Full account of one session: terminal outcome plus the transition log.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionReport {
    /// Terminal state.
    pub outcome: SessionOutcome,
    /// Attempts consumed (including the final one).
    pub attempts: u32,
    /// Total backoff ticks scheduled across all retries.
    pub backoff_ticks_total: u64,
    /// Distinct challenges issued over the whole session.
    pub challenges_issued: usize,
    /// Whether the session flagged the chip for re-enrollment.
    pub needs_reenrollment: bool,
    /// The judged outcome of the last round that reached verification.
    pub last_verification: Option<AuthOutcome>,
    /// Ordered transition log.
    pub events: Vec<SessionEvent>,
}

/// Per-chip session bookkeeping held by the [`SessionManager`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChipSessionState {
    /// Consecutive failed verification rounds. Only a clean
    /// [`SessionOutcome::Accepted`] resets it — a degraded accept does not
    /// (lockout progress is monotone across failed retries).
    pub consecutive_failures: u32,
    /// Whether the chip is locked out.
    pub locked_out: bool,
    /// Whether a degraded accept flagged the chip for re-enrollment.
    pub needs_reenrollment: bool,
    /// Sessions started for this chip.
    pub sessions: u64,
    /// Sessions that ended in a clean accept.
    pub clean_accepts: u64,
}

/// Drives resilient authentication sessions against a [`Server`].
#[derive(Clone, Debug)]
pub struct SessionManager {
    server: Server,
    policy: SessionPolicy,
    states: BTreeMap<u32, ChipSessionState>,
    /// Reusable per-session exclusion scratch: cleared (capacity retained)
    /// at session start instead of re-allocated, so million-session runs
    /// don't churn the allocator on every retry loop.
    exclusion_scratch: ExclusionSet,
}

impl SessionManager {
    /// Wraps a server with a session policy.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::InvalidPolicy`] if the policy is inconsistent.
    pub fn new(server: Server, policy: SessionPolicy) -> Result<Self, ProtocolError> {
        policy.validate()?;
        Ok(Self {
            server,
            policy,
            states: BTreeMap::new(),
            exclusion_scratch: ExclusionSet::new(),
        })
    }

    /// The wrapped server.
    pub fn server(&self) -> &Server {
        &self.server
    }

    /// The session policy.
    pub fn policy(&self) -> &SessionPolicy {
        &self.policy
    }

    /// Per-chip session state, if the chip has ever started a session.
    pub fn state(&self, chip_id: u32) -> Option<&ChipSessionState> {
        self.states.get(&chip_id)
    }

    /// All per-chip session states, in ascending chip-id order.
    pub fn states(&self) -> impl Iterator<Item = (u32, &ChipSessionState)> + '_ {
        self.states.iter().map(|(&id, s)| (id, s))
    }

    /// Restores one chip's session state wholesale — the recovery path:
    /// [`crate::durable::DurableState`] rebuilds a manager from its
    /// replayed records and then reinstalls each chip's ladder state here.
    /// Not for normal operation; the state machine owns these fields.
    pub fn restore_chip_state(&mut self, chip_id: u32, state: ChipSessionState) {
        self.states.insert(chip_id, state);
    }

    /// Registers a brand-new chip with the wrapped server and drops any
    /// stale ladder state under the same id. Unlike
    /// [`SessionManager::reenroll_chip`] this is first-contact enrollment:
    /// the disaster-recovery path re-admitting a chip whose record was
    /// lost with a corrupted snapshot.
    pub fn register_chip(&mut self, record: crate::enrollment::EnrolledChip) {
        self.states.remove(&record.chip_id);
        self.server.register(record);
    }

    /// Whether the chip is currently locked out.
    pub fn is_locked_out(&self, chip_id: u32) -> bool {
        self.states.get(&chip_id).is_some_and(|s| s.locked_out)
    }

    /// Administratively clears a lockout (e.g. after out-of-band vetting)
    /// and resets the consecutive-failure counter. This is the **only**
    /// path out of lockout.
    pub fn reinstate(&mut self, chip_id: u32) {
        if let Some(state) = self.states.get_mut(&chip_id) {
            state.locked_out = false;
            state.consecutive_failures = 0;
            puf_telemetry::counter!("protocol.session.reinstates").inc();
        }
    }

    /// Consumes the `needs_reenrollment` flag: swaps in a freshly measured
    /// enrollment record ([`Server::reenroll_chip`]), clears the flag, and
    /// reinstates the chip (lockout lifted, consecutive failures reset).
    /// The sessions/clean-accept counters are history and survive.
    ///
    /// Returns the superseded record so operators can archive the stale
    /// delay model.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::UnknownChip`] if the chip was never registered —
    /// re-enrollment never enrolls a chip with no history.
    pub fn reenroll_chip(
        &mut self,
        record: crate::enrollment::EnrolledChip,
    ) -> Result<crate::enrollment::EnrolledChip, ProtocolError> {
        let chip_id = record.chip_id;
        let previous = self.server.reenroll_chip(record)?;
        let state = self.states.entry(chip_id).or_default();
        state.needs_reenrollment = false;
        state.locked_out = false;
        state.consecutive_failures = 0;
        puf_telemetry::counter!("protocol.session.reenrolls").inc();
        Ok(previous)
    }

    /// Runs one full authentication session: up to `1 + max_retries`
    /// attempts, each over fresh predicted-stable challenges, with lockout
    /// and degraded-fallback bookkeeping. See the module docs for the state
    /// machine.
    ///
    /// # Errors
    ///
    /// - [`ProtocolError::ChipLockedOut`] if the chip is locked out on
    ///   entry (no challenges are exposed to a locked-out requester).
    /// - [`ProtocolError::UnknownChip`] /
    ///   [`ProtocolError::ChallengeSelectionExhausted`] from challenge
    ///   selection.
    /// - Non-transient responder errors (e.g. a stage mismatch) propagate;
    ///   transient measurement glitches are treated as transport failures
    ///   and retried.
    pub fn authenticate<R, C, Ch>(
        &mut self,
        chip_id: u32,
        client: &mut C,
        channel: &mut Ch,
        rng: &mut R,
    ) -> Result<SessionReport, ProtocolError>
    where
        R: Rng + ?Sized,
        C: Responder,
        Ch: Channel,
    {
        self.authenticate_with_source(chip_id, client, channel, &mut ServerSource, rng)
    }

    /// [`SessionManager::authenticate`] drawing challenges through an
    /// explicit [`ChallengeSource`] instead of the server's random search.
    /// The state machine — retries, backoff bookkeeping, lockout, degraded
    /// fallback — is identical; only the challenge supply differs. The
    /// batched-service equivalence harness uses this to replay the exact
    /// challenge-universe pool the event loop selects from.
    ///
    /// # Errors
    ///
    /// As [`SessionManager::authenticate`].
    pub fn authenticate_with_source<R, C, Ch, S>(
        &mut self,
        chip_id: u32,
        client: &mut C,
        channel: &mut Ch,
        source: &mut S,
        rng: &mut R,
    ) -> Result<SessionReport, ProtocolError>
    where
        R: Rng + ?Sized,
        C: Responder,
        Ch: Channel,
        S: ChallengeSource,
    {
        let state = self.states.entry(chip_id).or_default();
        if state.locked_out {
            puf_telemetry::counter!("protocol.session.lockout_hits").inc();
            return Err(ProtocolError::ChipLockedOut {
                chip_id,
                consecutive_failures: state.consecutive_failures,
            });
        }
        state.sessions += 1;
        puf_telemetry::counter!("protocol.session.starts").inc();
        let _span = puf_telemetry::span!("protocol.session.duration");
        let _trace = puf_telemetry::trace_span!("protocol.session.authenticate");

        let mut events = Vec::new();
        // Reuse the manager's scratch exclusion buffer: same semantics as a
        // fresh set (cleared on entry), without per-session allocation.
        let mut exclude = std::mem::take(&mut self.exclusion_scratch);
        exclude.clear();
        let mut backoff_ticks_total = 0u64;
        let mut last_verification: Option<AuthOutcome> = None;
        let total_attempts = self.policy.max_retries.saturating_add(1);
        let select_budget = self.policy.select_budget();

        let mut attempt = 0u32;
        let outcome = loop {
            attempt += 1;
            events.push(SessionEvent::AttemptStarted { attempt });
            puf_telemetry::counter!("protocol.session.attempts").inc();
            let _attempt = puf_telemetry::trace_span!("protocol.session.attempt");

            // Fresh challenges: everything issued earlier in this session
            // is excluded, so a failed set is never re-exposed.
            let selected = match source.select(
                &self.server,
                chip_id,
                self.policy.rounds,
                select_budget,
                &exclude,
                rng,
            ) {
                Ok(selected) => selected,
                Err(e) => {
                    self.exclusion_scratch = exclude;
                    return Err(e);
                }
            };
            for s in &selected {
                exclude.insert(s.challenge.bits());
            }
            puf_telemetry::counter!("protocol.session.fresh_challenges").add(selected.len() as u64);

            let challenges: Vec<_> = selected.iter().map(|s| s.challenge).collect();
            let transport_failure = match client.try_respond(&challenges) {
                Ok(response) => match channel.transmit(response) {
                    Delivery::Delivered(bits) if bits.len() == challenges.len() => {
                        let mismatches = selected
                            .iter()
                            .zip(&bits)
                            .filter(|(s, &r)| s.expected != r)
                            .count();
                        let judged = AuthOutcome::try_judge(
                            self.policy.primary,
                            challenges.len(),
                            mismatches,
                        )?;
                        last_verification = Some(judged);
                        if judged.approved {
                            events.push(SessionEvent::Accepted { attempt });
                            puf_telemetry::counter!("protocol.session.accepts").inc();
                            puf_telemetry::trace_instant!("protocol.session.accept");
                            break SessionOutcome::Accepted;
                        }
                        events.push(SessionEvent::VerificationFailed {
                            attempt,
                            mismatches,
                        });
                        puf_telemetry::counter!("protocol.session.verify_failures").inc();
                        puf_telemetry::trace_instant!("protocol.session.verify_failure");
                        // Verification failure is evidence against the
                        // responder: advance the lockout counter now, so a
                        // retry storm cannot outrun the threshold.
                        let failures = {
                            let state = self.states.entry(chip_id).or_default();
                            state.consecutive_failures =
                                state.consecutive_failures.saturating_add(1);
                            state.consecutive_failures
                        };
                        if failures >= self.policy.lockout_threshold {
                            if let Some(state) = self.states.get_mut(&chip_id) {
                                state.locked_out = true;
                            }
                            events.push(SessionEvent::LockedOut {
                                consecutive_failures: failures,
                            });
                            puf_telemetry::counter!("protocol.session.lockouts").inc();
                            puf_telemetry::trace_instant!("protocol.session.lockout");
                            break SessionOutcome::LockedOut;
                        }
                        None
                    }
                    Delivery::Delivered(_) => Some(TransportFailureKind::FrameMismatch),
                    Delivery::Dropped => Some(TransportFailureKind::Dropped),
                    Delivery::Straggled => Some(TransportFailureKind::Straggled),
                },
                // A transient fuse-sense glitch produced no responses: the
                // exchange failed before any evidence arrived. Everything
                // else (stage mismatch, blown fuses, …) is permanent.
                Err(ProtocolError::Silicon(puf_silicon::SiliconError::FuseReadFailure)) => {
                    Some(TransportFailureKind::MeasurementGlitch)
                }
                Err(e) => {
                    self.exclusion_scratch = exclude;
                    return Err(e);
                }
            };

            if let Some(kind) = transport_failure {
                events.push(SessionEvent::TransportFailed { attempt, kind });
                puf_telemetry::counter!("protocol.session.transport_failures").inc();
                puf_telemetry::trace_instant!("protocol.session.transport_failure");
            }

            if attempt >= total_attempts {
                // Attempts exhausted: try the degraded ladder on the last
                // round that actually reached verification.
                if let (Some(fallback), Some(last)) = (self.policy.fallback, last_verification) {
                    if fallback.try_accepts(last.challenges_used, last.mismatches)? {
                        events.push(SessionEvent::DegradedAccept {
                            mismatches: last.mismatches,
                        });
                        puf_telemetry::counter!("protocol.session.degraded").inc();
                        puf_telemetry::trace_instant!("protocol.session.degraded_accept");
                        break SessionOutcome::Degraded;
                    }
                }
                puf_telemetry::counter!("protocol.session.rejects").inc();
                puf_telemetry::trace_instant!("protocol.session.reject");
                break SessionOutcome::Rejected;
            }

            let ticks = self.policy.backoff_ticks(attempt);
            backoff_ticks_total = backoff_ticks_total.saturating_add(ticks);
            events.push(SessionEvent::BackoffScheduled { attempt, ticks });
            puf_telemetry::counter!("protocol.session.retries").inc();
            puf_telemetry::counter!("protocol.session.backoff_ticks").add(ticks);
            puf_telemetry::trace_instant!("protocol.session.backoff");
        };

        let state = self.states.entry(chip_id).or_default();
        match outcome {
            SessionOutcome::Accepted => {
                // Only a clean accept clears lockout progress.
                state.consecutive_failures = 0;
                state.clean_accepts += 1;
            }
            SessionOutcome::Degraded => {
                state.needs_reenrollment = true;
            }
            SessionOutcome::Rejected | SessionOutcome::LockedOut => {}
        }
        let challenges_issued = exclude.len();
        self.exclusion_scratch = exclude;
        Ok(SessionReport {
            outcome,
            attempts: attempt,
            backoff_ticks_total,
            challenges_issued,
            needs_reenrollment: state.needs_reenrollment,
            last_verification,
            events,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::{ChipResponder, RandomResponder};
    use crate::enrollment::{enroll, EnrollmentConfig};
    use puf_core::Condition;
    use puf_silicon::{Chip, ChipConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(seed: u64) -> (Chip, Server, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let chip = Chip::fabricate(3, &ChipConfig::small(), &mut rng);
        let enrolled = enroll(&chip, &EnrollmentConfig::small(2), &mut rng).unwrap();
        let mut server = Server::new();
        server.register(enrolled);
        (chip, server, rng)
    }

    #[test]
    fn policy_presets_validate() {
        assert!(SessionPolicy::strict(20).validate().is_ok());
        assert!(SessionPolicy::resilient(20).validate().is_ok());
        assert!(SessionPolicy::degraded(20, 0.1).validate().is_ok());
        assert!(matches!(
            SessionPolicy::strict(0).validate(),
            Err(ProtocolError::InvalidPolicy { .. })
        ));
        assert!(matches!(
            SessionPolicy::degraded(20, 1.5).validate(),
            Err(ProtocolError::InvalidPolicy { .. })
        ));
        let bad = SessionPolicy {
            lockout_threshold: 0,
            ..SessionPolicy::strict(20)
        };
        assert!(bad.validate().is_err());
        let bad = SessionPolicy {
            backoff_base_ticks: 100,
            backoff_cap_ticks: 10,
            ..SessionPolicy::strict(20)
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = SessionPolicy {
            backoff_base_ticks: 2,
            backoff_cap_ticks: 10,
            ..SessionPolicy::resilient(20)
        };
        assert_eq!(policy.backoff_ticks(1), 2);
        assert_eq!(policy.backoff_ticks(2), 4);
        assert_eq!(policy.backoff_ticks(3), 8);
        assert_eq!(policy.backoff_ticks(4), 10);
        assert_eq!(policy.backoff_ticks(200), 10, "shift must clamp, not UB");
    }

    #[test]
    fn genuine_chip_accepts_cleanly() {
        let (chip, server, mut rng) = setup(1);
        let mut mgr = SessionManager::new(server, SessionPolicy::resilient(20)).unwrap();
        let mut client = ChipResponder::new(&chip, 2, Condition::NOMINAL, 5);
        let report = mgr
            .authenticate(3, &mut client, &mut PerfectChannel, &mut rng)
            .unwrap();
        assert_eq!(report.outcome, SessionOutcome::Accepted);
        assert!(report.outcome.grants_access());
        assert!(!report.needs_reenrollment);
        assert_eq!(report.attempts, 1);
        assert_eq!(report.backoff_ticks_total, 0);
        assert_eq!(mgr.state(3).unwrap().consecutive_failures, 0);
        assert_eq!(mgr.state(3).unwrap().clean_accepts, 1);
    }

    #[test]
    fn impostor_locks_out_and_stays_locked() {
        let (_, server, mut rng) = setup(2);
        let policy = SessionPolicy {
            lockout_threshold: 4,
            ..SessionPolicy::resilient(10)
        };
        let mut mgr = SessionManager::new(server, policy).unwrap();
        let mut impostor = RandomResponder::new(9);
        let report = mgr
            .authenticate(3, &mut impostor, &mut PerfectChannel, &mut rng)
            .unwrap();
        // 4 attempts, each a verification failure: locked out in-session.
        assert_eq!(report.outcome, SessionOutcome::LockedOut);
        assert!(!report.outcome.grants_access());
        assert!(mgr.is_locked_out(3));
        // A locked-out chip gets no challenges at all.
        assert!(matches!(
            mgr.authenticate(3, &mut impostor, &mut PerfectChannel, &mut rng),
            Err(ProtocolError::ChipLockedOut { chip_id: 3, .. })
        ));
        // Reinstatement is the only way back.
        mgr.reinstate(3);
        assert!(!mgr.is_locked_out(3));
        assert_eq!(mgr.state(3).unwrap().consecutive_failures, 0);
    }

    #[test]
    fn failure_counter_is_monotone_across_sessions() {
        let (_, server, mut rng) = setup(3);
        let policy = SessionPolicy {
            max_retries: 1,
            lockout_threshold: 10,
            ..SessionPolicy::resilient(10)
        };
        let mut mgr = SessionManager::new(server, policy).unwrap();
        let mut impostor = RandomResponder::new(10);
        let mut last = 0;
        for _ in 0..3 {
            let report = mgr
                .authenticate(3, &mut impostor, &mut PerfectChannel, &mut rng)
                .unwrap();
            assert_eq!(report.outcome, SessionOutcome::Rejected);
            let now = mgr.state(3).unwrap().consecutive_failures;
            assert!(now > last, "failed retries must never reset the counter");
            last = now;
        }
        assert_eq!(last, 6, "2 verification failures per session × 3");
    }

    #[test]
    fn retries_draw_fresh_challenges() {
        let (_, server, mut rng) = setup(4);
        let policy = SessionPolicy {
            max_retries: 3,
            lockout_threshold: 100,
            ..SessionPolicy::resilient(15)
        };
        let mut mgr = SessionManager::new(server, policy).unwrap();
        let mut impostor = RandomResponder::new(11);
        let report = mgr
            .authenticate(3, &mut impostor, &mut PerfectChannel, &mut rng)
            .unwrap();
        assert_eq!(report.attempts, 4);
        // 4 attempts × 15 rounds; sets across attempts are disjoint by
        // construction (within one round the server may rarely re-draw).
        assert!(report.challenges_issued > 45);
        assert_eq!(report.backoff_ticks_total, 1 + 2 + 4);
    }

    #[test]
    fn dropped_messages_consume_retries_without_lockout_progress() {
        struct DropAll;
        impl Channel for DropAll {
            fn transmit(&mut self, _: Vec<bool>) -> Delivery {
                Delivery::Dropped
            }
        }
        let (chip, server, mut rng) = setup(5);
        let policy = SessionPolicy {
            max_retries: 2,
            ..SessionPolicy::resilient(10)
        };
        let mut mgr = SessionManager::new(server, policy).unwrap();
        let mut client = ChipResponder::new(&chip, 2, Condition::NOMINAL, 6);
        let report = mgr
            .authenticate(3, &mut client, &mut DropAll, &mut rng)
            .unwrap();
        assert_eq!(report.outcome, SessionOutcome::Rejected);
        assert_eq!(report.attempts, 3);
        assert!(report.last_verification.is_none());
        // Transport failures are not evidence of an impostor.
        assert_eq!(mgr.state(3).unwrap().consecutive_failures, 0);
        assert!(report
            .events
            .iter()
            .any(|e| matches!(e, SessionEvent::TransportFailed { .. })));
    }

    #[test]
    fn frame_mismatch_is_a_transport_failure() {
        struct Truncating;
        impl Channel for Truncating {
            fn transmit(&mut self, mut r: Vec<bool>) -> Delivery {
                r.pop();
                Delivery::Delivered(r)
            }
        }
        let (chip, server, mut rng) = setup(6);
        let mut mgr = SessionManager::new(
            server,
            SessionPolicy {
                max_retries: 1,
                ..SessionPolicy::resilient(10)
            },
        )
        .unwrap();
        let mut client = ChipResponder::new(&chip, 2, Condition::NOMINAL, 7);
        let report = mgr
            .authenticate(3, &mut client, &mut Truncating, &mut rng)
            .unwrap();
        assert_eq!(report.outcome, SessionOutcome::Rejected);
        assert!(report.events.iter().any(|e| matches!(
            e,
            SessionEvent::TransportFailed {
                kind: TransportFailureKind::FrameMismatch,
                ..
            }
        )));
    }

    #[test]
    fn degraded_fallback_flags_reenrollment() {
        // An impostor that mirrors the chip but flips a small fraction of
        // bits: fails zero-HD every time, passes a loose fallback.
        struct NearMiss<'a> {
            inner: ChipResponder<'a>,
            flip_every: usize,
        }
        impl Responder for NearMiss<'_> {
            fn respond(&mut self, challenges: &[puf_core::Challenge]) -> Vec<bool> {
                let mut bits = self.inner.respond(challenges);
                for (i, b) in bits.iter_mut().enumerate() {
                    if i % self.flip_every == 0 {
                        *b = !*b;
                    }
                }
                bits
            }
        }
        let (chip, server, mut rng) = setup(7);
        let policy = SessionPolicy {
            lockout_threshold: 100,
            ..SessionPolicy::degraded(20, 0.25)
        };
        let mut mgr = SessionManager::new(server, policy).unwrap();
        let mut client = NearMiss {
            inner: ChipResponder::new(&chip, 2, Condition::NOMINAL, 8),
            flip_every: 10,
        };
        let report = mgr
            .authenticate(3, &mut client, &mut PerfectChannel, &mut rng)
            .unwrap();
        assert_eq!(report.outcome, SessionOutcome::Degraded);
        assert!(report.outcome.grants_access());
        assert!(report.needs_reenrollment);
        assert!(mgr.state(3).unwrap().needs_reenrollment);
        // Degraded accept does not clear the failure counter.
        assert!(mgr.state(3).unwrap().consecutive_failures > 0);
    }

    #[test]
    fn reenrollment_returns_degraded_chip_to_clean_accepts() {
        // A drifted responder (mirrors the chip, flips every 10th bit)
        // forces a degraded accept, which flags the chip. Re-enrolling with
        // a fresh measurement must clear the flag, reinstate the chip, and
        // let an un-drifted client authenticate cleanly again.
        struct NearMiss<'a> {
            inner: ChipResponder<'a>,
            flip_every: usize,
        }
        impl Responder for NearMiss<'_> {
            fn respond(&mut self, challenges: &[puf_core::Challenge]) -> Vec<bool> {
                let mut bits = self.inner.respond(challenges);
                for (i, b) in bits.iter_mut().enumerate() {
                    if i % self.flip_every == 0 {
                        *b = !*b;
                    }
                }
                bits
            }
        }
        let (chip, server, mut rng) = setup(11);
        let policy = SessionPolicy {
            lockout_threshold: 100,
            ..SessionPolicy::degraded(20, 0.25)
        };
        let mut mgr = SessionManager::new(server, policy).unwrap();
        let mut drifted = NearMiss {
            inner: ChipResponder::new(&chip, 2, Condition::NOMINAL, 15),
            flip_every: 10,
        };
        let report = mgr
            .authenticate(3, &mut drifted, &mut PerfectChannel, &mut rng)
            .unwrap();
        assert_eq!(report.outcome, SessionOutcome::Degraded);
        assert!(mgr.state(3).unwrap().needs_reenrollment);
        assert!(mgr.state(3).unwrap().consecutive_failures > 0);

        // Close the loop: a fresh measurement of the same chip.
        let fresh = enroll(&chip, &EnrollmentConfig::small(2), &mut rng).unwrap();
        let superseded = mgr.reenroll_chip(fresh).unwrap();
        assert_eq!(superseded.chip_id, 3);
        let state = mgr.state(3).unwrap();
        assert!(
            !state.needs_reenrollment,
            "re-enrollment must clear the flag"
        );
        assert!(!state.locked_out);
        assert_eq!(state.consecutive_failures, 0);

        let mut clean = ChipResponder::new(&chip, 2, Condition::NOMINAL, 16);
        let report = mgr
            .authenticate(3, &mut clean, &mut PerfectChannel, &mut rng)
            .unwrap();
        assert_eq!(report.outcome, SessionOutcome::Accepted);
        assert!(!mgr.state(3).unwrap().needs_reenrollment);

        // An unknown chip must never be enrolled through this path.
        let mut stranger = enroll(&chip, &EnrollmentConfig::small(2), &mut rng).unwrap();
        stranger.chip_id = 99;
        assert!(matches!(
            mgr.reenroll_chip(stranger),
            Err(ProtocolError::UnknownChip { chip_id: 99 })
        ));
    }

    #[test]
    fn custom_source_sees_growing_exclusions_and_shared_budget() {
        struct Counting {
            calls: usize,
            exclusion_lens: Vec<usize>,
            budgets: Vec<usize>,
        }
        impl ChallengeSource for Counting {
            fn select<R: Rng + ?Sized>(
                &mut self,
                server: &Server,
                chip_id: u32,
                count: usize,
                max_attempts: usize,
                exclude: &ExclusionSet,
                rng: &mut R,
            ) -> Result<Vec<crate::server::SelectedChallenge>, ProtocolError> {
                self.calls += 1;
                self.exclusion_lens.push(exclude.len());
                self.budgets.push(max_attempts);
                ServerSource.select(server, chip_id, count, max_attempts, exclude, rng)
            }
        }
        let (_, server, mut rng) = setup(9);
        let policy = SessionPolicy {
            max_retries: 1,
            lockout_threshold: 100,
            ..SessionPolicy::resilient(10)
        };
        let budget = policy.select_budget();
        let mut mgr = SessionManager::new(server, policy).unwrap();
        let mut impostor = RandomResponder::new(13);
        let mut source = Counting {
            calls: 0,
            exclusion_lens: Vec::new(),
            budgets: Vec::new(),
        };
        let report = mgr
            .authenticate_with_source(3, &mut impostor, &mut PerfectChannel, &mut source, &mut rng)
            .unwrap();
        assert_eq!(report.outcome, SessionOutcome::Rejected);
        assert_eq!(source.calls, 2, "one call per attempt");
        assert_eq!(
            source.exclusion_lens[0], 0,
            "session starts excluding nothing"
        );
        assert!(
            source.exclusion_lens[1] >= 10,
            "retry must exclude the first round"
        );
        assert_eq!(source.budgets, vec![budget, budget]);
    }

    #[test]
    fn scratch_reuse_keeps_sessions_independent() {
        // Three sessions through one manager: each must start from an empty
        // exclusion set (challenges_issued counts this session only) even
        // though the scratch buffer is recycled.
        let (chip, server, mut rng) = setup(10);
        let mut mgr = SessionManager::new(server, SessionPolicy::resilient(12)).unwrap();
        let mut client = ChipResponder::new(&chip, 2, Condition::NOMINAL, 14);
        for _ in 0..3 {
            let report = mgr
                .authenticate(3, &mut client, &mut PerfectChannel, &mut rng)
                .unwrap();
            assert_eq!(report.outcome, SessionOutcome::Accepted);
            assert_eq!(report.challenges_issued, 12);
        }
    }

    #[test]
    fn unknown_chip_propagates() {
        let (_, server, mut rng) = setup(8);
        let mut mgr = SessionManager::new(server, SessionPolicy::resilient(10)).unwrap();
        let mut client = RandomResponder::new(12);
        assert!(matches!(
            mgr.authenticate(99, &mut client, &mut PerfectChannel, &mut rng),
            Err(ProtocolError::UnknownChip { chip_id: 99 })
        ));
    }
}
