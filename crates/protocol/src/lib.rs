//! # puf-protocol
//!
//! The paper's primary contribution: a model-assisted authentication
//! strategy for wide XOR arbiter PUFs.
//!
//! - [`enrollment`] — fit per-PUF linear delay models from counter soft
//!   responses through the fuse port; derive `Thr(0)`/`Thr(1)` (Fig. 6, §4).
//! - [`threshold`] — three-way {stable 0, unstable, stable 1}
//!   classification and the β tightening scheme (§5).
//! - [`server`] — the server database and the stable-challenge selection
//!   loop (Fig. 7).
//! - [`auth`] — zero-Hamming-distance (and relaxed) acceptance policies and
//!   client responders, including impostors.
//! - [`baselines`] — measurement-based selection (Ref. 1), classic
//!   HD-threshold authentication, and noise-bifurcation label corruption
//!   (Ref. 6) for comparison experiments.
//!
//! ```
//! use puf_protocol::auth::{AuthPolicy, ChipResponder};
//! use puf_protocol::enrollment::{enroll, EnrollmentConfig};
//! use puf_protocol::server::Server;
//! use puf_core::Condition;
//! use puf_silicon::{Chip, ChipConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let mut chip = Chip::fabricate(0, &ChipConfig::small(), &mut rng);
//!
//! // Enrollment (fuses intact), then deploy.
//! let record = enroll(&chip, &EnrollmentConfig::small(2), &mut rng)?;
//! chip.blow_fuses();
//!
//! let mut server = Server::new();
//! server.register(record);
//!
//! // Authentication with the strict zero-Hamming-distance policy.
//! let mut client = ChipResponder::new(&chip, 2, Condition::NOMINAL, 42);
//! let outcome = server.authenticate(0, &mut client, 20, AuthPolicy::ZeroHammingDistance, &mut rng)?;
//! assert!(outcome.approved);
//! # Ok::<(), puf_protocol::ProtocolError>(())
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod attacks;
pub mod auth;
pub mod baselines;
pub mod bifurcation;
pub mod durable;
pub mod enrollment;
pub mod faults;
pub mod keygen;
pub mod lockdown;
pub mod salvage;
pub mod server;
pub mod service;
pub mod session;
pub mod storage;
pub mod threshold;

pub use auth::{AuthOutcome, AuthPolicy, ChipResponder, RandomResponder, Responder};
pub use durable::{recover, DurableEvent, DurableLog, DurableState, RecoveryReport};
pub use enrollment::{enroll, EnrolledChip, EnrolledPuf, EnrollmentConfig};
pub use faults::{ChannelFaultPlan, FaultInjector, FaultPlan, FaultyChannel, FaultyResponder};
pub use server::{ExclusionSet, SelectedChallenge, Server};
pub use service::{
    service_lane, shard_of, warm_chips, AuthService, ChallengeUniverse, PoolSource, ServiceConfig,
    ServiceStats, SessionVerdict, ShardStore, ShiftedChipModel, StoredChip, WarmChip,
};
pub use session::{
    ChallengeSource, Channel, Delivery, PerfectChannel, ServerSource, SessionManager,
    SessionOutcome, SessionPolicy, SessionReport,
};
pub use threshold::{fit_betas, Betas, StabilityClass, Thresholds};

use puf_ml::linalg::NotPositiveDefiniteError;
use puf_silicon::SiliconError;
use std::error::Error as StdError;
use std::fmt;

/// Errors from enrollment and authentication.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ProtocolError {
    /// A chip measurement failed (blown fuses, bad index, stage mismatch).
    Silicon(SiliconError),
    /// The enrollment regression system was singular.
    Fit(NotPositiveDefiniteError),
    /// A member PUF's training data could not produce thresholds (every
    /// measurement saturated the same way).
    DegenerateTraining {
        /// The member PUF index.
        puf: usize,
    },
    /// No β tightening could filter all validation instabilities.
    BetaFitFailed {
        /// The member PUF index.
        puf: usize,
    },
    /// The requested chip id is not in the server database.
    UnknownChip {
        /// The unknown id.
        chip_id: u32,
    },
    /// Random challenge selection could not find enough predicted-stable
    /// challenges within the attempt budget.
    ChallengeSelectionExhausted {
        /// Challenges requested.
        requested: usize,
        /// Challenges found.
        found: usize,
        /// Random draws attempted.
        attempts: usize,
    },
    /// A responder returned the wrong number of bits.
    ResponseCountMismatch {
        /// Bits expected.
        expected: usize,
        /// Bits received.
        actual: usize,
    },
    /// A lockdown-gated interface ran out of authorised CRP budget.
    CrpBudgetExhausted {
        /// Challenges answered before the budget ran out.
        answered: u64,
    },
    /// An authentication round carried zero challenges — nothing to judge.
    EmptyRound,
    /// A policy or session configuration is internally inconsistent (e.g. a
    /// Hamming-fraction bound outside `[0, 1]`, a zero retry budget, or a
    /// fault rate outside `[0, 1]`).
    InvalidPolicy {
        /// What is wrong with the configuration.
        reason: &'static str,
    },
    /// The chip is locked out after too many consecutive failed rounds; the
    /// server refuses to issue further challenges until it is reinstated.
    ChipLockedOut {
        /// The locked-out chip id.
        chip_id: u32,
        /// Consecutive failed rounds recorded at lockout.
        consecutive_failures: u32,
    },
    /// The transport dropped or timed out the exchange; no responses
    /// arrived to judge. Transient — the session layer retries these.
    TransportFailure {
        /// What the channel did to the exchange.
        kind: session::TransportFailureKind,
    },
    /// A stored enrollment record is internally inconsistent (weight count
    /// mismatch, non-finite shifted weights, or warm planes evicted
    /// mid-session) and cannot back authentication.
    MalformedRecord {
        /// The chip whose record is malformed.
        chip_id: u32,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Silicon(e) => write!(f, "chip measurement failed: {e}"),
            ProtocolError::Fit(e) => write!(f, "enrollment regression failed: {e}"),
            ProtocolError::DegenerateTraining { puf } => {
                write!(
                    f,
                    "PUF {puf}: training measurements cannot produce thresholds"
                )
            }
            ProtocolError::BetaFitFailed { puf } => {
                write!(f, "PUF {puf}: no β adjustment filters the validation set")
            }
            ProtocolError::UnknownChip { chip_id } => {
                write!(f, "chip {chip_id} is not registered")
            }
            ProtocolError::ChallengeSelectionExhausted {
                requested,
                found,
                attempts,
            } => write!(
                f,
                "found only {found}/{requested} stable challenges in {attempts} attempts"
            ),
            ProtocolError::ResponseCountMismatch { expected, actual } => {
                write!(f, "client returned {actual} responses, expected {expected}")
            }
            ProtocolError::CrpBudgetExhausted { answered } => {
                write!(f, "lockdown CRP budget exhausted after {answered} answers")
            }
            ProtocolError::EmptyRound => {
                write!(f, "cannot judge an authentication round with no challenges")
            }
            ProtocolError::InvalidPolicy { reason } => {
                write!(f, "invalid policy configuration: {reason}")
            }
            ProtocolError::ChipLockedOut {
                chip_id,
                consecutive_failures,
            } => write!(
                f,
                "chip {chip_id} is locked out after {consecutive_failures} consecutive failures"
            ),
            ProtocolError::TransportFailure { kind } => {
                write!(f, "transport failure: {kind}")
            }
            ProtocolError::MalformedRecord { chip_id } => {
                write!(f, "chip {chip_id}: stored enrollment record is malformed")
            }
        }
    }
}

impl StdError for ProtocolError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            ProtocolError::Silicon(e) => Some(e),
            ProtocolError::Fit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SiliconError> for ProtocolError {
    fn from(e: SiliconError) -> Self {
        ProtocolError::Silicon(e)
    }
}

impl From<NotPositiveDefiniteError> for ProtocolError {
    fn from(e: NotPositiveDefiniteError) -> Self {
        ProtocolError::Fit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        let e = ProtocolError::Silicon(SiliconError::FusesBlown);
        assert!(e.to_string().contains("fuses"));
        assert!(StdError::source(&e).is_some());
        let e = ProtocolError::UnknownChip { chip_id: 5 };
        assert!(e.to_string().contains('5'));
        assert!(StdError::source(&e).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ProtocolError>();
    }
}
