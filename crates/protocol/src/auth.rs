//! Authentication policies, outcomes and client-side responders.
//!
//! The paper's key protocol point (§3): because the server only uses CRPs
//! predicted to be extremely stable, it "may grant access only when the
//! client responses and server predicted responses match perfectly (i.e.,
//! zero Hamming distance)" — a much stricter criterion than the classic
//! Hamming-distance-threshold policies, which improves security for free.

use crate::ProtocolError;
use puf_core::{Challenge, Condition};
use puf_silicon::Chip;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Acceptance policies for comparing client responses with predictions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AuthPolicy {
    /// Approve only on a perfect match — the paper's proposal, enabled by
    /// model-based stable-challenge selection.
    ZeroHammingDistance,
    /// Approve when the mismatch fraction does not exceed the bound — the
    /// classical policy needed when unstable CRPs slip in.
    MaxHammingFraction(f64),
}

impl AuthPolicy {
    /// Checks that the policy is internally consistent (a Hamming-fraction
    /// bound must lie in `[0, 1]`).
    ///
    /// # Errors
    ///
    /// [`ProtocolError::InvalidPolicy`] on an out-of-range bound.
    pub fn validate(self) -> Result<(), ProtocolError> {
        match self {
            AuthPolicy::ZeroHammingDistance => Ok(()),
            AuthPolicy::MaxHammingFraction(bound) => {
                if (0.0..=1.0).contains(&bound) {
                    Ok(())
                } else {
                    Err(ProtocolError::InvalidPolicy {
                        reason: "Hamming-fraction bound must be in [0, 1]",
                    })
                }
            }
        }
    }

    /// Whether `mismatches` out of `total` responses pass the policy.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::EmptyRound`] when `total` is zero — an empty round
    /// carries no evidence either way and must never be approved.
    pub fn try_accepts(self, total: usize, mismatches: usize) -> Result<bool, ProtocolError> {
        if total == 0 {
            return Err(ProtocolError::EmptyRound);
        }
        Ok(match self {
            AuthPolicy::ZeroHammingDistance => mismatches == 0,
            AuthPolicy::MaxHammingFraction(bound) => (mismatches as f64 / total as f64) <= bound,
        })
    }

    /// Panicking convenience wrapper around [`AuthPolicy::try_accepts`] for
    /// callers that construct their rounds statically.
    ///
    /// # Panics
    ///
    /// Panics if `total` is zero.
    pub fn accepts(self, total: usize, mismatches: usize) -> bool {
        assert!(total > 0, "cannot judge an empty authentication round");
        // total > 0 ⇒ try_accepts cannot fail.
        self.try_accepts(total, mismatches).unwrap_or(false)
    }
}

impl fmt::Display for AuthPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuthPolicy::ZeroHammingDistance => write!(f, "zero Hamming distance"),
            AuthPolicy::MaxHammingFraction(b) => write!(f, "Hamming fraction ≤ {b}"),
        }
    }
}

/// Result of one authentication round.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AuthOutcome {
    /// Whether access was granted.
    pub approved: bool,
    /// Number of mismatching responses.
    pub mismatches: usize,
    /// Number of challenges used.
    pub challenges_used: usize,
}

impl AuthOutcome {
    /// Applies a policy to a mismatch count.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::EmptyRound`] when `challenges_used` is zero.
    pub fn try_judge(
        policy: AuthPolicy,
        challenges_used: usize,
        mismatches: usize,
    ) -> Result<Self, ProtocolError> {
        Ok(Self {
            approved: policy.try_accepts(challenges_used, mismatches)?,
            mismatches,
            challenges_used,
        })
    }

    /// Panicking convenience wrapper around [`AuthOutcome::try_judge`].
    ///
    /// # Panics
    ///
    /// Panics if `challenges_used` is zero.
    pub fn judge(policy: AuthPolicy, challenges_used: usize, mismatches: usize) -> Self {
        Self {
            approved: policy.accepts(challenges_used, mismatches),
            mismatches,
            challenges_used,
        }
    }

    /// The observed mismatch fraction.
    pub fn hamming_fraction(&self) -> f64 {
        self.mismatches as f64 / self.challenges_used as f64
    }
}

impl fmt::Display for AuthOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}/{} mismatches)",
            if self.approved { "APPROVED" } else { "DENIED" },
            self.mismatches,
            self.challenges_used
        )
    }
}

/// Anything that can answer a list of challenges with one response bit each
/// — the client side of the protocol.
pub trait Responder {
    /// Produces one response per challenge, in order.
    fn respond(&mut self, challenges: &[Challenge]) -> Vec<bool>;

    /// Fallible variant of [`Responder::respond`] for clients whose
    /// measurement path can fail (e.g. a transient fuse-sense glitch under
    /// fault injection). The default forwards to the infallible path.
    ///
    /// # Errors
    ///
    /// Implementation-specific; the default never fails.
    fn try_respond(&mut self, challenges: &[Challenge]) -> Result<Vec<bool>, ProtocolError> {
        Ok(self.respond(challenges))
    }
}

/// The genuine client: one-shot noisy XOR evaluations of a physical chip at
/// some operating condition ("one-time sampling" in Fig. 7 — stable CRPs
/// need no averaging).
#[derive(Debug)]
pub struct ChipResponder<'a> {
    chip: &'a Chip,
    n: usize,
    condition: Condition,
    rng: StdRng,
}

impl<'a> ChipResponder<'a> {
    /// Creates a responder for an `n`-input XOR readout of `chip` at
    /// `condition`. The internal evaluation-noise RNG is seeded with `seed`.
    pub fn new(chip: &'a Chip, n: usize, condition: Condition, seed: u64) -> Self {
        Self {
            chip,
            n,
            condition,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Changes the operating condition (e.g. to authenticate at a V/T
    /// corner).
    pub fn set_condition(&mut self, condition: Condition) {
        self.condition = condition;
    }
}

impl Responder for ChipResponder<'_> {
    fn respond(&mut self, challenges: &[Challenge]) -> Vec<bool> {
        self.try_respond(challenges)
            // puf-lint: allow(L4): server challenges match the enrolled stage count by protocol
            .expect("chip rejected an authentication challenge")
    }

    fn try_respond(&mut self, challenges: &[Challenge]) -> Result<Vec<bool>, ProtocolError> {
        challenges
            .iter()
            .map(|c| {
                self.chip
                    .eval_xor_once(self.n, c, self.condition, &mut self.rng)
                    .map_err(ProtocolError::from)
            })
            .collect()
    }
}

/// Analytic error rates of a policy for given per-response error
/// probabilities.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PolicyAnalysis {
    /// Probability a genuine client is denied (false-reject rate).
    pub false_reject: f64,
    /// Probability an impostor is approved (false-accept rate).
    pub false_accept: f64,
}

/// Computes the exact false-reject/false-accept rates of `policy` over
/// `rounds` challenges, for a genuine client whose responses are wrong with
/// probability `genuine_error` per CRP and an impostor wrong with
/// probability `impostor_error` (0.5 for a blind guesser; lower for a
/// modeling clone — this is where Fig. 4's attack accuracy plugs into the
/// protocol).
///
/// The paper's core protocol claim is visible here: with model-selected
/// stable CRPs `genuine_error ≈ 0`, so the zero-Hamming-distance policy has
/// FRR ≈ 0 while pushing a blind impostor's FAR to `2^{−rounds}` — strict
/// security at no reliability cost.
///
/// # Panics
///
/// Panics if `rounds` is zero or an error probability is outside `[0, 1]`.
pub fn analyze_policy(
    policy: AuthPolicy,
    rounds: usize,
    genuine_error: f64,
    impostor_error: f64,
) -> PolicyAnalysis {
    assert!(rounds > 0, "rounds must be positive");
    assert!(
        (0.0..=1.0).contains(&genuine_error) && (0.0..=1.0).contains(&impostor_error),
        "error probabilities must be in [0,1]"
    );
    let n = rounds as u64;
    let max_mismatches = match policy {
        AuthPolicy::ZeroHammingDistance => 0u64,
        AuthPolicy::MaxHammingFraction(bound) => (bound * rounds as f64).floor() as u64,
    };
    let accept_prob = |p: f64| puf_core::math::binomial_cdf(max_mismatches, n, p);
    PolicyAnalysis {
        false_reject: 1.0 - accept_prob(genuine_error),
        false_accept: accept_prob(impostor_error),
    }
}

/// A client that evaluates each challenge `votes` times and answers with
/// the majority — classical *temporal majority voting*, the brute-force
/// stabilisation alternative to challenge selection.
///
/// The paper's scheme deliberately needs only one-shot sampling ("sampling
/// the XOR output once is sufficient", §2.2); this responder quantifies
/// what the selection saves: a TMV client pays `votes×` evaluation latency
/// per authentication bit and still cannot fix truly marginal CRPs.
#[derive(Debug)]
pub struct MajorityVoteResponder<'a> {
    chip: &'a Chip,
    n: usize,
    condition: Condition,
    votes: u32,
    rng: StdRng,
}

impl<'a> MajorityVoteResponder<'a> {
    /// Creates a TMV responder with an odd number of votes.
    ///
    /// # Panics
    ///
    /// Panics if `votes` is even or zero (ties must be impossible).
    pub fn new(chip: &'a Chip, n: usize, condition: Condition, votes: u32, seed: u64) -> Self {
        assert!(votes % 2 == 1, "votes must be odd");
        Self {
            chip,
            n,
            condition,
            votes,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Number of evaluations spent per response.
    pub fn votes(&self) -> u32 {
        self.votes
    }
}

impl Responder for MajorityVoteResponder<'_> {
    fn respond(&mut self, challenges: &[Challenge]) -> Vec<bool> {
        self.try_respond(challenges)
            // puf-lint: allow(L4): server challenges match the enrolled stage count by protocol
            .expect("chip rejected an authentication challenge")
    }

    fn try_respond(&mut self, challenges: &[Challenge]) -> Result<Vec<bool>, ProtocolError> {
        challenges
            .iter()
            .map(|c| {
                let mut ones = 0u32;
                for _ in 0..self.votes {
                    if self
                        .chip
                        .eval_xor_once(self.n, c, self.condition, &mut self.rng)?
                    {
                        ones += 1;
                    }
                }
                Ok(2 * ones > self.votes)
            })
            .collect()
    }
}

/// An impostor that answers with uniformly random bits — the floor any
/// authentication scheme must reject.
#[derive(Debug)]
pub struct RandomResponder {
    rng: StdRng,
}

impl RandomResponder {
    /// Creates a random responder with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Responder for RandomResponder {
    fn respond(&mut self, challenges: &[Challenge]) -> Vec<bool> {
        use rand::Rng;
        challenges.iter().map(|_| self.rng.gen()).collect()
    }
}

/// An impostor backed by a predictive model (e.g. a trained MLP attack) —
/// used to measure how model accuracy translates to break-in probability.
pub struct ModelResponder<F> {
    predict: F,
}

impl<F: FnMut(&Challenge) -> bool> ModelResponder<F> {
    /// Wraps a prediction function.
    pub fn new(predict: F) -> Self {
        Self { predict }
    }
}

impl<F: FnMut(&Challenge) -> bool> Responder for ModelResponder<F> {
    fn respond(&mut self, challenges: &[Challenge]) -> Vec<bool> {
        challenges.iter().map(|c| (self.predict)(c)).collect()
    }
}

impl<F> fmt::Debug for ModelResponder<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ModelResponder { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_judge_mismatches() {
        assert!(AuthPolicy::ZeroHammingDistance.accepts(10, 0));
        assert!(!AuthPolicy::ZeroHammingDistance.accepts(10, 1));
        assert!(AuthPolicy::MaxHammingFraction(0.2).accepts(10, 2));
        assert!(!AuthPolicy::MaxHammingFraction(0.2).accepts(10, 3));
    }

    #[test]
    #[should_panic(expected = "empty authentication")]
    fn policy_rejects_empty_round() {
        AuthPolicy::ZeroHammingDistance.accepts(0, 0);
    }

    #[test]
    fn try_accepts_returns_empty_round_error() {
        assert_eq!(
            AuthPolicy::ZeroHammingDistance.try_accepts(0, 0),
            Err(ProtocolError::EmptyRound)
        );
        assert_eq!(
            AuthPolicy::MaxHammingFraction(0.5).try_accepts(0, 0),
            Err(ProtocolError::EmptyRound)
        );
        assert_eq!(AuthPolicy::ZeroHammingDistance.try_accepts(10, 0), Ok(true));
        assert_eq!(
            AuthPolicy::ZeroHammingDistance.try_accepts(10, 1),
            Ok(false)
        );
        assert_eq!(
            AuthOutcome::try_judge(AuthPolicy::ZeroHammingDistance, 0, 0),
            Err(ProtocolError::EmptyRound)
        );
        let ok = AuthOutcome::try_judge(AuthPolicy::ZeroHammingDistance, 20, 0).unwrap();
        assert!(ok.approved);
    }

    #[test]
    fn policy_validation_bounds_fraction() {
        assert!(AuthPolicy::ZeroHammingDistance.validate().is_ok());
        assert!(AuthPolicy::MaxHammingFraction(0.0).validate().is_ok());
        assert!(AuthPolicy::MaxHammingFraction(1.0).validate().is_ok());
        assert!(matches!(
            AuthPolicy::MaxHammingFraction(1.5).validate(),
            Err(ProtocolError::InvalidPolicy { .. })
        ));
        assert!(matches!(
            AuthPolicy::MaxHammingFraction(-0.1).validate(),
            Err(ProtocolError::InvalidPolicy { .. })
        ));
    }

    #[test]
    fn try_respond_propagates_silicon_errors() {
        use puf_silicon::{Chip, ChipConfig};
        let mut rng = StdRng::seed_from_u64(30);
        let chip = Chip::fabricate(0, &ChipConfig::small(), &mut rng);
        let mut client = ChipResponder::new(&chip, 2, Condition::NOMINAL, 31);
        let wrong_stages = [Challenge::zero(8)];
        assert!(matches!(
            client.try_respond(&wrong_stages),
            Err(ProtocolError::Silicon(_))
        ));
        let ok = [Challenge::zero(chip.stages())];
        assert_eq!(client.try_respond(&ok).unwrap().len(), 1);
        // The default trait impl never fails.
        let mut random = RandomResponder::new(1);
        assert_eq!(random.try_respond(&ok).unwrap().len(), 1);
    }

    #[test]
    fn outcome_judging_and_display() {
        let ok = AuthOutcome::judge(AuthPolicy::ZeroHammingDistance, 20, 0);
        assert!(ok.approved);
        assert!(ok.to_string().contains("APPROVED"));
        let bad = AuthOutcome::judge(AuthPolicy::ZeroHammingDistance, 20, 1);
        assert!(!bad.approved);
        assert!((bad.hamming_fraction() - 0.05).abs() < 1e-12);
        assert!(bad.to_string().contains("DENIED"));
    }

    #[test]
    fn random_responder_is_uniformish() {
        let mut r = RandomResponder::new(1);
        let challenges: Vec<Challenge> = (0..2_000)
            .map(|i| Challenge::from_bits(i, 16).unwrap())
            .collect();
        let bits = r.respond(&challenges);
        let ones = bits.iter().filter(|&&b| b).count() as f64;
        assert!((ones / 2_000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn policy_analysis_zero_hd() {
        // Perfect genuine responses: FRR 0; blind impostor: FAR 2^-k.
        let a = analyze_policy(AuthPolicy::ZeroHammingDistance, 64, 0.0, 0.5);
        assert!(a.false_reject.abs() < 1e-15);
        assert!((a.false_accept - 0.5f64.powi(64)).abs() < 1e-24);
        // 1% genuine error over 64 rounds: FRR = 1 - 0.99^64 ≈ 0.47.
        let b = analyze_policy(AuthPolicy::ZeroHammingDistance, 64, 0.01, 0.5);
        assert!((b.false_reject - (1.0 - 0.99f64.powi(64))).abs() < 1e-12);
    }

    #[test]
    fn policy_analysis_relaxed_trades_far_for_frr() {
        let strict = analyze_policy(AuthPolicy::ZeroHammingDistance, 64, 0.02, 0.5);
        let relaxed = analyze_policy(AuthPolicy::MaxHammingFraction(0.1), 64, 0.02, 0.5);
        assert!(relaxed.false_reject < strict.false_reject);
        assert!(relaxed.false_accept > strict.false_accept);
        // But a 90%-accurate clone slips through the relaxed policy far
        // more easily — the Fig. 4 / protocol connection.
        let clone_strict = analyze_policy(AuthPolicy::ZeroHammingDistance, 64, 0.02, 0.1);
        let clone_relaxed = analyze_policy(AuthPolicy::MaxHammingFraction(0.1), 64, 0.02, 0.1);
        assert!(clone_relaxed.false_accept > clone_strict.false_accept * 100.0);
    }

    #[test]
    #[should_panic(expected = "rounds must be positive")]
    fn policy_analysis_rejects_zero_rounds() {
        analyze_policy(AuthPolicy::ZeroHammingDistance, 0, 0.0, 0.5);
    }

    #[test]
    fn majority_vote_responder_stabilises_marginal_crps() {
        use puf_silicon::{Chip, ChipConfig};
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(9);
        let chip = Chip::fabricate(0, &ChipConfig::small(), &mut rng);
        let challenges: Vec<Challenge> = (0..300)
            .map(|_| Challenge::random(chip.stages(), &mut rng))
            .collect();
        let reference: Vec<bool> = challenges
            .iter()
            .map(|c| chip.xor_reference_bit(2, c, Condition::NOMINAL).unwrap())
            .collect();
        let mut one_shot = ChipResponder::new(&chip, 2, Condition::NOMINAL, 10);
        let mut tmv = MajorityVoteResponder::new(&chip, 2, Condition::NOMINAL, 15, 11);
        assert_eq!(tmv.votes(), 15);
        let errs = |bits: Vec<bool>| bits.iter().zip(&reference).filter(|(a, b)| a != b).count();
        let e1 = errs(one_shot.respond(&challenges));
        let e15 = errs(tmv.respond(&challenges));
        assert!(
            e15 <= e1,
            "15-vote majority should not mismatch more than one-shot: {e15} vs {e1}"
        );
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn majority_vote_rejects_even_votes() {
        use puf_silicon::{Chip, ChipConfig};
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(12);
        let chip = Chip::fabricate(0, &ChipConfig::small(), &mut rng);
        let _ = MajorityVoteResponder::new(&chip, 1, Condition::NOMINAL, 4, 0);
    }

    #[test]
    fn model_responder_applies_closure() {
        let mut m = ModelResponder::new(|c: &Challenge| c.bit(0));
        let challenges = [
            Challenge::from_bits(0b0, 4).unwrap(),
            Challenge::from_bits(0b1, 4).unwrap(),
        ];
        assert_eq!(m.respond(&challenges), vec![false, true]);
        assert!(!format!("{m:?}").is_empty());
    }
}
