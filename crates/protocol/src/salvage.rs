//! Salvaging marginally stable CRPs via XOR-output soft responses.
//!
//! §2.2 of the paper sketches (and defers) this extension: *"if soft
//! responses can be collected for the final XOR PUF responses and
//! reasonable thresholds are applied, marginally stable responses could
//! also be salvaged for use in authentication."* The trade-off is that
//! salvaged CRPs are not perfectly repeatable, so the zero-Hamming-distance
//! policy must be relaxed to a small tolerance.
//!
//! Unlike enrollment, this works on the **deployed** chip: the XOR output
//! (and therefore its average over repeated evaluations) is available with
//! blown fuses.

use crate::server::SelectedChallenge;
use crate::ProtocolError;
use puf_core::{Challenge, Condition};
use puf_silicon::Chip;
use rand::Rng;

/// Configuration of the salvage selector.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SalvageConfig {
    /// Maximum distance of the XOR soft response from 0.0/1.0 for a CRP to
    /// be salvaged (e.g. 0.02 keeps CRPs with soft ≤ 0.02 or ≥ 0.98).
    pub soft_margin: f64,
    /// Counter evaluations per XOR soft-response measurement.
    pub evals: u64,
}

impl SalvageConfig {
    /// A tight default: soft responses within 0.02 of saturation, measured
    /// over 10,000 evaluations.
    pub fn tight() -> Self {
        Self {
            soft_margin: 0.02,
            evals: 10_000,
        }
    }
}

impl Default for SalvageConfig {
    fn default() -> Self {
        Self::tight()
    }
}

/// Outcome of a salvage campaign.
#[derive(Clone, Debug, PartialEq)]
pub struct SalvageReport {
    /// The salvaged CRPs with their majority-vote expected bits.
    pub selected: Vec<SelectedChallenge>,
    /// Challenges examined.
    pub tested: usize,
    /// Mean per-CRP one-shot error probability of the salvaged set, as
    /// estimated from the measured soft responses — the mismatch budget an
    /// authentication policy must absorb.
    pub expected_error_rate: f64,
}

impl SalvageReport {
    /// Fraction of tested challenges that were salvaged.
    pub fn yield_fraction(&self) -> f64 {
        if self.tested == 0 {
            return f64::NAN;
        }
        self.selected.len() as f64 / self.tested as f64
    }
}

/// Screens `challenges` by XOR soft response and keeps those within
/// `config.soft_margin` of saturation.
///
/// # Errors
///
/// Propagates chip errors (bad XOR width, stage mismatch). Works with blown
/// fuses.
///
/// # Panics
///
/// Panics if `config.soft_margin` is not within `[0, 0.5)`.
pub fn salvage_select<R: Rng + ?Sized>(
    chip: &Chip,
    n: usize,
    challenges: &[Challenge],
    cond: Condition,
    config: &SalvageConfig,
    rng: &mut R,
) -> Result<SalvageReport, ProtocolError> {
    assert!(
        (0.0..0.5).contains(&config.soft_margin),
        "soft_margin must be in [0, 0.5)"
    );
    let mut selected = Vec::new();
    let mut error_acc = 0.0;
    for c in challenges {
        let s = chip.measure_xor_soft(n, c, cond, config.evals, rng)?;
        let v = s.value();
        let (expected, error) = if v <= config.soft_margin {
            (false, v)
        } else if v >= 1.0 - config.soft_margin {
            (true, 1.0 - v)
        } else {
            continue;
        };
        error_acc += error;
        selected.push(SelectedChallenge {
            challenge: *c,
            expected,
        });
    }
    let expected_error_rate = if selected.is_empty() {
        0.0
    } else {
        error_acc / selected.len() as f64
    };
    Ok(SalvageReport {
        tested: challenges.len(),
        selected,
        expected_error_rate,
    })
}

/// The Hamming-fraction tolerance a policy needs so that a genuine chip
/// with the report's per-CRP error rate is accepted with roughly the given
/// number of σ of headroom (normal approximation to the mismatch count).
pub fn recommended_tolerance(report: &SalvageReport, rounds: usize, sigmas: f64) -> f64 {
    let p = report.expected_error_rate;
    let sd = (p * (1.0 - p) / rounds.max(1) as f64).sqrt();
    (p + sigmas * sd).min(0.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use puf_core::challenge::random_challenges;
    use puf_silicon::ChipConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chip_and_rng(seed: u64) -> (Chip, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let chip = Chip::fabricate(0, &ChipConfig::small(), &mut rng);
        (chip, rng)
    }

    #[test]
    fn salvage_works_with_blown_fuses() {
        let (mut chip, mut rng) = chip_and_rng(1);
        chip.blow_fuses();
        let challenges = random_challenges(chip.stages(), 400, &mut rng);
        let report = salvage_select(
            &chip,
            3,
            &challenges,
            Condition::NOMINAL,
            &SalvageConfig::tight(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(report.tested, 400);
        assert!(!report.selected.is_empty(), "nothing salvaged");
        assert!(report.yield_fraction() > 0.1);
        assert!(report.expected_error_rate < 0.02);
    }

    #[test]
    fn salvage_yield_exceeds_strict_all_member_yield() {
        // The whole point: thresholding the *final* XOR soft response keeps
        // more CRPs than demanding 100 % stability of every member.
        let (chip, mut rng) = chip_and_rng(2);
        let n = 3;
        let challenges = random_challenges(chip.stages(), 1_200, &mut rng);
        let report = salvage_select(
            &chip,
            n,
            &challenges,
            Condition::NOMINAL,
            &SalvageConfig {
                soft_margin: 0.05,
                evals: 5_000,
            },
            &mut rng,
        )
        .unwrap();
        let strict = puf_silicon::testbench::xor_stable_mask(
            &chip,
            n,
            &challenges,
            Condition::NOMINAL,
            100_000,
            &mut rng,
        )
        .unwrap();
        let strict_yield = strict.iter().filter(|&&b| b).count() as f64 / strict.len() as f64;
        assert!(
            report.yield_fraction() > strict_yield,
            "salvage yield {} should beat strict yield {strict_yield}",
            report.yield_fraction()
        );
    }

    #[test]
    fn salvaged_bits_mostly_match_one_shot_responses() {
        let (chip, mut rng) = chip_and_rng(3);
        let challenges = random_challenges(chip.stages(), 600, &mut rng);
        let report = salvage_select(
            &chip,
            2,
            &challenges,
            Condition::NOMINAL,
            &SalvageConfig::tight(),
            &mut rng,
        )
        .unwrap();
        let mut mismatches = 0;
        for p in &report.selected {
            let bit = chip
                .eval_xor_once(2, &p.challenge, Condition::NOMINAL, &mut rng)
                .unwrap();
            if bit != p.expected {
                mismatches += 1;
            }
        }
        let rate = mismatches as f64 / report.selected.len() as f64;
        assert!(
            rate < 0.05,
            "salvaged CRPs mismatch too often: {rate} (expected ≈ {})",
            report.expected_error_rate
        );
    }

    #[test]
    fn recommended_tolerance_scales_with_error_rate() {
        let low = SalvageReport {
            selected: vec![],
            tested: 0,
            expected_error_rate: 0.001,
        };
        let high = SalvageReport {
            selected: vec![],
            tested: 0,
            expected_error_rate: 0.05,
        };
        assert!(recommended_tolerance(&high, 64, 4.0) > recommended_tolerance(&low, 64, 4.0));
        assert!(recommended_tolerance(&high, 64, 4.0) <= 0.5);
    }

    #[test]
    #[should_panic(expected = "soft_margin")]
    fn rejects_half_margin() {
        let (chip, mut rng) = chip_and_rng(4);
        let challenges = random_challenges(chip.stages(), 1, &mut rng);
        let _ = salvage_select(
            &chip,
            2,
            &challenges,
            Condition::NOMINAL,
            &SalvageConfig {
                soft_margin: 0.5,
                evals: 100,
            },
            &mut rng,
        );
    }
}
