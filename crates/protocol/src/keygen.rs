//! PUF-based secret-key generation (the second application of the paper's
//! Ref. 8, Suh & Devadas: *"Physical Unclonable Functions for Device
//! Authentication and Secret Key Generation"*).
//!
//! A classic code-offset fuzzy extractor over XOR-PUF responses:
//!
//! - **Enrollment** — pick response challenges, read the reference bits
//!   `r`, draw a random key `k`, publish helper data
//!   `w = r ⊕ repetition_encode(k)` plus an integrity check of `k`.
//! - **Reconstruction** — re-read the (noisy) bits `r'`, compute
//!   `r' ⊕ w = enc(k) ⊕ e`, majority-decode each repetition block.
//!
//! The connection to this paper: the repetition length needed depends
//! entirely on the per-bit error rate of the response source. With the
//! model-assisted stable-challenge selection the responses are essentially
//! error-free, so 3-way repetition is already overkill; with unscreened
//! random challenges on a wide XOR PUF, even long repetition codes struggle
//! — measured head-to-head in the tests below.

use crate::server::SelectedChallenge;
use crate::ProtocolError;
use puf_core::Challenge;
use rand::Rng;
use std::error::Error as StdError;
use std::fmt;

/// A derived key: a bit vector with value semantics.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Key {
    bits: Vec<bool>,
}

impl Key {
    /// The key bits.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Key length in bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the key is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Packs the bits into bytes, LSB-first within each byte.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.bits.len().div_ceil(8)];
        for (i, &b) in self.bits.iter().enumerate() {
            if b {
                out[i / 8] |= 1 << (i % 8);
            }
        }
        out
    }

    /// A 64-bit FNV-1a digest of the key, used as the helper-data
    /// integrity check (not a cryptographic commitment; see module docs).
    pub fn digest(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in self.to_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash ^= self.bits.len() as u64;
        hash.wrapping_mul(0x0000_0100_0000_01B3)
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print key material.
        write!(
            f,
            "Key({} bits, digest {:016x})",
            self.bits.len(),
            self.digest()
        )
    }
}

/// Public helper data: everything an attacker may see.
#[derive(Clone, Debug, PartialEq)]
pub struct HelperData {
    /// The response challenges, in repetition-block order.
    pub challenges: Vec<Challenge>,
    /// The code-offset mask `r ⊕ enc(k)`.
    pub mask: Vec<bool>,
    /// Repetition factor (odd).
    pub repetition: usize,
    /// Integrity digest of the enrolled key.
    pub key_digest: u64,
}

/// Key-generation parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KeyGenConfig {
    /// Key length in bits. Default 128.
    pub key_bits: usize,
    /// Repetition-code length per key bit (odd). Default 3.
    pub repetition: usize,
}

impl KeyGenConfig {
    /// 128-bit key, 3-way repetition — sufficient when responses come from
    /// model-selected stable challenges.
    pub fn stable_default() -> Self {
        Self {
            key_bits: 128,
            repetition: 3,
        }
    }

    /// Creates a config.
    ///
    /// # Panics
    ///
    /// Panics on zero key length or an even repetition factor.
    pub fn new(key_bits: usize, repetition: usize) -> Self {
        assert!(key_bits > 0, "key must have at least one bit");
        assert!(repetition % 2 == 1, "repetition must be odd");
        Self {
            key_bits,
            repetition,
        }
    }

    /// Total response bits consumed.
    pub fn response_bits(&self) -> usize {
        self.key_bits * self.repetition
    }
}

impl Default for KeyGenConfig {
    fn default() -> Self {
        Self::stable_default()
    }
}

/// Key-reconstruction failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum KeyError {
    /// The decoded key's digest does not match the helper data — more
    /// response bits flipped than the repetition code corrects.
    ReconstructionFailed,
    /// The response vector length does not match the helper data.
    LengthMismatch {
        /// Bits expected.
        expected: usize,
        /// Bits provided.
        actual: usize,
    },
}

impl fmt::Display for KeyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyError::ReconstructionFailed => {
                write!(f, "key reconstruction failed the integrity check")
            }
            KeyError::LengthMismatch { expected, actual } => {
                write!(f, "expected {expected} response bits, got {actual}")
            }
        }
    }
}

impl StdError for KeyError {}

/// Enrolls a key from reference CRPs (e.g. server-selected stable
/// challenges with their expected bits): draws a random key and computes
/// the helper data.
///
/// # Errors
///
/// [`ProtocolError::ChallengeSelectionExhausted`] if fewer reference CRPs
/// are supplied than `config.response_bits()`.
pub fn enroll_key<R: Rng + ?Sized>(
    reference: &[SelectedChallenge],
    config: KeyGenConfig,
    rng: &mut R,
) -> Result<(Key, HelperData), ProtocolError> {
    let needed = config.response_bits();
    if reference.len() < needed {
        return Err(ProtocolError::ChallengeSelectionExhausted {
            requested: needed,
            found: reference.len(),
            attempts: reference.len(),
        });
    }
    let key = Key {
        bits: (0..config.key_bits).map(|_| rng.gen()).collect(),
    };
    let mut challenges = Vec::with_capacity(needed);
    let mut mask = Vec::with_capacity(needed);
    for (i, crp) in reference[..needed].iter().enumerate() {
        let key_bit = key.bits[i / config.repetition];
        challenges.push(crp.challenge);
        mask.push(crp.expected ^ key_bit);
    }
    let helper = HelperData {
        challenges,
        mask,
        repetition: config.repetition,
        key_digest: key.digest(),
    };
    Ok((key, helper))
}

/// Reconstructs the key from fresh (possibly noisy) response bits for the
/// helper data's challenges, majority-decoding each repetition block.
///
/// # Errors
///
/// - [`KeyError::LengthMismatch`] on a wrong response count.
/// - [`KeyError::ReconstructionFailed`] when too many bits flipped.
pub fn reconstruct_key(responses: &[bool], helper: &HelperData) -> Result<Key, KeyError> {
    if responses.len() != helper.mask.len() {
        return Err(KeyError::LengthMismatch {
            expected: helper.mask.len(),
            actual: responses.len(),
        });
    }
    let rep = helper.repetition;
    let mut bits = Vec::with_capacity(responses.len() / rep);
    for block in responses
        .iter()
        .zip(&helper.mask)
        .map(|(&r, &m)| r ^ m)
        .collect::<Vec<bool>>()
        .chunks(rep)
    {
        let ones = block.iter().filter(|&&b| b).count();
        bits.push(2 * ones > rep);
    }
    let key = Key { bits };
    if key.digest() != helper.key_digest {
        return Err(KeyError::ReconstructionFailed);
    }
    Ok(key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::{ChipResponder, Responder};
    use crate::enrollment::{enroll, EnrollmentConfig};
    use crate::server::Server;
    use puf_core::Condition;
    use puf_silicon::{Chip, ChipConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key_setup(seed: u64) -> (Chip, Vec<SelectedChallenge>, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let chip = Chip::fabricate(0, &ChipConfig::small(), &mut rng);
        let record = enroll(&chip, &EnrollmentConfig::small(2), &mut rng).unwrap();
        let mut server = Server::new();
        server.register(record);
        let selected = server
            .select_challenges(0, 3 * 64, 2_000_000, &mut rng)
            .unwrap();
        (chip, selected, rng)
    }

    #[test]
    fn key_round_trip_on_genuine_chip() {
        let (chip, selected, mut rng) = key_setup(1);
        let config = KeyGenConfig::new(64, 3);
        let (key, helper) = enroll_key(&selected, config, &mut rng).unwrap();
        assert_eq!(key.len(), 64);

        let mut client = ChipResponder::new(&chip, 2, Condition::NOMINAL, 7);
        let responses = client.respond(&helper.challenges);
        let rebuilt = reconstruct_key(&responses, &helper).unwrap();
        assert_eq!(rebuilt, key);
    }

    #[test]
    fn key_survives_vt_corner_with_stable_challenges() {
        let mut rng = StdRng::seed_from_u64(2);
        let chip = Chip::fabricate(0, &ChipConfig::small(), &mut rng);
        let config_enroll = EnrollmentConfig {
            validation_conditions: Condition::paper_grid(),
            ..EnrollmentConfig::small(2)
        };
        let record = enroll(&chip, &config_enroll, &mut rng).unwrap();
        let mut server = Server::new();
        server.register(record);
        let selected = server
            .select_challenges(0, 3 * 64, 5_000_000, &mut rng)
            .unwrap();
        let (key, helper) = enroll_key(&selected, KeyGenConfig::new(64, 3), &mut rng).unwrap();

        let mut client = ChipResponder::new(&chip, 2, Condition::new(0.8, 60.0), 8);
        let responses = client.respond(&helper.challenges);
        let rebuilt = reconstruct_key(&responses, &helper).unwrap();
        assert_eq!(rebuilt, key, "corner reconstruction failed");
    }

    #[test]
    fn foreign_chip_cannot_reconstruct() {
        let (_, selected, mut rng) = key_setup(3);
        let (_key, helper) = enroll_key(&selected, KeyGenConfig::new(64, 3), &mut rng).unwrap();
        let foreign = Chip::fabricate(99, &ChipConfig::small(), &mut rng);
        let mut client = ChipResponder::new(&foreign, 2, Condition::NOMINAL, 9);
        let responses = client.respond(&helper.challenges);
        assert_eq!(
            reconstruct_key(&responses, &helper),
            Err(KeyError::ReconstructionFailed)
        );
    }

    #[test]
    fn helper_data_alone_reveals_nothing_useful() {
        // Decoding the mask against random responses fails the integrity
        // check — the mask is a one-time-pad of the key under the response.
        let (_, selected, mut rng) = key_setup(4);
        let (_key, helper) = enroll_key(&selected, KeyGenConfig::new(64, 3), &mut rng).unwrap();
        let random: Vec<bool> = (0..helper.mask.len()).map(|_| rng.gen()).collect();
        assert!(reconstruct_key(&random, &helper).is_err());
    }

    #[test]
    fn repetition_corrects_isolated_flips() {
        let (chip, selected, mut rng) = key_setup(5);
        let (key, helper) = enroll_key(&selected, KeyGenConfig::new(32, 3), &mut rng).unwrap();
        let mut client = ChipResponder::new(&chip, 2, Condition::NOMINAL, 10);
        let mut responses = client.respond(&helper.challenges);
        // Flip one bit in each of the first five blocks — all correctable.
        for block in 0..5 {
            let idx = block * 3;
            responses[idx] = !responses[idx];
        }
        assert_eq!(reconstruct_key(&responses, &helper).unwrap(), key);
        // Two flips in one so-far-untouched block defeat 3-way repetition.
        responses[18] = !responses[18];
        responses[19] = !responses[19];
        assert!(reconstruct_key(&responses, &helper).is_err());
    }

    #[test]
    fn insufficient_reference_crps_error() {
        let (_, selected, mut rng) = key_setup(6);
        let config = KeyGenConfig::new(1_000, 3);
        assert!(matches!(
            enroll_key(&selected[..10], config, &mut rng),
            Err(ProtocolError::ChallengeSelectionExhausted { .. })
        ));
    }

    #[test]
    fn key_accessors_and_digest() {
        let key = Key {
            bits: vec![true, false, true, true, false, false, false, false, true],
        };
        assert_eq!(key.len(), 9);
        assert!(!key.is_empty());
        assert_eq!(key.to_bytes(), vec![0b0000_1101, 0b0000_0001]);
        let other = Key {
            bits: vec![true; 9],
        };
        assert_ne!(key.digest(), other.digest());
        // Debug never leaks bits.
        assert!(!format!("{key:?}").contains("true"));
    }

    #[test]
    fn length_mismatch_reported() {
        let (_, selected, mut rng) = key_setup(7);
        let (_, helper) = enroll_key(&selected, KeyGenConfig::new(32, 3), &mut rng).unwrap();
        assert!(matches!(
            reconstruct_key(&[true, false], &helper),
            Err(KeyError::LengthMismatch { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_repetition_rejected() {
        KeyGenConfig::new(8, 2);
    }
}
