//! Fleet-scale authentication service: a sharded chip store with
//! cross-session batched verification on the bit-sliced engine.
//!
//! The [`super::session::SessionManager`] state machine authenticates one
//! session at a time and pays scalar-evaluation prices for every
//! challenge it verifies. At fleet scale — a million enrolled chips,
//! millions of concurrent sessions — almost all of that work is the same
//! computation repeated: evaluating a chip's enrolled member models over
//! challenges drawn from a bounded pool. This module restructures the
//! protocol layer around that observation:
//!
//! - **Challenge universe** ([`ChallengeUniverse`]): one pre-expanded,
//!   sign-plane-compressed [`FeatureMatrix`] of `U` distinct challenges
//!   shared by the whole fleet (~4 bits per challenge-feature, the
//!   `core::batch` compression). Sessions draw from this pool instead of
//!   searching the full 2^stages space per round.
//! - **Compact chip store** ([`StoredChip`], [`ShardStore`]): per member
//!   PUF the server keeps one *shifted* weight vector — the enrolled
//!   model's θ with the effective `Thr(1)` threshold folded into the bias
//!   feature — plus a single scalar recovering the `Thr(0)` shift. Since
//!   φ's constant bias feature is last, `θ·φ > thr ⟺ (θ − thr·e_bias)·φ
//!   > 0`, so stability screening and response prediction become pure
//!   sign tests the bit-sliced kernels already compute. Storage stays at
//!   the paper's `n·(stages+1)` floats per chip (+8 bytes).
//! - **Batched warm-up**: the first time sessions touch a chip, its
//!   shifted members are evaluated over the whole universe in a *fleet*
//!   dispatch through [`puf_core::bitslice::xor_response_packed_many`] —
//!   one transpose+expand amortized across every chip warmed that tick —
//!   yielding two packed planes per chip: a predicted-stable mask and the
//!   expected XOR response bits. Every subsequent selection and verdict
//!   for that chip is a bit lookup; no per-request scalar evaluation.
//! - **Event loop with a latency-bounding flush** ([`AuthService`]):
//!   sessions progress on a deterministic logical-tick clock. Delivered
//!   response frames accumulate in a pending-verification queue that is
//!   judged when it fills ([`ServiceConfig::flush_rows`]) **or** when its
//!   oldest row ages past [`ServiceConfig::flush_ticks`] — so p99 verdict
//!   latency stays bounded at low load while high load gets fleet-sized
//!   batches.
//! - **Deterministic shard routing** ([`shard_of`]): chips map to shards
//!   through a named splitmix64 mix of a route seed and the chip id.
//!   Shards share nothing; executing them on 1, 2, 4 or 8 workers yields
//!   bit-identical verdict streams.
//!
//! The session semantics — retries over fresh challenges, exponential
//! backoff bookkeeping, consecutive-failure lockout, degraded fallback —
//! replicate [`SessionManager::authenticate`] exactly, and
//! [`PoolSource`] lets a sequential `SessionManager` replay consume the
//! *same* challenge stream for equivalence testing and for the
//! batched-vs-sequential speedup gate.
//!
//! **Stability-notion fine print**: the classic server path classifies
//! `θ·φ` against thresholds directly; the shifted sign test computes
//! `(θ − thr·e_bias)·φ > 0`. Algebraically identical, the two can differ
//! by one ulp of rounding for predictions within a float rounding step of
//! a threshold (and the shifted test maps the measure-zero `θ·φ = thr0`
//! case to *unstable* rather than relying on a strict `<`). The service
//! therefore defines predicted stability via the shifted models on **all**
//! of its paths — packed warm planes and the scalar [`PoolSource`] replay
//! agree bit-for-bit, which is the invariant the equivalence proptests
//! pin. The classic [`Server::select_challenges`] path is untouched.
//!
//! [`SessionManager`]: super::session::SessionManager
//! [`SessionManager::authenticate`]: super::session::SessionManager::authenticate
//! [`Server::select_challenges`]: super::server::Server::select_challenges

use crate::auth::{AuthOutcome, Responder};
use crate::enrollment::EnrolledChip;
use crate::server::{ExclusionSet, SelectedChallenge, Server};
use crate::session::{
    ChallengeSource, Channel, ChipSessionState, Delivery, SessionEvent, SessionOutcome,
    SessionPolicy, SessionReport, TransportFailureKind,
};
use crate::ProtocolError;
use puf_core::bitslice::{xor_response_packed_many, PackedBits};
use puf_core::{ArbiterPuf, Challenge, FeatureMatrix, XorPuf};
use rand::Rng;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Deterministic shard routing.
// ---------------------------------------------------------------------------

/// splitmix64 increment (Steele et al.), the stream constant every other
/// fault/bench lane derivation in this workspace uses.
pub const ROUTE_MIX_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;
const ROUTE_MIX_A: u64 = 0xBF58_476D_1CE4_E5B9;
const ROUTE_MIX_B: u64 = 0x94D0_49BB_1331_11EB;

/// Derives an independent 64-bit lane from a master seed — the same
/// splitmix64 finalizer the fault layer uses, public here so service
/// drivers can seed per-session RNGs that are invariant under batching
/// order and worker count.
pub fn service_lane(seed: u64, lane: u64) -> u64 {
    let mut z = seed.wrapping_add(ROUTE_MIX_GAMMA.wrapping_mul(lane.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(ROUTE_MIX_A);
    z = (z ^ (z >> 27)).wrapping_mul(ROUTE_MIX_B);
    z ^ (z >> 31)
}

/// Routes a chip to one of `shard_count` shards: a splitmix64 mix of the
/// route seed and the chip id, reduced mod `shard_count`. Deterministic,
/// data-independent, and stable under re-enrollment — the only inputs are
/// the seed and the id.
pub fn shard_of(route_seed: u64, chip_id: u32, shard_count: usize) -> usize {
    if shard_count <= 1 {
        return 0;
    }
    (service_lane(route_seed, u64::from(chip_id)) % shard_count as u64) as usize
}

// ---------------------------------------------------------------------------
// Challenge universe.
// ---------------------------------------------------------------------------

/// The fleet-shared challenge pool: `U` distinct random challenges held
/// once as a sign-plane-compressed [`FeatureMatrix`], plus a bit-pattern
/// index for O(1) challenge→slot lookups.
///
/// The index is a flat open-addressed probe table (power-of-two capacity,
/// ≥4× the pool size, linear probing): lookups are on the hot path of
/// every device exchange — once per transmitted challenge — and a one- or
/// two-probe table beats both `BTreeMap` pointer chasing and a ~10-probe
/// binary search. Empty buckets are marked by a `u32::MAX` slot sentinel,
/// so any bit pattern (including zero) is a valid key.
#[derive(Clone, Debug)]
pub struct ChallengeUniverse {
    features: FeatureMatrix,
    /// `(bits, slot)` buckets; `slot == u32::MAX` marks an empty bucket.
    index: Vec<(u128, u32)>,
    /// Bucket mask (`capacity - 1`).
    index_mask: usize,
}

/// Mixes a 128-bit challenge pattern down to a bucket hash with the
/// splitmix64 finalizer (same mixer as [`service_lane`]).
fn challenge_bucket_hash(bits: u128) -> u64 {
    let mut z = (bits as u64) ^ ((bits >> 64) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ChallengeUniverse {
    /// Draws `size` *distinct* random challenges of `stages` bits.
    ///
    /// # Errors
    ///
    /// - [`ProtocolError::InvalidPolicy`] on zero `size` or zero `stages`.
    /// - [`ProtocolError::ChallengeSelectionExhausted`] if the draw budget
    ///   (64 draws per requested challenge) cannot find `size` distinct
    ///   patterns — only plausible when `2^stages` is close to `size`.
    pub fn generate<R: Rng + ?Sized>(
        stages: usize,
        size: usize,
        rng: &mut R,
    ) -> Result<Self, ProtocolError> {
        if size == 0 {
            return Err(ProtocolError::InvalidPolicy {
                reason: "challenge universe must hold at least one challenge",
            });
        }
        if stages == 0 {
            return Err(ProtocolError::InvalidPolicy {
                reason: "challenge universe needs at least one stage",
            });
        }
        let budget = size.saturating_mul(64);
        let mut challenges = Vec::with_capacity(size);
        let mut index = BTreeMap::new();
        for _ in 0..budget {
            if challenges.len() == size {
                break;
            }
            let challenge = Challenge::random(stages, rng);
            if let std::collections::btree_map::Entry::Vacant(slot) = index.entry(challenge.bits())
            {
                slot.insert(challenges.len() as u32);
                challenges.push(challenge);
            }
        }
        if challenges.len() < size {
            return Err(ProtocolError::ChallengeSelectionExhausted {
                requested: size,
                found: challenges.len(),
                attempts: budget,
            });
        }
        let features =
            FeatureMatrix::new(stages, &challenges).map_err(|_| ProtocolError::InvalidPolicy {
                reason: "challenge universe feature expansion failed",
            })?;
        let capacity = (size * 4).next_power_of_two();
        let index_mask = capacity - 1;
        let mut table = vec![(0u128, u32::MAX); capacity];
        for (bits, slot) in index {
            let mut bucket = challenge_bucket_hash(bits) as usize & index_mask;
            while table[bucket].1 != u32::MAX {
                bucket = (bucket + 1) & index_mask;
            }
            table[bucket] = (bits, slot);
        }
        Ok(Self {
            features,
            index: table,
            index_mask,
        })
    }

    /// Number of challenges in the pool.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the pool is empty (never true for a generated universe).
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Challenge bit width.
    pub fn stages(&self) -> usize {
        self.features.stages()
    }

    /// The compressed feature planes the bit-sliced kernels consume.
    pub fn features(&self) -> &FeatureMatrix {
        &self.features
    }

    /// The challenge in slot `i`.
    pub fn challenge(&self, i: u32) -> &Challenge {
        &self.features.challenges()[i as usize]
    }

    /// The slot of a challenge bit pattern, if it is in the pool.
    pub fn index_of(&self, bits: u128) -> Option<u32> {
        let mut bucket = challenge_bucket_hash(bits) as usize & self.index_mask;
        loop {
            let (pattern, slot) = self.index[bucket];
            if slot == u32::MAX {
                return None;
            }
            if pattern == bits {
                return Some(slot);
            }
            bucket = (bucket + 1) & self.index_mask;
        }
    }

    /// Approximate heap footprint of the pool: challenge list, compressed
    /// sign planes (4 bits per challenge-feature) and the lookup index.
    pub fn heap_bytes(&self) -> usize {
        let challenges = self.features.len() * std::mem::size_of::<Challenge>();
        // One u32 plane word per 32 features × 64-challenge block, i.e.
        // width × len/32 words ≈ len·width/8 bytes.
        let planes = self.features.len().div_ceil(32) * self.features.width() * 4;
        let index = self.index.len() * std::mem::size_of::<(u128, u32)>();
        challenges + planes + index
    }
}

// ---------------------------------------------------------------------------
// Compact chip store.
// ---------------------------------------------------------------------------

/// One member PUF in shifted form: `up` is the enrolled θ with the
/// effective `Thr(1)` subtracted from the bias weight (sign > 0 ⟺
/// predicted stable-1); adding `lo_bias_delta` to the bias instead yields
/// the `Thr(0)`-shifted model (sign ≤ 0 ⟺ predicted stable-0).
#[derive(Clone, Debug, PartialEq)]
struct StoredMember {
    up: Vec<f64>,
    lo_bias_delta: f64,
}

/// A compact enrollment record: the paper's `n·(stages+1)` floats per
/// chip, pre-shifted so every prediction the service needs is a sign test.
#[derive(Clone, Debug, PartialEq)]
pub struct StoredChip {
    chip_id: u32,
    stages: usize,
    members: Vec<StoredMember>,
}

impl StoredChip {
    /// Compacts an enrollment record into shifted-model form.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::MalformedRecord`] if a member model's weight count
    /// does not match `stages + 1` or a shifted weight is non-finite.
    pub fn from_enrolled(record: &EnrolledChip) -> Result<Self, ProtocolError> {
        let malformed = ProtocolError::MalformedRecord {
            chip_id: record.chip_id,
        };
        if record.pufs.is_empty() {
            return Err(malformed);
        }
        let mut members = Vec::with_capacity(record.pufs.len());
        for puf in &record.pufs {
            let theta = puf.model.theta();
            if theta.len() != record.stages + 1 {
                return Err(malformed);
            }
            let eff = puf.effective_thresholds();
            let mut up = theta.to_vec();
            let bias = up.len() - 1;
            up[bias] -= eff.thr1;
            let lo_bias_delta = eff.thr1 - eff.thr0;
            if !up.iter().all(|w| w.is_finite()) || !lo_bias_delta.is_finite() {
                return Err(malformed);
            }
            members.push(StoredMember { up, lo_bias_delta });
        }
        Ok(Self {
            chip_id: record.chip_id,
            stages: record.stages,
            members,
        })
    }

    /// The chip id.
    pub fn chip_id(&self) -> u32 {
        self.chip_id
    }

    /// Challenge bit width.
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// Number of member PUFs (the XOR width `n`).
    pub fn members(&self) -> usize {
        self.members.len()
    }

    /// Heap bytes this record owns: the shifted weight vectors plus the
    /// per-member scalar — the measured bytes-per-enrolled-chip figure.
    pub fn heap_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .members
                .iter()
                .map(|m| std::mem::size_of::<StoredMember>() + m.up.len() * 8)
                .sum::<usize>()
    }

    /// Rebuilds the shifted member models as evaluable PUFs: one
    /// single-member [`XorPuf`] per member and threshold side, exactly the
    /// objects the bit-sliced fleet kernels and the scalar replay both
    /// evaluate (which is what makes the two paths bit-identical).
    ///
    /// # Errors
    ///
    /// [`ProtocolError::MalformedRecord`] if a weight vector no longer
    /// validates (cannot happen for a [`StoredChip::from_enrolled`] value).
    pub fn shifted_models(&self) -> Result<ShiftedChipModel, ProtocolError> {
        let malformed = ProtocolError::MalformedRecord {
            chip_id: self.chip_id,
        };
        let mut up = Vec::with_capacity(self.members.len());
        let mut lo = Vec::with_capacity(self.members.len());
        for member in &self.members {
            let up_arbiter =
                ArbiterPuf::from_weights(member.up.clone()).map_err(|_| malformed.clone())?;
            let mut lo_weights = member.up.clone();
            let bias = lo_weights.len() - 1;
            lo_weights[bias] += member.lo_bias_delta;
            let lo_arbiter = ArbiterPuf::from_weights(lo_weights).map_err(|_| malformed.clone())?;
            up.push(XorPuf::from_members(vec![up_arbiter]).map_err(|_| malformed.clone())?);
            lo.push(XorPuf::from_members(vec![lo_arbiter]).map_err(|_| malformed.clone())?);
        }
        Ok(ShiftedChipModel { up, lo })
    }
}

/// A [`StoredChip`] rebuilt into evaluable shifted models.
#[derive(Clone, Debug)]
pub struct ShiftedChipModel {
    /// Per member: θ with the bias shifted by −Thr(1). Sign > 0 ⟺ the
    /// member is predicted stable-1.
    up: Vec<XorPuf>,
    /// Per member: θ with the bias shifted by −Thr(0). Sign ≤ 0 ⟺ the
    /// member is predicted stable-0.
    lo: Vec<XorPuf>,
}

impl ShiftedChipModel {
    /// Number of member PUFs.
    pub fn members(&self) -> usize {
        self.up.len()
    }

    /// The Thr(1)-shifted member models (fleet-dispatch order: all `up`
    /// members first, then all `lo` members).
    pub fn up_members(&self) -> &[XorPuf] {
        &self.up
    }

    /// The Thr(0)-shifted member models.
    pub fn lo_members(&self) -> &[XorPuf] {
        &self.lo
    }

    /// Scalar predicted-stability screen: `Some(expected XOR bit)` when
    /// every member is predicted stable, `None` otherwise. Bit-identical
    /// to the packed warm planes (same models, same kernels).
    pub fn stable_expected(&self, challenge: &Challenge) -> Option<bool> {
        let mut expected = false;
        for (up, lo) in self.up.iter().zip(&self.lo) {
            let hi = up.response(challenge);
            let lo_bit = lo.response(challenge);
            if !hi && lo_bit {
                return None; // between the thresholds: predicted unstable
            }
            expected ^= hi;
        }
        Some(expected)
    }
}

/// A chip's warm verification planes over the challenge universe.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WarmChip {
    mask: PackedBits,
    expected: PackedBits,
}

impl WarmChip {
    /// Predicted-stable positions in the universe.
    pub fn mask(&self) -> &PackedBits {
        &self.mask
    }

    /// Expected XOR response bits (valid where [`WarmChip::mask`] is set).
    pub fn expected(&self) -> &PackedBits {
        &self.expected
    }

    /// Number of predicted-stable challenges in the universe.
    pub fn stable_count(&self) -> u64 {
        self.mask.count_ones()
    }

    /// Heap bytes of the two packed planes.
    pub fn heap_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + (self.mask.words().len() + self.expected.words().len()) * 8
    }
}

/// Evaluates a batch of chips' shifted models over the universe in one
/// fleet dispatch through [`xor_response_packed_many`] and combines the
/// per-member sign planes into [`WarmChip`] mask/expected planes.
///
/// The returned pairs are in input order. This is the only place the
/// service evaluates enrollment models — everything downstream is bit
/// lookups — so its cost amortizes across every session that ever touches
/// the warmed chips.
pub fn warm_chips(
    universe: &ChallengeUniverse,
    models: &[(u32, ShiftedChipModel)],
) -> Vec<(u32, WarmChip)> {
    if models.is_empty() {
        return Vec::new();
    }
    let mut refs: Vec<&XorPuf> = Vec::new();
    for (_, model) in models {
        refs.extend(model.up_members());
        refs.extend(model.lo_members());
    }
    let packed = xor_response_packed_many(&refs, universe.features());
    let len = universe.len();
    let words = len.div_ceil(64);
    let mut out = Vec::with_capacity(models.len());
    let mut at = 0usize;
    for (chip_id, model) in models {
        let n = model.members();
        let ups = &packed[at..at + n];
        let los = &packed[at + n..at + 2 * n];
        at += 2 * n;
        let mut mask_words = vec![u64::MAX; words];
        let mut expected_words = vec![0u64; words];
        for (up, lo) in ups.iter().zip(los) {
            for w in 0..words {
                // Member predicted stable ⟺ up (stable-1) or !lo
                // (stable-0); the chip is stable where every member is.
                mask_words[w] &= up.words()[w] | !lo.words()[w];
                expected_words[w] ^= up.words()[w];
            }
        }
        out.push((
            *chip_id,
            WarmChip {
                mask: PackedBits::from_words(mask_words, len),
                expected: PackedBits::from_words(expected_words, len),
            },
        ));
    }
    out
}

/// One shard's slice of the chip store: compact records plus the warm
/// planes of chips that have seen traffic.
#[derive(Clone, Debug, Default)]
pub struct ShardStore {
    chips: BTreeMap<u32, StoredChip>,
    warm: BTreeMap<u32, WarmChip>,
}

impl ShardStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a compact record, returning any previous record for the id
    /// (and invalidating its warm planes).
    pub fn insert(&mut self, chip: StoredChip) -> Option<StoredChip> {
        puf_telemetry::counter!("protocol.service.enrolled").inc();
        self.warm.remove(&chip.chip_id);
        self.chips.insert(chip.chip_id, chip)
    }

    /// Number of enrolled chips.
    pub fn len(&self) -> usize {
        self.chips.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.chips.is_empty()
    }

    /// The compact record for a chip.
    pub fn chip(&self, chip_id: u32) -> Option<&StoredChip> {
        self.chips.get(&chip_id)
    }

    /// The warm planes for a chip, if it has been warmed.
    pub fn warm(&self, chip_id: u32) -> Option<&WarmChip> {
        self.warm.get(&chip_id)
    }

    /// Enrolled chip ids in ascending order.
    pub fn chip_ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.chips.keys().copied()
    }

    /// Heap bytes of the compact records (the cold store).
    pub fn stored_bytes(&self) -> usize {
        self.chips.values().map(StoredChip::heap_bytes).sum()
    }

    /// Heap bytes of the warm planes (the hot cache).
    pub fn warm_bytes(&self) -> usize {
        self.warm.values().map(WarmChip::heap_bytes).sum()
    }

    /// Number of warmed chips.
    pub fn warm_len(&self) -> usize {
        self.warm.len()
    }
}

// ---------------------------------------------------------------------------
// Pool selection (shared between the event loop and the sequential replay).
// ---------------------------------------------------------------------------

/// The universe-pool selection loop: random slot draws, skipping excluded
/// bit patterns and predicted-unstable challenges. Both the batched event
/// loop (plane-lookup oracle) and the sequential [`PoolSource`] replay
/// (scalar-model oracle) call this exact function, so they consume
/// identical rng streams and select identical challenges — the heart of
/// the batched-vs-sequential equivalence guarantee.
///
/// Exclusion is a caller-supplied predicate over `(slot, bits)` rather
/// than a concrete set: the event loop answers from a per-session slot
/// bitset (one word load per draw), the sequential replay from the
/// session's [`ExclusionSet`] pattern search. Both describe the same
/// membership, so the accept/reject decisions — and therefore the rng
/// stream — are identical.
fn pool_select<R, E, F>(
    universe: &ChallengeUniverse,
    count: usize,
    max_attempts: usize,
    mut excluded: E,
    mut stable_expected: F,
    rng: &mut R,
) -> Result<Vec<(u32, SelectedChallenge)>, ProtocolError>
where
    R: Rng + ?Sized,
    E: FnMut(u32, u128) -> bool,
    F: FnMut(u32) -> Option<bool>,
{
    let pool = universe.len() as u32;
    let mut selected = Vec::with_capacity(count);
    let mut attempted = 0u64;
    for _ in 0..max_attempts {
        if selected.len() == count {
            break;
        }
        attempted += 1;
        let slot = rng.gen_range(0..pool);
        let challenge = universe.challenge(slot);
        if excluded(slot, challenge.bits()) {
            continue;
        }
        if let Some(expected) = stable_expected(slot) {
            selected.push((
                slot,
                SelectedChallenge {
                    challenge: *challenge,
                    expected,
                },
            ));
        }
    }
    puf_telemetry::counter!("protocol.service.pool_attempted").add(attempted);
    puf_telemetry::counter!("protocol.service.pool_accepted").add(selected.len() as u64);
    if selected.len() < count {
        return Err(ProtocolError::ChallengeSelectionExhausted {
            requested: count,
            found: selected.len(),
            attempts: max_attempts,
        });
    }
    Ok(selected)
}

/// A [`ChallengeSource`] that draws from a [`ChallengeUniverse`] pool and
/// screens stability through scalar shifted-model evaluation — the
/// sequential twin of the service's warm-plane lookups. Feeding this to
/// [`SessionManager::authenticate_with_source`] replays a service
/// session's exact challenge stream one scalar evaluation at a time.
///
/// [`SessionManager::authenticate_with_source`]: super::session::SessionManager::authenticate_with_source
#[derive(Clone, Debug)]
pub struct PoolSource {
    universe: Arc<ChallengeUniverse>,
    models: BTreeMap<u32, ShiftedChipModel>,
}

impl PoolSource {
    /// A pool source over `universe` with no registered chips.
    pub fn new(universe: Arc<ChallengeUniverse>) -> Self {
        Self {
            universe,
            models: BTreeMap::new(),
        }
    }

    /// Registers a chip's compact record, rebuilding its scalar models.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::MalformedRecord`] from
    /// [`StoredChip::shifted_models`].
    pub fn register(&mut self, chip: &StoredChip) -> Result<(), ProtocolError> {
        let model = chip.shifted_models()?;
        self.models.insert(chip.chip_id(), model);
        Ok(())
    }

    /// The shared universe.
    pub fn universe(&self) -> &ChallengeUniverse {
        &self.universe
    }
}

impl ChallengeSource for PoolSource {
    fn select<R: Rng + ?Sized>(
        &mut self,
        _server: &Server,
        chip_id: u32,
        count: usize,
        max_attempts: usize,
        exclude: &ExclusionSet,
        rng: &mut R,
    ) -> Result<Vec<SelectedChallenge>, ProtocolError> {
        let model = self
            .models
            .get(&chip_id)
            .ok_or(ProtocolError::UnknownChip { chip_id })?;
        let universe = &self.universe;
        let selected = pool_select(
            universe,
            count,
            max_attempts,
            |_, bits| exclude.contains(bits),
            |slot| model.stable_expected(universe.challenge(slot)),
            rng,
        )?;
        Ok(selected.into_iter().map(|(_, s)| s).collect())
    }
}

// ---------------------------------------------------------------------------
// The batched authentication service.
// ---------------------------------------------------------------------------

/// Event-loop configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServiceConfig {
    /// The session policy every submitted session runs under.
    pub policy: SessionPolicy,
    /// Judge the pending-verification queue when it reaches this many
    /// rows…
    pub flush_rows: usize,
    /// …or when its oldest row has waited this many ticks, whichever
    /// comes first — the latency bound at low load.
    pub flush_ticks: u64,
}

impl ServiceConfig {
    /// A default configuration over `policy`: 4096-row blocks, 4-tick
    /// latency bound.
    pub fn new(policy: SessionPolicy) -> Self {
        Self {
            policy,
            flush_rows: 4096,
            flush_ticks: 4,
        }
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::InvalidPolicy`] on a zero flush threshold or an
    /// invalid session policy.
    pub fn validate(&self) -> Result<(), ProtocolError> {
        self.policy.validate()?;
        if self.flush_rows == 0 {
            return Err(ProtocolError::InvalidPolicy {
                reason: "flush_rows must be positive",
            });
        }
        if self.flush_ticks == 0 {
            return Err(ProtocolError::InvalidPolicy {
                reason: "flush_ticks must be positive",
            });
        }
        Ok(())
    }
}

/// The terminal record of one service session.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionVerdict {
    /// The id assigned by [`AuthService::submit`] (submission order).
    pub session_id: u64,
    /// The chip the session authenticated.
    pub chip_id: u32,
    /// Tick at which the session was submitted.
    pub submitted_tick: u64,
    /// Tick at which the verdict was decided.
    pub decided_tick: u64,
    /// The session report, exactly as a sequential
    /// [`SessionManager::authenticate_with_source`] replay would return
    /// it.
    ///
    /// [`SessionManager::authenticate_with_source`]: super::session::SessionManager::authenticate_with_source
    pub result: Result<SessionReport, ProtocolError>,
}

/// Aggregate event-loop statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Ticks executed.
    pub ticks: u64,
    /// Sessions submitted.
    pub submitted: u64,
    /// Verdicts decided.
    pub decided: u64,
    /// Pending-queue flushes.
    pub flushes: u64,
    /// Flushes triggered by row age rather than queue size.
    pub aged_flushes: u64,
    /// Largest pending block judged by one flush.
    pub max_flush_rows: usize,
    /// Fleet warm-up dispatches through the bit-sliced engine.
    pub warm_batches: u64,
    /// Chips warmed.
    pub warm_chips: u64,
    /// Member-challenge evaluations dispatched through
    /// [`xor_response_packed_many`].
    pub warm_member_evals: u64,
}

/// One in-flight session.
#[derive(Debug)]
struct ActiveSession<C, Ch> {
    chip_id: u32,
    client: C,
    channel: Ch,
    rng: rand::rngs::StdRng,
    submitted_tick: u64,
    not_before: u64,
    started: bool,
    attempt: u32,
    events: Vec<SessionEvent>,
    /// Universe slots already issued to this session, one bit per slot —
    /// the event-loop twin of the sequential path's [`ExclusionSet`]
    /// (identical membership, answered by a word load instead of a
    /// pattern search). Allocated lazily on the first attempt.
    excluded_slots: Vec<u64>,
    /// Count of distinct slots issued (`excluded_slots` population),
    /// mirroring `ExclusionSet::len` in the session report.
    issued: usize,
    backoff_ticks_total: u64,
    last_verification: Option<AuthOutcome>,
}

/// One delivered response frame awaiting a batched verdict.
#[derive(Debug)]
struct PendingRow {
    session_id: u64,
    enqueued_tick: u64,
    slots: Vec<u32>,
    bits: Vec<bool>,
}

/// The sharded, batched authentication event loop. One `AuthService`
/// instance is one shard; shards share a [`ChallengeUniverse`] and
/// nothing else, so a fleet of them executes deterministically on any
/// worker count.
///
/// Type parameters fix the device population: `C` is the responder type
/// (the device side of every session) and `Ch` the transport channel.
#[derive(Debug)]
pub struct AuthService<C: Responder, Ch: Channel> {
    config: ServiceConfig,
    universe: Arc<ChallengeUniverse>,
    store: ShardStore,
    now: u64,
    next_session_id: u64,
    sessions: BTreeMap<u64, ActiveSession<C, Ch>>,
    chip_fifo: BTreeMap<u32, VecDeque<u64>>,
    chip_states: BTreeMap<u32, ChipSessionState>,
    wakes: BTreeMap<u64, Vec<u64>>,
    pending: VecDeque<PendingRow>,
    verdicts: Vec<SessionVerdict>,
    stats: ServiceStats,
}

impl<C: Responder, Ch: Channel> AuthService<C, Ch> {
    /// A service shard over a shared challenge universe.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::InvalidPolicy`] from [`ServiceConfig::validate`],
    /// or if the universe is empty.
    pub fn new(
        config: ServiceConfig,
        universe: Arc<ChallengeUniverse>,
    ) -> Result<Self, ProtocolError> {
        config.validate()?;
        if universe.is_empty() {
            return Err(ProtocolError::InvalidPolicy {
                reason: "service universe must not be empty",
            });
        }
        Ok(Self {
            config,
            universe,
            store: ShardStore::new(),
            now: 0,
            next_session_id: 0,
            sessions: BTreeMap::new(),
            chip_fifo: BTreeMap::new(),
            chip_states: BTreeMap::new(),
            wakes: BTreeMap::new(),
            pending: VecDeque::new(),
            verdicts: Vec::new(),
            stats: ServiceStats::default(),
        })
    }

    /// Enrolls a chip from a full enrollment record (compacted on entry).
    ///
    /// # Errors
    ///
    /// [`ProtocolError::MalformedRecord`] from
    /// [`StoredChip::from_enrolled`], or [`ProtocolError::InvalidPolicy`]
    /// on a stage-width mismatch with the universe.
    pub fn enroll(&mut self, record: &EnrolledChip) -> Result<Option<StoredChip>, ProtocolError> {
        self.enroll_stored(StoredChip::from_enrolled(record)?)
    }

    /// Enrolls an already-compacted record.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::InvalidPolicy`] on a stage-width mismatch with the
    /// universe.
    pub fn enroll_stored(&mut self, chip: StoredChip) -> Result<Option<StoredChip>, ProtocolError> {
        if chip.stages() != self.universe.stages() {
            return Err(ProtocolError::InvalidPolicy {
                reason: "stored chip stage width does not match the universe",
            });
        }
        Ok(self.store.insert(chip))
    }

    /// Re-enrolls an *already-enrolled* chip from a fresh enrollment
    /// record: replaces the compact store record (evicting its stale warm
    /// planes), clears the `needs_reenrollment` flag and reinstates the
    /// chip — the service twin of
    /// [`super::session::SessionManager::reenroll_chip`]. Returns the
    /// superseded compact record.
    ///
    /// # Errors
    ///
    /// - [`ProtocolError::UnknownChip`] if the chip was never enrolled.
    /// - [`ProtocolError::InvalidPolicy`] if the chip has in-flight
    ///   sessions (their pending rows were selected against the old
    ///   record; swapping mid-session would judge them against the wrong
    ///   planes) or on a stage-width mismatch.
    /// - [`ProtocolError::MalformedRecord`] from
    ///   [`StoredChip::from_enrolled`].
    pub fn reenroll(&mut self, record: &EnrolledChip) -> Result<StoredChip, ProtocolError> {
        self.reenroll_stored(StoredChip::from_enrolled(record)?)
    }

    /// [`AuthService::reenroll`] over an already-compacted record.
    ///
    /// # Errors
    ///
    /// As [`AuthService::reenroll`].
    pub fn reenroll_stored(&mut self, chip: StoredChip) -> Result<StoredChip, ProtocolError> {
        let chip_id = chip.chip_id();
        if self.store.chip(chip_id).is_none() {
            return Err(ProtocolError::UnknownChip { chip_id });
        }
        if self
            .chip_fifo
            .get(&chip_id)
            .is_some_and(|fifo| !fifo.is_empty())
        {
            return Err(ProtocolError::InvalidPolicy {
                reason: "cannot re-enroll a chip with in-flight sessions",
            });
        }
        if chip.stages() != self.universe.stages() {
            return Err(ProtocolError::InvalidPolicy {
                reason: "stored chip stage width does not match the universe",
            });
        }
        let previous = self
            .store
            .insert(chip)
            .ok_or(ProtocolError::UnknownChip { chip_id })?;
        let state = self.chip_states.entry(chip_id).or_default();
        state.needs_reenrollment = false;
        state.locked_out = false;
        state.consecutive_failures = 0;
        puf_telemetry::counter!("protocol.service.reenrolls").inc();
        Ok(previous)
    }

    /// Submits an authentication session for `chip_id`, to be activated no
    /// earlier than tick `not_before`. Sessions of the same chip execute
    /// serially in submission order (the per-chip FIFO); sessions of
    /// different chips interleave freely. Returns the session id.
    ///
    /// The caller supplies the device responder, the transport channel and
    /// the session rng — seed the rng from a per-session
    /// [`service_lane`] so verdicts are invariant under batching order.
    pub fn submit(
        &mut self,
        chip_id: u32,
        client: C,
        channel: Ch,
        rng: rand::rngs::StdRng,
        not_before: u64,
    ) -> u64 {
        let session_id = self.next_session_id;
        self.next_session_id += 1;
        self.stats.submitted += 1;
        puf_telemetry::counter!("protocol.service.submitted").inc();
        puf_telemetry::trace_instant!("protocol.service.enqueue");
        self.sessions.insert(
            session_id,
            ActiveSession {
                chip_id,
                client,
                channel,
                rng,
                submitted_tick: self.now,
                not_before,
                started: false,
                attempt: 0,
                events: Vec::new(),
                excluded_slots: Vec::new(),
                issued: 0,
                backoff_ticks_total: 0,
                last_verification: None,
            },
        );
        let fifo = self.chip_fifo.entry(chip_id).or_default();
        fifo.push_back(session_id);
        if fifo.len() == 1 {
            // Head of the chip's queue: schedule its activation.
            let at = not_before.max(self.now + 1);
            self.wakes.entry(at).or_default().push(session_id);
        }
        session_id
    }

    /// The current logical tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Whether any session or pending verification row remains.
    pub fn is_idle(&self) -> bool {
        self.sessions.is_empty() && self.pending.is_empty()
    }

    /// Rows currently awaiting a batched verdict.
    pub fn pending_rows(&self) -> usize {
        self.pending.len()
    }

    /// The shard's chip store.
    pub fn store(&self) -> &ShardStore {
        &self.store
    }

    /// The shared challenge universe.
    pub fn universe(&self) -> &ChallengeUniverse {
        &self.universe
    }

    /// The shared challenge universe handle (cheap to clone into other
    /// fleet components).
    pub fn universe_arc(&self) -> &Arc<ChallengeUniverse> {
        &self.universe
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// Per-chip session state (same bookkeeping as
    /// [`super::session::SessionManager::state`]).
    pub fn chip_state(&self, chip_id: u32) -> Option<&ChipSessionState> {
        self.chip_states.get(&chip_id)
    }

    /// Every chip's session state, in ascending chip-id order — the
    /// iteration the durable layer snapshots and lifecycle harnesses scan
    /// for `needs_reenrollment` flags.
    pub fn chip_states(&self) -> impl Iterator<Item = (u32, &ChipSessionState)> + '_ {
        self.chip_states.iter().map(|(&id, state)| (id, state))
    }

    /// Overwrites one chip's session state wholesale. Recovery-only: the
    /// durable layer uses this to re-materialize the ladder state a
    /// snapshot + WAL replay reconstructs.
    pub(crate) fn restore_chip_state(&mut self, chip_id: u32, state: ChipSessionState) {
        self.chip_states.insert(chip_id, state);
    }

    /// Administratively clears a lockout, mirroring
    /// [`super::session::SessionManager::reinstate`].
    pub fn reinstate(&mut self, chip_id: u32) {
        if let Some(state) = self.chip_states.get_mut(&chip_id) {
            state.locked_out = false;
            state.consecutive_failures = 0;
            puf_telemetry::counter!("protocol.service.reinstates").inc();
        }
    }

    /// Drains every decided verdict, in decision order.
    pub fn drain_verdicts(&mut self) -> Vec<SessionVerdict> {
        std::mem::take(&mut self.verdicts)
    }

    /// Advances the event loop one tick: wakes due sessions, warms their
    /// chips in one fleet dispatch, runs their attempts, and flushes the
    /// pending queue if it is full or its oldest row has aged out.
    /// Returns the number of verdicts decided this tick.
    pub fn tick(&mut self) -> usize {
        let decided_before = self.verdicts.len();
        self.now += 1;
        self.stats.ticks += 1;
        puf_telemetry::counter!("protocol.service.ticks").inc();
        let _trace = puf_telemetry::trace_span!("protocol.service.tick");

        // 1. Collect sessions whose wake tick has arrived, in id order.
        let mut due: Vec<u64> = Vec::new();
        loop {
            match self.wakes.first_key_value() {
                Some((&at, _)) if at <= self.now => {
                    if let Some((_, ids)) = self.wakes.pop_first() {
                        due.extend(ids);
                    }
                }
                _ => break,
            }
        }
        due.sort_unstable();

        // 2. Warm every cold chip the due sessions touch — one fleet
        // dispatch through the bit-sliced engine for the whole tick.
        self.warm_due(&due);

        // 3. Run each due session's next attempt.
        for session_id in due {
            self.step_session(session_id);
        }

        // 4. Latency-bounding flush: full block or aged-out head.
        let aged = self.pending.front().is_some_and(|row| {
            self.now.saturating_sub(row.enqueued_tick) >= self.config.flush_ticks
        });
        if self.pending.len() >= self.config.flush_rows || aged {
            if aged && self.pending.len() < self.config.flush_rows {
                self.stats.aged_flushes += 1;
            }
            self.flush();
        }
        puf_telemetry::gauge!("protocol.service.pending").set(self.pending.len() as f64);
        self.verdicts.len() - decided_before
    }

    /// Runs ticks until the shard is idle or `max_ticks` have elapsed.
    /// Returns `true` if the shard drained.
    pub fn run_until_idle(&mut self, max_ticks: u64) -> bool {
        let mut used = 0u64;
        while !self.is_idle() {
            if used >= max_ticks {
                return false;
            }
            self.tick();
            used += 1;
        }
        true
    }

    /// Warms the cold chips among the due sessions' targets in one
    /// [`warm_chips`] fleet dispatch.
    fn warm_due(&mut self, due: &[u64]) {
        let mut cold: Vec<u32> = due
            .iter()
            .filter_map(|id| self.sessions.get(id).map(|s| s.chip_id))
            .filter(|id| self.store.chips.contains_key(id) && !self.store.warm.contains_key(id))
            .collect();
        cold.sort_unstable();
        cold.dedup();
        if cold.is_empty() {
            return;
        }
        let _span = puf_telemetry::span!("protocol.service.warm");
        let _trace = puf_telemetry::trace_span!("protocol.service.warm");
        let mut models: Vec<(u32, ShiftedChipModel)> = Vec::with_capacity(cold.len());
        for chip_id in cold {
            // A record that cannot rebuild is left cold; its sessions
            // fail with MalformedRecord at attempt time.
            if let Some(chip) = self.store.chips.get(&chip_id) {
                if let Ok(model) = chip.shifted_models() {
                    models.push((chip_id, model));
                }
            }
        }
        let member_evals: u64 = models
            .iter()
            .map(|(_, m)| 2 * m.members() as u64 * self.universe.len() as u64)
            .sum();
        let warmed = warm_chips(&self.universe, &models);
        self.stats.warm_batches += 1;
        self.stats.warm_chips += warmed.len() as u64;
        self.stats.warm_member_evals += member_evals;
        puf_telemetry::counter!("protocol.service.warm_chips").add(warmed.len() as u64);
        puf_telemetry::counter!("protocol.service.warm_evals").add(member_evals);
        for (chip_id, warm) in warmed {
            self.store.warm.insert(chip_id, warm);
        }
    }

    /// Runs one attempt of a woken session: activation bookkeeping, pool
    /// selection, the device exchange, and either a pending-row enqueue
    /// (delivered frames) or inline transport-failure handling.
    fn step_session(&mut self, session_id: u64) {
        let Some(mut s) = self.sessions.remove(&session_id) else {
            return;
        };

        if !s.started {
            s.started = true;
            let state = self.chip_states.entry(s.chip_id).or_default();
            if state.locked_out {
                puf_telemetry::counter!("protocol.service.lockout_hits").inc();
                let err = ProtocolError::ChipLockedOut {
                    chip_id: s.chip_id,
                    consecutive_failures: state.consecutive_failures,
                };
                self.finalize(session_id, s, Err(err));
                return;
            }
            state.sessions += 1;
            puf_telemetry::counter!("protocol.service.starts").inc();
        }

        s.attempt += 1;
        s.events
            .push(SessionEvent::AttemptStarted { attempt: s.attempt });
        puf_telemetry::counter!("protocol.service.attempts").inc();
        let _trace = puf_telemetry::trace_span!("protocol.service.attempt");

        // Selection from the warm planes — same rng stream as the scalar
        // PoolSource replay.
        if !self.store.chips.contains_key(&s.chip_id) {
            let err = ProtocolError::UnknownChip { chip_id: s.chip_id };
            self.finalize(session_id, s, Err(err));
            return;
        }
        let Some(warm) = self.store.warm.get(&s.chip_id) else {
            let err = ProtocolError::MalformedRecord { chip_id: s.chip_id };
            self.finalize(session_id, s, Err(err));
            return;
        };
        if s.excluded_slots.is_empty() {
            s.excluded_slots = vec![0u64; self.universe.len().div_ceil(64)];
        }
        let excluded_slots = &s.excluded_slots;
        let selected = match pool_select(
            &self.universe,
            self.config.policy.rounds,
            self.config.policy.select_budget(),
            |slot, _| (excluded_slots[slot as usize / 64] >> (slot % 64)) & 1 == 1,
            |slot| {
                let i = slot as usize;
                warm.mask.get(i).then(|| warm.expected.get(i))
            },
            &mut s.rng,
        ) {
            Ok(selected) => selected,
            Err(e) => {
                self.finalize(session_id, s, Err(e));
                return;
            }
        };
        for (slot, _) in &selected {
            let word = &mut s.excluded_slots[*slot as usize / 64];
            let bit = 1u64 << (slot % 64);
            if *word & bit == 0 {
                *word |= bit;
                s.issued += 1;
            }
        }
        puf_telemetry::counter!("protocol.service.fresh_challenges").add(selected.len() as u64);

        let challenges: Vec<Challenge> = selected.iter().map(|(_, sel)| sel.challenge).collect();
        let transport_failure = match s.client.try_respond(&challenges) {
            Ok(response) => match s.channel.transmit(response) {
                Delivery::Delivered(bits) if bits.len() == challenges.len() => {
                    // Delivered and well-framed: queue for the batched
                    // verdict flush.
                    let slots: Vec<u32> = selected.iter().map(|(slot, _)| *slot).collect();
                    self.pending.push_back(PendingRow {
                        session_id,
                        enqueued_tick: self.now,
                        slots,
                        bits,
                    });
                    puf_telemetry::counter!("protocol.service.rows_enqueued").inc();
                    self.sessions.insert(session_id, s);
                    return;
                }
                Delivery::Delivered(_) => Some(TransportFailureKind::FrameMismatch),
                Delivery::Dropped => Some(TransportFailureKind::Dropped),
                Delivery::Straggled => Some(TransportFailureKind::Straggled),
            },
            Err(ProtocolError::Silicon(puf_silicon::SiliconError::FuseReadFailure)) => {
                Some(TransportFailureKind::MeasurementGlitch)
            }
            Err(e) => {
                self.finalize(session_id, s, Err(e));
                return;
            }
        };

        if let Some(kind) = transport_failure {
            s.events.push(SessionEvent::TransportFailed {
                attempt: s.attempt,
                kind,
            });
            puf_telemetry::counter!("protocol.service.transport_failures").inc();
            puf_telemetry::trace_instant!("protocol.service.transport_failure");
        }
        self.retry_or_conclude(session_id, s);
    }

    /// After a failed (or transport-lost) attempt: concludes the session
    /// if the attempt budget is spent, otherwise schedules the backoff
    /// retry. Mirrors the tail of `SessionManager::authenticate`'s loop.
    fn retry_or_conclude(&mut self, session_id: u64, mut s: ActiveSession<C, Ch>) {
        let total_attempts = self.config.policy.max_retries.saturating_add(1);
        if s.attempt >= total_attempts {
            if let (Some(fallback), Some(last)) = (self.config.policy.fallback, s.last_verification)
            {
                match fallback.try_accepts(last.challenges_used, last.mismatches) {
                    Ok(true) => {
                        s.events.push(SessionEvent::DegradedAccept {
                            mismatches: last.mismatches,
                        });
                        puf_telemetry::counter!("protocol.service.degraded").inc();
                        puf_telemetry::trace_instant!("protocol.service.degraded_accept");
                        self.conclude(session_id, s, SessionOutcome::Degraded);
                        return;
                    }
                    Ok(false) => {}
                    Err(e) => {
                        self.finalize(session_id, s, Err(e));
                        return;
                    }
                }
            }
            puf_telemetry::counter!("protocol.service.rejects").inc();
            puf_telemetry::trace_instant!("protocol.service.reject");
            self.conclude(session_id, s, SessionOutcome::Rejected);
            return;
        }
        let ticks = self.config.policy.backoff_ticks(s.attempt);
        s.backoff_ticks_total = s.backoff_ticks_total.saturating_add(ticks);
        s.events.push(SessionEvent::BackoffScheduled {
            attempt: s.attempt,
            ticks,
        });
        puf_telemetry::counter!("protocol.service.retries").inc();
        puf_telemetry::counter!("protocol.service.backoff_ticks").add(ticks);
        puf_telemetry::trace_instant!("protocol.service.backoff");
        let at = self.now + ticks.max(1);
        self.wakes.entry(at).or_default().push(session_id);
        self.sessions.insert(session_id, s);
    }

    /// Judges every pending row against the warm planes and advances the
    /// owning sessions — accept, lockout, retry or conclude.
    fn flush(&mut self) {
        let _span = puf_telemetry::span!("protocol.service.flush");
        let _trace = puf_telemetry::trace_span!("protocol.service.flush");
        self.stats.flushes += 1;
        self.stats.max_flush_rows = self.stats.max_flush_rows.max(self.pending.len());
        puf_telemetry::counter!("protocol.service.flushes").inc();
        puf_telemetry::counter!("protocol.service.flush_rows").add(self.pending.len() as u64);
        let rows: Vec<PendingRow> = self.pending.drain(..).collect();
        for row in rows {
            self.judge_row(row);
        }
    }

    /// Judges one delivered frame. Mirrors the verification arm of
    /// `SessionManager::authenticate` bit for bit (events, counters,
    /// lockout progress), with expected bits looked up in the warm planes
    /// instead of re-evaluated.
    fn judge_row(&mut self, row: PendingRow) {
        let Some(mut s) = self.sessions.remove(&row.session_id) else {
            return;
        };
        let Some(warm) = self.store.warm.get(&s.chip_id) else {
            // Re-enrollment between enqueue and flush evicted the planes.
            let err = ProtocolError::MalformedRecord { chip_id: s.chip_id };
            self.finalize(row.session_id, s, Err(err));
            return;
        };
        let mismatches = row
            .slots
            .iter()
            .zip(&row.bits)
            .filter(|(&slot, &bit)| warm.expected.get(slot as usize) != bit)
            .count();
        let judged =
            match AuthOutcome::try_judge(self.config.policy.primary, row.bits.len(), mismatches) {
                Ok(judged) => judged,
                Err(e) => {
                    self.finalize(row.session_id, s, Err(e));
                    return;
                }
            };
        s.last_verification = Some(judged);
        if judged.approved {
            s.events.push(SessionEvent::Accepted { attempt: s.attempt });
            puf_telemetry::counter!("protocol.service.accepts").inc();
            puf_telemetry::trace_instant!("protocol.service.accept");
            self.conclude(row.session_id, s, SessionOutcome::Accepted);
            return;
        }
        s.events.push(SessionEvent::VerificationFailed {
            attempt: s.attempt,
            mismatches,
        });
        puf_telemetry::counter!("protocol.service.verify_failures").inc();
        puf_telemetry::trace_instant!("protocol.service.verify_failure");
        let failures = {
            let state = self.chip_states.entry(s.chip_id).or_default();
            state.consecutive_failures = state.consecutive_failures.saturating_add(1);
            state.consecutive_failures
        };
        if failures >= self.config.policy.lockout_threshold {
            if let Some(state) = self.chip_states.get_mut(&s.chip_id) {
                state.locked_out = true;
            }
            s.events.push(SessionEvent::LockedOut {
                consecutive_failures: failures,
            });
            puf_telemetry::counter!("protocol.service.lockouts").inc();
            puf_telemetry::trace_instant!("protocol.service.lockout");
            self.conclude(row.session_id, s, SessionOutcome::LockedOut);
            return;
        }
        self.retry_or_conclude(row.session_id, s);
    }

    /// Applies the terminal chip-state bookkeeping and emits the report —
    /// the post-loop block of `SessionManager::authenticate`.
    fn conclude(&mut self, session_id: u64, s: ActiveSession<C, Ch>, outcome: SessionOutcome) {
        let state = self.chip_states.entry(s.chip_id).or_default();
        match outcome {
            SessionOutcome::Accepted => {
                state.consecutive_failures = 0;
                state.clean_accepts += 1;
            }
            SessionOutcome::Degraded => {
                state.needs_reenrollment = true;
            }
            SessionOutcome::Rejected | SessionOutcome::LockedOut => {}
        }
        let report = SessionReport {
            outcome,
            attempts: s.attempt,
            backoff_ticks_total: s.backoff_ticks_total,
            challenges_issued: s.issued,
            needs_reenrollment: state.needs_reenrollment,
            last_verification: s.last_verification,
            events: s.events.clone(),
        };
        self.finalize(session_id, s, Ok(report));
    }

    /// Records the verdict and activates the chip's next queued session.
    fn finalize(
        &mut self,
        session_id: u64,
        s: ActiveSession<C, Ch>,
        result: Result<SessionReport, ProtocolError>,
    ) {
        self.stats.decided += 1;
        puf_telemetry::counter!("protocol.service.verdicts").inc();
        puf_telemetry::trace_instant!("protocol.service.verdict");
        self.verdicts.push(SessionVerdict {
            session_id,
            chip_id: s.chip_id,
            submitted_tick: s.submitted_tick,
            decided_tick: self.now,
            result,
        });
        if let Some(fifo) = self.chip_fifo.get_mut(&s.chip_id) {
            if fifo.front() == Some(&session_id) {
                fifo.pop_front();
            }
            if let Some(&next) = fifo.front() {
                let at = self
                    .sessions
                    .get(&next)
                    .map(|n| n.not_before)
                    .unwrap_or(0)
                    .max(self.now + 1);
                self.wakes.entry(at).or_default().push(next);
            } else {
                self.chip_fifo.remove(&s.chip_id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::{ChipResponder, RandomResponder};
    use crate::enrollment::{enroll, EnrollmentConfig};
    use crate::session::{PerfectChannel, SessionManager};
    use puf_core::Condition;
    use puf_silicon::{Chip, ChipConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const TEST_SEED: u64 = 0x5E81_71CE;

    fn enrolled_chip(seed: u64) -> (Chip, EnrolledChip, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let chip = Chip::fabricate(3, &ChipConfig::small(), &mut rng);
        let record = enroll(&chip, &EnrollmentConfig::small(2), &mut rng).unwrap();
        (chip, record, rng)
    }

    #[test]
    fn shard_routing_is_deterministic_and_spread() {
        let mut counts = [0usize; 8];
        for chip_id in 0..4096u32 {
            let shard = shard_of(TEST_SEED, chip_id, 8);
            assert_eq!(shard, shard_of(TEST_SEED, chip_id, 8));
            counts[shard] += 1;
        }
        for (shard, &count) in counts.iter().enumerate() {
            assert!(
                count > 256,
                "shard {shard} got {count}/4096 chips — routing is badly skewed"
            );
        }
        assert_eq!(shard_of(TEST_SEED, 17, 1), 0);
        assert_eq!(shard_of(TEST_SEED, 17, 0), 0);
        // Different route seeds give different partitions.
        let moved = (0..4096u32)
            .filter(|&id| shard_of(TEST_SEED, id, 8) != shard_of(TEST_SEED ^ 1, id, 8))
            .count();
        assert!(moved > 2048);
    }

    #[test]
    fn universe_holds_distinct_indexed_challenges() {
        let mut rng = StdRng::seed_from_u64(TEST_SEED);
        let universe = ChallengeUniverse::generate(16, 300, &mut rng).unwrap();
        assert_eq!(universe.len(), 300);
        assert_eq!(universe.stages(), 16);
        assert!(universe.heap_bytes() > 0);
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..300u32 {
            let c = universe.challenge(i);
            assert!(seen.insert(c.bits()), "duplicate challenge in universe");
            assert_eq!(universe.index_of(c.bits()), Some(i));
        }
        assert_eq!(universe.index_of(u128::MAX), None);
        assert!(matches!(
            ChallengeUniverse::generate(16, 0, &mut rng),
            Err(ProtocolError::InvalidPolicy { .. })
        ));
        // 2^2 = 4 < 40 distinct challenges: must exhaust, not loop.
        assert!(matches!(
            ChallengeUniverse::generate(2, 40, &mut rng),
            Err(ProtocolError::ChallengeSelectionExhausted { .. })
        ));
    }

    #[test]
    fn stored_chip_is_compact_and_rebuildable() {
        let (_, record, _) = enrolled_chip(1);
        let stored = StoredChip::from_enrolled(&record).unwrap();
        assert_eq!(stored.chip_id(), record.chip_id);
        assert_eq!(stored.stages(), record.stages);
        assert_eq!(stored.members(), record.pufs.len());
        // n shifted weight vectors of stages+1 floats, plus the per-member
        // scalar and struct headers.
        let weights = record.pufs.len() * (record.stages + 1) * 8;
        assert!(stored.heap_bytes() >= weights);
        assert!(stored.heap_bytes() < weights + 128 * record.pufs.len() + 128);
        let models = stored.shifted_models().unwrap();
        assert_eq!(models.members(), record.pufs.len());
        assert_eq!(models.up_members().len(), models.lo_members().len());
    }

    #[test]
    fn warm_planes_match_scalar_screen_bit_for_bit() {
        let (_, record, mut rng) = enrolled_chip(2);
        let universe = ChallengeUniverse::generate(record.stages, 200, &mut rng).unwrap();
        let stored = StoredChip::from_enrolled(&record).unwrap();
        let models = vec![(record.chip_id, stored.shifted_models().unwrap())];
        let warmed = warm_chips(&universe, &models);
        assert_eq!(warmed.len(), 1);
        let warm = &warmed[0].1;
        let scalar = stored.shifted_models().unwrap();
        let mut stable = 0u64;
        for i in 0..universe.len() {
            let expect = scalar.stable_expected(universe.challenge(i as u32));
            assert_eq!(
                warm.mask.get(i),
                expect.is_some(),
                "mask bit {i} disagrees with the scalar screen"
            );
            if let Some(bit) = expect {
                assert_eq!(warm.expected.get(i), bit, "expected bit {i} disagrees");
                stable += 1;
            }
        }
        assert_eq!(warm.stable_count(), stable);
        assert!(stable > 0, "test universe produced no stable challenges");
        assert!(warm.heap_bytes() > 0);
    }

    #[test]
    fn shifted_screen_tracks_enrollment_classification() {
        // The shifted sign test and the classic threshold classification
        // may differ only within a rounding ulp of the thresholds; on a
        // random universe they should agree essentially everywhere.
        let (_, record, mut rng) = enrolled_chip(3);
        let universe = ChallengeUniverse::generate(record.stages, 500, &mut rng).unwrap();
        let stored = StoredChip::from_enrolled(&record).unwrap();
        let scalar = stored.shifted_models().unwrap();
        let mut disagreements = 0usize;
        for i in 0..universe.len() as u32 {
            let c = universe.challenge(i);
            if scalar.stable_expected(c) != record.predict_stable_xor(c) {
                disagreements += 1;
            }
        }
        assert!(
            disagreements <= 1,
            "{disagreements}/500 shifted-vs-classic disagreements — more than rounding"
        );
    }

    fn service_setup(
        policy: SessionPolicy,
        seed: u64,
    ) -> (
        Chip,
        StoredChip,
        Arc<ChallengeUniverse>,
        AuthService<ChipResponder<'static>, PerfectChannel>,
    ) {
        // Leak the chip so ChipResponder's borrow lives long enough for
        // the service to own it; test-only.
        let mut rng = StdRng::seed_from_u64(seed);
        let chip = Chip::fabricate(3, &ChipConfig::small(), &mut rng);
        let record = enroll(&chip, &EnrollmentConfig::small(2), &mut rng).unwrap();
        let universe = Arc::new(ChallengeUniverse::generate(record.stages, 400, &mut rng).unwrap());
        let stored = StoredChip::from_enrolled(&record).unwrap();
        let mut service =
            AuthService::new(ServiceConfig::new(policy), Arc::clone(&universe)).unwrap();
        service.enroll_stored(stored.clone()).unwrap();
        (chip, stored, universe, service)
    }

    #[test]
    fn genuine_session_accepts_and_matches_sequential_replay() {
        let policy = SessionPolicy::resilient(15);
        let (chip, stored, universe, _) = service_setup(policy, 4);
        let chip_id = stored.chip_id();

        let mut service: AuthService<ChipResponder<'_>, PerfectChannel> =
            AuthService::new(ServiceConfig::new(policy), Arc::clone(&universe)).unwrap();
        service.enroll_stored(stored.clone()).unwrap();
        let session_rng = StdRng::seed_from_u64(service_lane(TEST_SEED, 0));
        let client = ChipResponder::new(&chip, 2, Condition::NOMINAL, 5);
        service.submit(chip_id, client, PerfectChannel, session_rng, 0);
        assert!(service.run_until_idle(10_000));
        let verdicts = service.drain_verdicts();
        assert_eq!(verdicts.len(), 1);
        let batched = verdicts[0].result.clone().unwrap();
        assert_eq!(batched.outcome, SessionOutcome::Accepted);
        assert!(service.stats().warm_batches >= 1);
        assert!(service.stats().warm_member_evals > 0);

        // Sequential replay: same pool, same session rng, scalar screen.
        let mut mgr = SessionManager::new(Server::new(), policy).unwrap();
        let mut source = PoolSource::new(Arc::clone(&universe));
        source.register(&stored).unwrap();
        let mut replay_rng = StdRng::seed_from_u64(service_lane(TEST_SEED, 0));
        let mut client = ChipResponder::new(&chip, 2, Condition::NOMINAL, 5);
        let sequential = mgr
            .authenticate_with_source(
                chip_id,
                &mut client,
                &mut PerfectChannel,
                &mut source,
                &mut replay_rng,
            )
            .unwrap();
        assert_eq!(batched, sequential, "batched and sequential reports differ");
    }

    #[test]
    fn impostor_sessions_lock_out_and_surface_lockout_errors() {
        let policy = SessionPolicy {
            lockout_threshold: 3,
            ..SessionPolicy::resilient(10)
        };
        let (_, stored, universe, _) = service_setup(policy, 5);
        let chip_id = stored.chip_id();
        let mut service: AuthService<RandomResponder, PerfectChannel> =
            AuthService::new(ServiceConfig::new(policy), universe).unwrap();
        service.enroll_stored(stored).unwrap();
        for lane in 0..3u64 {
            let rng = StdRng::seed_from_u64(service_lane(TEST_SEED, lane));
            service.submit(chip_id, RandomResponder::new(lane), PerfectChannel, rng, 0);
        }
        assert!(service.run_until_idle(100_000));
        let verdicts = service.drain_verdicts();
        assert_eq!(verdicts.len(), 3);
        let first = verdicts[0].result.clone().unwrap();
        assert_eq!(first.outcome, SessionOutcome::LockedOut);
        assert!(service.chip_state(chip_id).unwrap().locked_out);
        // Later sessions of the locked chip fail fast, in FIFO order.
        for v in &verdicts[1..] {
            assert!(matches!(v.result, Err(ProtocolError::ChipLockedOut { .. })));
        }
        service.reinstate(chip_id);
        assert!(!service.chip_state(chip_id).unwrap().locked_out);
    }

    #[test]
    fn unknown_chip_yields_error_verdict() {
        let policy = SessionPolicy::resilient(10);
        let (_, stored, universe, mut service) = service_setup(policy, 6);
        let _ = stored;
        let rng = StdRng::seed_from_u64(service_lane(TEST_SEED, 9));
        service.submit(
            999,
            ChipResponder::new(
                Box::leak(Box::new(Chip::fabricate(
                    1,
                    &ChipConfig::small(),
                    &mut StdRng::seed_from_u64(7),
                ))),
                1,
                Condition::NOMINAL,
                1,
            ),
            PerfectChannel,
            rng,
            0,
        );
        let _ = universe;
        assert!(service.run_until_idle(10_000));
        let verdicts = service.drain_verdicts();
        assert_eq!(verdicts.len(), 1);
        assert!(matches!(
            verdicts[0].result,
            Err(ProtocolError::UnknownChip { chip_id: 999 })
        ));
    }

    #[test]
    fn low_load_verdict_latency_is_bounded_by_flush_ticks() {
        let policy = SessionPolicy::resilient(12);
        let (chip, stored, universe, _) = service_setup(policy, 7);
        let chip_id = stored.chip_id();
        let config = ServiceConfig {
            policy,
            flush_rows: usize::MAX >> 1, // never fill: age must trigger
            flush_ticks: 3,
        };
        let mut service: AuthService<ChipResponder<'_>, PerfectChannel> =
            AuthService::new(config, universe).unwrap();
        service.enroll_stored(stored).unwrap();
        let rng = StdRng::seed_from_u64(service_lane(TEST_SEED, 1));
        service.submit(
            chip_id,
            ChipResponder::new(&chip, 2, Condition::NOMINAL, 6),
            PerfectChannel,
            rng,
            0,
        );
        assert!(service.run_until_idle(1_000));
        let verdicts = service.drain_verdicts();
        assert_eq!(verdicts.len(), 1);
        let latency = verdicts[0].decided_tick - verdicts[0].submitted_tick;
        assert!(
            latency <= 1 + config.flush_ticks + 1,
            "single-session verdict latency {latency} exceeds the flush bound"
        );
        assert!(service.stats().aged_flushes >= 1);
        assert_eq!(service.stats().decided, 1);
    }

    #[test]
    fn config_validation_rejects_degenerate_flush() {
        let policy = SessionPolicy::strict(10);
        let mut config = ServiceConfig::new(policy);
        assert!(config.validate().is_ok());
        config.flush_rows = 0;
        assert!(config.validate().is_err());
        config.flush_rows = 1;
        config.flush_ticks = 0;
        assert!(config.validate().is_err());
    }
}
