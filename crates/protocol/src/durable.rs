//! Durable, crash-recoverable persistence for the authentication service.
//!
//! The fleet service (`protocol::service`) keeps its sharded chip store in
//! memory; a crash loses every enrollment, lockout and challenge-pool
//! account. This module adds the durability layer (DESIGN.md §16):
//!
//! - **Write-ahead log** — every control-plane event (enrollment,
//!   re-enrollment, lockout, reinstatement, pool accounting, state sync)
//!   is appended as a self-delimiting CRC-framed record *before* the
//!   in-memory state advances. Enrollment payloads reuse the
//!   [`crate::storage`] codec verbatim, so a WAL record is as
//!   self-validating as a stored database.
//! - **Compacted snapshots** — every [`DurableLog::snapshot_every`] events
//!   the materialized [`DurableState`] is re-encoded into a single
//!   magic/version/CRC-framed snapshot and the WAL is truncated, bounding
//!   replay time.
//! - **Salvaging recovery** — [`recover`] replays snapshot + WAL back into
//!   a [`DurableState`] (and from there a bit-identical
//!   [`AuthService`] via [`DurableState::restore_service`]). Recovery
//!   never trusts a byte the CRCs cannot vouch for: it salvages the
//!   longest valid frame prefix, skips frames a retried flush duplicated
//!   (sequence numbers make duplicates exact, not heuristic), and reports
//!   precisely what was dropped in a [`RecoveryReport`].
//!
//! The byte formats (all integers little-endian):
//!
//! ```text
//! snapshot := "XSNP" | u16 version | u64 last_seq
//!           | u32 n_records | (u32 len | storage-record-db)*
//!           | u32 n_states  | (u32 chip_id | state)*
//!           | u32 n_pools   | (u32 chip_id | u32 n | u128 bits*)*
//!           | u32 crc32(everything before)
//! frame    := "XWAL" | u32 len | u32 crc32(payload) | payload
//! payload  := u64 seq | u8 tag | body
//! state    := u32 consecutive_failures | u8 locked_out
//!           | u8 needs_reenrollment | u64 sessions | u64 clean_accepts
//! ```
//!
//! The storage medium is the caller's: both buffers are plain byte
//! vectors, so the protocol crate stays free of filesystem access and the
//! decade-soak harness can crash, corrupt ([`crate::faults::DiskFault`])
//! and recover them deterministically.

use crate::auth::Responder;
use crate::enrollment::EnrolledChip;
use crate::server::Server;
use crate::service::{AuthService, ChallengeUniverse, ServiceConfig};
use crate::session::{Channel, ChipSessionState, SessionManager, SessionPolicy};
use crate::storage::{self, crc32, DecodeError};
use crate::ProtocolError;
use std::collections::BTreeMap;
use std::sync::Arc;

const SNAPSHOT_MAGIC: &[u8; 4] = b"XSNP";
const WAL_MAGIC: &[u8; 4] = b"XWAL";
const SNAPSHOT_VERSION: u16 = 1;
/// Frame header bytes before the payload: magic 4 + len 4 + crc 4.
const FRAME_HEADER: usize = 12;
/// Minimum payload: seq 8 + tag 1.
const MIN_PAYLOAD: usize = 9;

/// One durable control-plane event, in the order the service applies it.
#[derive(Clone, Debug, PartialEq)]
pub enum DurableEvent {
    /// A chip was enrolled (full-fidelity record; the compact service
    /// form is re-derived deterministically on recovery).
    Enroll(EnrolledChip),
    /// An already-enrolled chip was re-measured: fresh model, pool reset,
    /// lockout reinstated, `needs_reenrollment` cleared.
    Reenroll(EnrolledChip),
    /// The chip crossed the lockout threshold.
    Lockout {
        /// The locked-out chip.
        chip_id: u32,
    },
    /// An administrative reinstatement (lockout lifted, failures reset).
    Reinstate {
        /// The reinstated chip.
        chip_id: u32,
    },
    /// Challenge-pool accounting: these bit patterns were issued and must
    /// never be re-exposed to this chip.
    PoolConsume {
        /// The chip whose pool depleted.
        chip_id: u32,
        /// The consumed challenge bit patterns.
        bits: Vec<u128>,
    },
    /// A wholesale sync of one chip's session-ladder state (counters,
    /// flags) — the coarse-grained account the soak harness appends after
    /// each serving batch.
    StateSync {
        /// The chip whose state is synced.
        chip_id: u32,
        /// The state as of this event.
        state: ChipSessionState,
    },
}

impl DurableEvent {
    fn tag(&self) -> u8 {
        match self {
            DurableEvent::Enroll(_) => 1,
            DurableEvent::Reenroll(_) => 2,
            DurableEvent::Lockout { .. } => 3,
            DurableEvent::Reinstate { .. } => 4,
            DurableEvent::PoolConsume { .. } => 5,
            DurableEvent::StateSync { .. } => 6,
        }
    }
}

// ---------------------------------------------------------------------------
// Little-endian slice readers: every read is bounds-checked and returns a
// typed DecodeError instead of panicking (lint rule L4).
// ---------------------------------------------------------------------------

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, at: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len().saturating_sub(self.at)
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], DecodeError> {
        let end = self.at.checked_add(n).ok_or(DecodeError::Truncated {
            while_reading: what,
        })?;
        let slice = self.bytes.get(self.at..end).ok_or(DecodeError::Truncated {
            while_reading: what,
        })?;
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, DecodeError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, DecodeError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, DecodeError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, DecodeError> {
        let b = self.take(8, what)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(b);
        Ok(u64::from_le_bytes(raw))
    }

    fn u128(&mut self, what: &'static str) -> Result<u128, DecodeError> {
        let b = self.take(16, what)?;
        let mut raw = [0u8; 16];
        raw.copy_from_slice(b);
        Ok(u128::from_le_bytes(raw))
    }
}

fn put_state(out: &mut Vec<u8>, state: &ChipSessionState) {
    out.extend_from_slice(&state.consecutive_failures.to_le_bytes());
    out.push(u8::from(state.locked_out));
    out.push(u8::from(state.needs_reenrollment));
    out.extend_from_slice(&state.sessions.to_le_bytes());
    out.extend_from_slice(&state.clean_accepts.to_le_bytes());
}

fn get_state(r: &mut Reader<'_>) -> Result<ChipSessionState, DecodeError> {
    let consecutive_failures = r.u32("state failures")?;
    let locked_out = match r.u8("state lockout flag")? {
        0 => false,
        1 => true,
        _ => {
            return Err(DecodeError::Corrupt {
                what: "state lockout flag is not a boolean",
            })
        }
    };
    let needs_reenrollment = match r.u8("state reenroll flag")? {
        0 => false,
        1 => true,
        _ => {
            return Err(DecodeError::Corrupt {
                what: "state reenroll flag is not a boolean",
            })
        }
    };
    let sessions = r.u64("state sessions")?;
    let clean_accepts = r.u64("state clean accepts")?;
    Ok(ChipSessionState {
        consecutive_failures,
        locked_out,
        needs_reenrollment,
        sessions,
        clean_accepts,
    })
}

fn put_record(out: &mut Vec<u8>, record: &EnrolledChip) {
    let db = storage::encode_record(record);
    out.extend_from_slice(&(db.len() as u32).to_le_bytes());
    out.extend_from_slice(&db);
}

fn get_record(r: &mut Reader<'_>) -> Result<EnrolledChip, DecodeError> {
    let len = r.u32("record length")? as usize;
    let db = r.take(len, "record body")?;
    let mut records = storage::decode_records(db)?;
    if records.len() != 1 {
        return Err(DecodeError::Corrupt {
            what: "event record database must hold exactly one record",
        });
    }
    records.pop().ok_or(DecodeError::Corrupt {
        what: "event record database must hold exactly one record",
    })
}

fn put_event(out: &mut Vec<u8>, event: &DurableEvent) {
    out.push(event.tag());
    match event {
        DurableEvent::Enroll(record) | DurableEvent::Reenroll(record) => {
            put_record(out, record);
        }
        DurableEvent::Lockout { chip_id } | DurableEvent::Reinstate { chip_id } => {
            out.extend_from_slice(&chip_id.to_le_bytes());
        }
        DurableEvent::PoolConsume { chip_id, bits } => {
            out.extend_from_slice(&chip_id.to_le_bytes());
            out.extend_from_slice(&(bits.len() as u32).to_le_bytes());
            for b in bits {
                out.extend_from_slice(&b.to_le_bytes());
            }
        }
        DurableEvent::StateSync { chip_id, state } => {
            out.extend_from_slice(&chip_id.to_le_bytes());
            put_state(out, state);
        }
    }
}

fn get_event(r: &mut Reader<'_>) -> Result<DurableEvent, DecodeError> {
    let tag = r.u8("event tag")?;
    let event = match tag {
        1 => DurableEvent::Enroll(get_record(r)?),
        2 => DurableEvent::Reenroll(get_record(r)?),
        3 => DurableEvent::Lockout {
            chip_id: r.u32("lockout chip id")?,
        },
        4 => DurableEvent::Reinstate {
            chip_id: r.u32("reinstate chip id")?,
        },
        5 => {
            let chip_id = r.u32("pool chip id")?;
            let n = r.u32("pool entry count")? as usize;
            // Over-long guard: each entry takes 16 bytes, so the declared
            // count can never exceed what the payload physically holds.
            if n > r.remaining() / 16 {
                return Err(DecodeError::Corrupt {
                    what: "pool entry count exceeds the payload",
                });
            }
            let mut bits = Vec::with_capacity(n);
            for _ in 0..n {
                bits.push(r.u128("pool entry")?);
            }
            DurableEvent::PoolConsume { chip_id, bits }
        }
        6 => DurableEvent::StateSync {
            chip_id: r.u32("sync chip id")?,
            state: get_state(r)?,
        },
        _ => {
            return Err(DecodeError::Corrupt {
                what: "unknown event tag",
            })
        }
    };
    if r.remaining() > 0 {
        return Err(DecodeError::TrailingBytes {
            extra: r.remaining(),
        });
    }
    Ok(event)
}

/// The durable subset of the service: full-fidelity enrollment records,
/// per-chip session-ladder state and per-chip consumed challenge pools.
/// Everything a crash must not lose; everything else (warm planes, event
/// loops, in-flight sessions) is re-derived or abandoned on recovery.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DurableState {
    records: BTreeMap<u32, EnrolledChip>,
    states: BTreeMap<u32, ChipSessionState>,
    pools: BTreeMap<u32, Vec<u128>>,
}

impl DurableState {
    /// An empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies one event. Replaying the same event sequence from the same
    /// starting state always lands in the same state — recovery depends on
    /// nothing else.
    pub fn apply(&mut self, event: &DurableEvent) {
        match event {
            DurableEvent::Enroll(record) => {
                self.records.insert(record.chip_id, record.clone());
                self.states.entry(record.chip_id).or_default();
            }
            DurableEvent::Reenroll(record) => {
                self.records.insert(record.chip_id, record.clone());
                let state = self.states.entry(record.chip_id).or_default();
                state.needs_reenrollment = false;
                state.locked_out = false;
                state.consecutive_failures = 0;
                // Fresh model ⇒ the challenge pool account starts over.
                self.pools.remove(&record.chip_id);
            }
            DurableEvent::Lockout { chip_id } => {
                self.states.entry(*chip_id).or_default().locked_out = true;
            }
            DurableEvent::Reinstate { chip_id } => {
                let state = self.states.entry(*chip_id).or_default();
                state.locked_out = false;
                state.consecutive_failures = 0;
            }
            DurableEvent::PoolConsume { chip_id, bits } => {
                let pool = self.pools.entry(*chip_id).or_default();
                pool.extend_from_slice(bits);
                pool.sort_unstable();
                pool.dedup();
            }
            DurableEvent::StateSync { chip_id, state } => {
                self.states.insert(*chip_id, *state);
            }
        }
    }

    /// The enrollment records, in ascending chip-id order.
    pub fn records(&self) -> impl Iterator<Item = &EnrolledChip> + '_ {
        self.records.values()
    }

    /// One chip's record.
    pub fn record(&self, chip_id: u32) -> Option<&EnrolledChip> {
        self.records.get(&chip_id)
    }

    /// The per-chip session states, in ascending chip-id order.
    pub fn states(&self) -> impl Iterator<Item = (u32, &ChipSessionState)> + '_ {
        self.states.iter().map(|(&id, s)| (id, s))
    }

    /// One chip's session state.
    pub fn state(&self, chip_id: u32) -> Option<&ChipSessionState> {
        self.states.get(&chip_id)
    }

    /// One chip's consumed challenge patterns (ascending, deduplicated).
    pub fn pool(&self, chip_id: u32) -> &[u128] {
        self.pools.get(&chip_id).map_or(&[], Vec::as_slice)
    }

    /// Number of enrolled chips.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no chips are enrolled.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Encodes the state into one CRC-framed snapshot, recording
    /// `last_seq` as the newest WAL sequence number the snapshot covers.
    /// Byte-deterministic: equal states encode to equal bytes.
    pub fn encode_snapshot(&self, last_seq: u64) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&last_seq.to_le_bytes());
        out.extend_from_slice(&(self.records.len() as u32).to_le_bytes());
        for record in self.records.values() {
            put_record(&mut out, record);
        }
        out.extend_from_slice(&(self.states.len() as u32).to_le_bytes());
        for (chip_id, state) in &self.states {
            out.extend_from_slice(&chip_id.to_le_bytes());
            put_state(&mut out, state);
        }
        out.extend_from_slice(&(self.pools.len() as u32).to_le_bytes());
        for (chip_id, pool) in &self.pools {
            out.extend_from_slice(&chip_id.to_le_bytes());
            out.extend_from_slice(&(pool.len() as u32).to_le_bytes());
            for bits in pool {
                out.extend_from_slice(&bits.to_le_bytes());
            }
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        puf_telemetry::gauge!("protocol.durable.snapshot_bytes").set(out.len() as f64);
        out
    }

    /// Decodes a snapshot, returning the state and its covered `last_seq`.
    ///
    /// # Errors
    ///
    /// Any [`DecodeError`]; the CRC is checked before any structure is
    /// trusted.
    pub fn decode_snapshot(bytes: &[u8]) -> Result<(Self, u64), DecodeError> {
        if bytes.len() < 4 {
            return Err(DecodeError::Truncated {
                while_reading: "snapshot checksum trailer",
            });
        }
        let (payload, trailer) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
        let computed = crc32(payload);
        if stored != computed {
            return Err(DecodeError::ChecksumMismatch { stored, computed });
        }
        let mut r = Reader::new(payload);
        let magic = r.take(4, "snapshot magic")?;
        if magic != SNAPSHOT_MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let version = r.u16("snapshot version")?;
        if version != SNAPSHOT_VERSION {
            return Err(DecodeError::UnsupportedVersion { found: version });
        }
        let last_seq = r.u64("snapshot last_seq")?;
        let mut state = Self::new();
        let n_records = r.u32("snapshot record count")? as usize;
        for _ in 0..n_records {
            let record = get_record(&mut r)?;
            state.records.insert(record.chip_id, record);
        }
        let n_states = r.u32("snapshot state count")? as usize;
        // Over-long guard: each state entry is a fixed 26 bytes.
        if n_states > r.remaining() / 26 {
            return Err(DecodeError::Corrupt {
                what: "snapshot state count exceeds the payload",
            });
        }
        for _ in 0..n_states {
            let chip_id = r.u32("snapshot state chip id")?;
            state.states.insert(chip_id, get_state(&mut r)?);
        }
        let n_pools = r.u32("snapshot pool count")? as usize;
        if n_pools > r.remaining() / 8 {
            return Err(DecodeError::Corrupt {
                what: "snapshot pool count exceeds the payload",
            });
        }
        for _ in 0..n_pools {
            let chip_id = r.u32("snapshot pool chip id")?;
            let n = r.u32("snapshot pool entry count")? as usize;
            if n > r.remaining() / 16 {
                return Err(DecodeError::Corrupt {
                    what: "snapshot pool entry count exceeds the payload",
                });
            }
            let mut pool = Vec::with_capacity(n);
            for _ in 0..n {
                pool.push(r.u128("snapshot pool entry")?);
            }
            // The encoder writes ascending deduplicated pools; anything
            // else is corruption the CRC happened to miss.
            if pool.windows(2).any(|w| w[0] >= w[1]) {
                return Err(DecodeError::Corrupt {
                    what: "snapshot pool is not strictly ascending",
                });
            }
            state.pools.insert(chip_id, pool);
        }
        if r.remaining() > 0 {
            return Err(DecodeError::TrailingBytes {
                extra: r.remaining(),
            });
        }
        Ok((state, last_seq))
    }

    /// Rebuilds a one-shot [`Server`] from the durable records.
    pub fn restore_server(&self) -> Server {
        let mut server = Server::new();
        for record in self.records.values() {
            server.register(record.clone());
        }
        server
    }

    /// Rebuilds a [`SessionManager`] from the durable records and session
    /// states: registered server, then each chip's ladder state restored
    /// wholesale.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::InvalidPolicy`] if `policy` fails validation.
    pub fn restore_session_manager(
        &self,
        policy: SessionPolicy,
    ) -> Result<SessionManager, ProtocolError> {
        let mut manager = SessionManager::new(self.restore_server(), policy)?;
        for (&chip_id, state) in &self.states {
            manager.restore_chip_state(chip_id, *state);
        }
        Ok(manager)
    }

    /// Rebuilds an [`AuthService`] shard bit-identical to one that
    /// enrolled these records and reached these session states: the
    /// compact store is re-derived through the same
    /// [`crate::service::StoredChip::from_enrolled`] compaction, session
    /// states are restored wholesale, and warm planes rebuild lazily (they
    /// are a deterministic function of records × universe).
    ///
    /// # Errors
    ///
    /// [`ProtocolError::InvalidPolicy`] / [`ProtocolError::MalformedRecord`]
    /// as for [`AuthService::enroll`].
    pub fn restore_service<C: Responder, Ch: Channel>(
        &self,
        config: ServiceConfig,
        universe: Arc<ChallengeUniverse>,
    ) -> Result<AuthService<C, Ch>, ProtocolError> {
        let mut service = AuthService::new(config, universe)?;
        for record in self.records.values() {
            service.enroll(record)?;
        }
        for (&chip_id, state) in &self.states {
            service.restore_chip_state(chip_id, *state);
        }
        Ok(service)
    }
}

/// The append-only write-ahead log plus its periodically compacted
/// snapshot, with the materialized [`DurableState`] alongside.
///
/// The two byte buffers are the durable medium: persist them wherever
/// (the soak harness writes them to checkpoint files), corrupt them with
/// [`crate::faults::DiskFault`], and hand them to [`recover`].
#[derive(Clone, Debug)]
pub struct DurableLog {
    state: DurableState,
    snapshot: Vec<u8>,
    wal: Vec<u8>,
    next_seq: u64,
    wal_events: u64,
    snapshot_every: u64,
}

impl DurableLog {
    /// An empty log that compacts after every `snapshot_every` appended
    /// events (clamped to at least 1).
    pub fn new(snapshot_every: u64) -> Self {
        let state = DurableState::new();
        let snapshot = state.encode_snapshot(0);
        Self {
            state,
            snapshot,
            wal: Vec::new(),
            next_seq: 1,
            wal_events: 0,
            snapshot_every: snapshot_every.max(1),
        }
    }

    /// The compaction threshold.
    pub fn snapshot_every(&self) -> u64 {
        self.snapshot_every
    }

    /// Changes the compaction threshold (clamped to at least 1).
    /// [`recover`] returns an eagerly-compacting log; a long-running
    /// harness restores its own threshold here after adopting the salvage.
    pub fn set_snapshot_every(&mut self, snapshot_every: u64) {
        self.snapshot_every = snapshot_every.max(1);
    }

    /// The materialized state.
    pub fn state(&self) -> &DurableState {
        &self.state
    }

    /// The last compacted snapshot bytes.
    pub fn snapshot_bytes(&self) -> &[u8] {
        &self.snapshot
    }

    /// The WAL bytes appended since the last compaction.
    pub fn wal_bytes(&self) -> &[u8] {
        &self.wal
    }

    /// Events currently in the WAL (since the last compaction).
    pub fn wal_events(&self) -> u64 {
        self.wal_events
    }

    /// The sequence number the next append will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Appends one event: the WAL frame is written (logically, to the
    /// durable buffer) before the in-memory state advances, then the log
    /// compacts if the WAL reached the threshold.
    pub fn append(&mut self, event: &DurableEvent) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut payload = Vec::with_capacity(32);
        payload.extend_from_slice(&seq.to_le_bytes());
        put_event(&mut payload, event);
        self.wal.extend_from_slice(WAL_MAGIC);
        self.wal
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.wal.extend_from_slice(&crc32(&payload).to_le_bytes());
        self.wal.extend_from_slice(&payload);
        self.state.apply(event);
        self.wal_events += 1;
        puf_telemetry::counter!("protocol.durable.appends").inc();
        puf_telemetry::gauge!("protocol.durable.wal_bytes").set(self.wal.len() as f64);
        if self.wal_events >= self.snapshot_every {
            self.compact();
        }
    }

    /// Re-encodes the state into a fresh snapshot and truncates the WAL.
    pub fn compact(&mut self) {
        self.snapshot = self.state.encode_snapshot(self.next_seq.saturating_sub(1));
        self.wal.clear();
        self.wal_events = 0;
        puf_telemetry::counter!("protocol.durable.compactions").inc();
        puf_telemetry::gauge!("protocol.durable.wal_bytes").set(0.0);
    }
}

/// What [`recover`] salvaged and what it had to drop.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveryReport {
    /// Whether the snapshot decoded cleanly. When `false` the recovery
    /// started from an empty state and only WAL events survive.
    pub snapshot_recovered: bool,
    /// Why the snapshot was rejected, if it was.
    pub snapshot_error: Option<DecodeError>,
    /// Fresh events replayed from the WAL.
    pub events_applied: u64,
    /// Frames skipped because a retried flush had already delivered their
    /// sequence number.
    pub duplicates_skipped: u64,
    /// WAL bytes covered by fully valid frames.
    pub wal_bytes_salvaged: usize,
    /// WAL bytes abandoned after the last valid frame.
    pub wal_bytes_dropped: usize,
    /// Why the WAL scan stopped early, if it did.
    pub wal_error: Option<DecodeError>,
}

impl RecoveryReport {
    /// Whether recovery was lossless: snapshot intact and every WAL byte
    /// accounted for by a valid (possibly duplicate) frame.
    pub fn is_clean(&self) -> bool {
        self.snapshot_recovered && self.wal_bytes_dropped == 0 && self.wal_error.is_none()
    }
}

/// Replays `snapshot` + `wal` into a fresh [`DurableLog`], salvaging the
/// longest valid prefix of each.
///
/// - A corrupt or truncated snapshot falls back to the empty state (the
///   report says so); the WAL is still replayed on top.
/// - The WAL is scanned frame by frame; the scan stops at the first
///   incomplete frame, checksum mismatch or undecodable payload, and
///   everything after that offset is reported dropped.
/// - Frames whose sequence number was already covered (a retried flush's
///   duplicated tail, or a frame the snapshot already compacted) are
///   skipped and counted, not re-applied.
///
/// The returned log has compacted the salvage into a fresh snapshot, so a
/// subsequent crash replays from here.
pub fn recover(snapshot: &[u8], wal: &[u8]) -> (DurableLog, RecoveryReport) {
    puf_telemetry::counter!("protocol.durable.recoveries").inc();
    let (mut state, mut last_seq, snapshot_recovered, snapshot_error) =
        match DurableState::decode_snapshot(snapshot) {
            Ok((state, last_seq)) => (state, last_seq, true, None),
            Err(e) => (DurableState::new(), 0, false, Some(e)),
        };

    let mut at = 0usize;
    let mut events_applied = 0u64;
    let mut duplicates_skipped = 0u64;
    let mut wal_error = None;
    while at < wal.len() {
        let rest = &wal[at..];
        let Some(header) = rest.get(..FRAME_HEADER) else {
            wal_error = Some(DecodeError::Truncated {
                while_reading: "frame header",
            });
            break;
        };
        if &header[..4] != WAL_MAGIC {
            wal_error = Some(DecodeError::BadMagic);
            break;
        }
        let len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]) as usize;
        if len < MIN_PAYLOAD {
            wal_error = Some(DecodeError::Corrupt {
                what: "frame payload too short for a sequence number and tag",
            });
            break;
        }
        let stored = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
        let Some(payload) = rest.get(FRAME_HEADER..FRAME_HEADER + len) else {
            wal_error = Some(DecodeError::Truncated {
                while_reading: "frame payload",
            });
            break;
        };
        let computed = crc32(payload);
        if stored != computed {
            wal_error = Some(DecodeError::ChecksumMismatch { stored, computed });
            break;
        }
        let mut r = Reader::new(payload);
        let (seq, event) = match r
            .u64("frame sequence number")
            .and_then(|seq| get_event(&mut r).map(|event| (seq, event)))
        {
            Ok(decoded) => decoded,
            Err(e) => {
                wal_error = Some(e);
                break;
            }
        };
        if seq <= last_seq {
            duplicates_skipped += 1;
        } else {
            state.apply(&event);
            last_seq = seq;
            events_applied += 1;
        }
        at += FRAME_HEADER + len;
    }

    let report = RecoveryReport {
        snapshot_recovered,
        snapshot_error,
        events_applied,
        duplicates_skipped,
        wal_bytes_salvaged: at,
        wal_bytes_dropped: wal.len() - at,
        wal_error,
    };
    puf_telemetry::counter!("protocol.durable.events_replayed").add(events_applied);
    puf_telemetry::counter!("protocol.durable.duplicates_skipped").add(duplicates_skipped);
    puf_telemetry::counter!("protocol.durable.bytes_dropped").add(report.wal_bytes_dropped as u64);

    let snapshot = state.encode_snapshot(last_seq);
    let log = DurableLog {
        state,
        snapshot,
        wal: Vec::new(),
        next_seq: last_seq + 1,
        wal_events: 0,
        // Compact eagerly until the owner restores its own threshold via
        // [`DurableLog::set_snapshot_every`].
        snapshot_every: 1,
    };
    (log, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enrollment::{enroll, EnrollmentConfig};
    use crate::faults::{DiskCorruption, DiskFaultKind, FaultPlan};
    use puf_silicon::{Chip, ChipConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_record(seed: u64, chip_id: u32) -> EnrolledChip {
        let mut rng = StdRng::seed_from_u64(seed);
        let chip = Chip::fabricate(chip_id, &ChipConfig::small(), &mut rng);
        enroll(&chip, &EnrollmentConfig::small(2), &mut rng).unwrap()
    }

    fn sample_events(seed: u64) -> Vec<DurableEvent> {
        let a = sample_record(seed, 1);
        let b = sample_record(seed + 1, 2);
        let b2 = sample_record(seed + 2, 2);
        vec![
            DurableEvent::Enroll(a),
            DurableEvent::Enroll(b),
            DurableEvent::PoolConsume {
                chip_id: 1,
                bits: vec![5, 3, 9],
            },
            DurableEvent::Lockout { chip_id: 2 },
            DurableEvent::StateSync {
                chip_id: 1,
                state: ChipSessionState {
                    consecutive_failures: 2,
                    locked_out: false,
                    needs_reenrollment: true,
                    sessions: 7,
                    clean_accepts: 4,
                },
            },
            DurableEvent::Reinstate { chip_id: 2 },
            DurableEvent::PoolConsume {
                chip_id: 2,
                bits: vec![1, 2, 3, 4],
            },
            DurableEvent::Reenroll(b2),
        ]
    }

    fn replay(events: &[DurableEvent]) -> DurableState {
        let mut state = DurableState::new();
        for e in events {
            state.apply(e);
        }
        state
    }

    #[test]
    fn snapshot_round_trips_and_is_deterministic() {
        let state = replay(&sample_events(10));
        let bytes = state.encode_snapshot(42);
        let (decoded, last_seq) = DurableState::decode_snapshot(&bytes).unwrap();
        assert_eq!(decoded, state);
        assert_eq!(last_seq, 42);
        assert_eq!(
            decoded.encode_snapshot(42),
            bytes,
            "re-encode must be byte-identical"
        );
    }

    #[test]
    fn apply_semantics() {
        let state = replay(&sample_events(20));
        assert_eq!(state.len(), 2);
        // Chip 1: pool sorted/deduped, state synced wholesale.
        assert_eq!(state.pool(1), &[3, 5, 9]);
        let s1 = state.state(1).unwrap();
        assert_eq!(s1.sessions, 7);
        assert!(s1.needs_reenrollment);
        // Chip 2: re-enrollment reset the pool and cleared the ladder.
        assert_eq!(state.pool(2), &[] as &[u128]);
        let s2 = state.state(2).unwrap();
        assert!(!s2.locked_out);
        assert_eq!(s2.consecutive_failures, 0);
        assert!(!s2.needs_reenrollment);
    }

    #[test]
    fn log_replays_to_the_same_state_and_compacts() {
        let events = sample_events(30);
        let mut log = DurableLog::new(3);
        for e in &events {
            log.append(e);
        }
        // 8 events, threshold 3: compacted at 3 and 6, so 2 remain.
        assert_eq!(log.wal_events(), 2);
        assert_eq!(log.next_seq(), 9);
        let (recovered, report) = recover(log.snapshot_bytes(), log.wal_bytes());
        assert!(
            report.is_clean(),
            "clean buffers must recover cleanly: {report:?}"
        );
        assert_eq!(report.events_applied, 2);
        assert_eq!(recovered.state(), &replay(&events));
    }

    #[test]
    fn recovery_from_snapshot_only_and_wal_only() {
        let events = sample_events(40);
        // Everything compacted into the snapshot.
        let mut log = DurableLog::new(1);
        for e in &events {
            log.append(e);
        }
        assert!(log.wal_bytes().is_empty());
        let (recovered, report) = recover(log.snapshot_bytes(), log.wal_bytes());
        assert!(report.is_clean());
        assert_eq!(report.events_applied, 0);
        assert_eq!(recovered.state(), &replay(&events));
        // Nothing compacted: all in the WAL.
        let mut log = DurableLog::new(u64::MAX);
        for e in &events {
            log.append(e);
        }
        let (recovered, report) = recover(log.snapshot_bytes(), log.wal_bytes());
        assert!(report.is_clean());
        assert_eq!(report.events_applied, events.len() as u64);
        assert_eq!(recovered.state(), &replay(&events));
    }

    #[test]
    fn torn_final_record_salvages_the_prefix() {
        let events = sample_events(50);
        let mut log = DurableLog::new(u64::MAX);
        for e in &events {
            log.append(e);
        }
        let plan = FaultPlan::none(51);
        let mut snapshot = log.snapshot_bytes().to_vec();
        let mut wal = log.wal_bytes().to_vec();
        let done = plan
            .disk_faults(DiskFaultKind::TornFinalRecord)
            .corrupt(&mut snapshot, &mut wal);
        let DiskCorruption::TornFinalRecord { dropped } = done else {
            panic!("unexpected corruption {done:?}");
        };
        let (recovered, report) = recover(&snapshot, &wal);
        assert!(report.snapshot_recovered);
        assert!(report.wal_error.is_some(), "the torn tail must be reported");
        assert_eq!(
            report.wal_bytes_salvaged + report.wal_bytes_dropped + dropped,
            log.wal_bytes().len(),
        );
        // The committed prefix: every event whose frame survived whole.
        assert_eq!(
            recovered.state(),
            &replay(&events[..report.events_applied as usize])
        );
    }

    #[test]
    fn duplicated_tail_is_skipped_exactly() {
        let events = sample_events(60);
        let mut log = DurableLog::new(u64::MAX);
        for e in &events {
            log.append(e);
        }
        // Duplicate the final *whole frame* (a retried flush): recovery
        // must skip it by sequence number, not re-apply it.
        let wal = log.wal_bytes().to_vec();
        let mut doubled = wal.clone();
        doubled.extend_from_slice(&wal);
        let (recovered, report) = recover(log.snapshot_bytes(), &doubled);
        assert_eq!(report.events_applied, events.len() as u64);
        assert_eq!(report.duplicates_skipped, events.len() as u64);
        assert_eq!(report.wal_bytes_dropped, 0);
        assert_eq!(recovered.state(), &replay(&events));
        // A raw byte-level duplicated tail (not frame-aligned) ends in a
        // partial frame: the salvage drops it and says how much.
        let plan = FaultPlan::none(61);
        let mut snapshot = log.snapshot_bytes().to_vec();
        let mut torn = wal.clone();
        let done = plan
            .disk_faults(DiskFaultKind::DuplicatedTail)
            .corrupt(&mut snapshot, &mut torn);
        assert!(matches!(done, DiskCorruption::DuplicatedTail { .. }));
        let (recovered, report) = recover(&snapshot, &torn);
        assert_eq!(
            recovered.state(),
            &replay(&events),
            "no event may replay twice"
        );
        assert!(report.duplicates_skipped + report.events_applied >= events.len() as u64);
    }

    #[test]
    fn bit_rot_is_caught_by_the_frame_crc() {
        let events = sample_events(70);
        let mut log = DurableLog::new(u64::MAX);
        for e in &events {
            log.append(e);
        }
        let plan = FaultPlan::none(71);
        let mut snapshot = log.snapshot_bytes().to_vec();
        let mut wal = log.wal_bytes().to_vec();
        let done = plan
            .disk_faults(DiskFaultKind::BitRot)
            .corrupt(&mut snapshot, &mut wal);
        let DiskCorruption::BitRot { in_snapshot, .. } = done else {
            panic!("unexpected corruption {done:?}");
        };
        let (recovered, report) = recover(&snapshot, &wal);
        if in_snapshot {
            assert!(!report.snapshot_recovered);
            assert!(matches!(
                report.snapshot_error,
                Some(DecodeError::ChecksumMismatch { .. })
            ));
        } else {
            // The rotten frame and everything after it are dropped; the
            // prefix before it survives bit-identically.
            assert!(report.wal_error.is_some());
            assert_eq!(
                recovered.state(),
                &replay(&events[..report.events_applied as usize])
            );
        }
    }

    #[test]
    fn truncated_snapshot_falls_back_to_wal_only() {
        let events = sample_events(80);
        // Compact everything, then truncate the snapshot: the events are
        // genuinely lost and recovery must say so, not guess.
        let mut log = DurableLog::new(1);
        for e in &events {
            log.append(e);
        }
        let plan = FaultPlan::none(81);
        let mut snapshot = log.snapshot_bytes().to_vec();
        let mut wal = log.wal_bytes().to_vec();
        let done = plan
            .disk_faults(DiskFaultKind::TruncatedSnapshot)
            .corrupt(&mut snapshot, &mut wal);
        assert!(matches!(done, DiskCorruption::TruncatedSnapshot { .. }));
        let (recovered, report) = recover(&snapshot, &wal);
        assert!(!report.snapshot_recovered);
        assert!(report.snapshot_error.is_some());
        assert!(recovered.state().is_empty());
    }

    #[test]
    fn restore_server_preserves_records() {
        let events = sample_events(90);
        let state = replay(&events);
        let server = state.restore_server();
        assert_eq!(server.len(), 2);
        assert_eq!(server.record(1), state.record(1));
        assert_eq!(server.record(2), state.record(2));
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Satellite: the crash-point sweep. For ANY byte offset cut of
            /// the WAL, recovery equals replaying exactly the events whose
            /// frames survived whole — bit-identical at the snapshot level.
            #[test]
            fn prop_crash_at_any_offset_recovers_committed_prefix(
                seed in 0u64..6,
                cut_frac in 0.0f64..1.0,
                every_ix in 0usize..3,
            ) {
                let snapshot_every = [1u64, 3, u64::MAX][every_ix];
                let events = sample_events(100 + seed);
                let mut log = DurableLog::new(snapshot_every);
                for e in &events {
                    log.append(e);
                }
                let wal = log.wal_bytes();
                let cut = (wal.len() as f64 * cut_frac) as usize;
                let (recovered, report) = recover(log.snapshot_bytes(), &wal[..cut.min(wal.len())]);
                // Events the snapshot already covers plus the whole frames
                // in the surviving WAL prefix.
                let compacted = events.len() as u64 - log.wal_events();
                let committed = compacted + report.events_applied;
                prop_assert!(committed <= events.len() as u64);
                let expected = replay(&events[..committed as usize]);
                prop_assert_eq!(recovered.state(), &expected);
                // Bit-identical, not just structurally equal.
                prop_assert_eq!(
                    recovered.snapshot_bytes(),
                    &expected.encode_snapshot(
                        if committed == 0 { 0 } else { committed }
                    )[..]
                );
            }

            /// Any injected disk fault still recovers a committed prefix
            /// (never panics, never invents events).
            #[test]
            fn prop_any_disk_fault_recovers_a_committed_prefix(
                seed in 0u64..2048,
                kind_ix in 0usize..4,
            ) {
                let kind = [
                    DiskFaultKind::TornFinalRecord,
                    DiskFaultKind::BitRot,
                    DiskFaultKind::TruncatedSnapshot,
                    DiskFaultKind::DuplicatedTail,
                ][kind_ix];
                let events = sample_events(200 + (seed % 4));
                let mut log = DurableLog::new(3);
                for e in &events {
                    log.append(e);
                }
                let mut snapshot = log.snapshot_bytes().to_vec();
                let mut wal = log.wal_bytes().to_vec();
                FaultPlan::none(seed).disk_faults(kind).corrupt(&mut snapshot, &mut wal);
                let (recovered, report) = recover(&snapshot, &wal);
                let compacted = events.len() as u64 - log.wal_events();
                if report.snapshot_recovered {
                    let committed = compacted + report.events_applied;
                    prop_assert!(committed <= events.len() as u64);
                    prop_assert_eq!(recovered.state(), &replay(&events[..committed as usize]));
                } else {
                    // Snapshot lost: only WAL events can survive, applied
                    // onto the empty state.
                    prop_assert!(recovered.state().len() <= events.len());
                }
            }

            /// Fuzz: arbitrary byte soup never panics recovery.
            #[test]
            fn prop_recovery_of_arbitrary_bytes_never_panics(
                snapshot in proptest::collection::vec(any::<u8>(), 0..256),
                wal in proptest::collection::vec(any::<u8>(), 0..256),
            ) {
                let (_, report) = recover(&snapshot, &wal);
                prop_assert!(report.wal_bytes_salvaged + report.wal_bytes_dropped == wal.len());
            }
        }
    }
}
