//! The enrollment phase of the model-assisted XOR PUF (paper Fig. 6).
//!
//! For each individual PUF behind the fuse port:
//!
//! 1. measure soft responses of a small training set of challenges
//!    (default 5,000, paper §5) with the on-chip counter,
//! 2. fit a linear-regression model of the delay parameters from the soft
//!    responses,
//! 3. derive the `Thr(0)`/`Thr(1)` classification thresholds by comparing
//!    predictions with measurements,
//! 4. fit the β tightening factors on a held-out validation measurement,
//!
//! then blow the fuses. The resulting [`EnrolledPuf`] records are what the
//! server database stores (delay parameters rather than an exhaustive CRP
//! table, per the paper's Refs. 4, 6-7).

use crate::threshold::{fit_betas, Betas, StabilityClass, Thresholds};
use crate::ProtocolError;
use puf_core::batch::FeatureMatrix;
use puf_core::{challenge::random_challenges, Challenge, Condition};
use puf_ml::LinearRegression;
use puf_silicon::{counter, Chip, SiliconError, SoftResponse};
use rand::Rng;

/// Enrollment hyper-parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct EnrollmentConfig {
    /// XOR width to enroll (number of member PUFs).
    pub n: usize,
    /// Training-set size per PUF. Paper default: 5,000.
    pub training_size: usize,
    /// Validation-set size per PUF for β fitting. Default: 2,000.
    pub validation_size: usize,
    /// Counter evaluations per soft-response measurement. Paper: 100,000.
    pub evals: u64,
    /// Ridge regularisation of the linear fit. Default 1e-6 (numerical
    /// stabilisation only).
    pub ridge: f64,
    /// Enrollment condition. Paper: 0.9 V / 25 °C.
    pub condition: Condition,
    /// Conditions at which the validation set is measured for β fitting.
    /// `[Condition::NOMINAL]` reproduces §5.1; the full
    /// [`Condition::paper_grid`] reproduces the stricter §5.2 fit whose
    /// selections survive voltage/temperature corners.
    pub validation_conditions: Vec<Condition>,
}

impl EnrollmentConfig {
    /// The paper's enrollment setup for an `n`-input XOR PUF.
    pub fn paper_default(n: usize) -> Self {
        Self {
            n,
            training_size: 5_000,
            validation_size: 2_000,
            evals: 100_000,
            ridge: 1e-6,
            condition: Condition::NOMINAL,
            validation_conditions: vec![Condition::NOMINAL],
        }
    }

    /// The paper's §5.2 variant: β fitting against measurements at all nine
    /// V/T corners, so selected challenges stay stable across the grid.
    pub fn paper_all_conditions(n: usize) -> Self {
        Self {
            validation_conditions: Condition::paper_grid(),
            ..Self::paper_default(n)
        }
    }

    /// A reduced-scale setup for fast tests.
    pub fn small(n: usize) -> Self {
        Self {
            n,
            training_size: 800,
            validation_size: 400,
            evals: 2_000,
            ridge: 1e-6,
            condition: Condition::NOMINAL,
            validation_conditions: vec![Condition::NOMINAL],
        }
    }
}

/// The enrollment record of one member PUF: its fitted delay-parameter
/// model, raw thresholds and fitted βs.
#[derive(Clone, Debug, PartialEq)]
pub struct EnrolledPuf {
    /// Linear model of the PUF's soft responses.
    pub model: LinearRegression,
    /// Raw training-set thresholds.
    pub thresholds: Thresholds,
    /// Fitted tightening factors.
    pub betas: Betas,
}

impl EnrolledPuf {
    /// Effective (β-adjusted) thresholds used during authentication.
    pub fn effective_thresholds(&self) -> Thresholds {
        self.thresholds.adjusted(self.betas)
    }

    /// Classifies a challenge through the adjusted thresholds.
    pub fn classify(&self, challenge: &Challenge) -> StabilityClass {
        self.effective_thresholds()
            .classify(self.model.predict(challenge))
    }
}

/// The full enrollment record of a chip's XOR PUF.
#[derive(Clone, Debug, PartialEq)]
pub struct EnrolledChip {
    /// The enrolled chip's id.
    pub chip_id: u32,
    /// Number of delay stages.
    pub stages: usize,
    /// One record per member PUF (length `n`).
    pub pufs: Vec<EnrolledPuf>,
}

impl EnrolledChip {
    /// XOR width.
    pub fn n(&self) -> usize {
        self.pufs.len()
    }

    /// Classifies a challenge: `Some(bit)` iff **every** member PUF is
    /// predicted stable, in which case `bit` is the XOR of the members'
    /// predicted bits (paper Fig. 7, "All predicted responses stable?").
    pub fn predict_stable_xor(&self, challenge: &Challenge) -> Option<bool> {
        let mut acc = false;
        for puf in &self.pufs {
            acc ^= puf.classify(challenge).bit()?;
        }
        Some(acc)
    }

    /// Fraction of a challenge list predicted fully stable.
    pub fn predicted_stable_fraction(&self, challenges: &[Challenge]) -> f64 {
        if challenges.is_empty() {
            return f64::NAN;
        }
        challenges
            .iter()
            .filter(|c| self.predict_stable_xor(c).is_some())
            .count() as f64
            / challenges.len() as f64
    }

    /// Overrides every member's βs (e.g. with lot-wide conservative values
    /// or the stricter all-V/T values of §5.2).
    pub fn with_betas(mut self, betas: Betas) -> Self {
        for puf in &mut self.pufs {
            puf.betas = betas;
        }
        self
    }

    /// The most conservative β pair across the member PUFs.
    pub fn conservative_betas(&self) -> Betas {
        self.pufs
            .iter()
            .map(|p| p.betas)
            .fold(Betas::new(f64::MAX, f64::MIN_POSITIVE), |acc, b| {
                acc.most_conservative(b)
            })
    }
}

/// Runs the enrollment phase on a chip (fuses must be intact). Does **not**
/// blow the fuses — the caller decides when to deploy.
///
/// # Errors
///
/// - [`ProtocolError::Silicon`] if the fuses are already blown or the chip
///   rejects a measurement.
/// - [`ProtocolError::DegenerateTraining`] if a member PUF's training data
///   cannot produce thresholds (all measurements saturated one way).
/// - [`ProtocolError::BetaFitFailed`] if no β tightening filters the
///   validation set.
/// - [`ProtocolError::Fit`] if the regression system is singular.
pub fn enroll<R: Rng + ?Sized>(
    chip: &Chip,
    config: &EnrollmentConfig,
    rng: &mut R,
) -> Result<EnrolledChip, ProtocolError> {
    let training = random_challenges(chip.stages(), config.training_size, rng);
    let validation = random_challenges(chip.stages(), config.validation_size, rng);
    enroll_with_challenges(chip, config, &training, &validation, rng)
}

/// [`enroll`] with caller-supplied training/validation challenge lists
/// (used by the fig harnesses to hold challenges fixed across sweeps).
///
/// # Errors
///
/// See [`enroll`].
pub fn enroll_with_challenges<R: Rng + ?Sized>(
    chip: &Chip,
    config: &EnrollmentConfig,
    training: &[Challenge],
    validation: &[Challenge],
    rng: &mut R,
) -> Result<EnrolledChip, ProtocolError> {
    if training.is_empty() {
        return Err(ProtocolError::DegenerateTraining { puf: 0 });
    }
    let _span = puf_telemetry::span!("protocol.enroll.duration");
    let _trace = puf_telemetry::trace_span!("protocol.enroll.chip");
    puf_telemetry::counter!("protocol.enroll.pufs").add(config.n as u64);
    // Feature matrices are built once and reused across every member PUF
    // and every validation condition.
    let fm_train = features_for(chip, training)?;
    let fm_val = if validation.is_empty() {
        None
    } else {
        Some(features_for(chip, validation)?)
    };
    let mut pufs = Vec::with_capacity(config.n);
    for puf_idx in 0..config.n {
        // 1. Counter measurements of the training set (batched; the draws
        //    happen in challenge order, identical to per-challenge calls).
        let soft_values: Vec<f64> = chip
            .measure_individual_soft_batch(puf_idx, &fm_train, config.condition, config.evals, rng)?
            .iter()
            .map(SoftResponse::value)
            .collect();

        // 2. Linear regression on the soft responses.
        let model = LinearRegression::fit_challenges(training, &soft_values, config.ridge)?;

        // 3. Thresholds from predicted-vs-measured comparison.
        let pairs: Vec<(f64, f64)> = model
            .predict_batch(training)
            .into_iter()
            .zip(soft_values)
            .collect();
        let thresholds = Thresholds::from_training(&pairs)
            .ok_or(ProtocolError::DegenerateTraining { puf: puf_idx })?;

        // 4. β fitting on held-out measurements; a challenge only counts as
        //    stable if it measures 100 % stable at every validation
        //    condition.
        let triples = match &fm_val {
            Some(fm_val) => stability_triples(
                chip,
                puf_idx,
                &model,
                fm_val,
                &config.validation_conditions,
                config.evals,
                rng,
            )?,
            None => Vec::new(),
        };
        let betas = if triples.is_empty() {
            Betas::IDENTITY
        } else {
            fit_betas(thresholds, &triples).ok_or(ProtocolError::BetaFitFailed { puf: puf_idx })?
        };

        pufs.push(EnrolledPuf {
            model,
            thresholds,
            betas,
        });
    }
    Ok(EnrolledChip {
        chip_id: chip.id(),
        stages: chip.stages(),
        pufs,
    })
}

/// Fits β values for one member PUF against direct measurements of a
/// (typically large) challenge set, optionally across several operating
/// conditions — the paper's §5.1/§5.2 procedure where the 1,000,000-CRP
/// test set itself drives the tightening.
///
/// A challenge counts as *measured stable 0* only if it measures 100 %
/// stable 0 at **every** condition in `conditions` (and likewise for 1);
/// anything else is a violation if classified stable.
///
/// # Errors
///
/// - [`ProtocolError::Silicon`] on measurement failures (e.g. blown fuses).
/// - [`ProtocolError::BetaFitFailed`] if no tightening filters the set.
///
/// # Panics
///
/// Panics if `challenges` or `conditions` is empty.
#[allow(clippy::too_many_arguments)]
pub fn fit_betas_on_measurements<R: Rng + ?Sized>(
    chip: &Chip,
    puf: usize,
    model: &LinearRegression,
    thresholds: Thresholds,
    challenges: &[Challenge],
    conditions: &[Condition],
    evals: u64,
    rng: &mut R,
) -> Result<Betas, ProtocolError> {
    assert!(!challenges.is_empty(), "need challenges to fit betas");
    assert!(!conditions.is_empty(), "need at least one condition");
    let features = features_for(chip, challenges)?;
    let triples = stability_triples(chip, puf, model, &features, conditions, evals, rng)?;
    fit_betas(thresholds, &triples).ok_or(ProtocolError::BetaFitFailed { puf })
}

/// Builds the enrollment feature matrix, mapping a core-layer stage error
/// onto the silicon error the per-challenge measurement path would have
/// produced.
fn features_for(chip: &Chip, challenges: &[Challenge]) -> Result<FeatureMatrix, ProtocolError> {
    FeatureMatrix::new(chip.stages(), challenges).map_err(|_| {
        let actual = challenges
            .iter()
            .find(|c| c.stages() != chip.stages())
            .map_or(chip.stages(), Challenge::stages);
        ProtocolError::Silicon(SiliconError::StageMismatch {
            expected: chip.stages(),
            actual,
        })
    })
}

/// `(prediction, measured-stable-0, measured-stable-1)` per challenge —
/// enrollment-only (individual-PUF) measurements, batched.
///
/// The ground-truth probabilities come from one batched kernel pass per
/// condition; the counter draws then replay the scalar order (challenge
/// outer, condition inner, early break once both stabilities are lost), so
/// seeded results are bit-identical to per-challenge measurement.
fn stability_triples<R: Rng + ?Sized>(
    chip: &Chip,
    puf: usize,
    model: &LinearRegression,
    features: &FeatureMatrix,
    conditions: &[Condition],
    evals: u64,
    rng: &mut R,
) -> Result<Vec<(f64, bool, bool)>, ProtocolError> {
    if !chip.fuses_intact() {
        return Err(ProtocolError::Silicon(SiliconError::FusesBlown));
    }
    let cond_probs = conditions
        .iter()
        .map(|&cond| chip.ground_truth_soft_batch(puf, features, cond))
        .collect::<Result<Vec<_>, _>>()?;
    let preds = model.predict_batch(features.challenges());
    let mut draws = 0u64;
    let mut triples = Vec::with_capacity(features.len());
    for (i, pred) in preds.into_iter().enumerate() {
        let mut stable0 = true;
        let mut stable1 = true;
        for probs in &cond_probs {
            draws += 1;
            let s = counter::measure(probs[i], evals, rng);
            stable0 &= s.is_stable_zero();
            stable1 &= s.is_stable_one();
            if !stable0 && !stable1 {
                break;
            }
        }
        triples.push((pred, stable0, stable1));
    }
    puf_telemetry::counter!("silicon.measure.evals").add(draws * evals);
    Ok(triples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use puf_silicon::{ChipConfig, SiliconError};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn enrolled_small(seed: u64) -> (Chip, EnrolledChip, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let chip = Chip::fabricate(7, &ChipConfig::small(), &mut rng);
        let config = EnrollmentConfig::small(2);
        let enrolled = enroll(&chip, &config, &mut rng).expect("enrollment failed");
        (chip, enrolled, rng)
    }

    #[test]
    fn enrollment_produces_records_per_puf() {
        let (_, enrolled, _) = enrolled_small(1);
        assert_eq!(enrolled.n(), 2);
        assert_eq!(enrolled.chip_id, 7);
        for puf in &enrolled.pufs {
            assert!(puf.thresholds.thr0 <= puf.thresholds.thr1);
            assert!(puf.betas.beta0 <= 0.99 + 1e-9);
            assert!(puf.betas.beta1 >= 1.01 - 1e-9);
        }
    }

    #[test]
    fn enrollment_fails_on_blown_fuses() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut chip = Chip::fabricate(0, &ChipConfig::small(), &mut rng);
        chip.blow_fuses();
        let err = enroll(&chip, &EnrollmentConfig::small(2), &mut rng).unwrap_err();
        assert_eq!(err, ProtocolError::Silicon(SiliconError::FusesBlown));
    }

    #[test]
    fn predicted_stable_challenges_really_are_stable() {
        let (chip, enrolled, mut rng) = enrolled_small(3);
        let test = random_challenges(chip.stages(), 2_000, &mut rng);
        let mut checked = 0;
        let mut wrong = 0;
        for c in &test {
            let Some(predicted_bit) = enrolled.predict_stable_xor(c) else {
                continue;
            };
            checked += 1;
            // Ground truth: all members far from the decision boundary and
            // the reference XOR bit matches.
            let actual = chip.xor_reference_bit(2, c, Condition::NOMINAL).unwrap();
            if actual != predicted_bit {
                wrong += 1;
            }
        }
        assert!(
            checked > 50,
            "selector found too few stable challenges: {checked}"
        );
        assert_eq!(
            wrong, 0,
            "{wrong}/{checked} predicted-stable challenges had the wrong bit"
        );
    }

    #[test]
    fn predicted_stable_fraction_decreases_with_n() {
        let mut rng = StdRng::seed_from_u64(4);
        let chip = Chip::fabricate(0, &ChipConfig::small(), &mut rng);
        let e2 = enroll(&chip, &EnrollmentConfig::small(2), &mut rng).unwrap();
        let e4 = enroll(&chip, &EnrollmentConfig::small(4), &mut rng).unwrap();
        let test = random_challenges(chip.stages(), 1_500, &mut rng);
        let f2 = e2.predicted_stable_fraction(&test);
        let f4 = e4.predicted_stable_fraction(&test);
        assert!(
            f4 < f2,
            "stable fraction should shrink with n: {f2} vs {f4}"
        );
    }

    #[test]
    fn with_betas_overrides_all_members() {
        let (_, enrolled, _) = enrolled_small(5);
        let strict = Betas::new(0.5, 1.5);
        let overridden = enrolled.with_betas(strict);
        for puf in &overridden.pufs {
            assert_eq!(puf.betas, strict);
        }
        assert_eq!(overridden.conservative_betas(), strict);
    }

    #[test]
    fn effective_thresholds_are_tighter() {
        let (_, enrolled, _) = enrolled_small(6);
        for puf in &enrolled.pufs {
            let eff = puf.effective_thresholds();
            assert!(eff.thr0 <= puf.thresholds.thr0 + 1e-12);
            assert!(eff.thr1 >= puf.thresholds.thr1 - 1e-12);
        }
    }
}
