//! Binary persistence of the server database.
//!
//! The paper (with its Refs. 4, 6-7) argues for storing *delay
//! parameters* instead of exhaustive CRP tables: `n · (stages + 1)` floats
//! plus two thresholds and two βs per chip. This module provides a compact,
//! versioned, self-describing binary codec for [`EnrolledChip`] records and
//! whole [`Server`] databases, so an authentication service can persist and
//! reload its state.
//!
//! Format (all integers little-endian):
//!
//! ```text
//! database  := MAGIC "XPUF" | u16 version | u32 record_count | record*
//!            | u32 crc32
//! record    := u32 chip_id | u16 stages | u16 n | puf*
//! puf       := f64 thr0 | f64 thr1 | f64 beta0 | f64 beta1
//!            | u16 theta_len | f64 theta[theta_len]
//! ```
//!
//! The trailing CRC-32 (IEEE polynomial, computed over every preceding
//! byte) turns silent bit-rot into a typed [`DecodeError::ChecksumMismatch`]
//! instead of a best-effort read of garbage floats; it is what the durable
//! log ([`crate::durable`]) builds its torn-write detection on.

use crate::enrollment::{EnrolledChip, EnrolledPuf};
use crate::server::Server;
use crate::threshold::{Betas, Thresholds};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use puf_ml::LinearRegression;
use std::error::Error as StdError;
use std::fmt;

const MAGIC: &[u8; 4] = b"XPUF";
const VERSION: u16 = 2;

/// CRC-32 (IEEE 802.3 polynomial, reflected) over `bytes`.
///
/// Hand-rolled table-driven implementation so the codec stays
/// dependency-free; shared with the write-ahead log in [`crate::durable`].
pub fn crc32(bytes: &[u8]) -> u32 {
    const fn table() -> [u32; 256] {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    }
    const TABLE: [u32; 256] = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Errors while decoding a stored database.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// The buffer does not start with the `XPUF` magic.
    BadMagic,
    /// The format version is newer than this library understands.
    UnsupportedVersion {
        /// The version found in the header.
        found: u16,
    },
    /// The buffer ended before the structure was complete.
    Truncated {
        /// What was being read when the bytes ran out.
        while_reading: &'static str,
    },
    /// A decoded value violates an invariant (NaN threshold, crossed
    /// thresholds, zero-length model, …).
    Corrupt {
        /// Description of the violated invariant.
        what: &'static str,
    },
    /// The buffer is longer than the structure it declares.
    TrailingBytes {
        /// How many bytes followed the last record.
        extra: usize,
    },
    /// The trailing CRC-32 does not match the decoded payload (bit rot or
    /// a torn write).
    ChecksumMismatch {
        /// CRC recorded in the trailer.
        stored: u32,
        /// CRC recomputed over the payload.
        computed: u32,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not an XPUF database (bad magic)"),
            DecodeError::UnsupportedVersion { found } => {
                write!(f, "unsupported database version {found}")
            }
            DecodeError::Truncated { while_reading } => {
                write!(f, "truncated database while reading {while_reading}")
            }
            DecodeError::Corrupt { what } => write!(f, "corrupt database: {what}"),
            DecodeError::TrailingBytes { extra } => {
                write!(f, "over-long database: {extra} bytes after the last record")
            }
            DecodeError::ChecksumMismatch { stored, computed } => write!(
                f,
                "database checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
        }
    }
}

impl StdError for DecodeError {}

fn need(buf: &impl Buf, bytes: usize, what: &'static str) -> Result<(), DecodeError> {
    if buf.remaining() < bytes {
        return Err(DecodeError::Truncated {
            while_reading: what,
        });
    }
    Ok(())
}

fn put_record(out: &mut BytesMut, record: &EnrolledChip) {
    out.put_u32_le(record.chip_id);
    out.put_u16_le(record.stages as u16);
    out.put_u16_le(record.pufs.len() as u16);
    for puf in &record.pufs {
        out.put_f64_le(puf.thresholds.thr0);
        out.put_f64_le(puf.thresholds.thr1);
        out.put_f64_le(puf.betas.beta0);
        out.put_f64_le(puf.betas.beta1);
        let theta = puf.model.theta();
        out.put_u16_le(theta.len() as u16);
        for &t in theta {
            out.put_f64_le(t);
        }
    }
}

fn get_record(buf: &mut Bytes) -> Result<EnrolledChip, DecodeError> {
    need(buf, 4 + 2 + 2, "record header")?;
    let chip_id = buf.get_u32_le();
    let stages = buf.get_u16_le() as usize;
    let n = buf.get_u16_le() as usize;
    if n == 0 {
        return Err(DecodeError::Corrupt {
            what: "record has zero member PUFs",
        });
    }
    let mut pufs = Vec::with_capacity(n);
    for _ in 0..n {
        need(buf, 4 * 8 + 2, "puf header")?;
        let thr0 = buf.get_f64_le();
        let thr1 = buf.get_f64_le();
        let beta0 = buf.get_f64_le();
        let beta1 = buf.get_f64_le();
        if !(thr0.is_finite() && thr1.is_finite()) || thr0 > thr1 {
            return Err(DecodeError::Corrupt {
                what: "invalid thresholds",
            });
        }
        if !(beta0.is_finite() && beta1.is_finite()) || beta0 <= 0.0 || beta1 <= 0.0 {
            return Err(DecodeError::Corrupt {
                what: "invalid betas",
            });
        }
        let theta_len = buf.get_u16_le() as usize;
        if theta_len != stages + 1 {
            return Err(DecodeError::Corrupt {
                what: "model length does not match stage count",
            });
        }
        need(buf, theta_len * 8, "model coefficients")?;
        let mut theta = Vec::with_capacity(theta_len);
        for _ in 0..theta_len {
            let v = buf.get_f64_le();
            if !v.is_finite() {
                return Err(DecodeError::Corrupt {
                    what: "non-finite model coefficient",
                });
            }
            theta.push(v);
        }
        pufs.push(EnrolledPuf {
            model: LinearRegression::from_theta(theta),
            thresholds: Thresholds::new(thr0, thr1),
            betas: Betas::new(beta0, beta1),
        });
    }
    Ok(EnrolledChip {
        chip_id,
        stages,
        pufs,
    })
}

fn seal(mut out: BytesMut) -> Bytes {
    let crc = crc32(out.as_ref());
    out.put_u32_le(crc);
    out.freeze()
}

/// Encodes one enrollment record.
pub fn encode_record(record: &EnrolledChip) -> Bytes {
    let mut out = BytesMut::with_capacity(64 + record.pufs.len() * (record.stages + 1) * 8);
    out.put_slice(MAGIC);
    out.put_u16_le(VERSION);
    out.put_u32_le(1);
    put_record(&mut out, record);
    seal(out)
}

/// Encodes a whole server database (records in ascending chip-id order, so
/// encoding is deterministic).
pub fn encode_server(server: &Server) -> Bytes {
    let mut out = BytesMut::new();
    out.put_slice(MAGIC);
    out.put_u16_le(VERSION);
    out.put_u32_le(server.len() as u32);
    // Server::records iterates in ascending chip-id order, which is what
    // makes this encoding byte-deterministic.
    for record in server.records() {
        put_record(&mut out, record);
    }
    seal(out)
}

/// Decodes a database into its enrollment records.
///
/// # Errors
///
/// Any [`DecodeError`] on malformed input; decoding is strict (the CRC
/// trailer must match and over-long input is rejected).
pub fn decode_records(bytes: &[u8]) -> Result<Vec<EnrolledChip>, DecodeError> {
    // The CRC trailer is checked first: a failed checksum means the byte
    // stream itself is untrustworthy, so no structural diagnosis of its
    // contents is meaningful.
    if bytes.len() < 4 {
        return Err(DecodeError::Truncated {
            while_reading: "checksum trailer",
        });
    }
    let (payload, trailer) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
    let computed = crc32(payload);
    if stored != computed {
        return Err(DecodeError::ChecksumMismatch { stored, computed });
    }
    let mut buf = Bytes::copy_from_slice(payload);
    need(&buf, 4 + 2 + 4, "header")?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(DecodeError::UnsupportedVersion { found: version });
    }
    let count = buf.get_u32_le() as usize;
    let mut records = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        records.push(get_record(&mut buf)?);
    }
    if buf.has_remaining() {
        return Err(DecodeError::TrailingBytes {
            extra: buf.remaining(),
        });
    }
    Ok(records)
}

/// Decodes a database straight into a [`Server`].
///
/// # Errors
///
/// See [`decode_records`]; duplicate chip ids are rejected.
pub fn decode_server(bytes: &[u8]) -> Result<Server, DecodeError> {
    let records = decode_records(bytes)?;
    let mut server = Server::new();
    for record in records {
        if server.register(record).is_some() {
            return Err(DecodeError::Corrupt {
                what: "duplicate chip id",
            });
        }
    }
    Ok(server)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enrollment::{enroll, EnrollmentConfig};
    use puf_silicon::{Chip, ChipConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_record(seed: u64, n: usize) -> EnrolledChip {
        let mut rng = StdRng::seed_from_u64(seed);
        let chip = Chip::fabricate(seed as u32, &ChipConfig::small(), &mut rng);
        enroll(&chip, &EnrollmentConfig::small(n), &mut rng).unwrap()
    }

    /// Recomputes the CRC trailer after a test mutated the payload, so the
    /// structural validators (not the checksum) are what reject the input.
    fn reseal(bytes: &mut [u8]) {
        let len = bytes.len();
        let crc = crc32(&bytes[..len - 4]);
        bytes[len - 4..].copy_from_slice(&crc.to_le_bytes());
    }

    #[test]
    fn record_round_trip() {
        let record = sample_record(1, 2);
        let bytes = encode_record(&record);
        let decoded = decode_records(&bytes).unwrap();
        assert_eq!(decoded.len(), 1);
        assert_eq!(decoded[0], record);
    }

    #[test]
    fn server_round_trip_preserves_behaviour() {
        let mut server = Server::new();
        for seed in [1u64, 2, 3] {
            server.register(sample_record(seed, 2));
        }
        let bytes = encode_server(&server);
        let restored = decode_server(&bytes).unwrap();
        assert_eq!(restored.len(), 3);
        // The restored records classify identically.
        let mut rng = StdRng::seed_from_u64(9);
        for id in [1u32, 2, 3] {
            let a = server.record(id).unwrap();
            let b = restored.record(id).unwrap();
            for _ in 0..200 {
                let c = puf_core::Challenge::random(a.stages, &mut rng);
                assert_eq!(a.predict_stable_xor(&c), b.predict_stable_xor(&c));
            }
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        let mut a = Server::new();
        let mut b = Server::new();
        for seed in [5u64, 6] {
            let rec = sample_record(seed, 2);
            a.register(rec.clone());
            b.register(rec);
        }
        assert_eq!(encode_server(&a), encode_server(&b));
    }

    #[test]
    fn bad_magic_rejected() {
        let record = sample_record(1, 1);
        let mut bytes = encode_record(&record).to_vec();
        bytes[0] = b'Y';
        reseal(&mut bytes);
        assert_eq!(decode_records(&bytes), Err(DecodeError::BadMagic));
    }

    #[test]
    fn future_version_rejected() {
        let record = sample_record(1, 1);
        let mut bytes = encode_record(&record).to_vec();
        bytes[4] = 0xFF;
        reseal(&mut bytes);
        assert!(matches!(
            decode_records(&bytes),
            Err(DecodeError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn bit_rot_without_reseal_is_a_checksum_mismatch() {
        let record = sample_record(1, 1);
        let mut bytes = encode_record(&record).to_vec();
        bytes[0] = b'Y';
        assert!(matches!(
            decode_records(&bytes),
            Err(DecodeError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncation_rejected_at_every_length() {
        let record = sample_record(2, 2);
        let bytes = encode_record(&record);
        // Every strict prefix must fail cleanly (no panic, no success).
        for cut in 0..bytes.len() {
            let result = decode_records(&bytes[..cut]);
            assert!(
                result.is_err(),
                "prefix of {cut} bytes decoded successfully"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let record = sample_record(3, 1);
        let mut bytes = encode_record(&record).to_vec();
        // Insert a stray byte between the last record and the trailer, then
        // reseal so the typed over-long error (not the checksum) fires.
        let trailer_at = bytes.len() - 4;
        bytes.insert(trailer_at, 0);
        reseal(&mut bytes);
        assert_eq!(
            decode_records(&bytes),
            Err(DecodeError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn corrupt_thresholds_rejected() {
        let record = sample_record(4, 1);
        let mut bytes = encode_record(&record).to_vec();
        // thr0 is the first f64 after the 10-byte header + 8-byte record
        // header; overwrite with NaN.
        let off = 4 + 2 + 4 + 4 + 2 + 2;
        bytes[off..off + 8].copy_from_slice(&f64::NAN.to_le_bytes());
        reseal(&mut bytes);
        assert!(matches!(
            decode_records(&bytes),
            Err(DecodeError::Corrupt { .. })
        ));
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        fn arb_record() -> impl Strategy<Value = EnrolledChip> {
            // stages in 1..=16; n in 1..=4; finite values everywhere.
            (1usize..=16, 1usize..=4, any::<u32>()).prop_flat_map(|(stages, n, chip_id)| {
                let puf = (
                    proptest::collection::vec(-10.0f64..10.0, stages + 1),
                    -5.0f64..5.0,
                    0.0f64..5.0,
                    0.01f64..2.0,
                    0.01f64..2.0,
                )
                    .prop_map(move |(theta, thr0, gap, beta0, beta1)| {
                        EnrolledPuf {
                            model: LinearRegression::from_theta(theta),
                            thresholds: Thresholds::new(thr0, thr0 + gap),
                            betas: Betas::new(beta0, beta1),
                        }
                    });
                proptest::collection::vec(puf, n).prop_map(move |pufs| EnrolledChip {
                    chip_id,
                    stages,
                    pufs,
                })
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn prop_round_trip_any_record(record in arb_record()) {
                let bytes = encode_record(&record);
                let decoded = decode_records(&bytes).unwrap();
                prop_assert_eq!(decoded.len(), 1);
                prop_assert_eq!(&decoded[0], &record);
            }

            #[test]
            fn prop_round_trip_is_byte_identical(record in arb_record()) {
                // Stronger than value equality: decode → re-encode must
                // reproduce the original byte stream exactly, so stored
                // databases are stable under rewrite cycles.
                let bytes = encode_record(&record);
                let decoded = decode_records(&bytes).unwrap();
                let reencoded = encode_record(&decoded[0]);
                prop_assert_eq!(reencoded, bytes);
            }

            #[test]
            fn prop_encoded_size_matches_codec_formula(record in arb_record()) {
                // header 10 = magic 4 + version 2 + count 4; record header
                // 8 = chip_id 4 + stages 2 + n 2; per puf: 4 f64 scalars +
                // u16 theta_len + (stages+1) f64 coefficients; trailer 4 =
                // CRC-32.
                let per_puf = 4 * 8 + 2 + 8 * (record.stages + 1);
                let expected = 10 + 8 + record.pufs.len() * per_puf + 4;
                prop_assert_eq!(encode_record(&record).len(), expected);
            }

            #[test]
            fn prop_server_round_trip_is_byte_identical(
                records in proptest::collection::vec((any::<u32>(), arb_record()), 0..4)
            ) {
                let mut server = Server::new();
                for (chip_id, mut record) in records {
                    record.chip_id = chip_id;
                    server.register(record);
                }
                let bytes = encode_server(&server);
                let restored = decode_server(&bytes).unwrap();
                prop_assert_eq!(encode_server(&restored), bytes);
            }

            #[test]
            fn prop_decoding_arbitrary_bytes_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
                // Fuzzing the decoder: any byte soup must produce Ok or Err,
                // never a panic.
                let _ = decode_records(&data);
            }

            #[test]
            fn prop_single_bit_flips_are_always_detected(
                record in arb_record(),
                flip in any::<proptest::sample::Index>(),
                bit in 0u8..8,
            ) {
                // CRC-32 detects every single-bit error, whether it lands in
                // the payload or in the trailer itself — flipped databases
                // must never decode.
                let bytes = encode_record(&record).to_vec();
                let mut corrupted = bytes.clone();
                let idx = flip.index(corrupted.len());
                corrupted[idx] ^= 1 << bit;
                prop_assert!(decode_records(&corrupted).is_err());
            }

            #[test]
            fn prop_mutated_streams_never_decode_to_the_original(
                record in arb_record(),
                splice_at in any::<proptest::sample::Index>(),
                junk in proptest::collection::vec(any::<u8>(), 1..16),
            ) {
                // Splicing arbitrary bytes into the stream (grow-in-place
                // corruption, as from a partially retried write) shifts the
                // trailer off its payload, so the checksum must catch it.
                let bytes = encode_record(&record).to_vec();
                let mut corrupted = bytes.clone();
                let at = splice_at.index(corrupted.len());
                for (k, b) in junk.iter().enumerate() {
                    corrupted.insert(at + k, *b);
                }
                prop_assert!(decode_records(&corrupted).is_err());
            }
        }
    }

    #[test]
    fn decode_error_display() {
        assert!(DecodeError::BadMagic.to_string().contains("magic"));
        assert!(DecodeError::Truncated {
            while_reading: "header"
        }
        .to_string()
        .contains("header"));
        assert!(DecodeError::TrailingBytes { extra: 3 }
            .to_string()
            .contains("3 bytes"));
        assert!(DecodeError::ChecksumMismatch {
            stored: 1,
            computed: 2
        }
        .to_string()
        .contains("checksum"));
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        // IEEE CRC-32 check values (RFC 3720 appendix / zlib).
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }
}
