//! PXI-style test bench: challenge sweeps, stability characterization and
//! CRP dataset collection, mirroring the paper's measurement campaign.

use crate::chip::Chip;
use crate::dataset::{CrpSet, SoftCrpSet};
use crate::SiliconError;
use puf_core::{Challenge, Condition};
use rand::Rng;

/// Measures the soft response of one individual PUF for every challenge in
/// the sweep (fuse-gated enrollment access).
///
/// # Errors
///
/// Fails fast on blown fuses, a bad PUF index or a stage mismatch.
pub fn soft_sweep<R: Rng + ?Sized>(
    chip: &Chip,
    puf: usize,
    challenges: &[Challenge],
    cond: Condition,
    evals: u64,
    rng: &mut R,
) -> Result<SoftCrpSet, SiliconError> {
    let mut out = SoftCrpSet::new();
    for c in challenges {
        out.push(*c, chip.measure_individual_soft(puf, c, cond, evals, rng)?);
    }
    Ok(out)
}

/// For each challenge, reports whether **all** of the first `n` member PUFs
/// measured 100 % stable — the paper's criterion for a usable XOR-PUF CRP
/// (§2.2: "only the challenges that produce 100 % stable responses on all
/// PUFs can be used").
///
/// # Errors
///
/// Fails fast on blown fuses, a bad XOR width or a stage mismatch.
pub fn xor_stable_mask<R: Rng + ?Sized>(
    chip: &Chip,
    n: usize,
    challenges: &[Challenge],
    cond: Condition,
    evals: u64,
    rng: &mut R,
) -> Result<Vec<bool>, SiliconError> {
    if n == 0 || n > chip.bank_size() {
        return Err(SiliconError::XorWidthOutOfRange {
            n,
            bank_size: chip.bank_size(),
        });
    }
    let mut mask = Vec::with_capacity(challenges.len());
    for c in challenges {
        let mut all_stable = true;
        for puf in 0..n {
            let s = chip.measure_individual_soft(puf, c, cond, evals, rng)?;
            if !s.is_stable() {
                all_stable = false;
                break;
            }
        }
        mask.push(all_stable);
    }
    Ok(mask)
}

/// Collects one-shot XOR responses for every challenge — the view available
/// to anyone holding the deployed chip.
///
/// # Errors
///
/// Fails on a bad XOR width or stage mismatch (fuses do not gate this).
pub fn collect_xor_crps<R: Rng + ?Sized>(
    chip: &Chip,
    n: usize,
    challenges: &[Challenge],
    cond: Condition,
    rng: &mut R,
) -> Result<CrpSet, SiliconError> {
    let mut out = CrpSet::new();
    for c in challenges {
        out.push(*c, chip.eval_xor_once(n, c, cond, rng)?);
    }
    Ok(out)
}

/// Collects **stable-only** XOR CRPs: challenges where every member PUF
/// measured 100 % stable, paired with the (then deterministic) XOR of the
/// member bits. This is the dataset the paper trains and tests its modeling
/// attack on (§2.3: unstable CRPs "mislead the model training").
///
/// Requires intact fuses (it needs per-member stability measurements).
///
/// # Errors
///
/// Fails fast on blown fuses, a bad XOR width or a stage mismatch.
pub fn collect_stable_xor_crps<R: Rng + ?Sized>(
    chip: &Chip,
    n: usize,
    challenges: &[Challenge],
    cond: Condition,
    evals: u64,
    rng: &mut R,
) -> Result<CrpSet, SiliconError> {
    if n == 0 || n > chip.bank_size() {
        return Err(SiliconError::XorWidthOutOfRange {
            n,
            bank_size: chip.bank_size(),
        });
    }
    let mut out = CrpSet::new();
    'challenge: for c in challenges {
        let mut xor_bit = false;
        for puf in 0..n {
            let s = chip.measure_individual_soft(puf, c, cond, evals, rng)?;
            if !s.is_stable() {
                continue 'challenge;
            }
            xor_bit ^= s.is_stable_one();
        }
        out.push(*c, xor_bit);
    }
    Ok(out)
}

/// Measures one PUF's soft responses for the same challenges at every
/// condition of a grid, returning one [`SoftCrpSet`] per condition in grid
/// order — the paper's 9-corner campaign (its Fig. 11 test set).
///
/// # Errors
///
/// Fails fast on blown fuses, a bad PUF index or a stage mismatch.
pub fn condition_sweep<R: Rng + ?Sized>(
    chip: &Chip,
    puf: usize,
    challenges: &[Challenge],
    conditions: &[Condition],
    evals: u64,
    rng: &mut R,
) -> Result<Vec<SoftCrpSet>, SiliconError> {
    conditions
        .iter()
        .map(|&cond| soft_sweep(chip, puf, challenges, cond, evals, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::ChipConfig;
    use puf_core::challenge::random_challenges;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chip_and_rng(seed: u64) -> (Chip, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let chip = Chip::fabricate(0, &ChipConfig::small(), &mut rng);
        (chip, rng)
    }

    #[test]
    fn soft_sweep_covers_all_challenges() {
        let (chip, mut rng) = chip_and_rng(1);
        let cs = random_challenges(chip.stages(), 200, &mut rng);
        let set = soft_sweep(&chip, 0, &cs, Condition::NOMINAL, 500, &mut rng).unwrap();
        assert_eq!(set.len(), 200);
        // Most challenges on a healthy PUF are stable.
        assert!(set.stable_fraction() > 0.5);
    }

    #[test]
    fn stable_mask_shrinks_with_n() {
        let (chip, mut rng) = chip_and_rng(2);
        let cs = random_challenges(chip.stages(), 1_500, &mut rng);
        let evals = 100_000;
        let m1 = xor_stable_mask(&chip, 1, &cs, Condition::NOMINAL, evals, &mut rng).unwrap();
        let m4 = xor_stable_mask(&chip, 4, &cs, Condition::NOMINAL, evals, &mut rng).unwrap();
        let f1 = m1.iter().filter(|&&b| b).count() as f64 / m1.len() as f64;
        let f4 = m4.iter().filter(|&&b| b).count() as f64 / m4.len() as f64;
        assert!(
            f4 < f1,
            "stable fraction should shrink with n: f1={f1}, f4={f4}"
        );
        // Rough exponential decay check: f4 within a factor of ~2.5 of f1^4.
        let predicted = f1.powi(4);
        assert!(
            f4 > predicted / 2.5 && f4 < predicted * 2.5 + 0.05,
            "f4={f4} vs f1^4={predicted}"
        );
    }

    #[test]
    fn stable_xor_crps_are_deterministic_reference_bits() {
        let (chip, mut rng) = chip_and_rng(3);
        let cs = random_challenges(chip.stages(), 400, &mut rng);
        let set =
            collect_stable_xor_crps(&chip, 3, &cs, Condition::NOMINAL, 100_000, &mut rng).unwrap();
        assert!(!set.is_empty());
        for (c, r) in set.iter() {
            let want = chip.xor_reference_bit(3, c, Condition::NOMINAL).unwrap();
            assert_eq!(r, want, "stable CRP disagrees with reference bit");
        }
    }

    #[test]
    fn collect_xor_crps_works_with_blown_fuses() {
        let (mut chip, mut rng) = chip_and_rng(4);
        chip.blow_fuses();
        let cs = random_challenges(chip.stages(), 50, &mut rng);
        let set = collect_xor_crps(&chip, 2, &cs, Condition::NOMINAL, &mut rng).unwrap();
        assert_eq!(set.len(), 50);
        // But the stable collector needs the fuses.
        assert_eq!(
            collect_stable_xor_crps(&chip, 2, &cs, Condition::NOMINAL, 100, &mut rng),
            Err(SiliconError::FusesBlown)
        );
    }

    #[test]
    fn condition_sweep_returns_one_set_per_condition() {
        let (chip, mut rng) = chip_and_rng(5);
        let cs = random_challenges(chip.stages(), 100, &mut rng);
        let grid = Condition::paper_grid();
        let sets = condition_sweep(&chip, 0, &cs, &grid, 200, &mut rng).unwrap();
        assert_eq!(sets.len(), grid.len());
        for s in &sets {
            assert_eq!(s.len(), 100);
        }
    }

    #[test]
    fn xor_width_validation() {
        let (chip, mut rng) = chip_and_rng(6);
        let cs = random_challenges(chip.stages(), 5, &mut rng);
        assert!(matches!(
            xor_stable_mask(&chip, 0, &cs, Condition::NOMINAL, 10, &mut rng),
            Err(SiliconError::XorWidthOutOfRange { .. })
        ));
        assert!(matches!(
            collect_stable_xor_crps(&chip, 99, &cs, Condition::NOMINAL, 10, &mut rng),
            Err(SiliconError::XorWidthOutOfRange { .. })
        ));
    }
}
