//! PXI-style test bench: challenge sweeps, stability characterization and
//! CRP dataset collection, mirroring the paper's measurement campaign.
//!
//! Every sweep routes through the [`puf_core::batch`] engine: the parity
//! feature matrix of the challenge batch is built once (or accepted
//! prebuilt via the `*_features` variants) and the per-member soft-response
//! probabilities come from one batched kernel pass per member, with the
//! stochastic counter draws replayed in exactly the scalar call order — so
//! seeded results are bit-identical to challenge-by-challenge measurement.

use crate::chip::Chip;
use crate::counter;
use crate::dataset::{CrpSet, SoftCrpSet};
use crate::fuse::FuseSense;
use crate::SiliconError;
use puf_core::batch::FeatureMatrix;
use puf_core::{Challenge, Condition};
use rand::Rng;

/// Silicon-level fault knobs for the chaos experiments. All draws come from
/// the caller's seeded RNG, so fault-injected sweeps are bit-reproducible;
/// with [`MeasurementFaults::NONE`] the faulty sweep variants consume the
/// identical RNG stream as their clean counterparts and return identical
/// results (fault draws are only taken when the corresponding rate is
/// armed).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MeasurementFaults {
    /// Per-bit probability that a collected XOR response flips after
    /// measurement — a voltage brownout or marginal arbiter sense window.
    /// Each flip increments the `faults.response.flips` counter.
    pub response_flip_rate: f64,
    /// Counter register saturation cap: counts above it clamp (see
    /// [`crate::SoftResponse::saturated`]), silently biasing soft responses
    /// toward 0. `None` models a full-width counter.
    pub counter_cap: Option<u64>,
    /// Per-sweep probability that the fuse sense path glitches, failing the
    /// enrollment sweep with [`SiliconError::FuseReadFailure`] (retryable).
    /// Each glitch increments the `faults.fuse.glitches` counter.
    pub fuse_glitch_rate: f64,
}

impl MeasurementFaults {
    /// No faults: the faulty sweeps degenerate to their clean counterparts.
    pub const NONE: Self = Self {
        response_flip_rate: 0.0,
        counter_cap: None,
        fuse_glitch_rate: 0.0,
    };

    /// Whether every fault channel is disarmed.
    pub fn is_none(&self) -> bool {
        self.response_flip_rate <= 0.0 && self.counter_cap.is_none() && self.fuse_glitch_rate <= 0.0
    }
}

/// [`soft_sweep`] through the fault layer: the fuse state is read through
/// the (possibly glitching) sense path first, and every counter measurement
/// is read back through a register that saturates at `faults.counter_cap`.
///
/// With [`MeasurementFaults::NONE`] this is bit-identical to [`soft_sweep`]
/// on the same RNG state.
///
/// # Errors
///
/// [`SiliconError::FuseReadFailure`] when the sense path glitches (the
/// caller should retry); otherwise as [`soft_sweep`].
pub fn soft_sweep_faulty<R: Rng + ?Sized>(
    chip: &Chip,
    puf: usize,
    challenges: &[Challenge],
    cond: Condition,
    evals: u64,
    faults: &MeasurementFaults,
    rng: &mut R,
) -> Result<SoftCrpSet, SiliconError> {
    // The glitch draw is taken only when the fault is armed so the clean
    // path replays soft_sweep's RNG stream exactly.
    if faults.fuse_glitch_rate > 0.0 {
        let glitch = rng.gen::<f64>() < faults.fuse_glitch_rate;
        if chip.fuse_sense(glitch) == FuseSense::Indeterminate {
            return Err(SiliconError::FuseReadFailure);
        }
    }
    let clean = soft_sweep(chip, puf, challenges, cond, evals, rng)?;
    match faults.counter_cap {
        None => Ok(clean),
        Some(cap) => Ok(clean.iter().map(|(c, s)| (*c, s.saturated(cap))).collect()),
    }
}

/// [`collect_xor_crps`] through the fault layer: after measurement, each
/// response bit flips independently with `faults.response_flip_rate` — the
/// deployed-device view under a brownout. Flip draws are taken only when the
/// rate is armed, so [`MeasurementFaults::NONE`] replays [`collect_xor_crps`]
/// bit for bit.
///
/// # Errors
///
/// As [`collect_xor_crps`] (fuses do not gate the XOR path).
pub fn collect_xor_crps_faulty<R: Rng + ?Sized>(
    chip: &Chip,
    n: usize,
    challenges: &[Challenge],
    cond: Condition,
    faults: &MeasurementFaults,
    rng: &mut R,
) -> Result<CrpSet, SiliconError> {
    let clean = collect_xor_crps(chip, n, challenges, cond, rng)?;
    if faults.response_flip_rate <= 0.0 {
        return Ok(clean);
    }
    let mut flips = 0u64;
    let out = clean
        .iter()
        .map(|(c, r)| {
            let flip = rng.gen::<f64>() < faults.response_flip_rate;
            flips += u64::from(flip);
            (*c, r ^ flip)
        })
        .collect();
    if flips > 0 {
        puf_telemetry::counter!("faults.response.flips").add(flips);
    }
    Ok(out)
}

fn build_features(chip: &Chip, challenges: &[Challenge]) -> Result<FeatureMatrix, SiliconError> {
    FeatureMatrix::new(chip.stages(), challenges).map_err(|_| {
        let actual = challenges
            .iter()
            .find(|c| c.stages() != chip.stages())
            .map_or(chip.stages(), Challenge::stages);
        SiliconError::StageMismatch {
            expected: chip.stages(),
            actual,
        }
    })
}

fn check_xor_width(chip: &Chip, n: usize) -> Result<(), SiliconError> {
    if n == 0 || n > chip.bank_size() {
        return Err(SiliconError::XorWidthOutOfRange {
            n,
            bank_size: chip.bank_size(),
        });
    }
    Ok(())
}

/// Measures the soft response of one individual PUF for every challenge in
/// the sweep (fuse-gated enrollment access).
///
/// # Errors
///
/// Fails fast on blown fuses, a bad PUF index or a stage mismatch.
pub fn soft_sweep<R: Rng + ?Sized>(
    chip: &Chip,
    puf: usize,
    challenges: &[Challenge],
    cond: Condition,
    evals: u64,
    rng: &mut R,
) -> Result<SoftCrpSet, SiliconError> {
    if challenges.is_empty() {
        return Ok(SoftCrpSet::new());
    }
    let features = build_features(chip, challenges)?;
    soft_sweep_features(chip, puf, &features, cond, evals, rng)
}

/// [`soft_sweep`] over a prebuilt feature matrix — use this when the same
/// challenge batch is swept repeatedly (several PUFs, conditions or
/// repeats) so the parity transform is paid once.
///
/// # Errors
///
/// Fails fast on blown fuses, a bad PUF index or a stage mismatch.
pub fn soft_sweep_features<R: Rng + ?Sized>(
    chip: &Chip,
    puf: usize,
    features: &FeatureMatrix,
    cond: Condition,
    evals: u64,
    rng: &mut R,
) -> Result<SoftCrpSet, SiliconError> {
    let _trace = puf_telemetry::trace_span!("silicon.sweep.soft");
    let soft = chip.measure_individual_soft_batch(puf, features, cond, evals, rng)?;
    let mut out = SoftCrpSet::new();
    for (c, s) in features.challenges().iter().zip(soft) {
        out.push(*c, s);
    }
    Ok(out)
}

/// For each challenge, reports whether **all** of the first `n` member PUFs
/// measured 100 % stable — the paper's criterion for a usable XOR-PUF CRP
/// (§2.2: "only the challenges that produce 100 % stable responses on all
/// PUFs can be used").
///
/// # Errors
///
/// Fails fast on blown fuses, a bad XOR width or a stage mismatch.
pub fn xor_stable_mask<R: Rng + ?Sized>(
    chip: &Chip,
    n: usize,
    challenges: &[Challenge],
    cond: Condition,
    evals: u64,
    rng: &mut R,
) -> Result<Vec<bool>, SiliconError> {
    check_xor_width(chip, n)?;
    if challenges.is_empty() {
        return Ok(Vec::new());
    }
    if !chip.fuses_intact() {
        return Err(SiliconError::FusesBlown);
    }
    let _trace = puf_telemetry::trace_span!("silicon.sweep.stable_mask");
    let features = build_features(chip, challenges)?;
    let probs = member_probs(chip, n, &features, cond)?;
    // Replay the scalar draw order: per challenge, members in order, break
    // at the first unstable one — the counter draws consume the identical
    // RNG stream, so seeded results match the scalar loop bit for bit.
    let mut draws = 0u64;
    let mask = (0..features.len())
        .map(|i| {
            let mut all_stable = true;
            for member in &probs {
                draws += 1;
                if !counter::measure(member[i], evals, rng).is_stable() {
                    all_stable = false;
                    break;
                }
            }
            all_stable
        })
        .collect();
    puf_telemetry::counter!("silicon.measure.evals").add(draws * evals);
    Ok(mask)
}

/// Collects one-shot XOR responses for every challenge — the view available
/// to anyone holding the deployed chip.
///
/// # Errors
///
/// Fails on a bad XOR width or stage mismatch (fuses do not gate this).
pub fn collect_xor_crps<R: Rng + ?Sized>(
    chip: &Chip,
    n: usize,
    challenges: &[Challenge],
    cond: Condition,
    rng: &mut R,
) -> Result<CrpSet, SiliconError> {
    check_xor_width(chip, n)?;
    if challenges.is_empty() {
        return Ok(CrpSet::new());
    }
    let _trace = puf_telemetry::trace_span!("silicon.sweep.collect");
    let features = build_features(chip, challenges)?;
    let bits = chip.eval_xor_batch(n, &features, cond, rng)?;
    let mut out = CrpSet::new();
    for (c, b) in challenges.iter().zip(bits) {
        out.push(*c, b);
    }
    Ok(out)
}

/// Collects **stable-only** XOR CRPs: challenges where every member PUF
/// measured 100 % stable, paired with the (then deterministic) XOR of the
/// member bits. This is the dataset the paper trains and tests its modeling
/// attack on (§2.3: unstable CRPs "mislead the model training").
///
/// Requires intact fuses (it needs per-member stability measurements).
///
/// # Errors
///
/// Fails fast on blown fuses, a bad XOR width or a stage mismatch.
pub fn collect_stable_xor_crps<R: Rng + ?Sized>(
    chip: &Chip,
    n: usize,
    challenges: &[Challenge],
    cond: Condition,
    evals: u64,
    rng: &mut R,
) -> Result<CrpSet, SiliconError> {
    check_xor_width(chip, n)?;
    if challenges.is_empty() {
        return Ok(CrpSet::new());
    }
    let features = build_features(chip, challenges)?;
    collect_stable_xor_crps_features(chip, n, &features, cond, evals, rng)
}

/// [`collect_stable_xor_crps`] over a prebuilt feature matrix — for
/// harnesses that reuse one challenge pool across several XOR widths or
/// conditions.
///
/// # Errors
///
/// Fails fast on blown fuses, a bad XOR width or a stage mismatch.
pub fn collect_stable_xor_crps_features<R: Rng + ?Sized>(
    chip: &Chip,
    n: usize,
    features: &FeatureMatrix,
    cond: Condition,
    evals: u64,
    rng: &mut R,
) -> Result<CrpSet, SiliconError> {
    check_xor_width(chip, n)?;
    let mut out = CrpSet::new();
    if features.is_empty() {
        return Ok(out);
    }
    if !chip.fuses_intact() {
        return Err(SiliconError::FusesBlown);
    }
    let _trace = puf_telemetry::trace_span!("silicon.sweep.stable_collect");
    let probs = member_probs(chip, n, features, cond)?;
    // Replay the scalar draw order (skip to the next challenge at the first
    // unstable member) so seeded results match challenge-by-challenge
    // collection bit for bit.
    let mut draws = 0u64;
    'challenge: for (i, c) in features.challenges().iter().enumerate() {
        let mut xor_bit = false;
        for member in &probs {
            draws += 1;
            let s = counter::measure(member[i], evals, rng);
            if !s.is_stable() {
                continue 'challenge;
            }
            xor_bit ^= s.is_stable_one();
        }
        out.push(*c, xor_bit);
    }
    puf_telemetry::counter!("silicon.measure.evals").add(draws * evals);
    Ok(out)
}

/// For each challenge, the number of leading member PUFs (0..=`max_n`) that
/// measured 100 % stable before the first unstable one — the quantity the
/// Fig. 3 sweep tallies: an `n`-input XOR PUF's CRP is usable iff the
/// prefix count is ≥ `n`.
///
/// Draw order matches measuring members 0..`max_n` per challenge with an
/// early break, so seeded results are bit-identical to the scalar loop.
///
/// # Errors
///
/// Fails fast on blown fuses, a bad XOR width or a stage mismatch.
pub fn stable_prefix_counts<R: Rng + ?Sized>(
    chip: &Chip,
    max_n: usize,
    challenges: &[Challenge],
    cond: Condition,
    evals: u64,
    rng: &mut R,
) -> Result<Vec<usize>, SiliconError> {
    check_xor_width(chip, max_n)?;
    if challenges.is_empty() {
        return Ok(Vec::new());
    }
    if !chip.fuses_intact() {
        return Err(SiliconError::FusesBlown);
    }
    let _trace = puf_telemetry::trace_span!("silicon.sweep.stable_prefix");
    let features = build_features(chip, challenges)?;
    let probs = member_probs(chip, max_n, &features, cond)?;
    let mut draws = 0u64;
    let counts = (0..features.len())
        .map(|i| {
            let mut prefix = max_n;
            for (puf, member) in probs.iter().enumerate() {
                draws += 1;
                if !counter::measure(member[i], evals, rng).is_stable() {
                    prefix = puf;
                    break;
                }
            }
            prefix
        })
        .collect();
    puf_telemetry::counter!("silicon.measure.evals").add(draws * evals);
    Ok(counts)
}

/// Measures one PUF's soft responses for the same challenges at every
/// condition of a grid, returning one [`SoftCrpSet`] per condition in grid
/// order — the paper's 9-corner campaign (its Fig. 11 test set). The
/// feature matrix is built once and reused across all conditions.
///
/// # Errors
///
/// Fails fast on blown fuses, a bad PUF index or a stage mismatch.
pub fn condition_sweep<R: Rng + ?Sized>(
    chip: &Chip,
    puf: usize,
    challenges: &[Challenge],
    conditions: &[Condition],
    evals: u64,
    rng: &mut R,
) -> Result<Vec<SoftCrpSet>, SiliconError> {
    if challenges.is_empty() {
        return Ok(conditions.iter().map(|_| SoftCrpSet::new()).collect());
    }
    let _trace = puf_telemetry::trace_span!("silicon.sweep.conditions");
    let features = build_features(chip, challenges)?;
    conditions
        .iter()
        .map(|&cond| soft_sweep_features(chip, puf, &features, cond, evals, rng))
        .collect()
}

/// Per-member ground-truth probability vectors for the first `n` PUFs.
fn member_probs(
    chip: &Chip,
    n: usize,
    features: &FeatureMatrix,
    cond: Condition,
) -> Result<Vec<Vec<f64>>, SiliconError> {
    (0..n)
        .map(|puf| chip.ground_truth_soft_batch(puf, features, cond))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::ChipConfig;
    use puf_core::challenge::random_challenges;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chip_and_rng(seed: u64) -> (Chip, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let chip = Chip::fabricate(0, &ChipConfig::small(), &mut rng);
        (chip, rng)
    }

    #[test]
    fn soft_sweep_covers_all_challenges() {
        let (chip, mut rng) = chip_and_rng(1);
        let cs = random_challenges(chip.stages(), 200, &mut rng);
        let set = soft_sweep(&chip, 0, &cs, Condition::NOMINAL, 500, &mut rng).unwrap();
        assert_eq!(set.len(), 200);
        // Most challenges on a healthy PUF are stable.
        assert!(set.stable_fraction() > 0.5);
    }

    #[test]
    fn soft_sweep_matches_scalar_measurement() {
        let (chip, mut rng) = chip_and_rng(7);
        let cs = random_challenges(chip.stages(), 60, &mut rng);
        let set = soft_sweep(
            &chip,
            1,
            &cs,
            Condition::NOMINAL,
            500,
            &mut StdRng::seed_from_u64(70),
        )
        .unwrap();
        let mut scalar_rng = StdRng::seed_from_u64(70);
        for ((c, s), want_c) in set.iter().zip(&cs) {
            assert_eq!(c, want_c);
            let want = chip
                .measure_individual_soft(1, c, Condition::NOMINAL, 500, &mut scalar_rng)
                .unwrap();
            assert_eq!(s, want);
        }
    }

    #[test]
    fn stable_collectors_replay_scalar_draw_order() {
        // The batched collectors must consume the identical RNG stream as
        // the scalar early-break loops they replaced.
        let (chip, mut rng) = chip_and_rng(8);
        let cs = random_challenges(chip.stages(), 300, &mut rng);
        let evals = 2_000;

        let mask = xor_stable_mask(
            &chip,
            3,
            &cs,
            Condition::NOMINAL,
            evals,
            &mut StdRng::seed_from_u64(80),
        )
        .unwrap();
        let mut scalar_rng = StdRng::seed_from_u64(80);
        for (c, &got) in cs.iter().zip(&mask) {
            let mut want = true;
            for puf in 0..3 {
                let s = chip
                    .measure_individual_soft(puf, c, Condition::NOMINAL, evals, &mut scalar_rng)
                    .unwrap();
                if !s.is_stable() {
                    want = false;
                    break;
                }
            }
            assert_eq!(got, want);
        }

        let set = collect_stable_xor_crps(
            &chip,
            3,
            &cs,
            Condition::NOMINAL,
            evals,
            &mut StdRng::seed_from_u64(81),
        )
        .unwrap();
        let mut scalar_rng = StdRng::seed_from_u64(81);
        let mut want_set = CrpSet::new();
        'challenge: for c in &cs {
            let mut xor_bit = false;
            for puf in 0..3 {
                let s = chip
                    .measure_individual_soft(puf, c, Condition::NOMINAL, evals, &mut scalar_rng)
                    .unwrap();
                if !s.is_stable() {
                    continue 'challenge;
                }
                xor_bit ^= s.is_stable_one();
            }
            want_set.push(*c, xor_bit);
        }
        assert_eq!(set.len(), want_set.len());
        for ((c, r), (wc, wr)) in set.iter().zip(want_set.iter()) {
            assert_eq!(c, wc);
            assert_eq!(r, wr);
        }
    }

    #[test]
    fn stable_prefix_counts_match_mask_semantics() {
        let (chip, mut rng) = chip_and_rng(9);
        let cs = random_challenges(chip.stages(), 250, &mut rng);
        let evals = 2_000;
        let counts = stable_prefix_counts(
            &chip,
            4,
            &cs,
            Condition::NOMINAL,
            evals,
            &mut StdRng::seed_from_u64(90),
        )
        .unwrap();
        assert_eq!(counts.len(), cs.len());
        // Same RNG stream as xor_stable_mask at full width: the mask is
        // exactly "prefix count == max_n".
        let mask = xor_stable_mask(
            &chip,
            4,
            &cs,
            Condition::NOMINAL,
            evals,
            &mut StdRng::seed_from_u64(90),
        )
        .unwrap();
        for (&count, &stable) in counts.iter().zip(&mask) {
            assert!(count <= 4);
            assert_eq!(count == 4, stable);
        }
    }

    #[test]
    fn stable_mask_shrinks_with_n() {
        let (chip, mut rng) = chip_and_rng(2);
        let cs = random_challenges(chip.stages(), 1_500, &mut rng);
        let evals = 100_000;
        let m1 = xor_stable_mask(&chip, 1, &cs, Condition::NOMINAL, evals, &mut rng).unwrap();
        let m4 = xor_stable_mask(&chip, 4, &cs, Condition::NOMINAL, evals, &mut rng).unwrap();
        let f1 = m1.iter().filter(|&&b| b).count() as f64 / m1.len() as f64;
        let f4 = m4.iter().filter(|&&b| b).count() as f64 / m4.len() as f64;
        assert!(
            f4 < f1,
            "stable fraction should shrink with n: f1={f1}, f4={f4}"
        );
        // Rough exponential decay check: f4 within a factor of ~2.5 of f1^4.
        let predicted = f1.powi(4);
        assert!(
            f4 > predicted / 2.5 && f4 < predicted * 2.5 + 0.05,
            "f4={f4} vs f1^4={predicted}"
        );
    }

    #[test]
    fn stable_xor_crps_are_deterministic_reference_bits() {
        let (chip, mut rng) = chip_and_rng(3);
        let cs = random_challenges(chip.stages(), 400, &mut rng);
        let set =
            collect_stable_xor_crps(&chip, 3, &cs, Condition::NOMINAL, 100_000, &mut rng).unwrap();
        assert!(!set.is_empty());
        for (c, r) in set.iter() {
            let want = chip.xor_reference_bit(3, c, Condition::NOMINAL).unwrap();
            assert_eq!(r, want, "stable CRP disagrees with reference bit");
        }
    }

    #[test]
    fn collect_xor_crps_matches_scalar_evaluation() {
        let (chip, mut rng) = chip_and_rng(10);
        let cs = random_challenges(chip.stages(), 80, &mut rng);
        let set = collect_xor_crps(
            &chip,
            2,
            &cs,
            Condition::NOMINAL,
            &mut StdRng::seed_from_u64(100),
        )
        .unwrap();
        let mut scalar_rng = StdRng::seed_from_u64(100);
        for (c, r) in set.iter() {
            let want = chip
                .eval_xor_once(2, c, Condition::NOMINAL, &mut scalar_rng)
                .unwrap();
            assert_eq!(r, want);
        }
    }

    #[test]
    fn collect_xor_crps_works_with_blown_fuses() {
        let (mut chip, mut rng) = chip_and_rng(4);
        chip.blow_fuses();
        let cs = random_challenges(chip.stages(), 50, &mut rng);
        let set = collect_xor_crps(&chip, 2, &cs, Condition::NOMINAL, &mut rng).unwrap();
        assert_eq!(set.len(), 50);
        // But the stable collectors need the fuses.
        assert_eq!(
            collect_stable_xor_crps(&chip, 2, &cs, Condition::NOMINAL, 100, &mut rng),
            Err(SiliconError::FusesBlown)
        );
        assert_eq!(
            xor_stable_mask(&chip, 2, &cs, Condition::NOMINAL, 100, &mut rng),
            Err(SiliconError::FusesBlown)
        );
        assert_eq!(
            stable_prefix_counts(&chip, 2, &cs, Condition::NOMINAL, 100, &mut rng),
            Err(SiliconError::FusesBlown)
        );
    }

    #[test]
    fn condition_sweep_returns_one_set_per_condition() {
        let (chip, mut rng) = chip_and_rng(5);
        let cs = random_challenges(chip.stages(), 100, &mut rng);
        let grid = Condition::paper_grid();
        let sets = condition_sweep(&chip, 0, &cs, &grid, 200, &mut rng).unwrap();
        assert_eq!(sets.len(), grid.len());
        for s in &sets {
            assert_eq!(s.len(), 100);
        }
    }

    #[test]
    fn faultless_faulty_sweeps_replay_clean_streams() {
        // MeasurementFaults::NONE must take zero extra RNG draws.
        let (chip, mut rng) = chip_and_rng(20);
        let cs = random_challenges(chip.stages(), 120, &mut rng);
        assert!(MeasurementFaults::NONE.is_none());

        let clean = soft_sweep(
            &chip,
            0,
            &cs,
            Condition::NOMINAL,
            400,
            &mut StdRng::seed_from_u64(200),
        )
        .unwrap();
        let faulty = soft_sweep_faulty(
            &chip,
            0,
            &cs,
            Condition::NOMINAL,
            400,
            &MeasurementFaults::NONE,
            &mut StdRng::seed_from_u64(200),
        )
        .unwrap();
        assert_eq!(clean, faulty);

        let clean = collect_xor_crps(
            &chip,
            3,
            &cs,
            Condition::NOMINAL,
            &mut StdRng::seed_from_u64(201),
        )
        .unwrap();
        let faulty = collect_xor_crps_faulty(
            &chip,
            3,
            &cs,
            Condition::NOMINAL,
            &MeasurementFaults::NONE,
            &mut StdRng::seed_from_u64(201),
        )
        .unwrap();
        assert_eq!(clean, faulty);
    }

    #[test]
    fn faulty_sweeps_are_seed_reproducible() {
        let (chip, mut rng) = chip_and_rng(21);
        let cs = random_challenges(chip.stages(), 150, &mut rng);
        let faults = MeasurementFaults {
            response_flip_rate: 0.05,
            counter_cap: Some(300),
            fuse_glitch_rate: 0.0,
        };
        assert!(!faults.is_none());
        let a = collect_xor_crps_faulty(
            &chip,
            3,
            &cs,
            Condition::NOMINAL,
            &faults,
            &mut StdRng::seed_from_u64(210),
        )
        .unwrap();
        let b = collect_xor_crps_faulty(
            &chip,
            3,
            &cs,
            Condition::NOMINAL,
            &faults,
            &mut StdRng::seed_from_u64(210),
        )
        .unwrap();
        assert_eq!(a, b, "same seed + plan must replay bit-identically");
        // And the flips really happened relative to the clean stream-prefix
        // run (the faulty run consumes extra draws, so compare responses
        // against a clean run of the same seed's prefix).
        let clean = collect_xor_crps(
            &chip,
            3,
            &cs,
            Condition::NOMINAL,
            &mut StdRng::seed_from_u64(210),
        )
        .unwrap();
        let flipped = clean
            .responses()
            .iter()
            .zip(a.responses())
            .filter(|(c, f)| c != f)
            .count();
        assert!(flipped > 0, "5 % flip rate over 150 CRPs flipped nothing");
    }

    #[test]
    fn counter_cap_biases_soft_sweep_toward_zero() {
        let (chip, mut rng) = chip_and_rng(22);
        let cs = random_challenges(chip.stages(), 100, &mut rng);
        let faults = MeasurementFaults {
            response_flip_rate: 0.0,
            counter_cap: Some(0),
            fuse_glitch_rate: 0.0,
        };
        let set = soft_sweep_faulty(
            &chip,
            0,
            &cs,
            Condition::NOMINAL,
            500,
            &faults,
            &mut StdRng::seed_from_u64(220),
        )
        .unwrap();
        for (_, s) in set.iter() {
            assert!(s.is_stable_zero(), "cap 0 must clamp every count to 0");
        }
    }

    #[test]
    fn certain_fuse_glitch_fails_soft_sweep() {
        let (chip, mut rng) = chip_and_rng(23);
        let cs = random_challenges(chip.stages(), 10, &mut rng);
        let faults = MeasurementFaults {
            response_flip_rate: 0.0,
            counter_cap: None,
            fuse_glitch_rate: 1.0,
        };
        assert_eq!(
            soft_sweep_faulty(
                &chip,
                0,
                &cs,
                Condition::NOMINAL,
                100,
                &faults,
                &mut StdRng::seed_from_u64(230),
            ),
            Err(SiliconError::FuseReadFailure)
        );
        // The failure is transient: a glitch-free retry succeeds.
        assert!(soft_sweep_faulty(
            &chip,
            0,
            &cs,
            Condition::NOMINAL,
            100,
            &MeasurementFaults::NONE,
            &mut StdRng::seed_from_u64(230),
        )
        .is_ok());
    }

    #[test]
    fn xor_width_validation() {
        let (chip, mut rng) = chip_and_rng(6);
        let cs = random_challenges(chip.stages(), 5, &mut rng);
        assert!(matches!(
            xor_stable_mask(&chip, 0, &cs, Condition::NOMINAL, 10, &mut rng),
            Err(SiliconError::XorWidthOutOfRange { .. })
        ));
        assert!(matches!(
            collect_stable_xor_crps(&chip, 99, &cs, Condition::NOMINAL, 10, &mut rng),
            Err(SiliconError::XorWidthOutOfRange { .. })
        ));
        assert!(matches!(
            stable_prefix_counts(&chip, 0, &cs, Condition::NOMINAL, 10, &mut rng),
            Err(SiliconError::XorWidthOutOfRange { .. })
        ));
    }
}
