//! On-chip counter measurements: repeated evaluation of one challenge and
//! averaging into a *soft response*.
//!
//! The paper's chips contain counters that sample a response 100,000 times;
//! the average indicates how stable the response is (soft response 0.00 or
//! 1.00 ⇔ 100 % stable). Simulating 10¹² individual evaluations is
//! pointless: conditioned on the analytic per-evaluation probability `p`,
//! the counter value is exactly `Binomial(N, p)`. [`measure`] samples that
//! distribution (with exact tail handling from [`puf_core::rngx::binomial`]);
//! [`measure_literal`] performs the N evaluations one by one and exists to
//! validate the fast path.

use puf_core::rngx;
use rand::Rng;
use std::fmt;

/// The result of an `N`-evaluation counter measurement: `count` of the
/// evaluations read `1`.
///
/// The measured soft response is `count / evals`; the CRP is *100 % stable*
/// iff every evaluation agreed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SoftResponse {
    count: u64,
    evals: u64,
}

impl SoftResponse {
    /// Creates a soft response from a raw counter value.
    ///
    /// # Panics
    ///
    /// Panics if `evals` is zero or `count > evals`.
    pub fn new(count: u64, evals: u64) -> Self {
        assert!(evals > 0, "evals must be positive");
        assert!(count <= evals, "count {count} exceeds evals {evals}");
        Self { count, evals }
    }

    /// Number of evaluations that read `1`.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Total number of evaluations.
    pub fn evals(&self) -> u64 {
        self.evals
    }

    /// The soft response value `count / evals ∈ [0, 1]`.
    pub fn value(&self) -> f64 {
        self.count as f64 / self.evals as f64
    }

    /// All evaluations read `0` — a 100 % stable `0` (the histogram's first
    /// bin in the paper's Fig. 2).
    pub fn is_stable_zero(&self) -> bool {
        self.count == 0
    }

    /// All evaluations read `1` — a 100 % stable `1` (the last bin).
    pub fn is_stable_one(&self) -> bool {
        self.count == self.evals
    }

    /// 100 % stable in either direction.
    pub fn is_stable(&self) -> bool {
        self.is_stable_zero() || self.is_stable_one()
    }

    /// Majority-vote hard response.
    pub fn majority_bit(&self) -> bool {
        2 * self.count >= self.evals
    }

    /// The same measurement read back through a counter register that
    /// saturates at `cap`: counts above the cap are clamped, so the read
    /// under-reports the true soft response (a `cap` of 0 reads every CRP
    /// as a 100 % stable 0). This is the silicon-level fault hook for the
    /// chaos experiments — a too-narrow counter silently biases the
    /// stability classification toward 0.
    pub fn saturated(self, cap: u64) -> SoftResponse {
        if self.count <= cap {
            return self;
        }
        puf_telemetry::counter!("faults.counter.saturations").inc();
        SoftResponse {
            count: cap,
            evals: self.evals,
        }
    }
}

impl fmt::Display for SoftResponse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.5} ({}/{})", self.value(), self.count, self.evals)
    }
}

/// Fast counter measurement: samples the counter value from
/// `Binomial(evals, p)` where `p` is the analytic per-evaluation probability
/// of reading `1`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]` or `evals` is zero.
pub fn measure<R: Rng + ?Sized>(p: f64, evals: u64, rng: &mut R) -> SoftResponse {
    assert!(evals > 0, "evals must be positive");
    SoftResponse::new(rngx::binomial(rng, evals, p), evals)
}

/// [`measure`] through a saturating counter register: the drawn count is
/// clamped at `cap` (see [`SoftResponse::saturated`]). Consumes exactly the
/// same RNG stream as [`measure`], so a fault-injected run stays replayable
/// against a clean run of the same seed.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]` or `evals` is zero.
pub fn measure_saturating<R: Rng + ?Sized>(
    p: f64,
    evals: u64,
    cap: u64,
    rng: &mut R,
) -> SoftResponse {
    measure(p, evals, rng).saturated(cap)
}

/// Literal counter measurement: runs `eval` once per evaluation and counts
/// the `true` results. Identical in distribution to [`measure`] when `eval`
/// returns `true` with i.i.d. probability `p`; kept for fidelity tests and
/// tiny `evals`.
///
/// # Panics
///
/// Panics if `evals` is zero.
pub fn measure_literal<R, F>(evals: u64, rng: &mut R, mut eval: F) -> SoftResponse
where
    R: Rng + ?Sized,
    F: FnMut(&mut R) -> bool,
{
    assert!(evals > 0, "evals must be positive");
    let mut count = 0;
    for _ in 0..evals {
        if eval(rng) {
            count += 1;
        }
    }
    SoftResponse::new(count, evals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn soft_response_accessors() {
        let s = SoftResponse::new(250, 1_000);
        assert_eq!(s.count(), 250);
        assert_eq!(s.evals(), 1_000);
        assert!((s.value() - 0.25).abs() < 1e-12);
        assert!(!s.is_stable());
        assert!(!s.majority_bit());
        assert!(SoftResponse::new(0, 10).is_stable_zero());
        assert!(SoftResponse::new(10, 10).is_stable_one());
        assert!(SoftResponse::new(6, 10).majority_bit());
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn soft_response_rejects_overflow() {
        SoftResponse::new(11, 10);
    }

    #[test]
    fn display_contains_fraction() {
        let s = SoftResponse::new(1, 4);
        assert!(s.to_string().contains("1/4"));
    }

    #[test]
    fn fast_and_literal_paths_agree_statistically() {
        let mut rng = StdRng::seed_from_u64(10);
        let p = 0.3;
        let evals = 200;
        let trials = 3_000;
        let mut fast_sum = 0.0;
        let mut lit_sum = 0.0;
        for _ in 0..trials {
            fast_sum += measure(p, evals, &mut rng).value();
            lit_sum += measure_literal(evals, &mut rng, |r| r.gen::<f64>() < p).value();
        }
        let fast_mean = fast_sum / trials as f64;
        let lit_mean = lit_sum / trials as f64;
        assert!((fast_mean - p).abs() < 0.01, "fast {fast_mean}");
        assert!((lit_mean - p).abs() < 0.01, "literal {lit_mean}");
    }

    #[test]
    fn deterministic_probabilities_give_stable_measurements() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(measure(0.0, 100_000, &mut rng).is_stable_zero());
        assert!(measure(1.0, 100_000, &mut rng).is_stable_one());
    }

    #[test]
    fn saturated_counter_clamps_and_biases_toward_zero() {
        let s = SoftResponse::new(900, 1_000);
        let capped = s.saturated(100);
        assert_eq!(capped.count(), 100);
        assert_eq!(capped.evals(), 1_000);
        assert!(
            !capped.is_stable_one(),
            "saturation destroys stable-1 reads"
        );
        // A cap of zero reads everything as a 100 % stable 0.
        assert!(s.saturated(0).is_stable_zero());
        // Counts at or below the cap pass through untouched.
        assert_eq!(
            SoftResponse::new(5, 10).saturated(5),
            SoftResponse::new(5, 10)
        );
    }

    #[test]
    fn measure_saturating_replays_the_measure_stream() {
        let mut a = StdRng::seed_from_u64(20);
        let mut b = StdRng::seed_from_u64(20);
        for _ in 0..200 {
            let clean = measure(0.7, 500, &mut a);
            let faulty = measure_saturating(0.7, 500, 300, &mut b);
            assert_eq!(faulty, clean.saturated(300));
        }
        // Both rngs consumed identical draws.
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn marginal_probability_is_never_stable_at_scale() {
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..50 {
            let s = measure(0.5, 100_000, &mut rng);
            assert!(!s.is_stable(), "p=0.5 measured stable: {s}");
        }
    }
}
