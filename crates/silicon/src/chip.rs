//! Fabricated PUF test chips and chip lots.

use crate::counter::{self, SoftResponse};
use crate::fuse::FuseBank;
use crate::SiliconError;
use puf_core::batch::{throughput_guard, FeatureMatrix};
use puf_core::{
    AgingModel, ArbiterPuf, Challenge, Condition, DriftVector, Environment, NoiseModel, Sensitivity,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fabrication parameters for a [`Chip`].
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ChipConfig {
    /// Delay stages per arbiter PUF (the paper's chips have 32).
    pub stages: usize,
    /// Number of arbiter PUFs in the bank (the paper XORs up to 10 and
    /// attacks up to n = 11, so the default bank carries 12).
    pub bank_size: usize,
    /// Population-level voltage/temperature model.
    pub environment: Environment,
    /// Nominal-condition arbiter noise model.
    pub noise: NoiseModel,
    /// Standard deviation of the repeatable per-challenge *model mismatch*
    /// — the nonlinear residual of real silicon relative to the linear
    /// additive delay model, in normalised delay units. The paper's own
    /// data exhibits it: the linear model certifies only ~60 % of CRPs as
    /// stable against ~80 % in measurement. Zero gives an idealised,
    /// perfectly linear chip.
    pub model_mismatch_sigma: f64,
    /// Transistor aging (BTI/HCI drift) population parameters.
    pub aging: AgingModel,
}

impl ChipConfig {
    /// The configuration matching the paper's 32 nm test chips: 32 stages,
    /// a 12-PUF bank, the calibrated noise model and the default V/T model.
    pub fn paper_default() -> Self {
        Self {
            stages: puf_core::PAPER_STAGES,
            bank_size: 12,
            environment: Environment::paper_default(),
            noise: NoiseModel::paper_default(),
            model_mismatch_sigma: 0.09,
            aging: AgingModel::paper_default(),
        }
    }

    /// A small, fast configuration for unit tests: 16 stages, 4 PUFs and a
    /// 1,000-evaluation noise model.
    pub fn small() -> Self {
        Self {
            stages: 16,
            bank_size: 4,
            environment: Environment::paper_default(),
            noise: NoiseModel::paper_default().with_evaluations(1_000),
            model_mismatch_sigma: 0.09,
            aging: AgingModel::paper_default(),
        }
    }

    /// A copy with a different model-mismatch σ (builder style); 0 gives an
    /// idealised, perfectly linear chip.
    pub fn with_model_mismatch(mut self, sigma: f64) -> Self {
        assert!(
            sigma >= 0.0 && sigma.is_finite(),
            "sigma must be finite and non-negative"
        );
        self.model_mismatch_sigma = sigma;
        self
    }
}

impl Default for ChipConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// One simulated die: a bank of arbiter PUFs, their per-stage V/T
/// sensitivities, a fuse bank and the noise model.
///
/// See the crate-level docs for an end-to-end example.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Chip {
    id: u32,
    pufs: Vec<ArbiterPuf>,
    sensitivities: Vec<Sensitivity>,
    environment: Environment,
    noise: NoiseModel,
    model_mismatch_sigma: f64,
    mismatch_nonces: Vec<u64>,
    aging: AgingModel,
    drifts: Vec<DriftVector>,
    age_hours: f64,
    fuses: FuseBank,
}

impl Chip {
    /// Fabricates a chip: draws process variation for every PUF in the bank
    /// plus its V/T sensitivities.
    ///
    /// # Panics
    ///
    /// Panics if the config has zero stages or an empty bank.
    pub fn fabricate<R: Rng + ?Sized>(id: u32, config: &ChipConfig, rng: &mut R) -> Self {
        assert!(config.bank_size >= 1, "bank_size must be at least 1");
        let pufs: Vec<ArbiterPuf> = (0..config.bank_size)
            .map(|_| ArbiterPuf::random(config.stages, rng))
            .collect();
        let sensitivities = (0..config.bank_size)
            .map(|_| {
                Sensitivity::random(
                    config.stages,
                    config.environment.sigma_v,
                    config.environment.sigma_t,
                    rng,
                )
            })
            .collect();
        let mismatch_nonces = (0..config.bank_size).map(|_| rng.gen()).collect();
        let drifts = (0..config.bank_size)
            .map(|_| DriftVector::random(config.stages, &config.aging, rng))
            .collect();
        Self {
            id,
            pufs,
            sensitivities,
            environment: config.environment.clone(),
            noise: config.noise,
            model_mismatch_sigma: config.model_mismatch_sigma,
            mismatch_nonces,
            aging: config.aging,
            drifts,
            age_hours: 0.0,
            fuses: FuseBank::new(),
        }
    }

    /// Hours of stress the chip has accumulated (0 when fresh).
    pub fn age_hours(&self) -> f64 {
        self.age_hours
    }

    /// Ages the chip to `hours` of total stress: per-stage delays drift
    /// along the chip's frozen BTI/HCI directions (see
    /// [`puf_core::aging`]). Aging is repeatable and affects every
    /// subsequent measurement.
    ///
    /// # Panics
    ///
    /// Panics if `hours` is negative, non-finite, or would rejuvenate the
    /// chip (aging is monotone).
    pub fn set_age(&mut self, hours: f64) {
        assert!(
            hours >= self.age_hours,
            "aging is monotone: cannot go from {} to {hours} hours",
            self.age_hours
        );
        // Validates non-negativity/finiteness as a side effect.
        let _ = self.aging.time_factor(hours);
        self.age_hours = hours;
    }

    /// Chip identifier (die number within the lot).
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Delay stages per PUF.
    pub fn stages(&self) -> usize {
        self.pufs[0].stages()
    }

    /// Number of arbiter PUFs in the bank.
    pub fn bank_size(&self) -> usize {
        self.pufs.len()
    }

    /// The chip's environment model.
    pub fn environment(&self) -> &Environment {
        &self.environment
    }

    /// The nominal noise model.
    pub fn noise(&self) -> NoiseModel {
        self.noise
    }

    /// The noise model at an operating condition (σ scaled by the
    /// environment's noise factor).
    pub fn noise_at(&self, cond: Condition) -> NoiseModel {
        self.noise.scaled(self.environment.noise_scale(cond))
    }

    /// Whether the enrollment fuses are still intact.
    pub fn fuses_intact(&self) -> bool {
        self.fuses.is_intact()
    }

    /// Permanently blows the enrollment fuses (idempotent).
    pub fn blow_fuses(&mut self) {
        self.fuses.blow();
    }

    /// Reads the fuse state through the sense path; `glitch` models one
    /// transient sense failure drawn by the caller's seeded fault plan (see
    /// [`crate::fuse::FuseBank::sense`]).
    pub fn fuse_sense(&self, glitch: bool) -> crate::fuse::FuseSense {
        self.fuses.sense(glitch)
    }

    fn check_puf(&self, puf: usize) -> Result<(), SiliconError> {
        if puf >= self.bank_size() {
            return Err(SiliconError::PufIndexOutOfRange {
                index: puf,
                bank_size: self.bank_size(),
            });
        }
        Ok(())
    }

    fn check_challenge(&self, challenge: &Challenge) -> Result<(), SiliconError> {
        if challenge.stages() != self.stages() {
            return Err(SiliconError::StageMismatch {
                expected: self.stages(),
                actual: challenge.stages(),
            });
        }
        Ok(())
    }

    fn check_fuses(&self) -> Result<(), SiliconError> {
        if self.fuses.is_blown() {
            return Err(SiliconError::FusesBlown);
        }
        Ok(())
    }

    fn check_feature_stages(&self, features: &FeatureMatrix) -> Result<(), SiliconError> {
        if features.stages() != self.stages() {
            return Err(SiliconError::StageMismatch {
                expected: self.stages(),
                actual: features.stages(),
            });
        }
        Ok(())
    }

    fn check_xor_width(&self, n: usize) -> Result<(), SiliconError> {
        if n == 0 || n > self.bank_size() {
            return Err(SiliconError::XorWidthOutOfRange {
                n,
                bank_size: self.bank_size(),
            });
        }
        Ok(())
    }

    /// The condition-adjusted arbiter PUF at bank index `puf`.
    ///
    /// This is *simulation ground truth* (physically, the weights exist only
    /// as transistor mismatch); it is exposed for calibration experiments
    /// and oracles in tests — protocol code must go through the measurement
    /// API instead.
    ///
    /// # Errors
    ///
    /// Returns [`SiliconError::PufIndexOutOfRange`] for a bad index.
    pub fn ground_truth_puf(
        &self,
        puf: usize,
        cond: Condition,
    ) -> Result<ArbiterPuf, SiliconError> {
        self.check_puf(puf)?;
        Ok(self
            .environment
            .puf_at(&self.pufs[puf], &self.sensitivities[puf], cond))
    }

    /// Analytic per-evaluation probability that PUF `puf` reads `1` for
    /// `challenge` at `cond`. Simulation ground truth; see
    /// [`Chip::ground_truth_puf`].
    ///
    /// # Errors
    ///
    /// Bad index or stage mismatch.
    pub fn ground_truth_soft(
        &self,
        puf: usize,
        challenge: &Challenge,
        cond: Condition,
    ) -> Result<f64, SiliconError> {
        self.check_puf(puf)?;
        self.check_challenge(challenge)?;
        let aged = if self.age_hours > 0.0 {
            self.drifts[puf].aged_puf(&self.pufs[puf], &self.aging, self.age_hours)
        } else {
            self.pufs[puf].clone()
        };
        let adjusted = self
            .environment
            .puf_at(&aged, &self.sensitivities[puf], cond);
        let delta = adjusted.delay_difference(challenge)
            + self.model_mismatch_sigma
                * puf_core::rngx::gaussian_hash(self.mismatch_nonces[puf], challenge.bits());
        Ok(self.noise_at(cond).soft_response(delta))
    }

    /// Batched [`Chip::ground_truth_soft`] over a whole feature matrix:
    /// the condition-adjusted (and aged) PUF is built **once** for the batch
    /// and its deltas run through the bit-sliced kernel
    /// ([`puf_core::bitslice`], widest available SIMD lane), instead of
    /// paying the clone + adjustment per challenge. Bit-identical to the
    /// scalar call per row — the bit-sliced kernel reproduces the scalar
    /// summation order exactly.
    ///
    /// This is the hot loop of every counter sweep
    /// ([`Chip::measure_xor_soft_batch`], the testbench soft sweeps and the
    /// trillion-replay bench), so it reports throughput under
    /// `eval.bitslice.*` rather than `eval.batch.*`.
    ///
    /// # Errors
    ///
    /// Bad index or stage mismatch.
    pub fn ground_truth_soft_batch(
        &self,
        puf: usize,
        features: &FeatureMatrix,
        cond: Condition,
    ) -> Result<Vec<f64>, SiliconError> {
        self.check_puf(puf)?;
        self.check_feature_stages(features)?;
        let _span = puf_telemetry::span!("eval.bitslice");
        let _throughput = throughput_guard("eval.bitslice", features.len());
        let aged = if self.age_hours > 0.0 {
            self.drifts[puf].aged_puf(&self.pufs[puf], &self.aging, self.age_hours)
        } else {
            self.pufs[puf].clone()
        };
        let adjusted = self
            .environment
            .puf_at(&aged, &self.sensitivities[puf], cond);
        let noise = self.noise_at(cond);
        let mut out = vec![0.0f64; features.len()];
        adjusted.delta_batch_into_bitsliced(features, &mut out);
        let nonce = self.mismatch_nonces[puf];
        for (d, c) in out.iter_mut().zip(features.challenges()) {
            let delta =
                *d + self.model_mismatch_sigma * puf_core::rngx::gaussian_hash(nonce, c.bits());
            *d = noise.soft_response(delta);
        }
        Ok(out)
    }

    /// One noisy evaluation of an individual PUF — **enrollment only**.
    ///
    /// # Errors
    ///
    /// [`SiliconError::FusesBlown`] after deployment; bad index or stage
    /// mismatch otherwise.
    pub fn eval_individual_once<R: Rng + ?Sized>(
        &self,
        puf: usize,
        challenge: &Challenge,
        cond: Condition,
        rng: &mut R,
    ) -> Result<bool, SiliconError> {
        self.check_fuses()?;
        let p = self.ground_truth_soft(puf, challenge, cond)?;
        Ok(rng.gen::<f64>() < p)
    }

    /// Counter measurement of an individual PUF's soft response over
    /// `evals` evaluations — **enrollment only**.
    ///
    /// # Errors
    ///
    /// [`SiliconError::FusesBlown`] after deployment; bad index or stage
    /// mismatch otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `evals` is zero.
    pub fn measure_individual_soft<R: Rng + ?Sized>(
        &self,
        puf: usize,
        challenge: &Challenge,
        cond: Condition,
        evals: u64,
        rng: &mut R,
    ) -> Result<SoftResponse, SiliconError> {
        self.check_fuses()?;
        let _span = puf_telemetry::span!("silicon.measure.individual");
        let _trace = puf_telemetry::trace_span!("silicon.measure.individual");
        puf_telemetry::counter!("silicon.measure.evals").add(evals);
        let p = self.ground_truth_soft(puf, challenge, cond)?;
        Ok(counter::measure(p, evals, rng))
    }

    /// Batched [`Chip::measure_individual_soft`] over a whole feature
    /// matrix — **enrollment only**. The per-challenge counter draws happen
    /// in row order, so with the same RNG state the result is bit-identical
    /// to calling the scalar method per challenge.
    ///
    /// # Errors
    ///
    /// [`SiliconError::FusesBlown`] after deployment; bad index or stage
    /// mismatch otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `evals` is zero (and the batch is non-empty).
    pub fn measure_individual_soft_batch<R: Rng + ?Sized>(
        &self,
        puf: usize,
        features: &FeatureMatrix,
        cond: Condition,
        evals: u64,
        rng: &mut R,
    ) -> Result<Vec<SoftResponse>, SiliconError> {
        self.check_fuses()?;
        let _span = puf_telemetry::span!("silicon.measure.individual");
        let _trace = puf_telemetry::trace_span!("silicon.measure.individual");
        puf_telemetry::counter!("silicon.measure.evals").add(evals * features.len() as u64);
        let probs = self.ground_truth_soft_batch(puf, features, cond)?;
        Ok(probs
            .into_iter()
            .map(|p| counter::measure(p, evals, rng))
            .collect())
    }

    /// One noisy evaluation of the `n`-input XOR output — always available,
    /// fuses or not (this is the deployed interface, paper Fig. 5).
    ///
    /// # Errors
    ///
    /// Bad XOR width or stage mismatch.
    pub fn eval_xor_once<R: Rng + ?Sized>(
        &self,
        n: usize,
        challenge: &Challenge,
        cond: Condition,
        rng: &mut R,
    ) -> Result<bool, SiliconError> {
        self.check_xor_width(n)?;
        self.check_challenge(challenge)?;
        let _span = puf_telemetry::span!("core.eval");
        let _trace = puf_telemetry::trace_span!("silicon.eval.one_shot");
        puf_telemetry::counter!("core.eval.count").inc();
        let mut acc = false;
        for puf in 0..n {
            let p = self.ground_truth_soft(puf, challenge, cond)?;
            acc ^= rng.gen::<f64>() < p;
        }
        Ok(acc)
    }

    /// Counter measurement of the XOR output's soft response. Available to
    /// anyone holding the chip (an attacker can also average XOR outputs).
    ///
    /// # Errors
    ///
    /// Bad XOR width or stage mismatch.
    ///
    /// # Panics
    ///
    /// Panics if `evals` is zero.
    pub fn measure_xor_soft<R: Rng + ?Sized>(
        &self,
        n: usize,
        challenge: &Challenge,
        cond: Condition,
        evals: u64,
        rng: &mut R,
    ) -> Result<SoftResponse, SiliconError> {
        self.check_xor_width(n)?;
        self.check_challenge(challenge)?;
        let _span = puf_telemetry::span!("silicon.measure.xor");
        let _trace = puf_telemetry::trace_span!("silicon.measure.xor");
        puf_telemetry::counter!("silicon.measure.evals").add(evals);
        // P(xor = 1) via the piling-up identity over independent members.
        let mut prod = 1.0;
        for puf in 0..n {
            let p = self.ground_truth_soft(puf, challenge, cond)?;
            prod *= 1.0 - 2.0 * p;
        }
        let p_xor = (1.0 - prod) / 2.0;
        Ok(counter::measure(p_xor, evals, rng))
    }

    /// Batched [`Chip::eval_xor_once`] over a whole feature matrix. The
    /// per-member probabilities are computed batch-wise (one adjusted PUF
    /// per member), then the noise draws replay the scalar order —
    /// challenge-major, member-minor — so seeded runs are bit-identical to
    /// the scalar loop.
    ///
    /// # Errors
    ///
    /// Bad XOR width or stage mismatch.
    pub fn eval_xor_batch<R: Rng + ?Sized>(
        &self,
        n: usize,
        features: &FeatureMatrix,
        cond: Condition,
        rng: &mut R,
    ) -> Result<Vec<bool>, SiliconError> {
        self.check_xor_width(n)?;
        self.check_feature_stages(features)?;
        let _span = puf_telemetry::span!("eval.batch");
        let _throughput = throughput_guard("eval.batch", features.len());
        puf_telemetry::counter!("core.eval.count").add(features.len() as u64);
        let member_probs = self.member_probs(n, features, cond)?;
        let rows = features.len();
        Ok((0..rows)
            .map(|i| {
                (0..n).fold(false, |acc, puf| {
                    acc ^ (rng.gen::<f64>() < member_probs[puf][i])
                })
            })
            .collect())
    }

    /// Batched [`Chip::measure_xor_soft`] over a whole feature matrix. The
    /// counter draws happen in row order, so with the same RNG state the
    /// result is bit-identical to calling the scalar method per challenge.
    ///
    /// # Errors
    ///
    /// Bad XOR width or stage mismatch.
    ///
    /// # Panics
    ///
    /// Panics if `evals` is zero (and the batch is non-empty).
    pub fn measure_xor_soft_batch<R: Rng + ?Sized>(
        &self,
        n: usize,
        features: &FeatureMatrix,
        cond: Condition,
        evals: u64,
        rng: &mut R,
    ) -> Result<Vec<SoftResponse>, SiliconError> {
        self.check_xor_width(n)?;
        self.check_feature_stages(features)?;
        let _span = puf_telemetry::span!("silicon.measure.xor");
        let _trace = puf_telemetry::trace_span!("silicon.measure.xor");
        puf_telemetry::counter!("silicon.measure.evals").add(evals * features.len() as u64);
        let member_probs = self.member_probs(n, features, cond)?;
        Ok((0..features.len())
            .map(|i| {
                // P(xor = 1) via the piling-up identity, members in order.
                let prod = (0..n).fold(1.0, |prod, puf| prod * (1.0 - 2.0 * member_probs[puf][i]));
                counter::measure((1.0 - prod) / 2.0, evals, rng)
            })
            .collect())
    }

    /// Per-member soft-response vectors for the first `n` PUFs, one
    /// [`Chip::ground_truth_soft_batch`] each.
    fn member_probs(
        &self,
        n: usize,
        features: &FeatureMatrix,
        cond: Condition,
    ) -> Result<Vec<Vec<f64>>, SiliconError> {
        (0..n)
            .map(|puf| self.ground_truth_soft_batch(puf, features, cond))
            .collect()
    }

    /// Noiseless (majority) XOR response — convenience ground truth used by
    /// characterization experiments.
    ///
    /// # Errors
    ///
    /// Bad XOR width or stage mismatch.
    pub fn xor_reference_bit(
        &self,
        n: usize,
        challenge: &Challenge,
        cond: Condition,
    ) -> Result<bool, SiliconError> {
        self.check_xor_width(n)?;
        self.check_challenge(challenge)?;
        let mut acc = false;
        for puf in 0..n {
            acc ^= self.ground_truth_soft(puf, challenge, cond)? >= 0.5;
        }
        Ok(acc)
    }
}

/// A fabrication lot of chips — the paper tests 10.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ChipLot {
    chips: Vec<Chip>,
}

impl ChipLot {
    /// Fabricates `count` chips with sequential ids from a single lot seed.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or the config is invalid.
    pub fn fabricate(count: usize, config: &ChipConfig, seed: u64) -> Self {
        assert!(count >= 1, "a lot needs at least one chip");
        let mut rng = StdRng::seed_from_u64(seed);
        let chips = (0..count)
            .map(|id| Chip::fabricate(id as u32, config, &mut rng))
            .collect();
        Self { chips }
    }

    /// Number of chips in the lot.
    pub fn len(&self) -> usize {
        self.chips.len()
    }

    /// Whether the lot is empty (never true for a fabricated lot).
    pub fn is_empty(&self) -> bool {
        self.chips.is_empty()
    }

    /// The chips, in id order.
    pub fn chips(&self) -> &[Chip] {
        &self.chips
    }

    /// Mutable access (needed to blow fuses chip by chip).
    pub fn chips_mut(&mut self) -> &mut [Chip] {
        &mut self.chips
    }

    /// Iterates over the chips.
    pub fn iter(&self) -> std::slice::Iter<'_, Chip> {
        self.chips.iter()
    }
}

impl<'a> IntoIterator for &'a ChipLot {
    type Item = &'a Chip;
    type IntoIter = std::slice::Iter<'a, Chip>;
    fn into_iter(self) -> Self::IntoIter {
        self.chips.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_chip(seed: u64) -> Chip {
        let mut rng = StdRng::seed_from_u64(seed);
        Chip::fabricate(0, &ChipConfig::small(), &mut rng)
    }

    #[test]
    fn fabricate_respects_config() {
        let chip = test_chip(1);
        assert_eq!(chip.stages(), 16);
        assert_eq!(chip.bank_size(), 4);
        assert!(chip.fuses_intact());
    }

    #[test]
    fn individual_access_denied_after_blow() {
        let mut chip = test_chip(2);
        let mut rng = StdRng::seed_from_u64(3);
        let c = Challenge::random(chip.stages(), &mut rng);
        assert!(chip
            .measure_individual_soft(0, &c, Condition::NOMINAL, 100, &mut rng)
            .is_ok());
        assert!(chip
            .eval_individual_once(0, &c, Condition::NOMINAL, &mut rng)
            .is_ok());
        chip.blow_fuses();
        assert_eq!(
            chip.measure_individual_soft(0, &c, Condition::NOMINAL, 100, &mut rng),
            Err(SiliconError::FusesBlown)
        );
        assert_eq!(
            chip.eval_individual_once(0, &c, Condition::NOMINAL, &mut rng),
            Err(SiliconError::FusesBlown)
        );
        // XOR access survives.
        assert!(chip
            .eval_xor_once(2, &c, Condition::NOMINAL, &mut rng)
            .is_ok());
        assert!(chip
            .measure_xor_soft(2, &c, Condition::NOMINAL, 100, &mut rng)
            .is_ok());
    }

    #[test]
    fn index_and_width_validation() {
        let chip = test_chip(4);
        let mut rng = StdRng::seed_from_u64(5);
        let c = Challenge::random(chip.stages(), &mut rng);
        assert!(matches!(
            chip.measure_individual_soft(99, &c, Condition::NOMINAL, 10, &mut rng),
            Err(SiliconError::PufIndexOutOfRange { .. })
        ));
        assert!(matches!(
            chip.eval_xor_once(0, &c, Condition::NOMINAL, &mut rng),
            Err(SiliconError::XorWidthOutOfRange { .. })
        ));
        assert!(matches!(
            chip.eval_xor_once(5, &c, Condition::NOMINAL, &mut rng),
            Err(SiliconError::XorWidthOutOfRange { .. })
        ));
        let wrong = Challenge::zero(8);
        assert!(matches!(
            chip.eval_xor_once(2, &wrong, Condition::NOMINAL, &mut rng),
            Err(SiliconError::StageMismatch { .. })
        ));
    }

    #[test]
    fn xor_once_is_xor_of_individuals_in_noiseless_limit() {
        // With a tiny-noise chip the one-shot XOR must equal the XOR of the
        // members' reference bits.
        let mut rng = StdRng::seed_from_u64(6);
        let config = ChipConfig {
            noise: NoiseModel::new(1e-9, 100),
            ..ChipConfig::small()
        };
        let chip = Chip::fabricate(0, &config, &mut rng);
        for _ in 0..50 {
            let c = Challenge::random(chip.stages(), &mut rng);
            let want = (0..3).fold(false, |acc, i| {
                acc ^ (chip.ground_truth_soft(i, &c, Condition::NOMINAL).unwrap() >= 0.5)
            });
            let got = chip
                .eval_xor_once(3, &c, Condition::NOMINAL, &mut rng)
                .unwrap();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn noise_at_corner_is_larger() {
        let chip = test_chip(7);
        let nominal = chip.noise_at(Condition::NOMINAL).sigma();
        let corner = chip.noise_at(Condition::new(0.8, 60.0)).sigma();
        assert!(corner > nominal);
    }

    #[test]
    fn lot_fabrication_is_deterministic_per_seed() {
        let a = ChipLot::fabricate(3, &ChipConfig::small(), 42);
        let b = ChipLot::fabricate(3, &ChipConfig::small(), 42);
        assert_eq!(a.len(), 3);
        let mut rng = StdRng::seed_from_u64(8);
        let c = Challenge::random(a.chips()[0].stages(), &mut rng);
        for (ca, cb) in a.iter().zip(b.iter()) {
            assert_eq!(
                ca.ground_truth_soft(0, &c, Condition::NOMINAL).unwrap(),
                cb.ground_truth_soft(0, &c, Condition::NOMINAL).unwrap()
            );
        }
        // Different chips carry different process variation.
        let w0 = a.chips()[0]
            .ground_truth_puf(0, Condition::NOMINAL)
            .unwrap();
        let w1 = a.chips()[1]
            .ground_truth_puf(0, Condition::NOMINAL)
            .unwrap();
        assert_ne!(w0.weights(), w1.weights(), "distinct chips share weights");
    }

    #[test]
    fn aging_shifts_responses_monotonically() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut chip = Chip::fabricate(0, &ChipConfig::small(), &mut rng);
        assert_eq!(chip.age_hours(), 0.0);
        let c = Challenge::random(chip.stages(), &mut rng);
        let fresh = chip.ground_truth_soft(0, &c, Condition::NOMINAL).unwrap();
        chip.set_age(50_000.0);
        assert_eq!(chip.age_hours(), 50_000.0);
        let aged = chip.ground_truth_soft(0, &c, Condition::NOMINAL).unwrap();
        let again = chip.ground_truth_soft(0, &c, Condition::NOMINAL).unwrap();
        assert_eq!(aged, again, "aging must be repeatable");
        // Some challenge in a batch shifts.
        let mut any_shift = (fresh - aged).abs() > 0.0;
        for _ in 0..200 {
            let c = Challenge::random(chip.stages(), &mut rng);
            let mut probe = Chip::fabricate(1, &ChipConfig::small(), &mut rng);
            probe.set_age(0.0);
            let _ = probe;
            let f = {
                let mut fresh_chip = chip.clone();
                // cannot rejuvenate — compare against an identically
                // fabricated chip instead
                fresh_chip.age_hours = 0.0;
                fresh_chip
                    .ground_truth_soft(0, &c, Condition::NOMINAL)
                    .unwrap()
            };
            let a = chip.ground_truth_soft(0, &c, Condition::NOMINAL).unwrap();
            if (f - a).abs() > 1e-12 {
                any_shift = true;
                break;
            }
        }
        assert!(any_shift, "50k hours of aging shifted nothing");
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn rejuvenation_is_rejected() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut chip = Chip::fabricate(0, &ChipConfig::small(), &mut rng);
        chip.set_age(100.0);
        chip.set_age(50.0);
    }

    #[test]
    fn batch_measurements_replay_scalar_streams() {
        let mut chip = test_chip(13);
        chip.set_age(5_000.0); // exercise the aged path too
        let mut rng = StdRng::seed_from_u64(14);
        let cs: Vec<Challenge> = (0..37)
            .map(|_| Challenge::random(chip.stages(), &mut rng))
            .collect();
        let fm = FeatureMatrix::from_challenges(&cs).unwrap();
        let cond = Condition::new(0.8, 60.0);

        let probs = chip.ground_truth_soft_batch(1, &fm, cond).unwrap();
        for (c, &p) in cs.iter().zip(&probs) {
            assert_eq!(
                p.to_bits(),
                chip.ground_truth_soft(1, c, cond).unwrap().to_bits()
            );
        }

        let batch = chip
            .measure_individual_soft_batch(1, &fm, cond, 500, &mut StdRng::seed_from_u64(15))
            .unwrap();
        let mut scalar_rng = StdRng::seed_from_u64(15);
        for (c, got) in cs.iter().zip(&batch) {
            let want = chip
                .measure_individual_soft(1, c, cond, 500, &mut scalar_rng)
                .unwrap();
            assert_eq!(*got, want);
        }

        let batch = chip
            .eval_xor_batch(3, &fm, cond, &mut StdRng::seed_from_u64(16))
            .unwrap();
        let mut scalar_rng = StdRng::seed_from_u64(16);
        for (c, &got) in cs.iter().zip(&batch) {
            assert_eq!(
                got,
                chip.eval_xor_once(3, c, cond, &mut scalar_rng).unwrap()
            );
        }

        let batch = chip
            .measure_xor_soft_batch(3, &fm, cond, 500, &mut StdRng::seed_from_u64(17))
            .unwrap();
        let mut scalar_rng = StdRng::seed_from_u64(17);
        for (c, got) in cs.iter().zip(&batch) {
            let want = chip
                .measure_xor_soft(3, c, cond, 500, &mut scalar_rng)
                .unwrap();
            assert_eq!(*got, want);
        }
    }

    #[test]
    fn batch_measurements_validate() {
        let mut chip = test_chip(18);
        let mut rng = StdRng::seed_from_u64(19);
        let fm = FeatureMatrix::from_challenges(&[Challenge::zero(8)]).unwrap();
        assert!(matches!(
            chip.ground_truth_soft_batch(0, &fm, Condition::NOMINAL),
            Err(SiliconError::StageMismatch { .. })
        ));
        let fm = FeatureMatrix::from_challenges(&[Challenge::zero(chip.stages())]).unwrap();
        assert!(matches!(
            chip.ground_truth_soft_batch(99, &fm, Condition::NOMINAL),
            Err(SiliconError::PufIndexOutOfRange { .. })
        ));
        assert!(matches!(
            chip.eval_xor_batch(0, &fm, Condition::NOMINAL, &mut rng),
            Err(SiliconError::XorWidthOutOfRange { .. })
        ));
        chip.blow_fuses();
        assert_eq!(
            chip.measure_individual_soft_batch(0, &fm, Condition::NOMINAL, 100, &mut rng),
            Err(SiliconError::FusesBlown)
        );
        // XOR access survives fuse blow.
        assert!(chip
            .measure_xor_soft_batch(2, &fm, Condition::NOMINAL, 100, &mut rng)
            .is_ok());
    }

    #[test]
    fn ground_truth_soft_is_probability() {
        let chip = test_chip(9);
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..100 {
            let c = Challenge::random(chip.stages(), &mut rng);
            let p = chip.ground_truth_soft(1, &c, Condition::NOMINAL).unwrap();
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
