//! # puf-silicon
//!
//! A simulated stand-in for the paper's 32 nm PUF test chips and PXI
//! measurement setup.
//!
//! The DAC 2017 study measured 10 custom chips, each carrying a bank of
//! 32-stage MUX arbiter PUFs, with:
//!
//! - **on-chip counters** that evaluate a challenge 100,000 times and report
//!   the average response (the *soft response*),
//! - **fuses** that grant one-time access to the individual PUF outputs
//!   during enrollment and permanently block it afterwards,
//! - a **test bench** sweeping 1,000,000 random challenges across a 3×3
//!   voltage/temperature grid.
//!
//! This crate reproduces all three on top of the delay model in
//! [`puf_core`]:
//!
//! - [`Chip`] — a fabricated die: a bank of arbiter PUFs with per-stage V/T
//!   sensitivities and a calibrated noise model.
//! - [`counter`] — counter measurements, with a fast path that samples the
//!   evaluation count from the exact binomial distribution (what makes the
//!   "1 trillion measurements" scale tractable) and a literal
//!   one-evaluation-at-a-time path for fidelity tests.
//! - [`FuseBank`] — one-time access control semantics.
//! - [`testbench`] — challenge sweeps and CRP dataset collection.
//!
//! ```
//! use puf_silicon::{Chip, ChipConfig};
//! use puf_core::{Challenge, Condition};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let mut chip = Chip::fabricate(0, &ChipConfig::paper_default(), &mut rng);
//! let c = Challenge::random(chip.stages(), &mut rng);
//!
//! // Enrollment-time: individual PUF soft responses are accessible.
//! let soft = chip.measure_individual_soft(0, &c, Condition::NOMINAL, 1_000, &mut rng)?;
//! assert!((0.0..=1.0).contains(&soft.value()));
//!
//! // After deployment only the XOR output remains visible.
//! chip.blow_fuses();
//! assert!(chip
//!     .measure_individual_soft(0, &c, Condition::NOMINAL, 1_000, &mut rng)
//!     .is_err());
//! let _bit = chip.eval_xor_once(4, &c, Condition::NOMINAL, &mut rng)?;
//! # Ok::<(), puf_silicon::SiliconError>(())
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chip;
pub mod counter;
pub mod dataset;
pub mod fuse;
pub mod testbench;

pub use chip::{Chip, ChipConfig, ChipLot};
pub use counter::SoftResponse;
pub use dataset::{CrpSet, SoftCrpSet};
pub use fuse::{FuseBank, FuseSense};
pub use testbench::MeasurementFaults;

use std::error::Error as StdError;
use std::fmt;

/// Errors produced by chip access and measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SiliconError {
    /// Individual-PUF access was attempted after the fuses were blown.
    FusesBlown,
    /// A PUF index beyond the chip's bank size was addressed.
    PufIndexOutOfRange {
        /// The requested index.
        index: usize,
        /// The chip's bank size.
        bank_size: usize,
    },
    /// An XOR width larger than the chip's bank was requested.
    XorWidthOutOfRange {
        /// The requested XOR width `n`.
        n: usize,
        /// The chip's bank size.
        bank_size: usize,
    },
    /// The challenge stage count does not match the chip's PUFs.
    StageMismatch {
        /// Stages the chip expects.
        expected: usize,
        /// Stages the challenge carries.
        actual: usize,
    },
    /// A transient glitch on the fuse sense path left the access-control
    /// state unreadable for this measurement. Unlike [`FusesBlown`] this is
    /// not a permanent condition: the caller should retry the measurement.
    ///
    /// [`FusesBlown`]: SiliconError::FusesBlown
    FuseReadFailure,
}

impl fmt::Display for SiliconError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SiliconError::FusesBlown => {
                write!(f, "individual PUF access denied: fuses are blown")
            }
            SiliconError::PufIndexOutOfRange { index, bank_size } => {
                write!(f, "PUF index {index} out of range (bank size {bank_size})")
            }
            SiliconError::XorWidthOutOfRange { n, bank_size } => {
                write!(f, "XOR width {n} out of range (bank size {bank_size})")
            }
            SiliconError::StageMismatch { expected, actual } => {
                write!(f, "challenge has {actual} stages, chip expects {expected}")
            }
            SiliconError::FuseReadFailure => {
                write!(
                    f,
                    "fuse sense path glitched (transient): retry the measurement"
                )
            }
        }
    }
}

impl StdError for SiliconError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = SiliconError::PufIndexOutOfRange {
            index: 12,
            bank_size: 10,
        };
        assert!(e.to_string().contains("12"));
        assert!(SiliconError::FusesBlown.to_string().contains("fuses"));
    }
}
