//! One-time-access fuse semantics.
//!
//! The proposed design (paper Fig. 5) routes each individual PUF's response
//! through a fuse so that an authorised tester can collect soft responses
//! during enrollment; after enrollment the fuses are blown with a high
//! current and only the XOR of all responses remains observable. This is
//! what denies a modeling attacker the per-PUF training data that makes a
//! single arbiter PUF trivially learnable.

use std::fmt;

/// What a (possibly glitching) read of the fuse sense path reports.
///
/// The enrollment tester senses the fuse state before every individual-PUF
/// measurement; a marginal sense amplifier can transiently return an
/// indeterminate level — neither reliably intact nor reliably blown — in
/// which case the measurement must be retried rather than trusted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FuseSense {
    /// The fuses read intact: individual PUF outputs are accessible.
    Intact,
    /// The fuses read blown: only the XOR output is accessible.
    Blown,
    /// The sense path glitched; the true state was not observable.
    Indeterminate,
}

/// A bank of fuses guarding individual PUF outputs.
///
/// Starts intact; [`FuseBank::blow`] is irreversible. The chip consults the
/// bank before serving any individual-response measurement.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FuseBank {
    blown: bool,
    blow_count: u32,
}

impl FuseBank {
    /// A fresh, intact fuse bank.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether individual PUF outputs are still accessible.
    pub fn is_intact(&self) -> bool {
        !self.blown
    }

    /// Whether the fuses have been blown.
    pub fn is_blown(&self) -> bool {
        self.blown
    }

    /// Blows the fuses (applying "a high current or voltage" in the paper's
    /// words). Idempotent: blowing twice is allowed and keeps them blown.
    pub fn blow(&mut self) {
        self.blown = true;
        self.blow_count = self.blow_count.saturating_add(1);
    }

    /// How many times `blow` has been called (diagnostics only; any count
    /// ≥ 1 means blown).
    pub fn blow_count(&self) -> u32 {
        self.blow_count
    }

    /// Reads the fuse state through the sense path. `glitch` models one
    /// transient sense failure (drawn by the caller's seeded fault plan):
    /// when set, the read returns [`FuseSense::Indeterminate`] instead of
    /// the true state, and the caller must retry. The fuse state itself is
    /// never altered by a glitched read.
    pub fn sense(&self, glitch: bool) -> FuseSense {
        if glitch {
            puf_telemetry::counter!("faults.fuse.glitches").inc();
            return FuseSense::Indeterminate;
        }
        if self.blown {
            FuseSense::Blown
        } else {
            FuseSense::Intact
        }
    }
}

impl fmt::Display for FuseBank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fuses: {}", if self.blown { "blown" } else { "intact" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_bank_is_intact() {
        let bank = FuseBank::new();
        assert!(bank.is_intact());
        assert!(!bank.is_blown());
        assert_eq!(bank.blow_count(), 0);
    }

    #[test]
    fn blow_is_irreversible_and_idempotent() {
        let mut bank = FuseBank::new();
        bank.blow();
        assert!(bank.is_blown());
        bank.blow();
        assert!(bank.is_blown());
        assert_eq!(bank.blow_count(), 2);
    }

    #[test]
    fn sense_reports_state_and_glitches_transiently() {
        let mut bank = FuseBank::new();
        assert_eq!(bank.sense(false), FuseSense::Intact);
        assert_eq!(bank.sense(true), FuseSense::Indeterminate);
        // A glitched read does not disturb the stored state.
        assert_eq!(bank.sense(false), FuseSense::Intact);
        bank.blow();
        assert_eq!(bank.sense(false), FuseSense::Blown);
        assert_eq!(bank.sense(true), FuseSense::Indeterminate);
        assert!(bank.is_blown());
    }

    #[test]
    fn display_reflects_state() {
        let mut bank = FuseBank::new();
        assert!(bank.to_string().contains("intact"));
        bank.blow();
        assert!(bank.to_string().contains("blown"));
    }
}
