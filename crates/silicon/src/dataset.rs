//! CRP dataset containers used by the modeling attacks and enrollment.

use crate::counter::SoftResponse;
use puf_core::Challenge;
use rand::seq::SliceRandom;
use rand::Rng;

/// A set of hard challenge-response pairs (the attacker's view of an XOR
/// PUF, or a single PUF's hard responses).
#[derive(Clone, Debug, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CrpSet {
    challenges: Vec<Challenge>,
    responses: Vec<bool>,
}

impl CrpSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a set from parallel vectors.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn from_pairs(challenges: Vec<Challenge>, responses: Vec<bool>) -> Self {
        assert_eq!(
            challenges.len(),
            responses.len(),
            "challenge/response length mismatch"
        );
        Self {
            challenges,
            responses,
        }
    }

    /// Appends one CRP.
    pub fn push(&mut self, challenge: Challenge, response: bool) {
        self.challenges.push(challenge);
        self.responses.push(response);
    }

    /// Number of CRPs.
    pub fn len(&self) -> usize {
        self.challenges.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.challenges.is_empty()
    }

    /// The challenges, in insertion order.
    pub fn challenges(&self) -> &[Challenge] {
        &self.challenges
    }

    /// The responses, parallel to [`CrpSet::challenges`].
    pub fn responses(&self) -> &[bool] {
        &self.responses
    }

    /// Iterates over `(challenge, response)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Challenge, bool)> + '_ {
        self.challenges.iter().zip(self.responses.iter().copied())
    }

    /// Shuffles the CRPs in place (keeping pairs aligned).
    pub fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        self.challenges = idx.iter().map(|&i| self.challenges[i]).collect();
        self.responses = idx.iter().map(|&i| self.responses[i]).collect();
    }

    /// Splits off the first `ceil(fraction · len)` CRPs as a training set,
    /// leaving the rest as test — the paper's 90 %/10 % protocol.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not within `[0, 1]`.
    pub fn split_at_fraction(&self, fraction: f64) -> (CrpSet, CrpSet) {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        let cut = ((self.len() as f64) * fraction).ceil() as usize;
        let cut = cut.min(self.len());
        (
            CrpSet {
                challenges: self.challenges[..cut].to_vec(),
                responses: self.responses[..cut].to_vec(),
            },
            CrpSet {
                challenges: self.challenges[cut..].to_vec(),
                responses: self.responses[cut..].to_vec(),
            },
        )
    }

    /// Keeps at most the first `limit` CRPs.
    pub fn truncated(&self, limit: usize) -> CrpSet {
        let cut = limit.min(self.len());
        CrpSet {
            challenges: self.challenges[..cut].to_vec(),
            responses: self.responses[..cut].to_vec(),
        }
    }
}

impl Extend<(Challenge, bool)> for CrpSet {
    fn extend<T: IntoIterator<Item = (Challenge, bool)>>(&mut self, iter: T) {
        for (c, r) in iter {
            self.push(c, r);
        }
    }
}

impl FromIterator<(Challenge, bool)> for CrpSet {
    fn from_iter<T: IntoIterator<Item = (Challenge, bool)>>(iter: T) -> Self {
        let mut set = CrpSet::new();
        set.extend(iter);
        set
    }
}

/// A set of soft challenge-response pairs (counter measurements), the raw
/// material of enrollment model fitting.
#[derive(Clone, Debug, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SoftCrpSet {
    challenges: Vec<Challenge>,
    softs: Vec<SoftResponse>,
}

impl SoftCrpSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a set from parallel vectors.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn from_pairs(challenges: Vec<Challenge>, softs: Vec<SoftResponse>) -> Self {
        assert_eq!(
            challenges.len(),
            softs.len(),
            "challenge/soft-response length mismatch"
        );
        Self { challenges, softs }
    }

    /// Appends one soft CRP.
    pub fn push(&mut self, challenge: Challenge, soft: SoftResponse) {
        self.challenges.push(challenge);
        self.softs.push(soft);
    }

    /// Number of CRPs.
    pub fn len(&self) -> usize {
        self.challenges.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.challenges.is_empty()
    }

    /// The challenges.
    pub fn challenges(&self) -> &[Challenge] {
        &self.challenges
    }

    /// The soft responses, parallel to [`SoftCrpSet::challenges`].
    pub fn softs(&self) -> &[SoftResponse] {
        &self.softs
    }

    /// Iterates over `(challenge, soft response)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Challenge, SoftResponse)> + '_ {
        self.challenges.iter().zip(self.softs.iter().copied())
    }

    /// Soft-response values as `f64` (for regression targets).
    pub fn values(&self) -> Vec<f64> {
        self.softs.iter().map(|s| s.value()).collect()
    }

    /// Fraction of CRPs that measured 100 % stable.
    pub fn stable_fraction(&self) -> f64 {
        if self.is_empty() {
            return f64::NAN;
        }
        self.softs.iter().filter(|s| s.is_stable()).count() as f64 / self.len() as f64
    }

    /// The subset whose measurements are 100 % stable, with majority bits.
    pub fn stable_crps(&self) -> CrpSet {
        self.iter()
            .filter(|(_, s)| s.is_stable())
            .map(|(c, s)| (*c, s.is_stable_one()))
            .collect()
    }

    /// Reduces to hard CRPs by majority vote (stable or not).
    pub fn to_hard(&self) -> CrpSet {
        self.iter().map(|(c, s)| (*c, s.majority_bit())).collect()
    }
}

impl Extend<(Challenge, SoftResponse)> for SoftCrpSet {
    fn extend<T: IntoIterator<Item = (Challenge, SoftResponse)>>(&mut self, iter: T) {
        for (c, s) in iter {
            self.push(c, s);
        }
    }
}

impl FromIterator<(Challenge, SoftResponse)> for SoftCrpSet {
    fn from_iter<T: IntoIterator<Item = (Challenge, SoftResponse)>>(iter: T) -> Self {
        let mut set = SoftCrpSet::new();
        set.extend(iter);
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_challenges(n: usize) -> Vec<Challenge> {
        let mut rng = StdRng::seed_from_u64(1);
        (0..n).map(|_| Challenge::random(16, &mut rng)).collect()
    }

    #[test]
    fn crpset_roundtrip_and_split() {
        let cs = sample_challenges(10);
        let rs: Vec<bool> = (0..10).map(|i| i % 2 == 0).collect();
        let set = CrpSet::from_pairs(cs.clone(), rs.clone());
        assert_eq!(set.len(), 10);
        let (train, test) = set.split_at_fraction(0.9);
        assert_eq!(train.len(), 9);
        assert_eq!(test.len(), 1);
        assert_eq!(train.challenges()[0], cs[0]);
        assert_eq!(test.responses()[0], rs[9]);
    }

    #[test]
    fn split_edge_fractions() {
        let set = CrpSet::from_pairs(sample_challenges(5), vec![true; 5]);
        let (a, b) = set.split_at_fraction(0.0);
        assert_eq!((a.len(), b.len()), (0, 5));
        let (a, b) = set.split_at_fraction(1.0);
        assert_eq!((a.len(), b.len()), (5, 0));
    }

    #[test]
    fn shuffle_preserves_pairs() {
        let cs = sample_challenges(50);
        // Response encodes the original index's parity of bit 0.
        let rs: Vec<bool> = cs.iter().map(|c| c.bit(0)).collect();
        let mut set = CrpSet::from_pairs(cs, rs);
        let mut rng = StdRng::seed_from_u64(2);
        set.shuffle(&mut rng);
        for (c, r) in set.iter() {
            assert_eq!(c.bit(0), r, "pair alignment broken by shuffle");
        }
    }

    #[test]
    fn truncated_limits_length() {
        let set = CrpSet::from_pairs(sample_challenges(5), vec![true; 5]);
        assert_eq!(set.truncated(3).len(), 3);
        assert_eq!(set.truncated(100).len(), 5);
    }

    #[test]
    fn soft_set_stable_filtering() {
        let cs = sample_challenges(4);
        let softs = vec![
            SoftResponse::new(0, 100),   // stable 0
            SoftResponse::new(100, 100), // stable 1
            SoftResponse::new(50, 100),  // unstable
            SoftResponse::new(99, 100),  // unstable (but majority 1)
        ];
        let set = SoftCrpSet::from_pairs(cs, softs);
        assert!((set.stable_fraction() - 0.5).abs() < 1e-12);
        let stable = set.stable_crps();
        assert_eq!(stable.len(), 2);
        assert_eq!(stable.responses(), &[false, true]);
        let hard = set.to_hard();
        assert_eq!(hard.responses(), &[false, true, true, true]);
    }

    #[test]
    fn collect_from_iterator() {
        let cs = sample_challenges(3);
        let set: CrpSet = cs.iter().map(|c| (*c, true)).collect();
        assert_eq!(set.len(), 3);
        let soft: SoftCrpSet = cs.iter().map(|c| (*c, SoftResponse::new(1, 2))).collect();
        assert_eq!(soft.len(), 3);
        assert!(soft.stable_fraction() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn from_pairs_rejects_mismatch() {
        CrpSet::from_pairs(sample_challenges(2), vec![true]);
    }
}
