//! # puf-analysis
//!
//! Statistics for PUF characterization:
//!
//! - [`hist`] — fixed-bin histograms (the paper's 0.05-bin soft-response
//!   distribution, Fig. 2).
//! - [`stability`] — stable-CRP fractions, the exponential decay `aⁿ` of
//!   XOR-PUF stability (Figs. 3 and 12) and inter-PUF independence checks.
//! - [`uniqueness`] — uniqueness/uniformity/bit-aliasing/reliability, the
//!   standard silicon-PUF quality metrics.
//! - [`table`] — plain-text table rendering for the fig binaries.
//!
//! ```
//! use puf_analysis::hist::Histogram;
//!
//! let mut h = Histogram::soft_response();
//! h.extend([0.0, 0.0, 1.0, 0.47, 0.97]);
//! assert_eq!(h.counts()[0], 2);   // stable-0 bin
//! assert_eq!(h.counts()[19], 2);  // 0.97 and 1.00 both land in the top bin
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod avalanche;
pub mod entropy;
pub mod hist;
pub mod randomness;
pub mod stability;
pub mod table;
pub mod uniqueness;

pub use hist::Histogram;
pub use stability::{fit_exponential_base, fraction_true, StabilityPoint};
pub use table::Table;
