//! Lightweight statistical randomness tests (NIST SP 800-22 style) for PUF
//! response streams.
//!
//! Authentication-grade PUF responses should be indistinguishable from coin
//! flips to anyone without the delay parameters. These tests give the
//! standard first-line screening: monobit frequency, runs, and lag-k
//! autocorrelation, each reported as a p-value (two-sided, normal
//! approximation — accurate for the thousands-of-bits streams used here).

use puf_core::math::erfc;

/// Result of one randomness test.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TestResult {
    /// The test statistic (standardised).
    pub statistic: f64,
    /// Two-sided p-value; small values reject randomness.
    pub p_value: f64,
}

impl TestResult {
    /// Whether the stream passes at the given significance level (commonly
    /// 0.01).
    pub fn passes(&self, alpha: f64) -> bool {
        self.p_value >= alpha
    }
}

fn two_sided_p(z: f64) -> f64 {
    erfc(z.abs() / std::f64::consts::SQRT_2)
}

/// Monobit frequency test: is the number of ones consistent with `n/2`?
///
/// # Panics
///
/// Panics on an empty stream.
pub fn monobit(bits: &[bool]) -> TestResult {
    assert!(!bits.is_empty(), "empty bit stream");
    let n = bits.len() as f64;
    let ones = bits.iter().filter(|&&b| b).count() as f64;
    let z = (2.0 * ones - n) / n.sqrt();
    TestResult {
        statistic: z,
        p_value: two_sided_p(z),
    }
}

/// Runs test: is the number of runs (maximal same-bit blocks) consistent
/// with an i.i.d. stream of the observed bias?
///
/// Follows NIST SP 800-22 §2.3.
///
/// # Panics
///
/// Panics on a stream shorter than 2 bits.
pub fn runs(bits: &[bool]) -> TestResult {
    assert!(bits.len() >= 2, "runs test needs at least 2 bits");
    let n = bits.len() as f64;
    let pi = bits.iter().filter(|&&b| b).count() as f64 / n;
    // Degenerate constant streams: zero runs variance, certain rejection.
    if pi == 0.0 || pi == 1.0 {
        return TestResult {
            statistic: f64::INFINITY,
            p_value: 0.0,
        };
    }
    let v = 1 + bits.windows(2).filter(|w| w[0] != w[1]).count();
    let expected = 2.0 * n * pi * (1.0 - pi);
    let z = (v as f64 - expected) / (2.0 * n.sqrt() * pi * (1.0 - pi));
    TestResult {
        statistic: z,
        p_value: two_sided_p(z),
    }
}

/// Lag-`k` autocorrelation test: do bits `i` and `i + k` agree more or less
/// often than half the time?
///
/// # Panics
///
/// Panics if `k == 0` or the stream has fewer than `k + 2` bits.
pub fn autocorrelation(bits: &[bool], k: usize) -> TestResult {
    assert!(k > 0, "lag must be positive");
    assert!(bits.len() > k + 1, "stream too short for lag {k}");
    let m = bits.len() - k;
    let agreements = (0..m).filter(|&i| bits[i] == bits[i + k]).count() as f64;
    let z = (2.0 * agreements - m as f64) / (m as f64).sqrt();
    TestResult {
        statistic: z,
        p_value: two_sided_p(z),
    }
}

/// Runs the full screening battery and returns `(name, result)` pairs.
///
/// # Panics
///
/// Panics on streams shorter than 10 bits.
pub fn battery(bits: &[bool]) -> Vec<(&'static str, TestResult)> {
    assert!(bits.len() >= 10, "battery needs at least 10 bits");
    vec![
        ("monobit", monobit(bits)),
        ("runs", runs(bits)),
        ("autocorr_lag1", autocorrelation(bits, 1)),
        ("autocorr_lag2", autocorrelation(bits, 2)),
        ("autocorr_lag8", autocorrelation(bits, 8)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_bits(n: usize, seed: u64) -> Vec<bool> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen()).collect()
    }

    #[test]
    fn fair_coin_passes_everything() {
        let bits = random_bits(20_000, 1);
        for (name, result) in battery(&bits) {
            assert!(
                result.passes(0.001),
                "{name} rejected a fair coin: p = {}",
                result.p_value
            );
        }
    }

    #[test]
    fn biased_stream_fails_monobit() {
        let mut rng = StdRng::seed_from_u64(2);
        let bits: Vec<bool> = (0..20_000).map(|_| rng.gen::<f64>() < 0.6).collect();
        assert!(
            !monobit(&bits).passes(0.01),
            "60% bias slipped past monobit"
        );
    }

    #[test]
    fn alternating_stream_fails_runs() {
        let bits: Vec<bool> = (0..10_000).map(|i| i % 2 == 0).collect();
        let r = runs(&bits);
        assert!(!r.passes(0.01), "perfect alternation passed runs: {r:?}");
        // ... while monobit alone cannot see it.
        assert!(monobit(&bits).passes(0.01));
    }

    #[test]
    fn periodic_stream_fails_matching_lag() {
        // Period-8 pattern: lag-8 agreement is perfect.
        let bits: Vec<bool> = (0..8_000).map(|i| (i / 4) % 2 == 0).collect();
        assert!(!autocorrelation(&bits, 8).passes(0.01));
    }

    #[test]
    fn constant_stream_rejected() {
        let bits = vec![true; 1_000];
        assert_eq!(runs(&bits).p_value, 0.0);
        assert!(!monobit(&bits).passes(0.01));
    }

    #[test]
    fn wide_xor_puf_responses_pass_the_battery() {
        // An individual arbiter PUF carries a per-instance bias (its
        // arbiter offset weight); the piling-up lemma shrinks the XOR's
        // composite bias as the product of member biases, so a wide XOR PUF
        // passes the battery where a narrow one can fail monobit.
        use puf_core::{Challenge, XorPuf};
        let mut rng = StdRng::seed_from_u64(3);
        let puf = XorPuf::random(8, 32, &mut rng);
        let bits: Vec<bool> = (0..20_000)
            .map(|_| puf.response(&Challenge::random(32, &mut rng)))
            .collect();
        for (name, result) in battery(&bits) {
            assert!(
                result.passes(0.001),
                "{name} rejected XOR PUF responses: p = {}",
                result.p_value
            );
        }
    }

    #[test]
    fn xor_width_reduces_response_bias() {
        // Directly check the piling-up effect: |bias| of n = 8 is no larger
        // than |bias| of n = 1 on the same member bank.
        use puf_core::{Challenge, XorPuf};
        let mut rng = StdRng::seed_from_u64(4);
        let bank = XorPuf::random(8, 32, &mut rng);
        let challenges: Vec<Challenge> = (0..30_000)
            .map(|_| Challenge::random(32, &mut rng))
            .collect();
        let bias = |n: usize| {
            let sub = bank.prefix(n);
            let ones = challenges.iter().filter(|c| sub.response(c)).count() as f64;
            (ones / challenges.len() as f64 - 0.5).abs()
        };
        let b1 = bias(1);
        let b8 = bias(8);
        assert!(
            b8 <= b1 + 0.01,
            "8-XOR bias {b8} should not exceed single-PUF bias {b1}"
        );
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn monobit_rejects_empty() {
        monobit(&[]);
    }
}
