//! Plain-text table and series rendering for the figure-reproduction
//! binaries.

use std::fmt::Write as _;

/// A simple left-aligned text table builder.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with padded columns and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                let _ = write!(out, "{cell:<w$}");
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Formats a fraction as a percentage with the given decimals.
pub fn pct(fraction: f64, decimals: usize) -> String {
    format!("{:.*}%", decimals, fraction * 100.0)
}

/// Formats a float in fixed-point with the given decimals.
pub fn fixed(value: f64, decimals: usize) -> String {
    format!("{value:.*}", decimals)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new(["n", "stable"]);
        t.row(["1", "80.0%"]);
        t.row(["10", "10.9%"]);
        let s = t.render();
        assert!(s.contains("n "));
        assert!(s.contains("10.9%"));
        assert!(s.lines().count() == 4); // header + sep + 2 rows
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.1091, 1), "10.9%");
        assert_eq!(fixed(1.23456, 2), "1.23");
    }
}
