//! Fixed-bin histograms for soft-response distributions (paper Fig. 2:
//! "The soft response has a range from 0.00 to 1.00 with a bin size of
//! 0.05").

use std::fmt;

/// A histogram over a fixed closed range with equal-width bins.
///
/// Values exactly on the upper edge fall in the last bin, so `[0, 1]` with
/// 20 bins matches the paper's 0.05-bin soft-response histogram where a
/// soft response of exactly 1.00 lands in the top bin.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    below: u64,
    above: u64,
}

impl Histogram {
    /// Creates an empty histogram over `[lo, hi]` with `bins` bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(lo < hi, "lo must be below hi");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            below: 0,
            above: 0,
        }
    }

    /// The paper's soft-response histogram: `[0, 1]` with bin width 0.05.
    pub fn soft_response() -> Self {
        Self::new(0.0, 1.0, 20)
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Lower edge of the range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper edge of the range.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Adds a value. Out-of-range values are tallied separately and do not
    /// disturb the bins.
    pub fn add(&mut self, value: f64) {
        if value < self.lo || value.is_nan() {
            self.below += 1;
            return;
        }
        if value > self.hi {
            self.above += 1;
            return;
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let mut idx = ((value - self.lo) / width) as usize;
        if idx >= self.counts.len() {
            idx = self.counts.len() - 1; // value == hi
        }
        self.counts[idx] += 1;
    }

    /// Adds every value of an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.add(v);
        }
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Merges another histogram's tallies into this one.
    ///
    /// # Panics
    ///
    /// Panics if the ranges or bin counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.bins() == other.bins(),
            "histogram shape mismatch"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.below += other.below;
        self.above += other.above;
    }

    /// Count of values below the range (or NaN).
    pub fn below(&self) -> u64 {
        self.below
    }

    /// Count of values above the range.
    pub fn above(&self) -> u64 {
        self.above
    }

    /// Total number of in-range values.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of in-range values in bin `i`. `NaN` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `i >= bins`.
    pub fn fraction(&self, i: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return f64::NAN;
        }
        self.counts[i] as f64 / total as f64
    }

    /// `(center, fraction)` pairs for every bin — the series a plot renders.
    pub fn series(&self) -> Vec<(f64, f64)> {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        (0..self.counts.len())
            .map(|i| (self.lo + width * (i as f64 + 0.5), self.fraction(i)))
            .collect()
    }

    /// Renders a terminal bar chart, one row per bin.
    pub fn render(&self, bar_width: usize) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        for (i, &c) in self.counts.iter().enumerate() {
            let edge = self.lo + width * i as f64;
            let bar = "#".repeat((c as usize * bar_width).div_ceil(max as usize));
            let _ = writeln!(out, "[{:5.2},{:5.2}) {:>9}  {}", edge, edge + width, c, bar);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_edges() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(0.0); // bin 0
        h.add(0.24); // bin 0
        h.add(0.25); // bin 1
        h.add(0.99); // bin 3
        h.add(1.0); // bin 3 (upper edge inclusive)
        assert_eq!(h.counts(), &[2, 1, 0, 2]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn out_of_range_is_tallied_separately() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(-0.1);
        h.add(1.1);
        h.add(f64::NAN);
        assert_eq!(h.total(), 0);
        assert_eq!(h.below(), 2);
        assert_eq!(h.above(), 1);
    }

    #[test]
    fn soft_response_histogram_has_20_bins() {
        let h = Histogram::soft_response();
        assert_eq!(h.bins(), 20);
        assert_eq!(h.lo(), 0.0);
        assert_eq!(h.hi(), 1.0);
    }

    #[test]
    fn fractions_and_series_sum_to_one() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        h.extend((0..100).map(|i| i as f64 / 100.0));
        let total: f64 = (0..10).map(|i| h.fraction(i)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        let series = h.series();
        assert_eq!(series.len(), 10);
        assert!((series[0].0 - 0.05).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_fraction_is_nan() {
        let h = Histogram::new(0.0, 1.0, 3);
        assert!(h.fraction(0).is_nan());
    }

    #[test]
    fn render_contains_counts() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(0.1);
        h.add(0.9);
        h.add(0.95);
        let text = h.render(10);
        assert!(text.contains('#'));
        assert!(text.lines().count() == 2);
    }
}
