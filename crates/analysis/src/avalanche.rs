//! Strict-avalanche (bit-sensitivity) analysis.
//!
//! An ideal challenge-response function flips its response with probability
//! ½ when any single challenge bit flips. Arbiter PUFs are far from ideal:
//! flipping challenge bit `i` negates exactly the features `φ_0..=φ_i`, so
//! a low-index bit perturbs only a few delay terms (flip probability ≪ ½)
//! while the top bit negates nearly the whole sum, `Δ → 2·w_bias − Δ`
//! (flip probability ≫ ½) — a structural non-uniformity that modeling
//! attacks exploit and that XOR-ing narrows. This module measures the
//! per-bit flip probability (the avalanche profile) of any response
//! function.

use puf_core::Challenge;
use rand::Rng;

/// Per-bit avalanche profile: `profile[i]` is the estimated probability
/// that flipping challenge bit `i` flips the response.
#[derive(Clone, Debug, PartialEq)]
pub struct AvalancheProfile {
    flip_probability: Vec<f64>,
    samples: usize,
}

impl AvalancheProfile {
    /// The per-bit flip probabilities, indexed by stage.
    pub fn flip_probability(&self) -> &[f64] {
        &self.flip_probability
    }

    /// Number of base challenges sampled per bit.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Mean flip probability over all bits (ideal: 0.5).
    pub fn mean(&self) -> f64 {
        self.flip_probability.iter().sum::<f64>() / self.flip_probability.len() as f64
    }

    /// Worst absolute deviation from the ideal ½ over all bits.
    pub fn worst_bias(&self) -> f64 {
        self.flip_probability
            .iter()
            .map(|p| (p - 0.5).abs())
            .fold(0.0, f64::max)
    }
}

/// Estimates the avalanche profile of `respond` over `samples` random base
/// challenges per bit.
///
/// # Panics
///
/// Panics if `samples` is zero or `stages` is out of the challenge range.
pub fn avalanche_profile<R, F>(
    stages: usize,
    samples: usize,
    rng: &mut R,
    mut respond: F,
) -> AvalancheProfile
where
    R: Rng + ?Sized,
    F: FnMut(&Challenge) -> bool,
{
    assert!(samples > 0, "need at least one sample");
    let mut flips = vec![0usize; stages];
    for _ in 0..samples {
        let base = Challenge::random(stages, rng);
        let base_response = respond(&base);
        for (i, f) in flips.iter_mut().enumerate() {
            if respond(&base.with_flipped_bit(i)) != base_response {
                *f += 1;
            }
        }
    }
    AvalancheProfile {
        flip_probability: flips
            .into_iter()
            .map(|f| f as f64 / samples as f64)
            .collect(),
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puf_core::{ArbiterPuf, XorPuf};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ideal_random_function_has_flat_profile() {
        // A hash-like response: parity of a scrambled product of the bits.
        let mut rng = StdRng::seed_from_u64(1);
        let profile = avalanche_profile(16, 2_000, &mut rng, |c| {
            let x = c.bits() as u64;
            let h = x
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .rotate_left(17)
                .wrapping_mul(0xBF58_476D_1CE4_E5B9);
            h.count_ones() % 2 == 1
        });
        assert!(
            profile.worst_bias() < 0.08,
            "hash function profile should be flat: {:?}",
            profile.flip_probability()
        );
        assert!((profile.mean() - 0.5).abs() < 0.02);
    }

    #[test]
    fn arbiter_puf_profile_is_structurally_biased() {
        // Flipping bit i negates the prefix sum Σ_{j≤i} w_j φ_j, so the
        // flip probability grows with the bit index: bit 0 perturbs one
        // weight (rare flips, in expectation over dies), bit 31 negates
        // essentially the whole sum (Δ → 2·w_bias − Δ, near-certain flip).
        // Average over several dies — a single die's low-index weights can
        // be outliers.
        let mut rng = StdRng::seed_from_u64(2);
        let mut low = 0.0;
        let mut high = 0.0;
        let dies = 6;
        for _ in 0..dies {
            let puf = ArbiterPuf::random(32, &mut rng);
            let profile = avalanche_profile(32, 1_500, &mut rng, |c| puf.response(c));
            let p = profile.flip_probability();
            low += p[..4].iter().sum::<f64>() / 4.0;
            high += p[28..].iter().sum::<f64>() / 4.0;
            assert!(
                profile.worst_bias() > 0.15,
                "arbiter PUF should be visibly non-ideal: worst bias {}",
                profile.worst_bias()
            );
        }
        low /= dies as f64;
        high /= dies as f64;
        assert!(
            high > low + 0.2,
            "flip probability should grow with bit index: low bits {low:.3}, high bits {high:.3}"
        );
        assert!(high > 0.75, "top bits should flip nearly always: {high:.3}");
    }

    #[test]
    fn xor_narrows_the_avalanche_bias() {
        let mut rng = StdRng::seed_from_u64(3);
        let single = ArbiterPuf::random(32, &mut rng);
        let xor = XorPuf::random(6, 32, &mut rng);
        let single_profile = avalanche_profile(32, 2_000, &mut rng, |c| single.response(c));
        let xor_profile = avalanche_profile(32, 2_000, &mut rng, |c| xor.response(c));
        assert!(
            xor_profile.worst_bias() < single_profile.worst_bias(),
            "XOR-ing should flatten the profile: {} vs {}",
            xor_profile.worst_bias(),
            single_profile.worst_bias()
        );
    }

    #[test]
    fn constant_function_never_flips() {
        let mut rng = StdRng::seed_from_u64(4);
        let profile = avalanche_profile(8, 100, &mut rng, |_| true);
        assert!(profile.flip_probability().iter().all(|&p| p == 0.0));
        assert!((profile.worst_bias() - 0.5).abs() < 1e-12);
        assert_eq!(profile.samples(), 100);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        avalanche_profile(8, 0, &mut rng, |_| true);
    }
}
