//! Stability statistics: stable-CRP fractions, the exponential decay
//! `p(n) ≈ aⁿ` of XOR-PUF stability, and inter-PUF correlation checks.
//!
//! The paper's Fig. 3 and Fig. 12 both plot "% of stable CRPs" against the
//! number of XOR-ed PUFs and observe that every curve "follows an
//! exponential trend, suggesting a negligible correlation between the
//! individual PUFs". [`fit_exponential_base`] recovers the base `a` from a
//! measured curve by log-linear least squares, which is how we verify the
//! 0.800ⁿ / 0.545ⁿ / 0.342ⁿ shapes.

/// Fraction of `true` entries in a mask. `NaN` for an empty mask.
pub fn fraction_true(mask: &[bool]) -> f64 {
    if mask.is_empty() {
        return f64::NAN;
    }
    mask.iter().filter(|&&b| b).count() as f64 / mask.len() as f64
}

/// One point of a stability-vs-n curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StabilityPoint {
    /// Number of XOR-ed PUFs.
    pub n: usize,
    /// Fraction of CRPs that are stable (or predicted stable) at this `n`.
    pub fraction: f64,
}

/// Fits `fraction ≈ aⁿ` to a curve by least squares on
/// `ln(fraction) = n · ln(a)` (zero-intercept log-linear fit), returning
/// `a`.
///
/// Points with non-positive or non-finite fractions are skipped (they carry
/// no log-domain information).
///
/// # Panics
///
/// Panics if fewer than two usable points remain.
pub fn fit_exponential_base(points: &[StabilityPoint]) -> f64 {
    let usable: Vec<(f64, f64)> = points
        .iter()
        .filter(|p| p.fraction > 0.0 && p.fraction.is_finite())
        .map(|p| (p.n as f64, p.fraction.ln()))
        .collect();
    assert!(
        usable.len() >= 2,
        "need at least two positive points to fit an exponential"
    );
    // Zero-intercept least squares: ln a = Σ n·ln p / Σ n².
    let num: f64 = usable.iter().map(|(n, lp)| n * lp).sum();
    let den: f64 = usable.iter().map(|(n, _)| n * n).sum();
    (num / den).exp()
}

/// Coefficient of determination (R²) of the fitted exponential against the
/// measured points, in log domain.
///
/// # Panics
///
/// Panics if fewer than two usable points remain.
pub fn exponential_fit_r2(points: &[StabilityPoint], base: f64) -> f64 {
    let usable: Vec<(f64, f64)> = points
        .iter()
        .filter(|p| p.fraction > 0.0 && p.fraction.is_finite())
        .map(|p| (p.n as f64, p.fraction.ln()))
        .collect();
    assert!(usable.len() >= 2, "need at least two positive points");
    let mean_lp = usable.iter().map(|(_, lp)| lp).sum::<f64>() / usable.len() as f64;
    let ss_tot: f64 = usable.iter().map(|(_, lp)| (lp - mean_lp).powi(2)).sum();
    let ss_res: f64 = usable
        .iter()
        .map(|(n, lp)| (lp - n * base.ln()).powi(2))
        .sum();
    if ss_tot == 0.0 {
        return 1.0;
    }
    1.0 - ss_res / ss_tot
}

/// Estimates the correlation between per-PUF stability masks: the ratio of
/// the observed all-stable fraction for the joint mask to the product of the
/// marginal stable fractions. Ratios near 1 indicate independence (the
/// paper's "negligible correlation" observation).
///
/// # Panics
///
/// Panics if the masks are empty, ragged, or any marginal is zero.
pub fn independence_ratio(masks: &[Vec<bool>]) -> f64 {
    assert!(!masks.is_empty(), "need at least one mask");
    let len = masks[0].len();
    assert!(len > 0, "masks must be non-empty");
    assert!(
        masks.iter().all(|m| m.len() == len),
        "masks must have equal length"
    );
    let mut product = 1.0;
    for m in masks {
        let f = fraction_true(m);
        assert!(f > 0.0, "a marginal stable fraction is zero");
        product *= f;
    }
    let joint = (0..len).filter(|&i| masks.iter().all(|m| m[i])).count() as f64 / len as f64;
    joint / product
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_true_basics() {
        assert!((fraction_true(&[true, false, true, true]) - 0.75).abs() < 1e-12);
        assert!(fraction_true(&[]).is_nan());
    }

    #[test]
    fn exponential_fit_recovers_exact_base() {
        let points: Vec<StabilityPoint> = (1..=10)
            .map(|n| StabilityPoint {
                n,
                fraction: 0.8f64.powi(n as i32),
            })
            .collect();
        let base = fit_exponential_base(&points);
        assert!((base - 0.8).abs() < 1e-12, "base {base}");
        assert!(exponential_fit_r2(&points, base) > 0.999999);
    }

    #[test]
    fn exponential_fit_tolerates_noise() {
        let points: Vec<StabilityPoint> = (1..=10)
            .map(|n| StabilityPoint {
                n,
                fraction: 0.55f64.powi(n as i32) * if n % 2 == 0 { 1.05 } else { 0.95 },
            })
            .collect();
        let base = fit_exponential_base(&points);
        assert!((base - 0.55).abs() < 0.02, "base {base}");
    }

    #[test]
    fn exponential_fit_skips_zero_points() {
        let mut points: Vec<StabilityPoint> = (1..=5)
            .map(|n| StabilityPoint {
                n,
                fraction: 0.3f64.powi(n as i32),
            })
            .collect();
        points.push(StabilityPoint {
            n: 12,
            fraction: 0.0,
        });
        let base = fit_exponential_base(&points);
        assert!((base - 0.3).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn exponential_fit_needs_two_points() {
        fit_exponential_base(&[StabilityPoint {
            n: 1,
            fraction: 0.8,
        }]);
    }

    #[test]
    fn independence_ratio_near_one_for_independent_masks() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1);
        let masks: Vec<Vec<bool>> = (0..3)
            .map(|_| (0..20_000).map(|_| rng.gen::<f64>() < 0.8).collect())
            .collect();
        let ratio = independence_ratio(&masks);
        assert!((ratio - 1.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn independence_ratio_detects_perfect_correlation() {
        let mask: Vec<bool> = (0..1_000).map(|i| i % 2 == 0).collect();
        let masks = vec![mask.clone(), mask];
        // joint = 0.5, marginals product = 0.25 → ratio 2.
        assert!((independence_ratio(&masks) - 2.0).abs() < 1e-9);
    }
}
