//! Standard PUF quality metrics beyond the paper's figures: uniqueness
//! (inter-chip Hamming distance), uniformity and bit-aliasing.
//!
//! These are the conventional companion statistics of any silicon PUF
//! characterization (e.g. Maiti et al.'s evaluation framework) and serve as
//! sanity checks that the simulated chip lot behaves like real silicon:
//! distinct dies should disagree on ~50 % of responses, each die should emit
//! ~50 % ones, and no challenge position should be biased across the lot.

/// Fraction of `1` responses of one device over a challenge set — ideal 0.5.
///
/// # Panics
///
/// Panics if `responses` is empty.
pub fn uniformity(responses: &[bool]) -> f64 {
    assert!(!responses.is_empty(), "empty response vector");
    responses.iter().filter(|&&b| b).count() as f64 / responses.len() as f64
}

/// Mean pairwise normalised inter-chip Hamming distance — ideal 0.5.
///
/// `responses[i]` is chip `i`'s response vector over a shared challenge
/// list.
///
/// # Panics
///
/// Panics with fewer than two chips, empty vectors, or ragged lengths.
pub fn uniqueness(responses: &[Vec<bool>]) -> f64 {
    assert!(responses.len() >= 2, "need at least two chips");
    let len = responses[0].len();
    assert!(len > 0, "empty response vectors");
    assert!(
        responses.iter().all(|r| r.len() == len),
        "ragged response vectors"
    );
    let mut acc = 0.0;
    let mut pairs = 0usize;
    for i in 0..responses.len() {
        for j in (i + 1)..responses.len() {
            let hd = responses[i]
                .iter()
                .zip(&responses[j])
                .filter(|(a, b)| a != b)
                .count();
            acc += hd as f64 / len as f64;
            pairs += 1;
        }
    }
    acc / pairs as f64
}

/// Per-challenge bit-aliasing: fraction of chips answering `1` for each
/// challenge — ideal 0.5 for every entry.
///
/// # Panics
///
/// Panics on empty or ragged input.
pub fn bit_aliasing(responses: &[Vec<bool>]) -> Vec<f64> {
    assert!(!responses.is_empty(), "need at least one chip");
    let len = responses[0].len();
    assert!(len > 0, "empty response vectors");
    assert!(
        responses.iter().all(|r| r.len() == len),
        "ragged response vectors"
    );
    (0..len)
        .map(|c| responses.iter().filter(|r| r[c]).count() as f64 / responses.len() as f64)
        .collect()
}

/// Intra-chip reliability: mean fraction of repeated response vectors that
/// match a reference vector — ideal 1.0.
///
/// # Panics
///
/// Panics on empty or ragged input.
pub fn reliability(reference: &[bool], repeats: &[Vec<bool>]) -> f64 {
    assert!(!reference.is_empty(), "empty reference");
    assert!(!repeats.is_empty(), "need at least one repeat");
    assert!(
        repeats.iter().all(|r| r.len() == reference.len()),
        "ragged repeats"
    );
    let mut acc = 0.0;
    for rep in repeats {
        let matches = reference.iter().zip(rep).filter(|(a, b)| a == b).count();
        acc += matches as f64 / reference.len() as f64;
    }
    acc / repeats.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniformity_counts_ones() {
        assert!((uniformity(&[true, false, true, false]) - 0.5).abs() < 1e-12);
        assert!((uniformity(&[true, true]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniqueness_of_identical_and_complementary() {
        let a = vec![true, false, true, false];
        let b: Vec<bool> = a.iter().map(|x| !x).collect();
        assert!(uniqueness(&[a.clone(), a.clone()]).abs() < 1e-12);
        assert!((uniqueness(&[a.clone(), b]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniqueness_averages_pairs() {
        let a = vec![true, true, true, true];
        let b = vec![true, true, false, false]; // HD(a,b) = 0.5
        let c = vec![false, false, true, true]; // HD(a,c) = 0.5, HD(b,c) = 1.0
        assert!((uniqueness(&[a, b, c]) - (0.5 + 0.5 + 1.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn bit_aliasing_per_position() {
        let rows = vec![
            vec![true, false, true],
            vec![true, false, false],
            vec![true, true, false],
        ];
        let alias = bit_aliasing(&rows);
        assert!((alias[0] - 1.0).abs() < 1e-12);
        assert!((alias[1] - 1.0 / 3.0).abs() < 1e-12);
        assert!((alias[2] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn reliability_of_exact_repeats_is_one() {
        let r = vec![true, false, true];
        assert!((reliability(&r, &[r.clone(), r.clone()]) - 1.0).abs() < 1e-12);
        let flipped = vec![true, false, false];
        assert!((reliability(&r, &[flipped]) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn simulated_lot_metrics_look_like_silicon() {
        use puf_core::{challenge::random_challenges, Condition};
        use puf_silicon::{ChipConfig, ChipLot};
        use rand::{rngs::StdRng, SeedableRng};

        let lot = ChipLot::fabricate(6, &ChipConfig::small(), 99);
        let mut rng = StdRng::seed_from_u64(100);
        let challenges = random_challenges(lot.chips()[0].stages(), 600, &mut rng);
        let responses: Vec<Vec<bool>> = lot
            .iter()
            .map(|chip| {
                challenges
                    .iter()
                    .map(|c| chip.xor_reference_bit(2, c, Condition::NOMINAL).unwrap())
                    .collect()
            })
            .collect();
        let uq = uniqueness(&responses);
        assert!((uq - 0.5).abs() < 0.08, "uniqueness {uq}");
        for r in &responses {
            let uf = uniformity(r);
            assert!((uf - 0.5).abs() < 0.15, "uniformity {uf}");
        }
    }
}
