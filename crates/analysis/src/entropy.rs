//! Entropy estimation for PUF response sources.
//!
//! Key generation (see `puf_protocol::keygen`) consumes response bits as
//! secret material, so their entropy matters: an XOR PUF's per-instance
//! bias and any challenge-to-challenge correlation reduce the extractable
//! key length. This module provides the standard first-order estimators:
//!
//! - [`shannon_entropy`] — the i.i.d. Shannon entropy of the bit frequency,
//! - [`min_entropy_mcv`] — the most-common-value min-entropy bound of NIST
//!   SP 800-90B §6.3.1 (with the confidence-interval correction),
//! - [`markov_entropy`] — a first-order Markov bound that additionally
//!   penalises sequential correlation.

/// Shannon entropy (bits per bit) of an i.i.d. source with the observed
/// `1`-frequency.
///
/// # Panics
///
/// Panics on an empty stream.
pub fn shannon_entropy(bits: &[bool]) -> f64 {
    assert!(!bits.is_empty(), "empty bit stream");
    let p = bits.iter().filter(|&&b| b).count() as f64 / bits.len() as f64;
    binary_entropy(p)
}

/// The binary entropy function `H(p)` in bits.
pub fn binary_entropy(p: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&p));
    let mut h = 0.0;
    if p > 0.0 {
        h -= p * p.log2();
    }
    if p < 1.0 {
        h -= (1.0 - p) * (1.0 - p).log2();
    }
    h
}

/// Most-common-value min-entropy estimate (NIST SP 800-90B §6.3.1):
/// `−log₂(p̂_u)` where `p̂_u` is the upper 99 % confidence bound on the
/// most-common symbol's probability.
///
/// # Panics
///
/// Panics on an empty stream.
pub fn min_entropy_mcv(bits: &[bool]) -> f64 {
    assert!(!bits.is_empty(), "empty bit stream");
    let n = bits.len() as f64;
    let ones = bits.iter().filter(|&&b| b).count() as f64;
    let p_max = (ones / n).max(1.0 - ones / n);
    // Upper confidence bound at z = 2.576 (99 %).
    let p_u = (p_max + 2.576 * (p_max * (1.0 - p_max) / n).sqrt()).min(1.0);
    -p_u.log2()
}

/// First-order Markov min-entropy bound: models the stream as a two-state
/// Markov chain and reports the per-bit min-entropy of its most likely
/// long-run trajectory, `−log₂(max transition probability)` weighted by the
/// chain structure (simplified SP 800-90B §6.3.3: the bound is the entropy
/// of the most probable length-128 path, per bit).
///
/// # Panics
///
/// Panics on a stream shorter than 2 bits.
pub fn markov_entropy(bits: &[bool]) -> f64 {
    assert!(bits.len() >= 2, "need at least 2 bits");
    // Transition counts with add-one smoothing.
    let mut counts = [[1.0f64; 2]; 2];
    for w in bits.windows(2) {
        counts[usize::from(w[0])][usize::from(w[1])] += 1.0;
    }
    let p = |a: usize, b: usize| counts[a][b] / (counts[a][0] + counts[a][1]);
    let p0 = {
        let zeros = bits.iter().filter(|&&b| !b).count() as f64;
        (zeros / bits.len() as f64).clamp(1e-9, 1.0 - 1e-9)
    };
    // Most probable length-L path via dynamic programming over log probs.
    const L: usize = 128;
    let mut best = [p0.log2(), (1.0 - p0).log2()];
    for _ in 1..L {
        let next0 = (best[0] + p(0, 0).log2()).max(best[1] + p(1, 0).log2());
        let next1 = (best[0] + p(0, 1).log2()).max(best[1] + p(1, 1).log2());
        best = [next0, next1];
    }
    -best[0].max(best[1]) / L as f64
}

/// Summary of all estimators for one stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EntropyReport {
    /// Shannon entropy, bits/bit.
    pub shannon: f64,
    /// MCV min-entropy, bits/bit.
    pub min_entropy: f64,
    /// First-order Markov bound, bits/bit.
    pub markov: f64,
}

/// Runs all estimators.
///
/// # Panics
///
/// Panics on a stream shorter than 2 bits.
pub fn estimate(bits: &[bool]) -> EntropyReport {
    EntropyReport {
        shannon: shannon_entropy(bits),
        min_entropy: min_entropy_mcv(bits),
        markov: markov_entropy(bits),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn coin(n: usize, p: f64, seed: u64) -> Vec<bool> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen::<f64>() < p).collect()
    }

    #[test]
    fn binary_entropy_known_values() {
        assert!((binary_entropy(0.5) - 1.0).abs() < 1e-12);
        assert!(binary_entropy(0.0).abs() < 1e-12);
        assert!(binary_entropy(1.0).abs() < 1e-12);
        assert!((binary_entropy(0.11) - 0.4999).abs() < 0.001);
    }

    #[test]
    fn fair_coin_is_nearly_one_bit() {
        let bits = coin(100_000, 0.5, 1);
        let report = estimate(&bits);
        assert!(report.shannon > 0.999, "{report:?}");
        assert!(report.min_entropy > 0.97, "{report:?}");
        assert!(report.markov > 0.97, "{report:?}");
    }

    #[test]
    fn biased_coin_loses_min_entropy_fastest() {
        let bits = coin(100_000, 0.7, 2);
        let report = estimate(&bits);
        assert!(report.shannon < 0.93);
        assert!(
            report.min_entropy < report.shannon,
            "min-entropy must lower-bound Shannon: {report:?}"
        );
        assert!((report.min_entropy - -(0.71f64.log2())).abs() < 0.03);
    }

    #[test]
    fn correlated_stream_caught_by_markov_only() {
        // Sticky chain: P(same as previous) = 0.9, marginal still 50/50.
        let mut rng = StdRng::seed_from_u64(3);
        let mut bits = vec![rng.gen::<bool>()];
        for _ in 1..100_000 {
            let prev = *bits.last().expect("non-empty");
            bits.push(if rng.gen::<f64>() < 0.9 { prev } else { !prev });
        }
        let report = estimate(&bits);
        assert!(report.shannon > 0.99, "marginal looks fair: {report:?}");
        assert!(
            report.markov < 0.4,
            "markov bound must catch stickiness: {report:?}"
        );
    }

    #[test]
    fn constant_stream_has_no_entropy() {
        let bits = vec![true; 10_000];
        let report = estimate(&bits);
        assert!(report.shannon.abs() < 1e-9);
        assert!(report.min_entropy < 0.001);
        assert!(report.markov < 0.05);
    }

    #[test]
    fn xor_puf_keys_have_high_min_entropy() {
        use puf_core::{Challenge, XorPuf};
        let mut rng = StdRng::seed_from_u64(4);
        let puf = XorPuf::random(8, 32, &mut rng);
        let bits: Vec<bool> = (0..50_000)
            .map(|_| puf.response(&Challenge::random(32, &mut rng)))
            .collect();
        let report = estimate(&bits);
        assert!(
            report.min_entropy > 0.9,
            "8-XOR responses should be near-full-entropy: {report:?}"
        );
    }
}
