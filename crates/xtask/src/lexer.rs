//! A minimal line-oriented Rust lexer: separates code from comments and
//! string/char literals so the rule passes can match tokens without false
//! positives from doc examples, message strings, or `#[doc]` attributes.
//!
//! The output preserves the *shape* of the source: one [`Line`] per input
//! line, where `code` is the original line with every comment and literal
//! replaced by spaces (columns preserved, measured in characters), and the
//! comment text / string contents are carried alongside for the rules that
//! need them (`// SAFETY:` detection, telemetry name checks, exemption
//! annotations).
//!
//! Handled: line comments, nested block comments, string literals with
//! escapes, raw (and byte/raw-byte) strings with arbitrary `#` fences,
//! char literals (including escapes), and lifetimes (`'a` is *not* an
//! unterminated char literal).

/// One lexed source line.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// The line's code with comments and literals masked out by spaces.
    /// Character columns match the original source.
    pub code: String,
    /// Concatenated comment text appearing on this line, with the comment
    /// markers (`//`, `///`, `//!`, `/*`, `*/`) stripped.
    pub comment: String,
    /// String literals *starting* on this line: `(char_column, contents)`.
    /// A multi-line literal is attributed to its opening line.
    pub strings: Vec<(usize, String)>,
    /// The line's comment is a doc comment (`///` or `//!`). Doc text
    /// *describes* annotations; it never carries one.
    pub doc: bool,
}

impl Line {
    /// Whether the line contains no code (only whitespace, comments or
    /// literal spill-over from a previous line).
    pub fn is_code_blank(&self) -> bool {
        self.code.trim().is_empty()
    }
}

/// A fully lexed file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Lines in order; index 0 is source line 1.
    pub lines: Vec<Line>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Nested depth.
    BlockComment(u32),
    /// Inside `"…"`; `true` = next char is escaped.
    Str(bool),
    /// Inside a raw string closed by `"` + this many `#`.
    RawStr(u32),
    /// Inside `'…'`; `true` = next char is escaped.
    Char(bool),
}

/// Lexes `src` into per-line masked code, comments and string literals.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut lines: Vec<Line> = Vec::new();
    let mut cur = Line::default();
    let mut col = 0usize; // char column on the current line
    let mut state = State::Code;
    // The literal currently being filled: (index into `lines` at open time —
    // equal to `lines.len()` while the opening line is still `cur` — and the
    // index into that line's `strings`).
    let mut open_string: Option<(usize, usize)> = None;

    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            // Line comments end at the newline; char literals cannot span
            // lines, so an unterminated one (malformed input) must not
            // swallow the rest of the file.
            if state == State::LineComment || matches!(state, State::Char(_)) {
                state = State::Code;
            }
            lines.push(std::mem::take(&mut cur));
            col = 0;
            i += 1;
            continue;
        }
        match state {
            State::Code => match c {
                '/' if chars.get(i + 1) == Some(&'/') => {
                    state = State::LineComment;
                    cur.code.push_str("  ");
                    col += 2;
                    i += 2;
                    // Skip doc-comment markers so `comment` starts at the
                    // text (`/// x` and `//! x` → ` x`).
                    while chars.get(i) == Some(&'/') || chars.get(i) == Some(&'!') {
                        cur.doc = true;
                        cur.code.push(' ');
                        col += 1;
                        i += 1;
                    }
                }
                '/' if chars.get(i + 1) == Some(&'*') => {
                    state = State::BlockComment(1);
                    cur.code.push_str("  ");
                    col += 2;
                    i += 2;
                }
                '"' => {
                    cur.strings.push((col, String::new()));
                    open_string = Some((lines.len(), cur.strings.len() - 1));
                    state = State::Str(false);
                    cur.code.push(' ');
                    col += 1;
                    i += 1;
                }
                'r' | 'b' if !prev_is_ident(&chars, i) => {
                    // Possible literal prefix: r", r#"…, br", b".
                    let mut j = i + 1;
                    if c == 'b' && chars.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let raw = c == 'r' || j > i + 1;
                    let mut hashes = 0u32;
                    while raw && chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        // Mask the prefix and opening quote.
                        for _ in i..=j {
                            cur.code.push(' ');
                            col += 1;
                        }
                        cur.strings.push((col - 1, String::new()));
                        open_string = Some((lines.len(), cur.strings.len() - 1));
                        state = if raw {
                            State::RawStr(hashes)
                        } else {
                            State::Str(false)
                        };
                        i = j + 1;
                    } else {
                        cur.code.push(c);
                        col += 1;
                        i += 1;
                    }
                }
                '\'' => {
                    let next = chars.get(i + 1);
                    let after = chars.get(i + 2);
                    if next == Some(&'\\') || (next.is_some() && after == Some(&'\'')) {
                        // Char literal: mask the opening quote.
                        state = State::Char(false);
                        cur.code.push(' ');
                    } else {
                        // Lifetime: keep as code.
                        cur.code.push('\'');
                    }
                    col += 1;
                    i += 1;
                }
                _ => {
                    cur.code.push(c);
                    col += 1;
                    i += 1;
                }
            },
            State::LineComment => {
                cur.comment.push(c);
                cur.code.push(' ');
                col += 1;
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    cur.code.push_str("  ");
                    col += 2;
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(depth + 1);
                    cur.code.push_str("  ");
                    col += 2;
                    i += 2;
                } else {
                    cur.comment.push(c);
                    cur.code.push(' ');
                    col += 1;
                    i += 1;
                }
            }
            State::Str(escaped) => {
                if escaped {
                    push_string_char(&mut lines, &mut cur, open_string, c);
                    state = State::Str(false);
                } else if c == '\\' {
                    state = State::Str(true);
                } else if c == '"' {
                    state = State::Code;
                    open_string = None;
                } else {
                    push_string_char(&mut lines, &mut cur, open_string, c);
                }
                cur.code.push(' ');
                col += 1;
                i += 1;
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0u32;
                    while seen < hashes && chars.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        for _ in i..j {
                            cur.code.push(' ');
                            col += 1;
                        }
                        state = State::Code;
                        open_string = None;
                        i = j;
                        continue;
                    }
                }
                push_string_char(&mut lines, &mut cur, open_string, c);
                cur.code.push(' ');
                col += 1;
                i += 1;
            }
            State::Char(escaped) => {
                if escaped {
                    // Consume a `\u{…}` payload wholesale — but never past
                    // the end of the line: a malformed escape must not
                    // desync the per-line accounting.
                    if c == 'u' && chars.get(i + 1) == Some(&'{') {
                        while i < chars.len() && chars[i] != '}' && chars[i] != '\n' {
                            cur.code.push(' ');
                            col += 1;
                            i += 1;
                        }
                        if chars.get(i) != Some(&'}') {
                            // Unterminated payload: hand the newline (or
                            // EOF) back to the top of the loop.
                            state = State::Char(false);
                            continue;
                        }
                    }
                    state = State::Char(false);
                } else if c == '\\' {
                    state = State::Char(true);
                } else if c == '\'' {
                    state = State::Code;
                }
                cur.code.push(' ');
                col += 1;
                i += 1;
            }
        }
    }
    lines.push(cur);
    Lexed { lines }
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// Appends `c` to the string literal currently open, wherever its opening
/// line now lives (still `cur`, or already flushed into `lines`).
fn push_string_char(lines: &mut [Line], cur: &mut Line, open: Option<(usize, usize)>, c: char) {
    let Some((line_idx, str_idx)) = open else {
        return;
    };
    let line = if line_idx == lines.len() {
        cur
    } else {
        match lines.get_mut(line_idx) {
            Some(l) => l,
            None => return,
        }
    };
    if let Some(s) = line.strings.get_mut(str_idx) {
        s.1.push(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_masked_and_collected() {
        let l = lex("let x = 1; // trailing note\n/* block */ let y = 2;");
        assert_eq!(l.lines[0].code.trim_end(), "let x = 1;");
        assert_eq!(l.lines[0].comment.trim(), "trailing note");
        assert!(l.lines[1].code.contains("let y = 2;"));
        assert_eq!(l.lines[1].comment.trim(), "block");
    }

    #[test]
    fn doc_comments_hide_code_like_text() {
        let l = lex("/// call .unwrap() freely here\nfn f() {}\n//! HashMap too");
        assert!(!l.lines[0].code.contains("unwrap"));
        assert!(l.lines[0].comment.contains(".unwrap()"));
        assert!(!l.lines[2].code.contains("HashMap"));
    }

    #[test]
    fn strings_are_masked_and_captured() {
        let l = lex(r#"let s = "panic!(no)"; s.len();"#);
        assert!(!l.lines[0].code.contains("panic"));
        assert_eq!(l.lines[0].strings.len(), 1);
        assert_eq!(l.lines[0].strings[0].1, "panic!(no)");
        assert!(l.lines[0].code.contains("s.len();"));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let l = lex(r#"let s = "a\"b"; let t = 1;"#);
        assert_eq!(l.lines[0].strings[0].1, "a\"b");
        assert!(l.lines[0].code.contains("let t = 1;"));
    }

    #[test]
    fn raw_strings_with_fences() {
        let l = lex("let s = r#\"has \"quotes\" and unwrap()\"#; let u = 2;");
        assert!(!l.lines[0].code.contains("unwrap"));
        assert!(l.lines[0].code.contains("let u = 2;"));
        assert_eq!(l.lines[0].strings[0].1, "has \"quotes\" and unwrap()");
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let l = lex("let a = b\"bytes panic!\"; let b2 = br#\"raw unwrap()\"#; done();");
        assert!(!l.lines[0].code.contains("panic"));
        assert!(!l.lines[0].code.contains("unwrap"));
        assert!(l.lines[0].code.contains("done();"));
        assert_eq!(l.lines[0].strings[0].1, "bytes panic!");
        assert_eq!(l.lines[0].strings[1].1, "raw unwrap()");
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let l = lex("fn f<'a>(x: &'a str) -> char { '\\'' }\nlet q = '\"'; let z = 'y';");
        assert!(l.lines[0].code.contains("fn f<'a>(x: &'a str)"));
        assert!(!l.lines[1].code.contains('"'), "quote char literal masked");
        assert!(l.lines[1].code.contains("let z ="));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still comment */ let a = 1;");
        assert!(l.lines[0].code.contains("let a = 1;"));
        assert!(!l.lines[0].code.contains("inner"));
    }

    #[test]
    fn multiline_string_attributed_to_opening_line() {
        let l = lex("let s = \"first\nsecond\nthird\"; let after = 3;");
        assert_eq!(l.lines[0].strings[0].1, "firstsecondthird");
        assert!(l.lines[2].code.contains("let after = 3;"));
        assert!(l.lines[1].strings.is_empty());
    }

    #[test]
    fn columns_are_preserved() {
        let l = lex("abc \"xy\" unsafe");
        let col = l.lines[0].code.find("unsafe").unwrap();
        assert_eq!(col, 9);
    }

    #[test]
    fn unicode_escape_in_char_literal() {
        let l = lex("let c = '\\u{1F600}'; let after = 1;");
        assert!(l.lines[0].code.contains("let after = 1;"));
        assert!(!l.lines[0].code.contains("1F600"));
    }

    #[test]
    fn malformed_unicode_escape_does_not_swallow_lines() {
        // An unterminated `\u{` payload must stop at the newline: the next
        // line is real code again, at the right line number.
        let l = lex("let c = '\\u{bad\nlet next = 2;\nlet third = 3;");
        assert_eq!(l.lines.len(), 3);
        assert!(l.lines[1].code.contains("let next = 2;"));
        assert!(l.lines[2].code.contains("let third = 3;"));
    }

    #[test]
    fn unterminated_char_literal_resets_at_newline() {
        let l = lex("let c = '\\x\nunsafe { hit() }");
        assert_eq!(l.lines.len(), 2);
        assert!(l.lines[1].code.contains("unsafe"));
    }

    #[test]
    fn doc_flag_distinguishes_doc_comments() {
        let l = lex("/// doc\n//! inner doc\n// plain\nlet x = 1; // trailing");
        assert!(l.lines[0].doc);
        assert!(l.lines[1].doc);
        assert!(!l.lines[2].doc);
        assert!(!l.lines[3].doc);
    }
}
