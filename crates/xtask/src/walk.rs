//! Workspace source discovery: every `.rs` file the lint rules apply to,
//! in deterministic (sorted) order.

use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into, wherever they appear.
const PRUNED: &[&str] = &["target", ".git", "vendor", "fixtures"];

/// Collects all lintable `.rs` files under `root`, sorted.
///
/// Pruned: `target/` (build output), `vendor/` (offline dependency shims —
/// external code, not ours to lint), `.git`, and any `fixtures/` directory
/// (the lint engine's own seeded-violation corpus must not fail the real
/// gate).
pub fn workspace_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    visit(root, &mut out)?;
    out.sort();
    Ok(out)
}

fn visit(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let ty = entry.file_type()?;
        if ty.is_dir() {
            if PRUNED.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            visit(&path, out)?;
        } else if ty.is_file() && name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}
